#!/usr/bin/env python
"""Signal-processing pipeline: a 2-D FFT scheduled on ring networks of varying size.

The FFT workload of the paper is wide and shallow (two passes of independent
vector FFTs), so its speedup is limited mostly by communication: every column
FFT needs the transposed data of the row pass.  On a ring the network
diameter grows with the processor count, so adding processors eventually
stops paying off — a classical trade-off this example sweeps.

For each ring size the script compares the simulated-annealing scheduler with
HLF and reports speedup and efficiency, showing where the two schedulers
diverge and where the ring saturates.

Run with:  python examples/fft_on_ring.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    HLFScheduler,
    LinearCommModel,
    Machine,
    SAConfig,
    SAScheduler,
    simulate,
)
from repro.utils.tabulate import format_table
from repro.workloads import fft_2d

RING_SIZES = (3, 5, 7, 9, 13)


def main() -> None:
    graph = fft_2d()  # 73 tasks: 36 row FFTs, transpose, 36 column FFTs
    print(f"2-D FFT task graph: {graph.n_tasks} tasks, total work {graph.total_work():.0f} us\n")

    rows = []
    for n_procs in RING_SIZES:
        machine = Machine.ring(n_procs)
        comm = LinearCommModel()

        hlf = float(np.mean([
            simulate(graph, machine, HLFScheduler(seed=s), comm_model=comm,
                     record_trace=False).speedup()
            for s in range(3)
        ]))
        sa_result = simulate(
            graph, machine, SAScheduler(SAConfig.paper_defaults(seed=1)),
            comm_model=comm, record_trace=False,
        )
        sa = sa_result.speedup()
        rows.append([
            f"ring-{n_procs}",
            machine.diameter,
            sa,
            hlf,
            100.0 * (sa - hlf) / hlf,
            100.0 * sa / n_procs,
        ])

    print(format_table(
        rows,
        headers=["Ring", "Diameter", "SA speedup", "HLF speedup", "% gain", "SA efficiency %"],
        title="2-D FFT on rings of increasing size (with communication cost)",
    ))
    print("\nNote how efficiency decays as the ring diameter grows: the transpose")
    print("traffic has to cross more hops, and the annealing scheduler's placement")
    print("choices matter most in the mid-size configurations.")


if __name__ == "__main__":
    main()
