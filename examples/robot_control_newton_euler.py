#!/usr/bin/env python
"""Newton–Euler robot-control scheduling — the paper's flagship workload.

The Newton–Euler inverse-dynamics computation must run once per control cycle
of a robot arm, so its completion time directly limits the control frequency.
This example reproduces the paper's central experiment on that workload:

1. build the 95-task Newton–Euler graph (6 joints, scalar operations),
2. schedule it on the three paper architectures (8-processor hypercube,
   8-processor bus, 9-processor ring),
3. compare simulated annealing against the HLF list scheduler with and
   without the interprocessor-communication cost,
4. print the per-architecture speedups and gains (one row of Table 2 each)
   and the per-packet annealing statistics of §6a.

Run with:  python examples/robot_control_newton_euler.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    HLFScheduler,
    LinearCommModel,
    Machine,
    SAConfig,
    SAScheduler,
    ZeroCommModel,
    simulate,
)
from repro.utils.tabulate import format_table
from repro.workloads import newton_euler


def hlf_speedup(graph, machine, comm_model, n_placements: int = 4) -> float:
    """HLF places arbitrarily; average a few random placements."""
    return float(np.mean([
        simulate(graph, machine, HLFScheduler(seed=s), comm_model=comm_model,
                 record_trace=False).speedup()
        for s in range(n_placements)
    ]))


def sa_speedup(graph, machine, comm_model, weights=(0.3, 0.5, 0.7)) -> float:
    """SA with the communication weight tuned for the best speedup (as in the paper)."""
    best = 0.0
    for wc in weights:
        config = SAConfig.paper_defaults(seed=1).with_weights(1.0 - wc, wc)
        result = simulate(graph, machine, SAScheduler(config), comm_model=comm_model,
                          record_trace=False)
        best = max(best, result.speedup())
    return best


def main() -> None:
    graph = newton_euler()  # 95 scalar tasks, C/C ratio ~43 %
    print(f"Newton-Euler inverse dynamics: {graph.n_tasks} tasks, "
          f"total work {graph.total_work():.0f} us, "
          f"max speedup {graph.total_work() / graph.critical_path_length():.2f}\n")

    rows = []
    for arch_name, machine in Machine.paper_architectures().items():
        sa_wo = sa_speedup(graph, machine, ZeroCommModel(), weights=(0.5,))
        hlf_wo = hlf_speedup(graph, machine, ZeroCommModel(), n_placements=1)
        sa_wc = sa_speedup(graph, machine, LinearCommModel())
        hlf_wc = hlf_speedup(graph, machine, LinearCommModel())
        rows.append([
            arch_name,
            sa_wo, hlf_wo, 100.0 * (sa_wo - hlf_wo) / hlf_wo,
            sa_wc, hlf_wc, 100.0 * (sa_wc - hlf_wc) / hlf_wc,
        ])
    print(format_table(
        rows,
        headers=["Architecture", "SA w/o", "HLF w/o", "% gain", "SA with", "HLF with", "% gain"],
        title="Newton-Euler speedups (SA vs HLF), cf. paper Table 2",
    ))

    # Per-packet annealing statistics (paper section 6a)
    machine = Machine.hypercube(3)
    scheduler = SAScheduler(SAConfig.paper_defaults(seed=1))
    simulate(graph, machine, scheduler, comm_model=LinearCommModel(), record_trace=False)
    print("\nAnnealing statistics on the hypercube (cf. paper section 6a):")
    print(f"  annealing packets:               {scheduler.n_packets}")
    print(f"  avg. candidate tasks per packet: {scheduler.average_candidates_per_packet():.1f}")
    print(f"  avg. idle processors per packet: {scheduler.average_idle_processors_per_packet():.2f}")
    print(f"  total annealing proposals:       {scheduler.total_proposals()}")


if __name__ == "__main__":
    main()
