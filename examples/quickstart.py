#!/usr/bin/env python
"""Quickstart: schedule a task graph on a multicomputer with SA and HLF.

This example builds a small synthetic task graph, schedules it on an
8-processor hypercube with both the simulated-annealing scheduler (the
paper's algorithm) and the Highest Level First baseline, and prints the
resulting speedups and a text Gantt chart.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    HLFScheduler,
    LinearCommModel,
    Machine,
    SAConfig,
    SAScheduler,
    TaskGraph,
    render_gantt,
    simulate,
)


def build_graph() -> TaskGraph:
    """A tiny pipeline: a source task fans out to workers that feed a reducer."""
    g = TaskGraph("quickstart")
    g.add_task("load", 10.0, label="load input")
    g.add_task("reduce", 8.0, label="reduce")
    for i in range(6):
        worker = f"work[{i}]"
        g.add_task(worker, 25.0, label=worker)
        # each worker needs 2 variables from the loader and sends 1 back
        g.add_dependency("load", worker, comm=8.0)
        g.add_dependency(worker, "reduce", comm=4.0)
    return g


def main() -> None:
    graph = build_graph()
    machine = Machine.hypercube(3)  # 8 processors, paper communication parameters
    comm = LinearCommModel()        # equation-4 message costs

    print(f"Task graph: {graph.n_tasks} tasks, total work {graph.total_work():.0f} us, "
          f"critical path {graph.critical_path_length():.0f} us")
    print(f"Machine: {machine.name} ({machine.n_processors} processors, "
          f"diameter {machine.diameter})\n")

    hlf_result = simulate(graph, machine, HLFScheduler(), comm_model=comm)
    sa_result = simulate(graph, machine, SAScheduler(SAConfig.paper_defaults(seed=0)),
                         comm_model=comm)

    for result in (hlf_result, sa_result):
        print(f"{result.policy_name:>4s}: makespan {result.makespan:7.1f} us, "
              f"speedup {result.speedup():.2f}, efficiency {result.efficiency():.1%}")

    gain = 100.0 * (sa_result.speedup() - hlf_result.speedup()) / hlf_result.speedup()
    print(f"\nSimulated annealing gain over HLF: {gain:+.1f} %\n")

    print("SA schedule (Gantt chart):")
    print(render_gantt(sa_result, width=90))


if __name__ == "__main__":
    main()
