#!/usr/bin/env python
"""Scheduling on a user-defined machine: custom topology and link parameters.

The library is not limited to the paper's three architectures.  This example
models a small heterogeneous cluster interconnect — two fully-connected
quads bridged by a single gateway link — with slower links than the paper's
10 Mbit/s, and schedules a Gauss–Jordan solver on it.  It demonstrates:

* building a :class:`~repro.machine.topology.Topology` from an explicit link
  list,
* customizing :class:`~repro.machine.params.CommParams`,
* inspecting distances / routes,
* comparing the SA scheduler with the communication-aware ETF baseline,
* exporting the task graph to Graphviz DOT for visualization.

Run with:  python examples/custom_topology.py
"""

from __future__ import annotations

from pathlib import Path

from repro import (
    CommParams,
    ETFScheduler,
    HLFScheduler,
    LinearCommModel,
    Machine,
    SAConfig,
    SAScheduler,
    Topology,
    simulate,
)
from repro.taskgraph import io as graph_io
from repro.utils.tabulate import format_table
from repro.workloads import gauss_jordan


def build_machine() -> Machine:
    """Two fully-connected quads (0-3 and 4-7) joined by a single bridge link 3-4."""
    links = []
    for base in (0, 4):
        for i in range(base, base + 4):
            for j in range(i + 1, base + 4):
                links.append((i, j))
    links.append((3, 4))  # the bridge
    topology = Topology.from_links(8, links, name="dual-quad-bridge")

    # Slower 5 Mbit/s links and heavier context switches than the paper's machine.
    params = CommParams(
        context_switch=4.0,
        output_setup=5.0,
        header_control=3.0,
        bandwidth_bits_per_us=5.0,
        bits_per_word=40.0,
    )
    return Machine(topology, params)


def main() -> None:
    machine = build_machine()
    print(f"Machine: {machine.name}, {machine.n_processors} processors, "
          f"{machine.topology.n_links} links, diameter {machine.diameter}")
    print(f"  sigma (send setup) = {machine.params.sigma:.0f} us, "
          f"tau (route/receive) = {machine.params.tau:.0f} us")
    print(f"  route 0 -> 7: {machine.route(0, 7)}  (crosses the bridge)\n")

    graph = gauss_jordan(n=8)
    comm = LinearCommModel()

    rows = []
    for policy in (
        SAScheduler(SAConfig.paper_defaults(seed=0)),
        HLFScheduler(),
        ETFScheduler(),
    ):
        result = simulate(graph, machine, policy, comm_model=comm, record_trace=False)
        rows.append([result.policy_name, result.makespan, result.speedup(),
                     100.0 * result.efficiency()])
    print(format_table(
        rows,
        headers=["Policy", "Makespan (us)", "Speedup", "Efficiency %"],
        title=f"Gauss-Jordan (n=8) on {machine.name}",
    ))

    # Export the task graph for visualization with Graphviz.
    dot_path = Path("gauss_jordan_n8.dot")
    dot_path.write_text(graph_io.to_dot(graph))
    print(f"\nTask graph written to {dot_path} (render with: dot -Tpng {dot_path} -o graph.png)")


if __name__ == "__main__":
    main()
