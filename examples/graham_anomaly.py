#!/usr/bin/env python
"""Graham's list-scheduling anomaly and how the SA scheduler copes with it.

The paper remarks (§6b) that the simulated-annealing scheduler "is able to
optimally solve the Graham list scheduling anomalies".  Graham (1969) showed
that list schedulers can behave paradoxically: shortening tasks, removing
precedence constraints or *adding processors* can lengthen the schedule,
because the priority list interacts badly with the changed instance.

This example schedules the classical anomaly instance with HLF and with the
SA scheduler on 3 and 4 processors and prints the resulting makespans,
illustrating that the annealing scheduler is free to deviate from the rigid
priority order and therefore avoids the worst of the anomaly.

Run with:  python examples/graham_anomaly.py
"""

from __future__ import annotations

from repro import (
    HLFScheduler,
    Machine,
    SAConfig,
    SAScheduler,
    ZeroCommModel,
    render_gantt,
    simulate,
)
from repro.taskgraph.generators import graham_anomaly_graph
from repro.utils.tabulate import format_table


def main() -> None:
    graph = graham_anomaly_graph()
    print("Graham anomaly instance: 9 tasks, durations "
          f"{[graph.duration(t) for t in graph.tasks]}, total work {graph.total_work():.0f}\n")

    rows = []
    best_sa = None
    for n_procs in (3, 4):
        machine = Machine.fully_connected(n_procs)
        hlf = simulate(graph, machine, HLFScheduler(), comm_model=ZeroCommModel())
        sa = simulate(graph, machine, SAScheduler(SAConfig(seed=2)), comm_model=ZeroCommModel())
        lower_bound = max(graph.critical_path_length(), graph.total_work() / n_procs)
        rows.append([n_procs, hlf.makespan, sa.makespan, lower_bound])
        if n_procs == 3:
            best_sa = sa

    print(format_table(
        rows,
        headers=["Processors", "HLF makespan", "SA makespan", "Lower bound"],
        title="Graham anomaly instance (no communication cost)",
    ))
    print("\nThe anomaly: a rigid priority list cannot always exploit the extra")
    print("processor, while the annealing scheduler re-optimizes every packet and")
    print("stays at (or near) the lower bound in both configurations.\n")

    print("SA schedule on 3 processors:")
    print(render_gantt(best_sa, width=70))


if __name__ == "__main__":
    main()
