"""Tests for SAConfig, the packet annealer and the staged SA scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.annealing.cooling import LinearCooling
from repro.comm.model import LinearCommModel, ZeroCommModel
from repro.core.config import SAConfig
from repro.core.packet import AnnealingPacket, PacketMapping
from repro.core.packet_annealer import PacketAnnealer, PacketMappingProblem
from repro.core.cost import PacketCostFunction
from repro.core.sa_scheduler import SAScheduler
from repro.exceptions import ConfigurationError
from repro.machine.machine import Machine
from repro.schedulers.base import PacketContext, validate_assignment
from repro.sim.engine import simulate
from repro.taskgraph import generators as gen


def make_packet(levels, pred_placement, idle_procs, time=0.0):
    return AnnealingPacket(
        time=time,
        ready_tasks=tuple(levels.keys()),
        idle_processors=tuple(idle_procs),
        levels=dict(levels),
        predecessor_placement={t: tuple(pred_placement.get(t, ())) for t in levels},
    )


class TestSAConfig:
    def test_defaults_are_paper_values(self):
        cfg = SAConfig.paper_defaults()
        assert cfg.weight_balance == 0.5 and cfg.weight_comm == 0.5
        assert cfg.stall_patience == 5
        assert cfg.initial_mapping == "hlf"

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            SAConfig(weight_balance=0.6, weight_comm=0.6)
        with pytest.raises(ConfigurationError):
            SAConfig(weight_balance=-0.2, weight_comm=1.2)

    def test_with_weights(self):
        cfg = SAConfig().with_weights(0.3, 0.7)
        assert cfg.weight_comm == 0.7
        assert cfg.stall_patience == SAConfig().stall_patience

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            SAConfig(initial_temperature=0.0)
        with pytest.raises(ConfigurationError):
            SAConfig(max_temperature_steps=0)
        with pytest.raises(ConfigurationError):
            SAConfig(stall_patience=0)
        with pytest.raises(ConfigurationError):
            SAConfig(initial_mapping="nope")
        with pytest.raises(ConfigurationError):
            SAConfig(moves_per_temperature=0)

    def test_moves_for_packet_scaling(self):
        cfg = SAConfig()
        assert cfg.moves_for_packet(2, 1) == 8
        assert cfg.moves_for_packet(100, 8) == 64
        assert SAConfig(moves_per_temperature=5).moves_for_packet(100, 8) == 5


class TestPacketMappingProblem:
    def test_hlf_seed_selects_highest_levels(self, hypercube8):
        packet = make_packet(
            levels={"lo": 1.0, "hi": 9.0, "mid": 5.0},
            pred_placement={},
            idle_procs=[3, 5],
        )
        fn = PacketCostFunction(packet, hypercube8)
        problem = PacketMappingProblem(packet, fn, initial_mapping="hlf")
        seed = problem.hlf_mapping()
        assert set(seed.task_to_proc) == {"hi", "mid"}
        assert seed.processor_of("hi") == 3  # first idle processor

    def test_random_seed_is_maximal_and_valid(self, hypercube8):
        packet = make_packet(
            levels={f"t{i}": float(i) for i in range(6)},
            pred_placement={},
            idle_procs=[0, 1, 2],
        )
        fn = PacketCostFunction(packet, hypercube8)
        problem = PacketMappingProblem(packet, fn, initial_mapping="random")
        m = problem.random_mapping(np.random.default_rng(0))
        assert m.n_assigned == 3
        assert len(set(m.task_to_proc.values())) == 3

    def test_empty_seed(self, hypercube8):
        packet = make_packet(levels={"a": 1.0}, pred_placement={}, idle_procs=[0])
        fn = PacketCostFunction(packet, hypercube8)
        problem = PacketMappingProblem(packet, fn, initial_mapping="empty")
        assert problem.initial_state(np.random.default_rng(0)).n_assigned == 0


class TestPacketAnnealer:
    def test_outcome_is_legal_assignment(self, hypercube8):
        packet = make_packet(
            levels={f"t{i}": float(10 - i) for i in range(6)},
            pred_placement={"t3": [("p", 0, 4.0)]},
            idle_procs=[1, 4, 6],
        )
        outcome = PacketAnnealer(SAConfig(seed=0)).anneal(packet, hypercube8, rng=0)
        assert len(outcome.assignment) <= packet.n_assignable
        assert set(outcome.assignment.values()) <= set(packet.idle_processors)
        assert outcome.n_proposals > 0

    def test_elitism_never_worse_than_hlf_seed(self, hypercube8):
        packet = make_packet(
            levels={f"t{i}": float(i % 3 + 1) for i in range(8)},
            pred_placement={f"t{i}": [("p", i % 8, 4.0)] for i in range(8)},
            idle_procs=[0, 2, 5],
        )
        outcome = PacketAnnealer(SAConfig(seed=1)).anneal(packet, hypercube8, rng=1)
        assert outcome.best_cost <= outcome.initial_cost + 1e-9
        assert outcome.improvement >= -1e-9

    def test_annealer_finds_colocation_when_levels_tie(self, hypercube8):
        # two equal-priority candidates; one has its predecessor on the only
        # idle processor — annealing must discover the communication-free choice
        packet = make_packet(
            levels={"local": 5.0, "remote": 5.0},
            pred_placement={"local": [("p", 6, 4.0)], "remote": [("q", 0, 4.0)]},
            idle_procs=[6],
        )
        outcome = PacketAnnealer(SAConfig(seed=3)).anneal(packet, hypercube8, rng=3)
        assert outcome.assignment == {"local": 6}

    def test_trajectory_recording(self, hypercube8):
        packet = make_packet(
            levels={"a": 3.0, "b": 1.0},
            pred_placement={"a": [("p", 1, 4.0)]},
            idle_procs=[0, 1],
        )
        cfg = SAConfig(seed=0, record_trajectories=True, initial_mapping="random")
        outcome = PacketAnnealer(cfg).anneal(packet, hypercube8, rng=0)
        assert len(outcome.trajectory) == outcome.n_proposals
        point = outcome.trajectory[0]
        assert np.isfinite(point.balance_cost)
        assert np.isfinite(point.communication_cost)
        assert np.isfinite(point.total_cost)

    def test_custom_cooling_schedule_respected(self, hypercube8):
        packet = make_packet(levels={"a": 1.0, "b": 2.0}, pred_placement={}, idle_procs=[0])
        cfg = SAConfig(seed=0, cooling=LinearCooling(step=0.5), max_temperature_steps=3)
        outcome = PacketAnnealer(cfg).anneal(packet, hypercube8, rng=0)
        assert outcome.n_temperature_steps <= 3

    def test_deterministic_for_fixed_rng(self, hypercube8):
        packet = make_packet(
            levels={f"t{i}": float(i) for i in range(5)},
            pred_placement={},
            idle_procs=[0, 1],
        )
        a = PacketAnnealer(SAConfig(seed=0)).anneal(packet, hypercube8, rng=11)
        b = PacketAnnealer(SAConfig(seed=0)).anneal(packet, hypercube8, rng=11)
        assert a.assignment == b.assignment
        assert a.best_cost == b.best_cost


class TestSAScheduler:
    def _context(self, graph, machine, ready, idle, placed, comm=None):
        return PacketContext(
            time=0.0,
            ready_tasks=ready,
            idle_processors=idle,
            graph=graph,
            machine=machine,
            levels=graph.levels(),
            task_processor=placed,
            comm_model=comm or LinearCommModel(),
        )

    def test_assign_returns_valid_assignment(self, diamond_graph, hypercube8):
        sched = SAScheduler(SAConfig(seed=0))
        ctx = self._context(diamond_graph, hypercube8, ["b", "c"], [1, 2, 3], {"a": 0})
        assignment = sched.assign(ctx)
        validate_assignment(ctx, assignment)
        assert assignment  # something was placed
        assert sched.n_packets == 1

    def test_empty_packet_returns_empty(self, diamond_graph, hypercube8):
        sched = SAScheduler(SAConfig(seed=0))
        ctx = self._context(diamond_graph, hypercube8, [], [0], {})
        assert sched.assign(ctx) == {}
        ctx = self._context(diamond_graph, hypercube8, ["a"], [], {})
        assert sched.assign(ctx) == {}

    def test_reset_clears_statistics_and_reseeds(self, diamond_graph, hypercube8):
        sched = SAScheduler(SAConfig(seed=5))
        ctx = self._context(diamond_graph, hypercube8, ["a"], [0, 1], {})
        first = sched.assign(ctx)
        sched.reset()
        assert sched.n_packets == 0
        second = sched.assign(ctx)
        assert first == second  # same seed, same decision

    def test_statistics_accumulate(self, hypercube8):
        graph = gen.layered_random(4, 6, seed=2, mean_comm=4.0)
        sched = SAScheduler(SAConfig(seed=0))
        result = simulate(graph, hypercube8, sched, comm_model=LinearCommModel())
        assert sched.n_packets == result.n_packets > 0
        assert sched.average_candidates_per_packet() > 0
        assert sched.average_idle_processors_per_packet() > 0
        assert sched.total_proposals() > 0

    def test_full_simulation_produces_valid_schedule(self, hypercube8):
        graph = gen.layered_random(5, 5, seed=3, mean_comm=4.0)
        sched = SAScheduler(SAConfig(seed=1))
        result = simulate(graph, hypercube8, sched, comm_model=LinearCommModel())
        assert result.trace is not None
        result.trace.validate(graph)
        assert result.makespan >= graph.critical_path_length() - 1e-9
        assert len(result.task_processor) == graph.n_tasks

    def test_scheduler_matches_hlf_without_communication(self, hypercube8):
        # with the zero model and HLF seeding, SA can only match or improve on
        # the packet cost, and speedups coincide with HLF on this simple graph
        from repro.schedulers.hlf import HLFScheduler

        graph = gen.fork_join(12, branch_duration=3.0, root_duration=1.0)
        sa = simulate(graph, hypercube8, SAScheduler(SAConfig(seed=0)), comm_model=ZeroCommModel())
        hlf = simulate(graph, hypercube8, HLFScheduler(), comm_model=ZeroCommModel())
        assert sa.makespan == pytest.approx(hlf.makespan)
