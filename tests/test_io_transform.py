"""Tests for task-graph serialization and transformations."""

from __future__ import annotations

import pytest

from repro.exceptions import TaskGraphError
from repro.taskgraph import generators as gen
from repro.taskgraph import io, transform
from repro.taskgraph.graph import TaskGraph


class TestJsonRoundtrip:
    def test_dict_roundtrip(self, diamond_graph):
        data = io.to_dict(diamond_graph)
        back = io.from_dict(data)
        assert back.n_tasks == 4 and back.n_edges == 4
        assert back.duration("b") == 3.0
        assert back.comm("b", "d") == 0.5

    def test_file_roundtrip(self, tmp_path, diamond_graph):
        path = tmp_path / "g.json"
        io.save_json(diamond_graph, path)
        back = io.load_json(path)
        assert back.name == diamond_graph.name
        assert set(back.tasks) == set(diamond_graph.tasks)

    def test_from_dict_missing_keys(self):
        with pytest.raises(TaskGraphError):
            io.from_dict({"name": "x"})

    def test_attrs_preserved(self):
        g = TaskGraph("attrs")
        g.add_task("a", 1.0, "label-a", joint=3)
        back = io.from_dict(io.to_dict(g))
        assert back.task("a").attrs["joint"] == 3
        assert back.task("a").label == "label-a"


class TestDotAndEdgeList:
    def test_dot_contains_nodes_and_edges(self, diamond_graph):
        dot = io.to_dot(diamond_graph)
        assert dot.startswith("digraph")
        assert '"a" -> "b"' in dot
        assert 'label="1' in dot  # comm label shown

    def test_dot_without_comm_labels(self, diamond_graph):
        dot = io.to_dot(diamond_graph, show_comm=False)
        assert "label=\"1\"" not in dot.split("\n", 2)[2]

    def test_edge_list_roundtrip(self, chain_graph):
        text = io.to_edge_list(chain_graph)
        back = io.from_edge_list(text)
        assert back.n_tasks == 5 and back.n_edges == 4
        assert back.comm(0, 1) == 1.0

    def test_edge_list_bad_line(self):
        with pytest.raises(TaskGraphError):
            io.from_edge_list("task a 1\nnonsense line here\n")

    def test_edge_list_ignores_comments_and_blanks(self):
        g = io.from_edge_list("# comment\n\ntask a 2\ntask b 1\nedge a b 0.5\n")
        assert g.n_tasks == 2 and g.comm("a", "b") == 0.5


class TestTransform:
    def test_without_communication(self, diamond_graph):
        g = transform.without_communication(diamond_graph)
        assert g.total_communication() == 0.0
        assert g.total_work() == diamond_graph.total_work()
        assert g.n_edges == diamond_graph.n_edges

    def test_scale_durations(self, diamond_graph):
        g = transform.scale_durations(diamond_graph, 2.0)
        assert g.total_work() == pytest.approx(16.0)
        assert g.total_communication() == pytest.approx(3.0)

    def test_scale_communication(self, diamond_graph):
        g = transform.scale_communication(diamond_graph, 3.0)
        assert g.total_communication() == pytest.approx(9.0)
        assert g.total_work() == pytest.approx(8.0)

    def test_scale_negative_rejected(self, diamond_graph):
        with pytest.raises(ValueError):
            transform.scale_durations(diamond_graph, -1.0)

    def test_uniform_communication(self, diamond_graph):
        g = transform.with_uniform_communication(diamond_graph, 2.5)
        assert all(w == 2.5 for _, _, w in g.edges())

    def test_merge_serial_chains_collapses_chain(self):
        g = gen.chain(5, duration=1.0, comm=1.0)
        merged = transform.merge_serial_chains(g)
        assert merged.n_tasks == 1
        assert merged.duration(0) == pytest.approx(5.0)

    def test_merge_serial_chains_preserves_diamond(self, diamond_graph):
        merged = transform.merge_serial_chains(diamond_graph)
        # no pure chains in a diamond: structure unchanged
        assert merged.n_tasks == 4
        assert merged.n_edges == 4

    def test_merge_serial_chains_mixed(self):
        # fork -> (a1 -> a2), (b1) -> join : the a-chain collapses
        g = TaskGraph("mixed")
        for t in ("f", "a1", "a2", "b1", "j"):
            g.add_task(t, 1.0)
        g.add_dependency("f", "a1", 1.0)
        g.add_dependency("a1", "a2", 1.0)
        g.add_dependency("a2", "j", 1.0)
        g.add_dependency("f", "b1", 1.0)
        g.add_dependency("b1", "j", 1.0)
        merged = transform.merge_serial_chains(g)
        assert merged.n_tasks == 4
        assert merged.duration("a1") == pytest.approx(2.0)
        merged.validate()
