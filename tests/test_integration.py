"""End-to-end integration tests reproducing the paper's qualitative claims.

These tests exercise the full stack (workload generator -> machine model ->
SA / HLF schedulers -> discrete-event simulator -> metrics) on reduced-size
instances so the suite stays fast, and assert the paper's headline claims:

1. Without communication cost, SA matches HLF.
2. With communication cost, SA does not lose to the (arbitrary-placement)
   HLF baseline on the paper workloads, and wins clearly on the
   communication-heavy Newton-Euler graph.
3. Schedules are always valid (precedence, no overlap, messages arrive first).
4. The SA scheduler resolves the Graham list-scheduling anomaly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.model import LinearCommModel, ZeroCommModel
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.machine.machine import Machine
from repro.schedulers.hlf import HLFScheduler
from repro.sim.engine import simulate
from repro.taskgraph.generators import graham_anomaly_graph
from repro.workloads.newton_euler import newton_euler
from repro.workloads.suite import paper_program


def hlf_mean_speedup(graph, machine, comm_model, seeds=(0, 1, 2)):
    return float(
        np.mean(
            [
                simulate(graph, machine, HLFScheduler(seed=s), comm_model=comm_model,
                         record_trace=False).speedup()
                for s in seeds
            ]
        )
    )


def sa_best_speedup(graph, machine, comm_model, weights=(0.3, 0.5, 0.7), seed=1):
    best = 0.0
    for wc in weights:
        cfg = SAConfig.paper_defaults(seed=seed).with_weights(1.0 - wc, wc)
        sp = simulate(graph, machine, SAScheduler(cfg), comm_model=comm_model,
                      record_trace=False).speedup()
        best = max(best, sp)
    return best


class TestPaperClaims:
    def test_sa_matches_hlf_without_communication(self, hypercube8):
        graph = newton_euler()
        sa = sa_best_speedup(graph, hypercube8, ZeroCommModel(), weights=(0.5,))
        hlf = hlf_mean_speedup(graph, hypercube8, ZeroCommModel(), seeds=(0,))
        assert sa == pytest.approx(hlf, rel=0.02)

    def test_sa_beats_hlf_on_newton_euler_with_communication(self, hypercube8):
        graph = newton_euler()
        sa = sa_best_speedup(graph, hypercube8, LinearCommModel())
        hlf = hlf_mean_speedup(graph, hypercube8, LinearCommModel())
        assert sa > hlf * 1.05  # paper reports +14.3 % on the hypercube

    def test_sa_does_not_lose_on_fft_with_communication(self):
        graph = paper_program("FFT", n_vectors=20)
        machine = Machine.hypercube(3)
        sa = sa_best_speedup(graph, machine, LinearCommModel())
        hlf = hlf_mean_speedup(graph, machine, LinearCommModel())
        assert sa >= hlf * 0.98

    def test_communication_reduces_speedup(self, hypercube8):
        graph = newton_euler()
        with_comm = sa_best_speedup(graph, hypercube8, LinearCommModel(), weights=(0.5,))
        without = sa_best_speedup(graph, hypercube8, ZeroCommModel(), weights=(0.5,))
        assert with_comm < without

    def test_speedup_bounded_by_processors_and_max_speedup(self, hypercube8):
        graph = newton_euler()
        for comm in (ZeroCommModel(), LinearCommModel()):
            result = simulate(graph, hypercube8, SAScheduler(SAConfig(seed=0)), comm_model=comm,
                              record_trace=False)
            assert result.speedup() <= hypercube8.n_processors + 1e-9
            assert result.speedup() <= graph.total_work() / graph.critical_path_length() + 1e-9

    def test_schedules_valid_on_all_three_architectures(self):
        graph = newton_euler(n_joints=4)
        for machine in Machine.paper_architectures().values():
            result = simulate(
                graph, machine, SAScheduler(SAConfig(seed=0)), comm_model=LinearCommModel()
            )
            result.trace.validate(graph)
            assert len(result.task_processor) == graph.n_tasks


class TestGrahamAnomaly:
    """The paper notes SA optimally resolves Graham's list-scheduling anomalies."""

    def test_sa_at_least_as_good_as_hlf_on_anomaly_instance(self):
        graph = graham_anomaly_graph()
        machine = Machine.fully_connected(3)
        hlf = simulate(graph, machine, HLFScheduler(), comm_model=ZeroCommModel(),
                       record_trace=False)
        sa = simulate(graph, machine, SAScheduler(SAConfig(seed=2)), comm_model=ZeroCommModel(),
                      record_trace=False)
        assert sa.makespan <= hlf.makespan + 1e-9

    def test_anomaly_lower_bound_respected(self):
        graph = graham_anomaly_graph()
        machine = Machine.fully_connected(3)
        result = simulate(graph, machine, SAScheduler(SAConfig(seed=2)), comm_model=ZeroCommModel(),
                          record_trace=False)
        # total work 34 on 3 processors: no schedule can beat ceil(34/3)
        assert result.makespan >= graph.total_work() / 3 - 1e-9


class TestDeterminism:
    def test_sa_simulation_reproducible_end_to_end(self, hypercube8):
        graph = newton_euler(n_joints=3)
        results = [
            simulate(graph, hypercube8, SAScheduler(SAConfig(seed=42)), comm_model=LinearCommModel(),
                     record_trace=False).makespan
            for _ in range(2)
        ]
        assert results[0] == pytest.approx(results[1])

    def test_different_seeds_may_differ(self, hypercube8):
        graph = newton_euler(n_joints=3)
        m1 = simulate(graph, hypercube8, SAScheduler(SAConfig(seed=1)), comm_model=LinearCommModel(),
                      record_trace=False).makespan
        m2 = simulate(graph, hypercube8, SAScheduler(SAConfig(seed=2)), comm_model=LinearCommModel(),
                      record_trace=False).makespan
        # not asserting inequality (they may tie) — only that both are valid
        assert m1 > 0 and m2 > 0
