"""The array-native annealing walks: equivalence, batching, SA fast path.

Four contracts are pinned here:

* the single-chain array walk (``SAConfig(walk="array")``, the default)
  replays the kernel walk (``walk="kernel"``) and the reference path
  (``compiled=False``) **bit for bit** — identical accepted-move counts,
  costs and committed assignments — on synthetic packets over homogeneous
  and heterogeneous machines (hypothesis + fixed cases; the 24 golden
  Table-2 cells and both random-graph fixtures pin the same walk end-to-end
  through ``tests/test_golden_trace.py`` and ``tests/test_fast_engine.py``,
  which run the default config);
* the batched lock-step engine returns, for every replica, exactly the
  result of a scalar single-chain walk on that replica's child stream, and
  fixed ``(seed, B)`` runs are deterministic with ``B = 1`` matching the
  single chain;
* :func:`~repro.core.array_annealer.compile_fast_packet` builds kernels
  bit-identical to the :class:`~repro.core.cost.PacketCostFunction` path, so
  SA's ``fast_assign`` commits the same mappings as the materialized-context
  fallback it replaces (and the fast engine reports zero fallback epochs
  for SA);
* the ``replicas=`` knob threads through ``SAConfig`` → ``SAScheduler`` →
  ``simulate`` → sweep specs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.annealing.replicas import ReplicaStats, best_replica_index, summarize_replicas
from repro.comm.model import LinearCommModel, ZeroCommModel
from repro.core.array_annealer import (
    anneal_array,
    anneal_replicas_batched,
    anneal_replicas_scalar,
    compile_fast_packet,
)
from repro.core.config import SAConfig
from repro.core.cost import PacketCostFunction
from repro.core.kernel import PacketKernel
from repro.core.packet import AnnealingPacket
from repro.core.packet_annealer import (
    PacketAnnealer,
    PacketMappingProblem,
    _anneal_indexed,
    _split_rng,
)
from repro.core.sa_scheduler import SAScheduler
from repro.exceptions import ConfigurationError, SimulationError
from repro.machine.machine import Machine
from repro.schedulers.base import PacketContext, SchedulingPolicy
from repro.schedulers.hlf import HLFScheduler
from repro.sim.engine import simulate
from repro.taskgraph.generators import layered_random, random_dag
from repro.utils.rng import as_rng, split

# --------------------------------------------------------------------------- #
# Fixtures and strategies
# --------------------------------------------------------------------------- #


def _make_packet(n_ready: int, n_idle: int, seed: int, n_procs: int = 8) -> AnnealingPacket:
    rng = np.random.default_rng(seed)
    tasks = tuple(f"t{i}" for i in range(n_ready))
    levels = {t: float(rng.uniform(1, 100)) for t in tasks}
    placement = {
        t: tuple(
            (f"p{t}{k}", int(rng.integers(0, n_procs)), float(rng.uniform(0, 20)))
            for k in range(int(rng.integers(0, 4)))
        )
        for t in tasks
    }
    return AnnealingPacket(
        time=0.0,
        ready_tasks=tasks,
        idle_processors=tuple(range(n_idle)),
        levels=levels,
        predecessor_placement=placement,
    )


def _hetero_machine(seed: int) -> Machine:
    rng = np.random.default_rng(seed)
    speeds = rng.uniform(0.5, 4.0, 8).tolist()
    topology = Machine.hypercube(3).topology
    link_weights = {
        tuple(sorted(l)): float(rng.uniform(0.5, 3.0)) for l in topology.links()
    }
    return Machine.hypercube(3, speeds=speeds, link_weights=link_weights)


_MACHINES = {
    "hom": lambda seed: Machine.hypercube(3),
    "het": _hetero_machine,
}

_SETTINGS = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _outcome_key(outcome):
    return (
        outcome.assignment,
        outcome.best_cost,
        outcome.initial_cost,
        outcome.n_proposals,
        outcome.n_accepted,
        outcome.n_temperature_steps,
    )


def _result_key(result):
    return (
        list(result.best_state.task_to_proc.items()),  # values AND insertion order
        result.best_cost,
        list(result.final_state.task_to_proc.items()),
        result.final_cost,
        result.n_iterations,
        result.n_proposals,
        result.n_accepted,
    )


# --------------------------------------------------------------------------- #
# Single-chain equivalence: array walk vs kernel walk vs reference
# --------------------------------------------------------------------------- #


class TestSingleChainEquivalence:
    def test_default_walk_is_array(self):
        """The golden suites run the default config, so they pin this walk."""
        assert SAConfig().walk == "array"

    @given(
        n_ready=st.integers(1, 24),
        n_idle=st.integers(1, 8),
        seed=st.integers(0, 10_000),
        machine_kind=st.sampled_from(sorted(_MACHINES)),
        comm_off=st.booleans(),
    )
    @_SETTINGS
    def test_all_three_tiers_commit_identical_walks(
        self, n_ready, n_idle, seed, machine_kind, comm_off
    ):
        packet = _make_packet(n_ready, n_idle, seed)
        machine = _MACHINES[machine_kind](seed)
        comm_model = ZeroCommModel() if comm_off else LinearCommModel()
        outcomes = [
            PacketAnnealer(cfg).anneal(packet, machine, comm_model=comm_model, rng=seed)
            for cfg in (
                SAConfig(seed=0),  # array (default)
                SAConfig(seed=0, walk="kernel"),
                SAConfig(seed=0, compiled=False),
            )
        ]
        assert _outcome_key(outcomes[0]) == _outcome_key(outcomes[1])
        assert _outcome_key(outcomes[0]) == _outcome_key(outcomes[2])

    @pytest.mark.parametrize("machine_kind", sorted(_MACHINES))
    @pytest.mark.parametrize("initial_mapping", ["hlf", "random", "empty"])
    def test_walk_level_results_identical_including_order(
        self, machine_kind, initial_mapping
    ):
        """anneal_array vs _anneal_indexed: full AnnealingResult equality,
        including the dict-insertion order of the committed mappings (which
        the drop-victim draw and the resync sums depend on)."""
        for seed in range(6):
            packet = _make_packet(12 + seed, 3 + seed % 5, seed)
            machine = _MACHINES[machine_kind](seed)
            cfg = SAConfig(seed=0, initial_mapping=initial_mapping)
            kernel = PacketCostFunction(packet, machine).kernel
            problem = PacketMappingProblem(
                kernel.index_packet(), kernel, initial_mapping=initial_mapping
            )
            annealer = PacketAnnealer(cfg)._build_annealer(packet)
            res_a = anneal_array(kernel, problem, annealer, np.random.default_rng(seed))
            res_k = _anneal_indexed(kernel, problem, annealer, np.random.default_rng(seed))
            assert _result_key(res_a) == _result_key(res_k)

    def test_degenerate_packets(self, hypercube8):
        for n_ready, n_idle in [(1, 1), (1, 8), (8, 1), (2, 2)]:
            packet = _make_packet(n_ready, n_idle, 3)
            a = PacketAnnealer(SAConfig(seed=0)).anneal(packet, hypercube8, rng=7)
            k = PacketAnnealer(SAConfig(seed=0, walk="kernel")).anneal(
                packet, hypercube8, rng=7
            )
            assert _outcome_key(a) == _outcome_key(k)

    def test_non_sigmoid_acceptance_falls_back_to_kernel_walk(self, hypercube8):
        """The array walk requires the sigmoid rule; Metropolis configs must
        still work (via the kernel walk) and match the reference."""
        from repro.annealing.acceptance import MetropolisAcceptance

        packet = _make_packet(10, 4, 0)
        fast = PacketAnnealer(SAConfig(seed=0, acceptance=MetropolisAcceptance()))
        slow = PacketAnnealer(
            SAConfig(seed=0, acceptance=MetropolisAcceptance(), compiled=False)
        )
        assert _outcome_key(fast.anneal(packet, hypercube8, rng=5)) == _outcome_key(
            slow.anneal(packet, hypercube8, rng=5)
        )

    def test_anneal_array_rejects_non_sigmoid(self, hypercube8):
        from repro.annealing.acceptance import GreedyAcceptance

        packet = _make_packet(4, 2, 0)
        kernel = PacketCostFunction(packet, hypercube8).kernel
        problem = PacketMappingProblem(kernel.index_packet(), kernel)
        annealer = PacketAnnealer(SAConfig(seed=0))._build_annealer(packet)
        annealer.acceptance = GreedyAcceptance()
        with pytest.raises(ValueError, match="Sigmoid"):
            anneal_array(kernel, problem, annealer, np.random.default_rng(0))


# --------------------------------------------------------------------------- #
# Batched lock-step engine
# --------------------------------------------------------------------------- #


def _prepped_run_rngs(problem, parent_seed: int, n: int):
    """Replicate the per-replica prologue of the annealer: split the parent,
    burn the seed-mapping draw of each child, return the walk generators."""
    runs = []
    for child in split(np.random.default_rng(parent_seed), n):
        seed_rng, run_rng = _split_rng(child)
        problem.cost(problem.initial_state(seed_rng))
        runs.append(as_rng(run_rng))
    return runs


class TestBatchedReplicas:
    @pytest.mark.parametrize("machine_kind", sorted(_MACHINES))
    @pytest.mark.parametrize("n_replicas", [1, 3, 8])
    def test_batched_equals_scalar_replicas(self, machine_kind, n_replicas):
        """The core contract: lane b of a batched run is bit-identical to a
        scalar single-chain walk on child stream b (B=1 included)."""
        for seed in range(4):
            packet = _make_packet(10 + 3 * seed, 2 + seed, seed)
            machine = _MACHINES[machine_kind](seed)
            kernel = PacketCostFunction(packet, machine).kernel
            problem = PacketMappingProblem(kernel.index_packet(), kernel)
            annealer = PacketAnnealer(SAConfig(seed=0))._build_annealer(packet)
            batched, trajs = anneal_replicas_batched(
                kernel, problem, annealer, _prepped_run_rngs(problem, seed, n_replicas)
            )
            scalar, _ = anneal_replicas_scalar(
                kernel, problem, annealer, _prepped_run_rngs(problem, seed, n_replicas)
            )
            assert [_result_key(r) for r in batched] == [_result_key(r) for r in scalar]
            # One (temperature, cost) sample per executed temperature step.
            assert [len(t) for t in trajs] == [r.n_iterations for r in batched]

    def test_batched_outcome_deterministic(self, hypercube8):
        packet = _make_packet(14, 5, 1)
        first = PacketAnnealer(SAConfig(seed=0, replicas=6)).anneal(
            packet, hypercube8, rng=11
        )
        second = PacketAnnealer(SAConfig(seed=0, replicas=6)).anneal(
            packet, hypercube8, rng=11
        )
        assert first.assignment == second.assignment
        assert first.best_replica == second.best_replica
        assert first.best_cost == second.best_cost
        assert [s.best_cost for s in first.replica_stats] == [
            s.best_cost for s in second.replica_stats
        ]

    def test_replica_stats_shape_and_winner(self, hypercube8):
        packet = _make_packet(12, 4, 2)
        outcome = PacketAnnealer(SAConfig(seed=0, replicas=5)).anneal(
            packet, hypercube8, rng=3
        )
        stats = outcome.replica_stats
        assert len(stats) == 5
        assert [s.replica for s in stats] == list(range(5))
        costs = [s.best_cost for s in stats]
        assert outcome.best_replica == best_replica_index(costs)
        assert outcome.best_cost == costs[outcome.best_replica]
        assert outcome.best_cost == min(costs)
        # Totals across replicas; the winner's temperature count.
        assert outcome.n_proposals == sum(s.n_proposals for s in stats)
        assert outcome.n_accepted == sum(s.n_accepted for s in stats)
        winner = stats[outcome.best_replica]
        assert outcome.n_temperature_steps == winner.n_temperature_steps
        assert len(winner.temperature_trajectory) == winner.n_temperature_steps
        # The walk cools monotonically; every sample carries a temperature.
        temps = [t for t, _ in winner.temperature_trajectory]
        assert temps == sorted(temps, reverse=True)
        summary = summarize_replicas(stats)
        assert summary["min_best_cost"] == outcome.best_cost
        assert summary["n_replicas"] == 5.0

    def test_multi_start_never_worse_than_single_chain(self, hypercube8):
        """Replica 0's chain is one of the B chains, so min over replicas can
        only improve on... a *different* stream than the single chain — so
        compare against the scalar replicas instead: the winner must achieve
        the minimum over its own replica set."""
        packet = _make_packet(16, 6, 4)
        outcome = PacketAnnealer(SAConfig(seed=0, replicas=7)).anneal(
            packet, hypercube8, rng=9
        )
        assert outcome.best_cost == min(s.best_cost for s in outcome.replica_stats)

    def test_reference_path_replicas_match_compiled_winner_selection(self, hypercube8):
        """compiled=False with replicas runs scalar chains per child; the
        per-replica best costs (and hence the winner) must match the compiled
        batched run on the same packet rng."""
        packet = _make_packet(9, 3, 5)
        fast = PacketAnnealer(SAConfig(seed=0, replicas=4)).anneal(
            packet, hypercube8, rng=21
        )
        slow = PacketAnnealer(SAConfig(seed=0, replicas=4, compiled=False)).anneal(
            packet, hypercube8, rng=21
        )
        assert fast.assignment == slow.assignment
        assert fast.best_replica == slow.best_replica
        assert [s.best_cost for s in fast.replica_stats] == [
            s.best_cost for s in slow.replica_stats
        ]

    def test_best_replica_index_tie_breaks_low(self):
        assert best_replica_index([2.0, 1.0, 1.0, 3.0]) == 1
        assert best_replica_index([5.0]) == 0
        with pytest.raises(ValueError):
            best_replica_index([])

    def test_summarize_replicas_single(self):
        stats = [ReplicaStats(0, 1.5, 2.0, 1.5, 10, 5, 3)]
        summary = summarize_replicas(stats)
        assert summary["std_best_cost"] == 0.0
        assert summary["spread"] == 0.0


# --------------------------------------------------------------------------- #
# compile_fast_packet: scenario-gathered kernels == cost-function kernels
# --------------------------------------------------------------------------- #


def _fast_packets_of_run(graph, machine, comm_model):
    """Capture every FastPacket the fast engine hands to a policy."""
    captured = []

    class Capture(HLFScheduler):
        def fast_assign(self, packet):
            captured.append(
                compile_fast_packet(packet)
                + (PacketKernel(
                    AnnealingPacket.from_context(_ctx_of(packet)),
                    machine,
                    comm_model=comm_model,
                ),)
            )
            return super().fast_assign(packet)

    def _ctx_of(packet):
        sc = packet.scenario
        levels = {t: sc.levels_list[sc.index_of[t]] for t in sc.task_ids}
        placed = {
            sc.task_ids[i]: int(p)
            for i, p in enumerate(packet.assigned_proc)
            if p >= 0
        }
        return PacketContext(
            time=packet.time,
            ready_tasks=[sc.task_ids[i] for i in packet.ready],
            idle_processors=list(packet.idle),
            graph=graph,
            machine=machine,
            levels=levels,
            task_processor=placed,
            comm_model=comm_model,
        )

    simulate(graph, machine, Capture(seed=0), comm_model=comm_model,
             record_trace=False, fast=True)
    return captured


@pytest.mark.parametrize("machine_factory,comm_off", [
    (lambda: Machine.hypercube(3), False),
    (lambda: Machine.hypercube(3), True),
    (lambda: Machine.ring(9), False),
    (lambda: _hetero_machine(3), False),
])
def test_compile_fast_packet_tables_bit_identical(machine_factory, comm_off):
    machine = machine_factory()
    comm_model = ZeroCommModel() if comm_off else LinearCommModel()
    graph = layered_random(n_layers=4, width=6, edge_probability=0.5,
                           mean_duration=15.0, mean_comm=7.0, seed=2)
    captured = _fast_packets_of_run(graph, machine, comm_model)
    assert captured, "no epochs captured"
    for apacket, fast_kernel, ref_kernel in captured:
        assert fast_kernel.comm_rows == ref_kernel.comm_rows
        assert fast_kernel.balance_rows == ref_kernel.balance_rows
        assert fast_kernel.levels == ref_kernel.levels
        assert fast_kernel.balance_range == ref_kernel.balance_range
        assert fast_kernel.comm_range == ref_kernel.comm_range
        assert fast_kernel.comm_enabled == ref_kernel.comm_enabled


# --------------------------------------------------------------------------- #
# SA fast path end-to-end + the replicas= knob
# --------------------------------------------------------------------------- #


class _NoFastPolicy(SchedulingPolicy):
    name = "NoFast"

    def assign(self, ctx):
        if ctx.n_ready == 0 or ctx.n_idle == 0:
            return {}
        order = sorted(ctx.ready_tasks, key=lambda t: (-ctx.levels[t], str(t)))
        return dict(zip(order, ctx.idle_processors))


class TestSAFastPath:
    def test_sa_runs_kernelized_zero_fallbacks(self, hypercube8):
        graph = random_dag(30, edge_probability=0.2, seed=1)
        result = simulate(graph, hypercube8,
                          SAScheduler(SAConfig.paper_defaults(seed=1)),
                          record_trace=False, fast=True)
        assert result.n_fallback_epochs == 0

    def test_policy_without_fast_path_counts_fallbacks(self, hypercube8):
        graph = random_dag(30, edge_probability=0.2, seed=1)
        result = simulate(graph, hypercube8, _NoFastPolicy(),
                          record_trace=False, fast=True)
        assert result.n_fallback_epochs == result.n_packets > 0

    def test_sa_reference_config_declines_fast_path(self, hypercube8):
        """compiled=False must keep the materialized-context fallback (and
        still match the object engine bit for bit)."""
        graph = random_dag(24, edge_probability=0.2, seed=2)
        fast = simulate(graph, hypercube8,
                        SAScheduler(SAConfig(seed=1, compiled=False)),
                        record_trace=False, fast=True)
        slow = simulate(graph, hypercube8,
                        SAScheduler(SAConfig(seed=1, compiled=False)),
                        record_trace=False, fast=False)
        assert fast.n_fallback_epochs == fast.n_packets > 0
        assert fast.fingerprint() == slow.fingerprint()

    def test_sa_fast_assign_keeps_scheduler_stats(self, hypercube8):
        graph = random_dag(25, edge_probability=0.2, seed=3)
        fast_policy = SAScheduler(SAConfig.paper_defaults(seed=2))
        slow_policy = SAScheduler(SAConfig.paper_defaults(seed=2))
        fast = simulate(graph, hypercube8, fast_policy, record_trace=False, fast=True)
        slow = simulate(graph, hypercube8, slow_policy, record_trace=False, fast=False)
        assert fast.fingerprint() == slow.fingerprint()
        assert fast_policy.n_packets == slow_policy.n_packets
        assert fast_policy.packet_stats == slow_policy.packet_stats

    @pytest.mark.parametrize("fast", [False, True])
    def test_simulate_replicas_knob(self, hypercube8, fast):
        graph = random_dag(20, edge_probability=0.2, seed=4)
        single = simulate(graph, hypercube8,
                          SAScheduler(SAConfig.paper_defaults(seed=0)),
                          record_trace=False, fast=fast)
        multi = simulate(graph, hypercube8,
                         SAScheduler(SAConfig.paper_defaults(seed=0)),
                         record_trace=False, fast=fast, replicas=4)
        again = simulate(graph, hypercube8,
                         SAScheduler(SAConfig.paper_defaults(seed=0)),
                         record_trace=False, fast=fast, replicas=4)
        assert multi.fingerprint() == again.fingerprint()  # deterministic
        assert multi.makespan > 0
        assert single.makespan > 0

    def test_replicas_identical_across_engines(self, hypercube8):
        graph = random_dag(20, edge_probability=0.2, seed=5)
        fast = simulate(graph, hypercube8,
                        SAScheduler(SAConfig.paper_defaults(seed=0)),
                        record_trace=False, fast=True, replicas=3)
        slow = simulate(graph, hypercube8,
                        SAScheduler(SAConfig.paper_defaults(seed=0)),
                        record_trace=False, fast=False, replicas=3)
        assert fast.fingerprint() == slow.fingerprint()

    def test_replicas_rejected_for_policies_without_hook(self, hypercube8, diamond_graph):
        with pytest.raises(SimulationError, match="with_replicas"):
            simulate(diamond_graph, hypercube8, HLFScheduler(seed=0), replicas=2)
        with pytest.raises(SimulationError, match="replicas"):
            simulate(diamond_graph, hypercube8,
                     SAScheduler(SAConfig.paper_defaults(seed=0)), replicas=0)

    def test_with_replicas_leaves_original_untouched(self):
        base = SAScheduler(SAConfig.paper_defaults(seed=0))
        multi = base.with_replicas(5)
        assert base.config.replicas == 1
        assert multi.config.replicas == 5
        assert multi is not base


class TestConfigValidation:
    def test_walk_choices(self):
        SAConfig(walk="kernel")
        with pytest.raises(ConfigurationError, match="walk"):
            SAConfig(walk="turbo")

    def test_replicas_positive(self):
        SAConfig(replicas=3)
        with pytest.raises(ConfigurationError, match="replicas"):
            SAConfig(replicas=0)

    def test_with_replicas_copy(self):
        cfg = SAConfig(seed=0)
        assert cfg.with_replicas(4).replicas == 4
        assert cfg.replicas == 1


class TestSplit:
    def test_split_matches_spawn_semantics(self):
        a = np.random.default_rng(42)
        b = np.random.default_rng(42)
        from repro.utils.rng import spawn_rng

        xs = [r.random() for r in split(a, 3)]
        ys = [r.random() for r in spawn_rng(b, 3)]
        assert xs == ys

    def test_split_validates(self):
        with pytest.raises(ValueError):
            split(np.random.default_rng(0), 0)
