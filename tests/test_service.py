"""Scheduling service: protocol taxonomy, routing, coalescing, fault tolerance.

The service's contract has three legs, each tested here:

* **bit-identity** — responses must equal direct
  :func:`~repro.experiments.sweep.run_scenario` rows field for field,
  including placement fingerprints, whether a job runs solo or coalesced
  into a batched lane group;
* **structured errors** — malformed JSON, unknown registry names,
  oversized payloads and exhausted retries come back as taxonomy-typed
  error responses (:mod:`repro.exceptions`) without killing the server or
  disturbing other clients;
* **self-accounting** — the ``stats`` op's coalescing, affinity and
  compile-cache counters must reflect what actually happened, because the
  benchmark gate reads them as evidence.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.exceptions import ConfigurationError, ProtocolError
from repro.experiments import sweep
from repro.machine import io as machine_io
from repro.service import (
    ServiceClient,
    ServiceConfig,
    affinity_key,
    coalesce_key,
    job_to_spec,
    lane_eligible,
    serve_in_thread,
)
from repro.service.client import ServiceJobError
from repro.service.protocol import RequestLimits, decode_line
from repro.taskgraph import io as taskgraph_io
from repro.utils.chaos import ChaosConfig

SCIENCE = (
    "policy", "machine", "family", "graph_seed", "policy_seed",
    "with_comm", "fidelity", "makespan", "speedup", "n_tasks", "n_packets",
)


def _job(**overrides) -> dict:
    job = {
        "policy": "HLF",
        "machine": "hypercube8",
        "family": "grid",
        "graph_seed": 0,
        "policy_seed": 0,
        "with_comm": True,
        "fidelity": "latency",
    }
    job.update(overrides)
    return job


def _direct(job: dict) -> dict:
    spec = dict(job, fast=job.get("fast"), replicas=job.get("replicas"))
    if spec.pop("fingerprint", False):
        spec["_fingerprint"] = True
    return sweep.run_scenario(spec)


# --------------------------------------------------------------------------- #
# Protocol layer (no server needed)
# --------------------------------------------------------------------------- #

class TestProtocol:
    def test_rejects_invalid_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_line(b"{nope\n")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_line(b"[1, 2]\n")

    def test_rejects_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            decode_line(b'{"op": "frobnicate"}\n')

    def test_rejects_invalid_utf8(self):
        with pytest.raises(ProtocolError, match="UTF-8"):
            decode_line(b'\xff\xfe{"op": "ping"}\n')

    def test_unknown_policy_is_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown policy"):
            job_to_spec(_job(policy="SSA"), known_policies=("HLF", "SA"))

    def test_unknown_machine_is_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown machine"):
            job_to_spec(_job(machine="torus99"), known_machines=("hypercube8",))

    def test_unknown_family_is_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown graph family"):
            job_to_spec(_job(family="nonesuch"), known_families=("grid",))

    def test_oversized_graph_payload_rejected(self):
        graph = sweep.GRAPH_FAMILIES["grid"](0)
        payload = taskgraph_io.to_dict(graph)
        job = _job(graph_payload=payload)
        del job["family"]
        limits = RequestLimits(max_tasks=graph.n_tasks - 1)
        with pytest.raises(ProtocolError, match="exceeding the server's limit"):
            job_to_spec(job, limits)

    def test_oversized_replicas_rejected(self):
        with pytest.raises(ProtocolError, match="replicas"):
            job_to_spec(_job(replicas=10_000), RequestLimits(max_replicas=64))

    def test_unknown_job_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown job field"):
            job_to_spec(_job(colour="red"))

    def test_family_and_payload_are_exclusive(self):
        graph = sweep.GRAPH_FAMILIES["grid"](0)
        job = _job(graph_payload=taskgraph_io.to_dict(graph))
        with pytest.raises(ProtocolError, match="not both"):
            job_to_spec(job)

    def test_payload_jobs_are_content_addressed(self):
        graph = sweep.GRAPH_FAMILIES["grid"](0)
        payload = taskgraph_io.to_dict(graph)
        job = _job(graph_payload=payload)
        del job["family"]
        spec_a = job_to_spec(dict(job))
        spec_b = job_to_spec(dict(job))
        assert spec_a["family"] == spec_b["family"]
        assert spec_a["family"].startswith("payload:graph:")

    def test_fingerprint_flag_becomes_volatile_key(self):
        spec = job_to_spec(_job(fingerprint=True))
        assert spec["_fingerprint"] is True
        from repro.experiments.supervisor import spec_key

        assert spec_key(spec) == spec_key(job_to_spec(_job()))

    def test_portfolio_field_accepted(self):
        spec = job_to_spec(_job(policy="SA", portfolio=8))
        assert spec["portfolio"] == 8

    @pytest.mark.parametrize("bad", [True, 1, 0, -2, "8", 2.0])
    def test_invalid_portfolio_rejected(self, bad):
        with pytest.raises(ProtocolError, match="portfolio"):
            job_to_spec(_job(policy="SA", portfolio=bad))

    def test_portfolio_and_replicas_are_exclusive(self):
        with pytest.raises(ProtocolError, match="mutually exclusive"):
            job_to_spec(_job(policy="SA", portfolio=4, replicas=4))

    def test_oversized_portfolio_rejected(self):
        with pytest.raises(ProtocolError, match="limit"):
            job_to_spec(
                _job(policy="SA", portfolio=10_000),
                RequestLimits(max_replicas=64),
            )


class TestRouting:
    def test_affinity_ignores_policy_and_seed(self):
        a = affinity_key({"family": "grid", "graph_seed": 1, "machine": "ring9",
                          "policy": "SA", "policy_seed": 3})
        b = affinity_key({"family": "grid", "graph_seed": 1, "machine": "ring9",
                          "policy": "HLF", "policy_seed": 9})
        assert a == b

    def test_affinity_separates_graphs_and_machines(self):
        base = {"family": "grid", "graph_seed": 1, "machine": "ring9"}
        assert affinity_key(base) != affinity_key(dict(base, graph_seed=2))
        assert affinity_key(base) != affinity_key(dict(base, machine="bus8"))

    def test_lane_eligibility(self):
        assert lane_eligible({"replicas": None, "fast": None})
        assert lane_eligible({"replicas": None, "fast": True})
        assert not lane_eligible({"replicas": 8, "fast": None})
        assert not lane_eligible({"replicas": None, "fast": False})
        # Portfolio jobs drive heterogeneous lanes of their own; they can
        # never ride a shared lane group.
        assert not lane_eligible(
            {"replicas": None, "portfolio": 4, "fast": None}
        )

    def test_coalesce_key_is_per_fidelity(self):
        assert coalesce_key({"fidelity": "latency"}) != coalesce_key(
            {"fidelity": "contention"}
        )


# --------------------------------------------------------------------------- #
# Live server
# --------------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def service():
    config = ServiceConfig(
        workers=2,
        batch=8,
        window_ms=5.0,
        limits=RequestLimits(max_tasks=500, max_line_bytes=256 * 1024),
    )
    with serve_in_thread(config) as (host, port):
        yield host, port


class TestService:
    def test_ping_and_stats(self, service):
        with ServiceClient(*service) as client:
            assert client.ping()
            stats = client.stats()
            assert stats["workers"]["n"] == 2
            assert stats["protocol_version"] == 1

    def test_single_job_bit_identical(self, service):
        job = _job(fingerprint=True)
        with ServiceClient(*service) as client:
            row = client.simulate(job)
        direct = _direct(job)
        for key in SCIENCE:
            assert row[key] == direct[key], key
        assert row["fingerprint"] == direct["fingerprint"]

    def test_coalesced_burst_bit_identical_including_sa(self, service):
        jobs = [
            _job(policy=policy, policy_seed=seed, graph_seed=seed % 2,
                 fingerprint=True)
            for policy in ("HLF", "ETF", "SA")
            for seed in range(4)
        ]
        with ServiceClient(*service) as client:
            before = client.stats()
            rows = client.simulate_many(jobs)
            after = client.stats()
        for job, row in zip(jobs, rows):
            direct = _direct(job)
            for key in SCIENCE:
                assert row[key] == direct[key], (job, key)
            assert row["fingerprint"] == direct["fingerprint"]
        # SA rode the batched lanes with everyone else.
        assert any(
            row["engine_used"] == "batched"
            for job, row in zip(jobs, rows)
            if job["policy"] == "SA"
        )
        assert (
            after["coalescing"]["coalesced_jobs"]
            > before["coalescing"]["coalesced_jobs"]
        )
        assert after["compile_cache"]["hits"] > before["compile_cache"]["hits"]

    def test_affinity_hit_rate_climbs_when_cache_warm(self, service):
        jobs = [_job(policy_seed=seed) for seed in range(10)]
        with ServiceClient(*service) as client:
            client.simulate_many(jobs)  # warm the shard
            before = client.stats()
            client.simulate_many(jobs)
            after = client.stats()
        new_hits = after["affinity"]["hits"] - before["affinity"]["hits"]
        new_misses = after["affinity"]["misses"] - before["affinity"]["misses"]
        assert new_hits == len(jobs) and new_misses == 0

    def test_replica_jobs_run_solo(self, service):
        job = _job(policy="SA", replicas=3)
        with ServiceClient(*service) as client:
            row = client.simulate(job)
        direct = _direct(job)
        assert row["makespan"] == direct["makespan"]
        assert row["engine_used"] != "batched"

    def test_payload_job_matches_registry_job(self, service):
        graph = sweep.GRAPH_FAMILIES["grid"](0)
        machine = sweep.MACHINE_BUILDERS["hypercube8"]()
        payload_job = _job(
            graph_payload=taskgraph_io.to_dict(graph),
            machine_payload=machine_io.to_dict(machine),
        )
        del payload_job["family"]
        del payload_job["machine"]
        with ServiceClient(*service) as client:
            by_payload = client.simulate(payload_job)
            by_name = client.simulate(_job())
        assert by_payload["makespan"] == by_name["makespan"]
        assert by_payload["n_packets"] == by_name["n_packets"]

    def test_contention_fidelity_jobs(self, service):
        job = _job(fidelity="contention")
        with ServiceClient(*service) as client:
            row = client.simulate(job)
        assert row["makespan"] == _direct(job)["makespan"]

    def test_portfolio_jobs_run_solo(self, service):
        job = _job(policy="SA", portfolio=2)
        with ServiceClient(*service) as client:
            row = client.simulate(job)
        direct = _direct(job)
        assert row["makespan"] == direct["makespan"]
        assert row["portfolio"] == 2
        assert row["engine_used"] != "batched"


class TestAsyncJobs:
    def test_submit_poll_roundtrip_is_bit_identical(self, service):
        job = _job(policy="SA", portfolio=2, graph_seed=1)
        with ServiceClient(*service) as client:
            before = client.stats()
            job_id = client.submit(job)
            row = client.wait(job_id, timeout=120.0)
            record = client.poll(job_id)
            after = client.stats()
        assert record["state"] == "done"
        assert record["job_id"] == job_id
        assert record["error"] is None
        assert record["row"]["makespan"] == row["makespan"]
        direct = _direct(job)
        for key in SCIENCE:
            assert row[key] == direct[key], key
        assert row["portfolio"] == 2
        assert after["async"]["submitted"] == before["async"]["submitted"] + 1
        assert after["async"]["polls"] > before["async"]["polls"]

    def test_portfolio_job_streams_anytime_progress(self, service):
        job = _job(policy="SA", portfolio=2)
        with ServiceClient(*service) as client:
            before = client.stats()
            job_id = client.submit(job)
            client.wait(job_id, timeout=120.0)
            record = client.poll(job_id)
            after = client.stats()
        # Worker progress messages arrive on the reply pipe before the final
        # row, so a finished job's record holds the last anytime snapshot.
        snapshot = record["best_so_far"]
        assert snapshot is not None
        assert snapshot["n_packets"] == record["row"]["n_packets"]
        assert snapshot["last_packet"]["n_lanes"] == 2
        assert (
            after["async"]["progress_updates"]
            >= before["async"]["progress_updates"] + snapshot["n_packets"]
        )

    def test_poll_unknown_job_id(self, service):
        with ServiceClient(*service) as client:
            with pytest.raises(ServiceJobError) as info:
                client.poll("job-999999")
        assert info.value.error_type == "ProtocolError"


class TestServiceErrors:
    def test_malformed_json_line_gets_protocol_error(self, service):
        host, port = service
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"{this is not json\n")
            response = json.loads(sock.makefile("rb").readline())
        assert response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"

    def test_server_survives_malformed_line(self, service):
        host, port = service
        with socket.create_connection((host, port), timeout=10) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b'[1, 2, 3]\n')
            assert json.loads(reader.readline())["ok"] is False
            # Same connection keeps working afterwards.
            sock.sendall(
                json.dumps({"id": 7, "op": "ping"}).encode() + b"\n"
            )
            response = json.loads(reader.readline())
        assert response == {"id": 7, "ok": True, "pong": True}

    def test_unknown_policy_response(self, service):
        with ServiceClient(*service) as client:
            with pytest.raises(ServiceJobError) as info:
                client.simulate(_job(policy="SSA"))
        assert info.value.error_type == "ConfigurationError"

    def test_unknown_family_response(self, service):
        with ServiceClient(*service) as client:
            with pytest.raises(ServiceJobError) as info:
                client.simulate(_job(family="nonesuch"))
        assert info.value.error_type == "ConfigurationError"

    def test_oversized_graph_response(self, service):
        graph = sweep.GRAPH_FAMILIES["dag200"](0)  # 200 > the test limit? no:
        # the module fixture caps payloads at 500 tasks; build one above it.
        big = sweep.GRAPH_FAMILIES["dag200"](0)
        payload = taskgraph_io.to_dict(big)
        payload["tasks"] = payload["tasks"] * 4  # 800 > 500, shape-only check
        job = _job(graph_payload=payload)
        del job["family"]
        with ServiceClient(*service) as client:
            with pytest.raises(ServiceJobError) as info:
                client.simulate(job)
        assert info.value.error_type == "ProtocolError"
        assert "limit" in str(info.value)

    def test_invalid_machine_payload_keeps_taxonomy(self, service):
        job = _job(machine_payload={"n_processors": 4, "links": [[0, 99]]})
        del job["machine"]
        with ServiceClient(*service) as client:
            with pytest.raises(ServiceJobError) as info:
                client.simulate(job)
        assert info.value.error_type == "MachineError"

    def test_oversized_line_closes_connection_with_error(self, service):
        host, port = service
        with socket.create_connection((host, port), timeout=10) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b'{"op": "ping", "pad": "' + b"x" * 300_000 + b'"}\n')
            response = json.loads(reader.readline())
            assert response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"
            assert reader.readline() == b""  # server hung up

    def test_errors_do_not_break_subsequent_jobs(self, service):
        with ServiceClient(*service) as client:
            responses = client.simulate_many(
                [_job(), _job(policy="SSA"), _job(policy="ETF")],
                raise_on_error=False,
            )
        assert responses[0]["ok"] and responses[2]["ok"]
        assert not responses[1]["ok"]
        assert responses[1]["error"]["type"] == "ConfigurationError"


class TestFaultTolerance:
    def test_worker_death_is_retried_transparently(self):
        # batch=1 keeps dispatch keys equal to the (deterministic) spec
        # hashes, so the seeded chaos plan is reproducible: pick jobs whose
        # worker dies on attempt 1 and survives attempt 2, plus healthy ones.
        chaos = ChaosConfig(rate=0.5, kinds=("die",), seed=11)
        from repro.experiments.supervisor import spec_key

        dying, healthy = [], []
        for seed in range(60):
            job = _job(policy_seed=seed)
            key = spec_key(job_to_spec(job))
            first, second = chaos.decide(key, 1), chaos.decide(key, 2)
            if first == "die" and second is None and len(dying) < 3:
                dying.append(job)
            elif first is None and len(healthy) < 3:
                healthy.append(job)
        assert len(dying) == 3 and len(healthy) == 3

        config = ServiceConfig(
            workers=2, batch=1, window_ms=0.0, retries=3, chaos=chaos
        )
        jobs = healthy + dying
        with serve_in_thread(config) as (host, port):
            with ServiceClient(host, port, timeout=120.0) as client:
                rows = [client.simulate(job) for job in jobs]
                stats = client.stats()
        directs = [_direct(job) for job in jobs]
        for row, direct in zip(rows, directs):
            assert row["makespan"] == direct["makespan"]
        assert stats["workers"]["deaths"] == len(dying)
        assert stats["workers"]["respawns"] == len(dying)
        assert stats["jobs"]["retried"] == len(dying)
        assert stats["jobs"]["errors"] == 0

    def test_exhausted_retries_fail_with_worker_death(self):
        config = ServiceConfig(
            workers=1,
            batch=2,
            window_ms=1.0,
            retries=1,
            chaos=ChaosConfig(rate=1.0, kinds=("die",), seed=3),
        )
        with serve_in_thread(config) as (host, port):
            with ServiceClient(host, port, timeout=120.0) as client:
                responses = client.simulate_many(
                    [_job()], raise_on_error=False
                )
                # The server survives total chaos and still answers pings.
                assert client.ping()
        assert not responses[0]["ok"]
        assert responses[0]["error"]["type"] == "WorkerDeath"
        assert "gave up" in responses[0]["error"]["message"]

    def test_inline_mode_serves_without_workers(self):
        config = ServiceConfig(workers=0)
        job = _job(fingerprint=True)
        with serve_in_thread(config) as (host, port):
            with ServiceClient(host, port) as client:
                row = client.simulate(job)
                stats = client.stats()
        direct = _direct(job)
        assert row["makespan"] == direct["makespan"]
        assert row["fingerprint"] == direct["fingerprint"]
        assert stats["workers"]["n"] == 0
