"""Machine JSON serialization: round trips, fast paths, and error taxonomy.

:mod:`repro.machine.io` is how the scheduling service ships machines the
server has never seen; the contract is a **bit-identical** round trip —
the reloaded machine must produce the same distances, routes and link
costs, and homogeneous machines must come back on the unit fast paths
(``speeds`` / ``link_weights`` omitted from the payload entirely).
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import MachineError
from repro.machine import io as machine_io
from repro.machine.machine import Machine
from repro.machine.params import CommParams

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def machines(draw):
    """Paper-style machines, optionally with random speeds/link weights."""
    build = draw(
        st.sampled_from(
            [
                lambda **kw: Machine.ring(7, **kw),
                lambda **kw: Machine.hypercube(3, **kw),
                lambda **kw: Machine.mesh(2, 3, **kw),
                lambda **kw: Machine.fully_connected(4, **kw),
                lambda **kw: Machine.bus(5, **kw),
            ]
        )
    )
    if not draw(st.booleans()):
        return build()
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    topology = build().topology
    speeds = rng.uniform(0.5, 4.0, topology.n_processors).tolist()
    link_weights = {
        tuple(sorted(link)): float(rng.uniform(0.5, 3.0))
        for link in topology.links()
    }
    return build(speeds=speeds, link_weights=link_weights)


def _assert_equivalent(original: Machine, restored: Machine) -> None:
    assert restored.n_processors == original.n_processors
    assert restored.name == original.name
    assert np.array_equal(
        restored.topology.adjacency(), original.topology.adjacency()
    )
    assert np.array_equal(restored.speeds, original.speeds)
    assert np.array_equal(
        restored.distance_matrix(), original.distance_matrix()
    )
    assert np.array_equal(
        restored.weighted_distance_matrix(), original.weighted_distance_matrix()
    )
    for field in (
        "context_switch",
        "output_setup",
        "header_control",
        "bandwidth_bits_per_us",
        "bits_per_word",
    ):
        assert getattr(restored.params, field) == getattr(original.params, field)
    for i, j in original.topology.links():
        assert restored.link_weight(i, j) == original.link_weight(i, j)


class TestRoundTrip:
    @_SETTINGS
    @given(machine=machines())
    def test_dict_round_trip_is_exact(self, machine):
        payload = machine_io.to_dict(machine)
        # The payload must survive an actual JSON encode/decode cycle.
        restored = machine_io.from_dict(json.loads(json.dumps(payload)))
        _assert_equivalent(machine, restored)
        assert machine_io.to_dict(restored) == payload

    @_SETTINGS
    @given(machine=machines())
    def test_unit_fast_paths_survive(self, machine):
        restored = machine_io.from_dict(machine_io.to_dict(machine))
        assert restored.has_unit_speeds == machine.has_unit_speeds
        assert restored.has_unit_link_weights == machine.has_unit_link_weights

    def test_homogeneous_payload_omits_unit_vectors(self):
        payload = machine_io.to_dict(Machine.hypercube(3))
        assert "speeds" not in payload
        assert "link_weights" not in payload

    def test_file_round_trip(self, tmp_path):
        machine = Machine.ring(
            5, speeds=[1.0, 2.0, 1.0, 1.0, 0.5], link_weights={(0, 1): 2.0}
        )
        path = tmp_path / "machine.json"
        machine_io.save_json(machine, path)
        _assert_equivalent(machine, machine_io.load_json(path))

    def test_custom_params_round_trip(self):
        machine = Machine.ring(
            4, params=CommParams(context_switch=10.0, bits_per_word=32.0)
        )
        restored = machine_io.from_dict(machine_io.to_dict(machine))
        assert restored.params.context_switch == 10.0
        assert restored.params.bits_per_word == 32.0


class TestErrorTaxonomy:
    def _valid(self) -> dict:
        return machine_io.to_dict(Machine.ring(4))

    def test_non_dict_payload(self):
        with pytest.raises(MachineError, match="must be a dict"):
            machine_io.from_dict([1, 2, 3])

    def test_missing_n_processors(self):
        payload = self._valid()
        del payload["n_processors"]
        with pytest.raises(MachineError, match="n_processors"):
            machine_io.from_dict(payload)

    def test_missing_links(self):
        payload = self._valid()
        del payload["links"]
        with pytest.raises(MachineError, match="links"):
            machine_io.from_dict(payload)

    def test_malformed_link_entry(self):
        payload = self._valid()
        payload["links"][0] = ["a", None]
        with pytest.raises(MachineError, match="malformed link"):
            machine_io.from_dict(payload)

    def test_out_of_range_link(self):
        payload = self._valid()
        payload["links"].append([0, 99])
        with pytest.raises(MachineError, match="out of range"):
            machine_io.from_dict(payload)

    def test_self_link_rejected(self):
        payload = self._valid()
        payload["links"].append([1, 1])
        with pytest.raises(MachineError, match="out of range"):
            machine_io.from_dict(payload)

    def test_unknown_params_field(self):
        payload = self._valid()
        payload["params"]["warp_factor"] = 9.0
        with pytest.raises(MachineError, match="warp_factor"):
            machine_io.from_dict(payload)

    def test_malformed_link_weights(self):
        payload = self._valid()
        payload["link_weights"] = [[0, 1]]  # missing the weight
        with pytest.raises(MachineError, match="link_weights"):
            machine_io.from_dict(payload)
