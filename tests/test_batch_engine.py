"""The batched lane engine: lane-wise bit-identity with the solo fast engine.

The batch engine's contract is that every lane of a lock-step run is
**bit-identical** to a solo :func:`run_compiled` run of the same cell; these
tests pin it four ways:

* differentially under hypothesis — batches of 2-5 mixed lanes (random
  graphs and workload-zoo families × homogeneous and heterogeneous machines
  × every kernelized policy × comm on/off), raw fingerprint equality per
  lane at both fidelities;
* structurally — lane-count dispatch (B ∈ {1, 3, 8}), ragged lane shapes,
  mixed-policy batches, SA lanes, and the per-lane materialized-context
  fallback (``n_fallback_epochs`` parity with the solo engine);
* defensively — the batched kernel validator rejects malformed
  ``batch_assign`` triples with :class:`SchedulingError`;
* at the API surface — :func:`simulate_batch` cell ordering, the bad-fidelity
  guard and the unfoldable-comm-model solo fallback.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.comm.model import CommunicationModel, LinearCommModel, ZeroCommModel
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.exceptions import SchedulingError, SimulationError
from repro.machine.machine import Machine
from repro.schedulers.base import SchedulingPolicy
from repro.schedulers.etf import ETFScheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.hlf import HLFScheduler
from repro.schedulers.lpt import LPTScheduler
from repro.schedulers.random_policy import RandomScheduler
from repro.sim.batch_engine import run_batch, simulate_batch
from repro.sim.compile import compile_scenario
from repro.sim.engine import simulate
from repro.sim.fast_engine import run_compiled, run_lanes
from repro.taskgraph.families import FAMILIES
from repro.taskgraph.generators import layered_random, random_dag
from repro.taskgraph.graph import TaskGraph

# --------------------------------------------------------------------------- #
# Shared builders
# --------------------------------------------------------------------------- #

_POLICY_FACTORIES = {
    "ETF": lambda seed: ETFScheduler(),
    "HLF": lambda seed: HLFScheduler(seed=seed),
    "HLF/min-comm": lambda seed: HLFScheduler(placement="min_comm"),
    "HLF/fastest": lambda seed: HLFScheduler(placement="fastest"),
    "HLF/index": lambda seed: HLFScheduler(placement="index"),
    "LPT": lambda seed: LPTScheduler(),
    "FIFO": lambda seed: FIFOScheduler(),
    "Random": lambda seed: RandomScheduler(seed=seed),
}

_MACHINES = [
    Machine.hypercube(2),
    Machine.hypercube(3),
    Machine.ring(5),
    Machine.bus(6),
    Machine.mesh(2, 3),
    Machine.ring(
        7,
        speeds=[1.0, 2.0, 1.0, 3.0, 1.0, 0.5, 1.0],
        link_weights={(0, 1): 2.0, (3, 4): 0.5},
    ),
    Machine.hypercube(3, speeds=[1.0 + 0.25 * i for i in range(8)]),
]


def _compile_cell(graph, machine, comm_model):
    graph.validate()
    return compile_scenario(graph, machine, comm_model, levels=graph.levels())


def _solo_and_batched(cells, fidelity="latency"):
    """Run *cells* = [(scenario, policy factory)] both ways; return results."""
    solo = []
    for scenario, factory in cells:
        policy = factory()
        policy.reset()
        solo.append(run_compiled(scenario, policy, fidelity=fidelity))
    lanes = []
    for scenario, factory in cells:
        policy = factory()
        policy.reset()
        lanes.append((scenario, policy))
    return solo, run_batch(lanes, fidelity=fidelity)


def _assert_lanes_identical(solo, batched):
    assert len(solo) == len(batched)
    for lane, (a, b) in enumerate(zip(solo, batched)):
        assert a.fingerprint() == b.fingerprint(), f"lane {lane} diverged"
        assert a.task_processor == b.task_processor
        assert a.n_fallback_epochs == b.n_fallback_epochs


# --------------------------------------------------------------------------- #
# Hypothesis differential: batches of mixed lanes vs their solo runs
# --------------------------------------------------------------------------- #

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def _lane_cells(draw):
    """2-5 heterogeneous (graph, machine, policy factory) lane cells.

    Graphs mix the random generators with workload-zoo families (drawn near
    the lower end of each family's parameter grid to keep examples fast).
    """
    n = draw(st.integers(2, 5))
    cells = []
    for _ in range(n):
        kind = draw(st.sampled_from(["layered", "dag", "sparse", "family"]))
        seed = draw(st.integers(0, 10_000))
        if kind == "layered":
            graph = layered_random(
                n_layers=draw(st.integers(1, 4)),
                width=draw(st.integers(1, 5)),
                edge_probability=0.4,
                mean_comm=5.0,
                seed=seed,
            )
        elif kind == "dag":
            graph = random_dag(draw(st.integers(1, 25)), edge_probability=0.25, seed=seed)
        elif kind == "sparse":
            graph = random_dag(draw(st.integers(1, 35)), edge_probability=0.05, seed=seed)
        else:
            spec = FAMILIES[draw(st.sampled_from(sorted(FAMILIES)))]
            params = {
                name: draw(st.integers(lo, min(hi, lo + 8)))
                for name, (lo, hi) in sorted(spec.param_grid.items())
            }
            graph = spec.build(seed=seed, **params)
        machine = draw(st.sampled_from(_MACHINES))
        policy_name = draw(st.sampled_from(sorted(_POLICY_FACTORIES)))
        policy_seed = draw(st.integers(0, 100))
        comm_off = draw(st.booleans())
        cells.append((graph, machine, policy_name, policy_seed, comm_off))
    return cells


class TestDifferentialEquivalence:
    @given(cells=_lane_cells(), fidelity=st.sampled_from(["latency", "contention"]))
    @_SETTINGS
    def test_every_lane_matches_its_solo_run(self, cells, fidelity):
        compiled = []
        for graph, machine, policy_name, policy_seed, comm_off in cells:
            comm_model = ZeroCommModel() if comm_off else LinearCommModel()
            scenario = _compile_cell(graph, machine, comm_model)
            factory = _POLICY_FACTORIES[policy_name]
            compiled.append((scenario, lambda f=factory, s=policy_seed: f(s)))
        solo, batched = _solo_and_batched(compiled, fidelity=fidelity)
        _assert_lanes_identical(solo, batched)


# --------------------------------------------------------------------------- #
# Fixed structural cases
# --------------------------------------------------------------------------- #


def _dag_cells(n, policy_factory):
    """n lanes of varied random DAGs over alternating machines."""
    machines = [Machine.hypercube(3), Machine.ring(9), Machine.mesh(2, 3)]
    comm = LinearCommModel()
    cells = []
    for i in range(n):
        graph = random_dag(
            10 + 7 * i, edge_probability=0.15, mean_duration=12.0,
            mean_comm=6.0, seed=i,
        )
        scenario = _compile_cell(graph, machines[i % len(machines)], comm)
        cells.append((scenario, policy_factory))
    return cells


class TestLaneStructure:
    @pytest.mark.parametrize("n_lanes", [1, 3, 8])
    def test_run_lanes_matches_solo_at_any_width(self, n_lanes):
        """B ∈ {1, 3, 8} through the dispatcher, incl. the B=1 solo path."""
        cells = _dag_cells(n_lanes, lambda: HLFScheduler(seed=0))
        solo = []
        for scenario, factory in cells:
            policy = factory()
            policy.reset()
            solo.append(run_compiled(scenario, policy))
        lanes = []
        for scenario, factory in cells:
            policy = factory()
            policy.reset()
            lanes.append((scenario, policy))
        _assert_lanes_identical(solo, run_lanes(lanes))

    def test_ragged_lanes(self):
        """Wildly mismatched task and processor counts batch correctly."""
        comm = LinearCommModel()
        shapes = [
            (TaskGraph("single"), Machine.hypercube(2)),
            (random_dag(40, edge_probability=0.1, seed=7), Machine.mesh(4, 4)),
            (random_dag(3, edge_probability=0.5, seed=2), Machine.bus(2)),
            (layered_random(n_layers=5, width=6, edge_probability=0.4,
                            mean_comm=6.0, seed=4), Machine.ring(9)),
        ]
        shapes[0][0].add_task("only", 3.0)
        cells = [
            (_compile_cell(graph, machine, comm), lambda: ETFScheduler())
            for graph, machine in shapes
        ]
        solo, batched = _solo_and_batched(cells)
        _assert_lanes_identical(solo, batched)

    def test_empty_graph_lane(self):
        """A zero-task lane finishes immediately without disturbing others."""
        comm = LinearCommModel()
        cells = [
            (_compile_cell(TaskGraph("empty"), Machine.hypercube(2), comm),
             lambda: HLFScheduler(seed=0)),
            (_compile_cell(random_dag(12, edge_probability=0.2, seed=1),
                           Machine.ring(5), comm),
             lambda: HLFScheduler(seed=0)),
        ]
        solo, batched = _solo_and_batched(cells)
        _assert_lanes_identical(solo, batched)
        assert batched[0].makespan == 0.0

    def test_mixed_policies_in_one_batch(self):
        """Different kernel groups (and fallbacks) coexist in one run."""
        comm = LinearCommModel()
        graph = random_dag(25, edge_probability=0.15, mean_comm=5.0, seed=3)
        machine = Machine.hypercube(3)
        scenario = _compile_cell(graph, machine, comm)
        factories = [
            lambda: ETFScheduler(),
            lambda: HLFScheduler(seed=1),
            lambda: HLFScheduler(placement="min_comm"),
            lambda: LPTScheduler(),
            lambda: FIFOScheduler(),
            lambda: RandomScheduler(seed=5),
        ]
        cells = [(scenario, factory) for factory in factories]
        for fidelity in ("latency", "contention"):
            solo, batched = _solo_and_batched(cells, fidelity=fidelity)
            _assert_lanes_identical(solo, batched)

    def test_sa_lanes_match_solo(self):
        """SA rides per lane (plan precomputed at reset) yet stays identical."""
        cells = _dag_cells(
            3, lambda: SAScheduler(SAConfig.paper_defaults(seed=2))
        )
        solo, batched = _solo_and_batched(cells)
        _assert_lanes_identical(solo, batched)


# --------------------------------------------------------------------------- #
# Per-lane materialized-context fallback
# --------------------------------------------------------------------------- #


class _CtxOnlyPolicy(SchedulingPolicy):
    """A policy with no fast/batch kernel: first ready task to first idle."""

    name = "ctx-only"

    def assign(self, ctx):
        if not ctx.ready_tasks or not ctx.idle_processors:
            return {}
        return {ctx.ready_tasks[0]: ctx.idle_processors[0]}


class TestFallback:
    def test_ctx_only_policy_counts_fallback_epochs(self):
        cells = _dag_cells(3, lambda: _CtxOnlyPolicy())
        solo, batched = _solo_and_batched(cells)
        _assert_lanes_identical(solo, batched)
        for result in batched:
            assert result.n_fallback_epochs > 0

    def test_kernelized_policies_never_fall_back(self):
        cells = _dag_cells(3, lambda: HLFScheduler(seed=0))
        _, batched = _solo_and_batched(cells)
        for result in batched:
            assert result.n_fallback_epochs == 0


# --------------------------------------------------------------------------- #
# Batched kernel validation
# --------------------------------------------------------------------------- #


class _BrokenKernel(SchedulingPolicy):
    """A batch kernel returning malformed triples; *mode* picks the defect."""

    name = "broken"

    def __init__(self, mode: str) -> None:
        self.mode = mode

    def assign(self, ctx):  # pragma: no cover - kernel always intercepts
        return {}

    def batch_assign(self, epoch, policies):
        lane = int(epoch.lanes[0])
        lanes = np.array([lane, lane], dtype=np.intp)
        if self.mode == "task-dup":
            return lanes, np.array([0, 0]), np.array([0, 1])
        if self.mode == "proc-dup":
            return lanes, np.array([0, 1]), np.array([0, 0])
        # not-ready: task 1 has an unfinished predecessor at t=0.
        return lanes[:1], np.array([1]), np.array([0])


def _chain_graph():
    graph = TaskGraph("chain")
    graph.add_task("a", 2.0)
    graph.add_task("b", 1.0)
    graph.add_dependency("a", "b", comm=1.0)
    return graph


def _two_roots_graph():
    graph = TaskGraph("roots")
    graph.add_task("x", 2.0)
    graph.add_task("y", 3.0)
    return graph


class TestKernelValidation:
    @pytest.mark.parametrize("mode,match", [
        ("task-dup", "task assigned more than once"),
        ("proc-dup", "processor assigned more than one task"),
        ("not-ready", "is not ready"),
    ])
    def test_malformed_triples_rejected(self, mode, match):
        graph = _chain_graph() if mode == "not-ready" else _two_roots_graph()
        scenario = _compile_cell(graph, Machine.hypercube(2), LinearCommModel())
        lanes = [(scenario, _BrokenKernel(mode)), (scenario, _BrokenKernel(mode))]
        with pytest.raises(SchedulingError, match=match):
            run_batch(lanes)


# --------------------------------------------------------------------------- #
# simulate_batch API surface
# --------------------------------------------------------------------------- #


class _CustomComm(CommunicationModel):
    def cost(self, machine, weight, src_proc, dst_proc):
        return 1.0 if src_proc != dst_proc else 0.0


class TestSimulateBatch:
    def test_results_align_with_cells(self):
        graphs = [random_dag(8 + 6 * i, edge_probability=0.2, seed=i) for i in range(4)]
        machine = Machine.hypercube(3)
        cells = [(g, machine, HLFScheduler(seed=0)) for g in graphs]
        results = simulate_batch(cells)
        assert len(results) == 4
        for graph, result in zip(graphs, results):
            expected = simulate(
                graph, machine, HLFScheduler(seed=0),
                comm_model=LinearCommModel(), record_trace=False, fast=True,
            )
            assert result.fingerprint() == expected.fingerprint()

    def test_explicit_comm_model_and_fidelity(self):
        graph = random_dag(15, edge_probability=0.2, mean_comm=4.0, seed=9)
        machine = Machine.ring(5)
        cells = [
            (graph, machine, ETFScheduler(), ZeroCommModel()),
            (graph, machine, ETFScheduler(), LinearCommModel()),
        ]
        results = simulate_batch(cells, fidelity="contention")
        for i, comm_model in enumerate((ZeroCommModel(), LinearCommModel())):
            expected = simulate(
                graph, machine, ETFScheduler(), comm_model=comm_model,
                fidelity="contention", record_trace=False, fast=True,
            )
            assert results[i].fingerprint() == expected.fingerprint()

    def test_unfoldable_comm_model_falls_back_to_object_engine(self):
        graph = random_dag(10, edge_probability=0.3, seed=4)
        machine = Machine.hypercube(2)
        cells = [
            (graph, machine, HLFScheduler(seed=0), _CustomComm()),
            (graph, machine, HLFScheduler(seed=0)),
        ]
        results = simulate_batch(cells)
        expected_custom = simulate(
            graph, machine, HLFScheduler(seed=0), comm_model=_CustomComm(),
            record_trace=False, fast=False,
        )
        assert results[0].fingerprint() == expected_custom.fingerprint()
        assert results[1].makespan > 0.0

    def test_empty_cells(self):
        assert simulate_batch([]) == []
        assert run_lanes([]) == []
        assert run_batch([]) == []

    def test_bad_fidelity_rejected(self):
        graph = _two_roots_graph()
        scenario = _compile_cell(graph, Machine.hypercube(2), LinearCommModel())
        with pytest.raises(SimulationError, match="fidelity"):
            run_batch([(scenario, HLFScheduler(seed=0))], fidelity="exact")
        with pytest.raises(SimulationError, match="fidelity"):
            simulate_batch(
                [(graph, Machine.hypercube(2), HLFScheduler(seed=0))],
                fidelity="exact",
            )
