"""The compiled fast engine: equivalence, dispatch and compilation tests.

The fast engine's contract is *bit-for-bit identity* with the reference
object engine; these tests pin it three ways:

* against the golden-trace fixtures — the same fingerprints the reference
  engine is pinned to, so the two engines are tied to one stored truth
  (all 24 Table-2 cells under SA through the lazy-context fallback, plus the
  random-graph scenarios);
* differentially under hypothesis — random DAGs × (homogeneous and
  heterogeneous) machines × every policy, fast vs reference fingerprints;
* structurally — CSR layout, cost tables against the scalar equation-4
  model, dispatch and the custom-comm-model guard (the contention fidelity
  has its own equivalence suite in ``test_contention_engine.py``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.comm.model import (
    CommunicationModel,
    LinearCommModel,
    ZeroCommModel,
    effective_comm_cost,
)
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.exceptions import SimulationError
from repro.machine.machine import Machine
from repro.schedulers.etf import ETFScheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.hlf import HLFScheduler
from repro.schedulers.lpt import LPTScheduler
from repro.schedulers.random_policy import RandomScheduler
from repro.sim.compile import compile_scenario, supports_comm_model
from repro.sim.engine import Simulator, simulate
from repro.taskgraph.generators import layered_random, random_dag
from repro.taskgraph.graph import TaskGraph
from repro.workloads.suite import PAPER_PROGRAMS

from test_golden_trace import RANDOM_SCENARIOS, TABLE2_CELLS, _ARCH_BUILDERS


# --------------------------------------------------------------------------- #
# Golden-trace equivalence: the fast engine must reproduce the very same
# fingerprints the reference engine is pinned to.
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("program,architecture,comm", TABLE2_CELLS,
                         ids=[f"{p}-{a.split(' ')[0]}-{c}" for p, a, c in TABLE2_CELLS])
def test_fast_engine_matches_golden_table2_cell(program, architecture, comm, golden_table2):
    graph = PAPER_PROGRAMS[program].build(seed=0)
    machine = _ARCH_BUILDERS[architecture]()
    comm_model = LinearCommModel() if comm == "with" else ZeroCommModel()
    result = simulate(
        graph,
        machine,
        SAScheduler(SAConfig.paper_defaults(seed=1)),
        comm_model=comm_model,
        record_trace=True,
        fast=True,
    )
    result.trace.validate(graph)
    golden_table2.check(f"{program}|{architecture}|{comm}", result.fingerprint())


_FAST_RANDOM_SCENARIOS = {
    "layered-seed0-hypercube8-SA": lambda: simulate(
        layered_random(
            n_layers=6, width=8, edge_probability=0.4,
            mean_duration=20.0, mean_comm=8.0, seed=0,
        ),
        Machine.hypercube(3),
        SAScheduler(SAConfig.paper_defaults(seed=0)),
        comm_model=LinearCommModel(),
        record_trace=True,
        fast=True,
    ),
    "dag40-seed0-ring9-SA": lambda: simulate(
        random_dag(40, edge_probability=0.2, mean_duration=15.0, mean_comm=5.0, seed=0),
        Machine.ring(9),
        SAScheduler(SAConfig.paper_defaults(seed=0)),
        comm_model=LinearCommModel(),
        record_trace=True,
        fast=True,
    ),
}

assert sorted(_FAST_RANDOM_SCENARIOS) == sorted(RANDOM_SCENARIOS)


@pytest.mark.parametrize("scenario", sorted(_FAST_RANDOM_SCENARIOS),
                         ids=sorted(_FAST_RANDOM_SCENARIOS))
def test_fast_engine_matches_golden_random_graphs(scenario, golden_random):
    result = _FAST_RANDOM_SCENARIOS[scenario]()
    result.trace.validate()
    golden_random.check(scenario, result.fingerprint())


# --------------------------------------------------------------------------- #
# Differential equivalence on fixed scenarios (hom + hetero machine family)
# --------------------------------------------------------------------------- #

def _hetero_machine(seed: int) -> Machine:
    rng = np.random.default_rng(seed)
    kind = ["ring", "hypercube", "mesh"][seed % 3]
    if kind == "ring":
        build, n = (lambda **kw: Machine.ring(9, **kw)), 9
        topology = Machine.ring(9).topology
    elif kind == "hypercube":
        build, n = (lambda **kw: Machine.hypercube(3, **kw)), 8
        topology = Machine.hypercube(3).topology
    else:
        build, n = (lambda **kw: Machine.mesh(4, 4, **kw)), 16
        topology = Machine.mesh(4, 4).topology
    speeds = rng.uniform(0.5, 4.0, n).tolist()
    link_weights = {
        tuple(sorted(l)): float(rng.uniform(0.5, 3.0)) for l in topology.links()
    }
    return build(speeds=speeds, link_weights=link_weights)


_POLICY_FACTORIES = {
    "ETF": lambda seed: ETFScheduler(),
    "HLF": lambda seed: HLFScheduler(seed=seed),
    "HLF/min-comm": lambda seed: HLFScheduler(placement="min_comm"),
    "HLF/fastest": lambda seed: HLFScheduler(placement="fastest"),
    "HLF/index": lambda seed: HLFScheduler(placement="index"),
    "LPT": lambda seed: LPTScheduler(),
    "FIFO": lambda seed: FIFOScheduler(),
    "Random": lambda seed: RandomScheduler(seed=seed),
    "SA": lambda seed: SAScheduler(SAConfig.paper_defaults(seed=seed)),
}


@pytest.mark.parametrize("policy_name", sorted(_POLICY_FACTORIES))
@pytest.mark.parametrize("seed", range(10))
def test_fast_engine_bit_identical_on_hetero_machines(policy_name, seed):
    """10 randomized heterogeneous scenarios × every policy, fast vs reference."""
    if policy_name == "SA" and seed >= 5:
        pytest.skip("SA covered on 5 hetero scenarios; annealing dominates runtime")
    graph = random_dag(
        20 + 4 * seed, edge_probability=0.15, mean_duration=12.0, mean_comm=6.0, seed=seed
    )
    machine = _hetero_machine(seed)
    make = _POLICY_FACTORIES[policy_name]
    reference = simulate(
        graph, machine, make(seed), comm_model=LinearCommModel(),
        record_trace=True, fast=False,
    )
    fast = simulate(
        graph, machine, make(seed), comm_model=LinearCommModel(),
        record_trace=True, fast=True,
    )
    assert reference.fingerprint() == fast.fingerprint()
    assert reference.task_processor == fast.task_processor


def test_fast_engine_bit_identical_without_traces():
    """The auto-dispatched (traceless) fast path matches the object engine."""
    graph = layered_random(n_layers=5, width=7, edge_probability=0.4,
                           mean_duration=18.0, mean_comm=7.0, seed=3)
    machine = Machine.hypercube(3)
    for make in (lambda: ETFScheduler(), lambda: HLFScheduler(seed=1), lambda: LPTScheduler()):
        ref = simulate(graph, machine, make(), comm_model=LinearCommModel(),
                       record_trace=False, fast=False)
        fast = simulate(graph, machine, make(), comm_model=LinearCommModel(),
                        record_trace=False)  # fast=None -> auto-dispatch
        assert ref.fingerprint() == fast.fingerprint()
        assert ref.makespan == fast.makespan
        assert ref.n_packets == fast.n_packets


# --------------------------------------------------------------------------- #
# Hypothesis differential tests
# --------------------------------------------------------------------------- #

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_machines = st.sampled_from(
    [
        Machine.hypercube(2),
        Machine.hypercube(3),
        Machine.ring(5),
        Machine.bus(6),
        Machine.mesh(2, 3),
        Machine.ring(7, speeds=[1.0, 2.0, 1.0, 3.0, 1.0, 0.5, 1.0],
                     link_weights={(0, 1): 2.0, (3, 4): 0.5}),
        Machine.hypercube(3, speeds=[1.0 + 0.25 * i for i in range(8)]),
    ]
)

_policy_factories = st.sampled_from(sorted(_POLICY_FACTORIES))


@st.composite
def _graphs(draw):
    kind = draw(st.sampled_from(["layered", "dag", "sparse"]))
    seed = draw(st.integers(0, 10_000))
    if kind == "layered":
        return layered_random(
            n_layers=draw(st.integers(1, 5)), width=draw(st.integers(1, 6)),
            edge_probability=0.4, mean_comm=5.0, seed=seed,
        )
    if kind == "dag":
        return random_dag(draw(st.integers(1, 30)), edge_probability=0.25, seed=seed)
    return random_dag(draw(st.integers(1, 40)), edge_probability=0.05, seed=seed)


class TestDifferentialEquivalence:
    @given(graph=_graphs(), machine=_machines, policy_name=_policy_factories,
           comm_off=st.booleans(), seed=st.integers(0, 100))
    @_SETTINGS
    def test_fast_matches_reference_fingerprint(
        self, graph, machine, policy_name, comm_off, seed
    ):
        if policy_name == "SA" and graph.n_tasks > 20:
            graph = random_dag(15, edge_probability=0.2, seed=seed)  # keep SA examples quick
        make = _POLICY_FACTORIES[policy_name]
        comm_model = ZeroCommModel() if comm_off else LinearCommModel()
        ref = simulate(graph, machine, make(seed), comm_model=comm_model,
                       record_trace=True, fast=False)
        fast = simulate(graph, machine, make(seed), comm_model=comm_model,
                        record_trace=True, fast=True)
        assert ref.fingerprint() == fast.fingerprint()
        assert ref.task_processor == fast.task_processor


# --------------------------------------------------------------------------- #
# Dispatch and the foldable-comm-model guard
# --------------------------------------------------------------------------- #

class _CustomComm(CommunicationModel):
    def cost(self, machine, weight, src_proc, dst_proc):
        return 1.0 if src_proc != dst_proc else 0.0


class TestDispatch:
    def test_fast_true_accepts_contention_fidelity(self, diamond_graph, hypercube8):
        """The fast engine covers contention; forcing it matches the oracle."""
        fast = simulate(diamond_graph, hypercube8, HLFScheduler(seed=0),
                        fidelity="contention", fast=True)
        ref = simulate(diamond_graph, hypercube8, HLFScheduler(seed=0),
                       fidelity="contention", fast=False)
        assert fast.fingerprint() == ref.fingerprint()

    def test_fast_true_refuses_custom_comm_model(self, diamond_graph, hypercube8):
        with pytest.raises(SimulationError, match="fold"):
            simulate(diamond_graph, hypercube8, HLFScheduler(seed=0),
                     comm_model=_CustomComm(), fast=True)

    def test_auto_dispatch_covers_contention(self, diamond_graph, hypercube8):
        """fast=None sends traceless contention runs through the fast engine."""
        sim = Simulator(diamond_graph, hypercube8, HLFScheduler(seed=0),
                        fidelity="contention", record_trace=False)
        assert sim._use_fast_engine()
        result = sim.run()
        assert result.makespan > 0.0
        assert result.fidelity == "contention"

    def test_auto_dispatch_falls_back_on_custom_model(self, diamond_graph, hypercube8):
        result = simulate(diamond_graph, hypercube8, HLFScheduler(seed=0),
                          comm_model=_CustomComm(), record_trace=False)
        assert result.makespan > 0.0

    def test_auto_dispatch_uses_fast_engine_for_latency_runs(self, diamond_graph, hypercube8):
        sim = Simulator(diamond_graph, hypercube8, HLFScheduler(seed=0), record_trace=False)
        assert sim._use_fast_engine()

    def test_trace_recording_keeps_object_engine_under_auto(self, diamond_graph, hypercube8):
        sim = Simulator(diamond_graph, hypercube8, HLFScheduler(seed=0), record_trace=True)
        assert not sim._use_fast_engine()

    def test_fast_false_opts_out(self, diamond_graph, hypercube8):
        sim = Simulator(diamond_graph, hypercube8, HLFScheduler(seed=0),
                        record_trace=False, fast=False)
        assert not sim._use_fast_engine()

    def test_supports_comm_model_is_exact_typed(self):
        assert supports_comm_model(LinearCommModel())
        assert supports_comm_model(ZeroCommModel())
        assert not supports_comm_model(_CustomComm())

        class _SubLinear(LinearCommModel):
            def cost(self, machine, weight, src_proc, dst_proc):
                return 42.0

        assert not supports_comm_model(_SubLinear())

    def test_empty_graph_fast_run(self, hypercube8):
        result = simulate(TaskGraph("empty"), hypercube8, HLFScheduler(seed=0), fast=True)
        assert result.makespan == 0.0


# --------------------------------------------------------------------------- #
# CompiledScenario structure
# --------------------------------------------------------------------------- #

class TestCompiledScenario:
    def test_csr_layout_matches_graph(self, diamond_graph, hypercube8):
        sc = compile_scenario(diamond_graph, hypercube8, LinearCommModel())
        assert sc.task_ids == ["a", "b", "c", "d"]
        # d's predecessors are b and c, in graph order, with their weights.
        d = sc.index_of["d"]
        lo, hi = sc.pred_indptr[d], sc.pred_indptr[d + 1]
        assert [sc.task_ids[i] for i in sc.pred_ids[lo:hi]] == ["b", "c"]
        assert list(sc.pred_weights[lo:hi]) == [0.5, 0.5]
        # a's successors are b and c.
        a = sc.index_of["a"]
        lo, hi = sc.succ_indptr[a], sc.succ_indptr[a + 1]
        assert [sc.task_ids[i] for i in sc.succ_ids[lo:hi]] == ["b", "c"]
        assert sc.durations_list == [2.0, 3.0, 1.0, 2.0]

    @pytest.mark.parametrize("machine_factory", [
        lambda: Machine.hypercube(3),
        lambda: Machine.ring(9),
        lambda: Machine.bus(8),
        lambda: Machine.ring(5, speeds=[1, 2, 1, 3, 1],
                             link_weights={(0, 1): 2.5, (2, 3): 0.5}),
    ])
    def test_cost_tables_match_scalar_equation4(self, diamond_graph, machine_factory):
        machine = machine_factory()
        model = LinearCommModel()
        sc = compile_scenario(diamond_graph, machine, model)
        for weight in (0.0, 0.5, 1.0, 7.25):
            table = sc.cost_table(weight)
            for u in range(machine.n_processors):
                for v in range(machine.n_processors):
                    assert table[u, v] == model.cost(machine, weight, u, v)

    def test_edge_cost_matches_scalar_model(self, diamond_graph, hypercube8):
        model = LinearCommModel()
        sc = compile_scenario(diamond_graph, hypercube8, model)
        d = sc.index_of["d"]
        e = int(sc.pred_indptr[d])  # edge b -> d, weight 0.5
        for u in range(8):
            for v in range(8):
                assert sc.edge_cost(e, u, v) == model.cost(hypercube8, 0.5, u, v)

    def test_zero_model_costs_are_free(self, diamond_graph, hypercube8):
        sc = compile_scenario(diamond_graph, hypercube8, ZeroCommModel())
        assert not sc.comm_enabled
        assert sc.edge_cost(0, 0, 5) == 0.0
        assert not sc.cost_table(3.0).any()

    def test_rejects_custom_comm_model(self, diamond_graph, hypercube8):
        with pytest.raises(ValueError, match="fold"):
            compile_scenario(diamond_graph, hypercube8, _CustomComm())

    def test_scenario_memoized_per_graph_machine_and_model(self, diamond_graph, hypercube8, ring9):
        model = LinearCommModel()
        first = compile_scenario(diamond_graph, hypercube8, model)
        assert compile_scenario(diamond_graph, hypercube8, model) is first
        # Another model type or machine compiles fresh.
        assert compile_scenario(diamond_graph, hypercube8, ZeroCommModel()) is not first
        other_machine = compile_scenario(diamond_graph, ring9, model)
        assert other_machine is not first
        # Mutating the graph invalidates the memo.
        diamond_graph.add_task("e", 1.0)
        diamond_graph.add_dependency("d", "e", comm=1.0)
        refreshed = compile_scenario(diamond_graph, hypercube8, model)
        assert refreshed is not first
        assert refreshed.n_tasks == 5

    def test_graph_stays_picklable_after_fast_simulation(self, diamond_graph, hypercube8):
        """The scenario memo lives off-instance: simulating must not change
        the graph's serializability (e.g. for multiprocessing workers)."""
        import pickle

        simulate(diamond_graph, hypercube8, HLFScheduler(seed=0), record_trace=False)
        clone = pickle.loads(pickle.dumps(diamond_graph))
        assert clone.tasks == diamond_graph.tasks

    def test_scenario_cache_is_bounded_per_graph(self, diamond_graph):
        from repro.sim.compile import _SCENARIO_CACHE, _SCENARIO_CACHE_PER_GRAPH

        machines = [Machine.ring(4 + i) for i in range(_SCENARIO_CACHE_PER_GRAPH + 3)]
        for m in machines:
            compile_scenario(diamond_graph, m, LinearCommModel())
        assert len(_SCENARIO_CACHE[diamond_graph]) <= _SCENARIO_CACHE_PER_GRAPH
