"""The fast engine's contention fidelity: equivalence, goldens and invariants.

The contention event loop (store-and-forward hops over the compiled route
tables, per-link next-free timelines, σ/τ busy time) must be **bit-for-bit
trace-identical** to the object engine's ``deliver_contention`` path.  This
module pins that four ways:

* golden fixtures — every Table-2 cell simulated once per engine under the
  canonical SA contention run, against ``tests/golden/contention_cells.json``
  (regenerable with ``--regen-golden``), which also verifies the paper smoke
  path ``runner --fidelity contention`` end to end;
* differentially under hypothesis — random DAGs × (homogeneous and
  heterogeneous) machines × every policy, comparing fingerprints *and* the
  raw task/message/overhead record lists;
* physically — per-message monotonicity: a contention delivery can never
  beat the equation-4 latency cost, links carry one message at a time, and
  σ/τ busy time lands on the right processors;
* structurally — the compiled route tables against per-pair
  ``machine.route`` calls on fresh machines, and the Figure-2 chart rendered
  through both engines character for character.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.comm.model import LinearCommModel, ZeroCommModel
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.machine.machine import Machine
from repro.machine.routing import all_pairs_routes, all_pairs_weighted_routes
from repro.schedulers.etf import ETFScheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.hlf import HLFScheduler
from repro.schedulers.lpt import LPTScheduler
from repro.schedulers.random_policy import RandomScheduler
from repro.sim.compile import compile_scenario
from repro.sim.engine import simulate
from repro.taskgraph.generators import layered_random, random_dag
from repro.workloads.suite import PAPER_PROGRAMS

from test_golden_trace import TABLE2_CELLS, _ARCH_BUILDERS


def _run_cell_contention(program: str, architecture: str, comm: str, fast: bool):
    """One canonical fixed-seed SA contention run for a Table-2 cell."""
    graph = PAPER_PROGRAMS[program].build(seed=0)
    machine = _ARCH_BUILDERS[architecture]()
    comm_model = LinearCommModel() if comm == "with" else ZeroCommModel()
    return simulate(
        graph,
        machine,
        SAScheduler(SAConfig.paper_defaults(seed=1)),
        comm_model=comm_model,
        fidelity="contention",
        record_trace=True,
        fast=fast,
    )


# --------------------------------------------------------------------------- #
# Golden contention cells: object engine pins the fixture, fast engine must
# reproduce the very same fingerprints.
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("program,architecture,comm", TABLE2_CELLS,
                         ids=[f"{p}-{a.split(' ')[0]}-{c}" for p, a, c in TABLE2_CELLS])
def test_contention_cell_matches_golden_trace(program, architecture, comm, golden_contention):
    result = _run_cell_contention(program, architecture, comm, fast=False)
    result.trace.validate(PAPER_PROGRAMS[program].build(seed=0))
    assert result.fidelity == "contention"
    golden_contention.check(f"{program}|{architecture}|{comm}", result.fingerprint())


@pytest.mark.parametrize("program,architecture,comm", TABLE2_CELLS,
                         ids=[f"{p}-{a.split(' ')[0]}-{c}" for p, a, c in TABLE2_CELLS])
def test_fast_contention_cell_matches_golden_trace(program, architecture, comm, golden_contention):
    result = _run_cell_contention(program, architecture, comm, fast=True)
    result.trace.validate(PAPER_PROGRAMS[program].build(seed=0))
    golden_contention.check(f"{program}|{architecture}|{comm}", result.fingerprint())


# --------------------------------------------------------------------------- #
# Differential equivalence (hypothesis): fast vs object, trace records and all
# --------------------------------------------------------------------------- #

_POLICY_FACTORIES = {
    "ETF": lambda seed: ETFScheduler(),
    "HLF": lambda seed: HLFScheduler(seed=seed),
    "HLF/min-comm": lambda seed: HLFScheduler(placement="min_comm"),
    "HLF/fastest": lambda seed: HLFScheduler(placement="fastest"),
    "HLF/index": lambda seed: HLFScheduler(placement="index"),
    "LPT": lambda seed: LPTScheduler(),
    "FIFO": lambda seed: FIFOScheduler(),
    "Random": lambda seed: RandomScheduler(seed=seed),
    "SA": lambda seed: SAScheduler(SAConfig.paper_defaults(seed=seed)),
}

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Homogeneous and heterogeneous machines; the weighted ones route along
#: minimum-weight paths and charge per-hop ``w_ij * link_weight`` occupancy.
_machines = st.sampled_from(
    [
        Machine.hypercube(2),
        Machine.hypercube(3),
        Machine.ring(5),
        Machine.bus(6),
        Machine.mesh(2, 3),
        Machine.ring(7, speeds=[1.0, 2.0, 1.0, 3.0, 1.0, 0.5, 1.0],
                     link_weights={(0, 1): 2.0, (3, 4): 0.5}),
        Machine.hypercube(3, speeds=[1.0 + 0.25 * i for i in range(8)],
                          link_weights={(0, 1): 3.0, (2, 6): 0.25}),
    ]
)


@st.composite
def _graphs(draw):
    kind = draw(st.sampled_from(["layered", "dag", "sparse"]))
    seed = draw(st.integers(0, 10_000))
    if kind == "layered":
        return layered_random(
            n_layers=draw(st.integers(1, 5)), width=draw(st.integers(1, 6)),
            edge_probability=0.4, mean_comm=5.0, seed=seed,
        )
    if kind == "dag":
        return random_dag(draw(st.integers(1, 30)), edge_probability=0.25, seed=seed)
    return random_dag(draw(st.integers(1, 40)), edge_probability=0.05, seed=seed)


class TestContentionDifferential:
    @given(graph=_graphs(), machine=_machines,
           policy_name=st.sampled_from(sorted(_POLICY_FACTORIES)),
           comm_off=st.booleans(), seed=st.integers(0, 100))
    @_SETTINGS
    def test_fast_matches_reference_trace(self, graph, machine, policy_name, comm_off, seed):
        if policy_name == "SA" and graph.n_tasks > 20:
            graph = random_dag(15, edge_probability=0.2, seed=seed)  # keep SA examples quick
        make = _POLICY_FACTORIES[policy_name]
        comm_model = ZeroCommModel() if comm_off else LinearCommModel()
        ref = simulate(graph, machine, make(seed), comm_model=comm_model,
                       fidelity="contention", record_trace=True, fast=False)
        fast = simulate(graph, machine, make(seed), comm_model=comm_model,
                        fidelity="contention", record_trace=True, fast=True)
        assert ref.fingerprint() == fast.fingerprint()
        assert ref.task_processor == fast.task_processor
        # Trace identity down to the record lists: same task intervals, same
        # messages (routes, hop occupancy intervals), same σ/τ overheads in
        # the same order.
        assert ref.trace.task_records == fast.trace.task_records
        assert ref.trace.message_records == fast.trace.message_records
        assert ref.trace.overhead_records == fast.trace.overhead_records

    @given(graph=_graphs(), machine=_machines,
           policy_name=st.sampled_from(sorted(_POLICY_FACTORIES)),
           seed=st.integers(0, 100))
    @_SETTINGS
    def test_contention_arrival_never_beats_latency_cost(
        self, graph, machine, policy_name, seed
    ):
        """Per-message monotonicity: store-and-forward can only be slower.

        Every contention delivery decomposes into the same σ + volume + τ
        components as equation 4 plus non-negative queueing waits, so each
        message's arrival must be at least its send time plus the latency
        model's cost for the same (weight, src, dst).
        """
        if policy_name == "SA" and graph.n_tasks > 20:
            graph = random_dag(15, edge_probability=0.2, seed=seed)
        make = _POLICY_FACTORIES[policy_name]
        model = LinearCommModel()
        result = simulate(graph, machine, make(seed), comm_model=model,
                          fidelity="contention", record_trace=True)
        for msg in result.trace.message_records:
            eq4 = model.cost(machine, msg.weight, msg.src_proc, msg.dst_proc)
            assert msg.arrival_time >= msg.send_time + eq4 - 1e-9


# --------------------------------------------------------------------------- #
# Physical invariants of the fast contention loop
# --------------------------------------------------------------------------- #


def _contention_result(machine, seed=3, fast=True):
    graph = layered_random(n_layers=5, width=7, edge_probability=0.45,
                           mean_duration=10.0, mean_comm=9.0, seed=seed)
    return graph, simulate(graph, machine, HLFScheduler(seed=seed),
                           comm_model=LinearCommModel(), fidelity="contention",
                           record_trace=True, fast=fast)


class TestContentionInvariants:
    def test_links_carry_one_message_at_a_time(self, ring9):
        """Fast-engine hop intervals never overlap on one undirected link."""
        _, result = _contention_result(ring9)
        by_link = {}
        for msg in result.trace.message_records:
            for (a, b), (start, end) in zip(
                zip(msg.route, msg.route[1:]), msg.hop_intervals
            ):
                link = (a, b) if a < b else (b, a)
                by_link.setdefault(link, []).append((start, end))
        assert by_link, "scenario produced no multi-hop traffic"
        for intervals in by_link.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-9

    def test_overheads_charge_senders_and_intermediates(self, hypercube8):
        _, result = _contention_result(hypercube8)
        sends = [o for o in result.trace.overhead_records if o.kind == "send"]
        sigma = hypercube8.params.sigma
        tau = hypercube8.params.tau
        assert len(sends) == len(result.trace.message_records)
        by_msg_src = {
            (m.src_task, m.dst_task): m for m in result.trace.message_records
        }
        assert all(abs(o.duration - sigma) < 1e-12 for o in sends)
        routes = [o for o in result.trace.overhead_records if o.kind == "route"]
        assert all(abs(o.duration - tau) < 1e-12 for o in routes)
        # Every multi-hop message produces one route overhead per
        # intermediate processor.
        expected_routes = sum(
            max(m.n_hops - 1, 0) for m in by_msg_src.values()
        )
        assert len(routes) == expected_routes

    def test_trace_validates_and_messages_arrive_before_start(self, hypercube8):
        graph, result = _contention_result(hypercube8)
        result.trace.validate(graph)

    def test_zero_comm_contention_rides_latency_path(self, hypercube8):
        """ZeroCommModel contention runs skip store-and-forward entirely."""
        graph = layered_random(n_layers=4, width=5, edge_probability=0.4, seed=2)
        con = simulate(graph, hypercube8, HLFScheduler(seed=0),
                       comm_model=ZeroCommModel(), fidelity="contention",
                       record_trace=True, fast=True)
        lat = simulate(graph, hypercube8, HLFScheduler(seed=0),
                       comm_model=ZeroCommModel(), fidelity="latency",
                       record_trace=True, fast=True)
        assert con.makespan == lat.makespan
        assert not con.trace.overhead_records
        assert all(not m.hop_intervals for m in con.trace.message_records)

    def test_fallback_policy_runs_contention_on_fast_engine(self, hypercube8):
        """A policy without a fast path still drives the contention loop."""
        from dataclasses import replace

        graph = layered_random(n_layers=4, width=6, edge_probability=0.4, seed=5)
        config = replace(SAConfig.paper_defaults(seed=2), compiled=False)
        ref = simulate(graph, hypercube8, SAScheduler(config),
                       comm_model=LinearCommModel(), fidelity="contention",
                       record_trace=True, fast=False)
        fast = simulate(graph, hypercube8, SAScheduler(config),
                        comm_model=LinearCommModel(), fidelity="contention",
                        record_trace=True, fast=True)
        assert fast.n_fallback_epochs > 0
        assert ref.fingerprint() == fast.fingerprint()

    def test_fingerprint_carries_contention_keys_only_when_present(self, hypercube8):
        graph, result = _contention_result(hypercube8)
        fp = result.fingerprint()
        assert fp["n_overheads"] == len(result.trace.overhead_records)
        assert fp["link_busy_time"] > 0.0
        lat = simulate(graph, hypercube8, HLFScheduler(seed=3),
                       comm_model=LinearCommModel(), fidelity="latency",
                       record_trace=True, fast=True)
        lat_fp = lat.fingerprint()
        assert "n_overheads" not in lat_fp
        assert "link_busy_time" not in lat_fp

    def test_result_reports_fidelity(self, diamond_graph, hypercube8):
        for fast in (False, True, None):
            result = simulate(diamond_graph, hypercube8, HLFScheduler(seed=0),
                              fidelity="contention", record_trace=False, fast=fast)
            assert result.fidelity == "contention"


# --------------------------------------------------------------------------- #
# Compiled route tables vs per-pair routing
# --------------------------------------------------------------------------- #

_MACHINE_BUILDERS = [
    lambda: Machine.hypercube(3),
    lambda: Machine.ring(9),
    lambda: Machine.bus(8),
    lambda: Machine.mesh(4, 4),
    lambda: Machine.ring(5, speeds=[1, 2, 1, 3, 1],
                         link_weights={(0, 1): 2.5, (2, 3): 0.5}),
    lambda: Machine.hypercube(3, link_weights={(0, 1): 3.0, (2, 6): 0.25}),
]


class TestContentionTables:
    @pytest.mark.parametrize("build", _MACHINE_BUILDERS)
    def test_all_pairs_routes_match_per_pair_calls(self, build):
        """Parent-tree batch extraction equals fresh per-pair route calls."""
        batch, fresh = build(), build()
        if batch.has_unit_link_weights:
            routes = all_pairs_routes(batch.topology)
        else:
            routes = all_pairs_weighted_routes(
                batch.topology, batch._link_weight_matrix
            )
        for src in range(fresh.n_processors):
            for dst in range(fresh.n_processors):
                assert routes[src][dst] == fresh.route(src, dst)

    @pytest.mark.parametrize("build", _MACHINE_BUILDERS)
    def test_compiled_tables_mirror_machine_routes(self, build, diamond_graph):
        machine, fresh = build(), build()
        sc = compile_scenario(diamond_graph, machine, LinearCommModel())
        ct = sc.contention_tables()
        n = machine.n_processors
        link_ids = set()
        for src in range(n):
            for dst in range(n):
                pair = src * n + dst
                route = fresh.route(src, dst)
                assert ct.routes[pair] == tuple(route)
                lo, hi = ct.route_indptr[pair], ct.route_indptr[pair + 1]
                assert hi - lo == len(route) - 1
                for k, h in enumerate(range(lo, hi)):
                    a, b = route[k], route[k + 1]
                    assert ct.hop_nodes[h] == b
                    expected = 1.0 if ct.unit_links else fresh.link_weight(a, b)
                    assert ct.hop_mults[h] == expected
                    link_ids.add(ct.hop_links[h])
        assert link_ids <= set(range(ct.n_links))
        assert ct.sigma == machine.params.sigma
        assert ct.tau == machine.params.tau

    def test_tables_are_memoized_per_scenario(self, diamond_graph, hypercube8):
        sc = compile_scenario(diamond_graph, hypercube8, LinearCommModel())
        assert sc.contention_tables() is sc.contention_tables()

    def test_machine_all_routes_primes_path_cache(self):
        machine = Machine.mesh(3, 3)
        routes = machine.all_routes()
        assert machine.route(0, 8) == routes[0][8]


# --------------------------------------------------------------------------- #
# Figure 2 through both engines
# --------------------------------------------------------------------------- #


def test_figure2_chart_identical_on_both_engines():
    from repro.experiments.figure2 import run_figure2

    fast = run_figure2(seed=0, width=80, fast=True)
    ref = run_figure2(seed=0, width=80, fast=False)
    assert fast.chart == ref.chart
    assert fast.result.fingerprint() == ref.result.fingerprint()
    assert fast.result.trace.overhead_records == ref.result.trace.overhead_records


def test_runner_contention_smoke_path(capsys):
    """``runner --fidelity contention`` regenerates the paper artifacts."""
    from repro.experiments.runner import main

    assert main(["--fidelity", "contention", "--programs", "NE"]) == 0
    out = capsys.readouterr().out
    assert "Table 2 - Newton-Euler" in out
    assert "Figure 2" in out
    assert "legend:" in out
