"""Property-based tests over the whole scheduling stack.

Hypothesis generates random task graphs and machine configurations; every
policy must produce a complete, valid schedule whose makespan respects the
standard lower bounds, and the simulated-annealing packet machinery must
maintain its algebraic invariants on arbitrary packets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.comm.model import LinearCommModel, ZeroCommModel
from repro.core.config import SAConfig
from repro.core.cost import PacketCostFunction
from repro.core.moves import propose_move
from repro.core.packet import AnnealingPacket, PacketMapping
from repro.core.sa_scheduler import SAScheduler
from repro.machine.machine import Machine
from repro.machine.topology import Topology
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.hlf import HLFScheduler
from repro.schedulers.random_policy import RandomScheduler
from repro.sim.engine import simulate
from repro.taskgraph import generators as gen

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


machines = st.sampled_from(
    [
        Machine.hypercube(2),
        Machine.hypercube(3),
        Machine.ring(5),
        Machine.bus(6),
        Machine.fully_connected(3),
        Machine.mesh(2, 3),
    ]
)

policies = st.sampled_from(
    [
        lambda: HLFScheduler(seed=0),
        lambda: FIFOScheduler(),
        lambda: RandomScheduler(seed=1),
    ]
)


@st.composite
def random_graphs(draw):
    kind = draw(st.sampled_from(["layered", "dag", "tree", "forkjoin"]))
    seed = draw(st.integers(0, 10_000))
    if kind == "layered":
        return gen.layered_random(
            draw(st.integers(1, 5)), draw(st.integers(1, 5)), seed=seed, mean_comm=4.0
        )
    if kind == "dag":
        return gen.random_dag(draw(st.integers(1, 25)), edge_probability=0.2, seed=seed)
    if kind == "tree":
        return gen.intree(draw(st.integers(0, 3)), branching=2, comm=2.0)
    return gen.fork_join(draw(st.integers(1, 10)), branch_duration=3.0, comm=2.0)


class TestScheduleValidityProperties:
    @given(graph=random_graphs(), machine=machines, policy_factory=policies)
    @_SETTINGS
    def test_every_policy_produces_valid_complete_schedules(
        self, graph, machine, policy_factory
    ):
        result = simulate(graph, machine, policy_factory(), comm_model=LinearCommModel())
        # completeness
        assert len(result.task_processor) == graph.n_tasks
        # validity
        result.trace.validate(graph)
        # lower bounds
        assert result.makespan >= graph.critical_path_length() - 1e-9
        assert result.makespan >= graph.total_work() / machine.n_processors - 1e-9
        # speedup can never exceed the machine size
        if result.makespan > 0:
            assert result.speedup() <= machine.n_processors + 1e-9

    @given(graph=random_graphs(), machine=machines)
    @_SETTINGS
    def test_zero_comm_never_slower_than_with_comm_for_same_policy(self, graph, machine):
        with_comm = simulate(
            graph, machine, HLFScheduler(seed=0), comm_model=LinearCommModel(), record_trace=False
        )
        without = simulate(
            graph, machine, HLFScheduler(seed=0), comm_model=ZeroCommModel(), record_trace=False
        )
        assert without.makespan <= with_comm.makespan + 1e-9

    @given(graph=random_graphs())
    @_SETTINGS
    def test_single_processor_makespan_equals_total_work(self, graph):
        machine = Machine.fully_connected(1)
        result = simulate(graph, machine, FIFOScheduler(), comm_model=LinearCommModel(),
                          record_trace=False)
        assert result.makespan == pytest.approx(graph.total_work())


class TestSASchedulerProperties:
    @given(graph=random_graphs(), machine=machines, seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_sa_scheduler_valid_on_random_problems(self, graph, machine, seed):
        config = SAConfig(seed=seed, max_temperature_steps=10)
        result = simulate(graph, machine, SAScheduler(config), comm_model=LinearCommModel())
        assert len(result.task_processor) == graph.n_tasks
        result.trace.validate(graph)


@st.composite
def hetero_machines(draw):
    """Machines with per-seed random speeds and link weights (or unit ones)."""
    kind = draw(st.sampled_from(["ring", "hypercube", "mesh", "full"]))
    seed = draw(st.integers(0, 10_000))
    heterogeneous = draw(st.booleans())
    if kind == "ring":
        topology = Machine.ring(7).topology
        build = lambda **kw: Machine.ring(7, **kw)
    elif kind == "hypercube":
        topology = Machine.hypercube(3).topology
        build = lambda **kw: Machine.hypercube(3, **kw)
    elif kind == "mesh":
        topology = Machine.mesh(2, 3).topology
        build = lambda **kw: Machine.mesh(2, 3, **kw)
    else:
        topology = Machine.fully_connected(4).topology
        build = lambda **kw: Machine.fully_connected(4, **kw)
    if not heterogeneous:
        return build()
    rng = np.random.default_rng(seed)
    speeds = rng.uniform(0.5, 4.0, topology.n_processors).tolist()
    link_weights = {
        tuple(sorted(l)): float(rng.uniform(0.5, 3.0)) for l in topology.links()
    }
    return build(speeds=speeds, link_weights=link_weights)


class TestSimulatorInvariants:
    """Structural invariants of every recorded schedule, both fidelities,
    homogeneous and heterogeneous machines."""

    @given(
        graph=random_graphs(),
        machine=hetero_machines(),
        fidelity=st.sampled_from(["latency", "contention"]),
        policy_factory=policies,
    )
    @_SETTINGS
    def test_no_two_tasks_overlap_on_a_processor(
        self, graph, machine, fidelity, policy_factory
    ):
        result = simulate(graph, machine, policy_factory(),
                          comm_model=LinearCommModel(), fidelity=fidelity)
        by_proc = {}
        for rec in result.trace.task_records:
            by_proc.setdefault(rec.processor, []).append(rec)
        for recs in by_proc.values():
            recs.sort(key=lambda r: r.start_time)
            for a, b in zip(recs, recs[1:]):
                assert b.start_time >= a.finish_time - 1e-9

    @given(
        graph=random_graphs(),
        machine=hetero_machines(),
        fidelity=st.sampled_from(["latency", "contention"]),
        policy_factory=policies,
    )
    @_SETTINGS
    def test_tasks_start_after_all_predecessor_data_arrives(
        self, graph, machine, fidelity, policy_factory
    ):
        result = simulate(graph, machine, policy_factory(),
                          comm_model=LinearCommModel(), fidelity=fidelity)
        trace = result.trace
        start = {r.task: r.start_time for r in trace.task_records}
        finish = {r.task: r.finish_time for r in trace.task_records}
        proc = {r.task: r.processor for r in trace.task_records}
        arrival = {(m.src_task, m.dst_task): m.arrival_time for m in trace.message_records}
        for u, v, _w in graph.edges():
            if proc[u] == proc[v]:
                assert start[v] >= finish[u] - 1e-9
            else:
                assert start[v] >= arrival[(u, v)] - 1e-9

    @given(
        graph=random_graphs(),
        machine=hetero_machines(),
        fidelity=st.sampled_from(["latency", "contention"]),
        policy_factory=policies,
    )
    @_SETTINGS
    def test_makespan_is_max_finish_and_durations_speed_scaled(
        self, graph, machine, fidelity, policy_factory
    ):
        result = simulate(graph, machine, policy_factory(),
                          comm_model=LinearCommModel(), fidelity=fidelity)
        records = result.trace.task_records
        assert len(records) == graph.n_tasks
        if records:
            assert result.makespan == max(r.finish_time for r in records)
        for rec in records:
            expected = graph.duration(rec.task) / machine.speed_of(rec.processor)
            assert rec.finish_time - rec.start_time == pytest.approx(expected)

    @given(graph=random_graphs(), machine=hetero_machines(), seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_sa_scheduler_valid_on_hetero_machines(self, graph, machine, seed):
        config = SAConfig(seed=seed, max_temperature_steps=10)
        result = simulate(graph, machine, SAScheduler(config), comm_model=LinearCommModel())
        assert len(result.task_processor) == graph.n_tasks
        result.trace.validate(graph)


@st.composite
def random_packets(draw):
    n_tasks = draw(st.integers(1, 8))
    n_procs = draw(st.integers(1, 6))
    machine = Machine.hypercube(3)
    procs = draw(
        st.lists(st.integers(0, 7), min_size=n_procs, max_size=n_procs, unique=True)
    )
    levels = {}
    placement = {}
    for i in range(n_tasks):
        levels[f"t{i}"] = draw(st.floats(0.1, 100.0))
        n_preds = draw(st.integers(0, 2))
        placement[f"t{i}"] = tuple(
            (f"p{i}{k}", draw(st.integers(0, 7)), draw(st.floats(0.0, 20.0)))
            for k in range(n_preds)
        )
    packet = AnnealingPacket(
        time=0.0,
        ready_tasks=tuple(levels.keys()),
        idle_processors=tuple(procs),
        levels=levels,
        predecessor_placement=placement,
    )
    return packet, machine


class TestPacketCostProperties:
    @given(data=random_packets(), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_incremental_delta_always_matches_recompute(self, data, seed):
        packet, machine = data
        fn = PacketCostFunction(packet, machine)
        rng = np.random.default_rng(seed)
        state = PacketMapping()
        cost = fn.total_cost(state)
        for _ in range(40):
            new = propose_move(packet, state, rng)
            delta = fn.incremental_delta(new.last_change)
            new_cost = fn.total_cost(new)
            assert new_cost - cost == pytest.approx(delta, abs=1e-8)
            state, cost = new, new_cost

    @given(data=random_packets())
    @settings(max_examples=25, deadline=None)
    def test_cost_is_finite_and_ranges_positive(self, data):
        packet, machine = data
        fn = PacketCostFunction(packet, machine)
        assert fn.balance_range > 0 and fn.comm_range > 0
        full = PacketMapping(
            dict(zip(packet.ready_tasks, packet.idle_processors))
            if packet.n_ready <= packet.n_idle
            else dict(zip(packet.ready_tasks[: packet.n_idle], packet.idle_processors))
        )
        assert np.isfinite(fn.total_cost(full))
        assert np.isfinite(fn.total_cost(PacketMapping()))

    @given(data=random_packets(), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_moves_preserve_packet_invariants(self, data, seed):
        packet, _machine = data
        rng = np.random.default_rng(seed)
        state = PacketMapping()
        for _ in range(60):
            state = propose_move(packet, state, rng)
            assert state.n_assigned <= packet.n_assignable
            assert set(state.task_to_proc).issubset(set(packet.ready_tasks))
            assert set(state.proc_to_task).issubset(set(packet.idle_processors))
            # bidirectional maps stay consistent
            for task, proc in state.task_to_proc.items():
                assert state.proc_to_task[proc] == task


class TestKernelEquivalenceProperties:
    """The compiled kernel must replay the reference implementation exactly."""

    @given(data=random_packets(), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_kernel_incremental_delta_matches_full_recompute(self, data, seed):
        from repro.core.kernel import PacketKernel

        packet, machine = data
        kernel = PacketKernel(packet, machine)
        indexed = kernel.index_packet()
        rng = np.random.default_rng(seed)
        state = PacketMapping()
        cost = kernel.total_cost(state)
        for _ in range(40):
            new = propose_move(indexed, state, rng)
            delta = kernel.incremental_delta(new.last_change)
            new_cost = kernel.total_cost(new)
            assert new_cost - cost == pytest.approx(delta, abs=1e-9)
            state, cost = new, new_cost

    @given(data=random_packets(), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_compiled_cost_function_equals_reference_on_move_chains(self, data, seed):
        packet, machine = data
        fast = PacketCostFunction(packet, machine, compiled=True)
        slow = PacketCostFunction(packet, machine, compiled=False)
        rng = np.random.default_rng(seed)
        state = PacketMapping()
        for _ in range(40):
            state = propose_move(packet, state, rng)
            assert fast.total_cost(state) == slow.total_cost(state)
            assert fast.incremental_delta(state.last_change) == pytest.approx(
                slow.incremental_delta(state.last_change), abs=1e-9
            )

    @given(data=random_packets(), seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_compiled_annealer_reproduces_reference_assignments(self, data, seed):
        from repro.core.packet_annealer import PacketAnnealer

        packet, machine = data
        fast = PacketAnnealer(SAConfig(seed=0)).anneal(packet, machine, rng=seed)
        slow = PacketAnnealer(SAConfig(seed=0, compiled=False)).anneal(packet, machine, rng=seed)
        # Same seed, same RNG stream, same accepted moves: the committed
        # mapping, its cost and the proposal counts must all coincide.
        assert fast.assignment == slow.assignment
        assert fast.best_cost == slow.best_cost
        assert fast.initial_cost == slow.initial_cost
        assert fast.n_proposals == slow.n_proposals
        assert fast.n_accepted == slow.n_accepted
        assert fast.n_temperature_steps == slow.n_temperature_steps

    @given(data=random_packets(), seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_random_initial_mapping_also_reproduced(self, data, seed):
        from repro.core.packet_annealer import PacketAnnealer

        packet, machine = data
        config_fast = SAConfig(seed=0, initial_mapping="random")
        config_slow = SAConfig(seed=0, initial_mapping="random", compiled=False)
        fast = PacketAnnealer(config_fast).anneal(packet, machine, rng=seed)
        slow = PacketAnnealer(config_slow).anneal(packet, machine, rng=seed)
        assert fast.assignment == slow.assignment
        assert fast.best_cost == slow.best_cost
