"""Tests for the generic simulated-annealing framework."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annealing.acceptance import (
    BoltzmannSigmoidAcceptance,
    GreedyAcceptance,
    MetropolisAcceptance,
)
from repro.annealing.annealer import Annealer, AnnealingRecord
from repro.annealing.cooling import (
    ConstantTemperature,
    GeometricCooling,
    LinearCooling,
    LogarithmicCooling,
)
from repro.annealing.problem import AnnealingProblem
from repro.annealing.stopping import (
    CombinedStopping,
    MaxIterationsStopping,
    StallStopping,
)


class TestAcceptance:
    def test_sigmoid_matches_equation_1(self):
        rule = BoltzmannSigmoidAcceptance()
        assert rule.probability(0.0, 1.0) == pytest.approx(0.5)
        assert rule.probability(1.0, 1.0) == pytest.approx(1.0 / (1.0 + math.e))
        assert rule.probability(-1.0, 1.0) == pytest.approx(1.0 - 1.0 / (1.0 + math.e))

    def test_sigmoid_zero_temperature_limit(self):
        # equation 2: deterministic acceptance of improving moves only
        rule = BoltzmannSigmoidAcceptance()
        assert rule.probability(-0.5, 0.0) == 1.0
        assert rule.probability(0.5, 0.0) == 0.0
        assert rule.probability(0.0, 0.0) == 0.0

    def test_sigmoid_infinite_temperature_limit(self):
        rule = BoltzmannSigmoidAcceptance()
        assert rule.probability(123.0, math.inf) == 0.5
        assert rule.probability(-123.0, math.inf) == 0.5

    def test_sigmoid_extreme_exponent_no_overflow(self):
        rule = BoltzmannSigmoidAcceptance()
        assert rule.probability(1e9, 1e-6) == 0.0
        assert rule.probability(-1e9, 1e-6) == 1.0

    def test_sigmoid_negative_temperature_rejected(self):
        with pytest.raises(ValueError):
            BoltzmannSigmoidAcceptance().probability(0.0, -1.0)

    def test_metropolis(self):
        rule = MetropolisAcceptance()
        assert rule.probability(-1.0, 0.5) == 1.0
        assert rule.probability(1.0, 1.0) == pytest.approx(math.exp(-1.0))
        assert rule.probability(1.0, 0.0) == 0.0

    def test_greedy(self):
        rule = GreedyAcceptance()
        assert rule.probability(-0.1, 100.0) == 1.0
        assert rule.probability(0.1, 100.0) == 0.0

    def test_accept_uses_rng(self):
        rule = BoltzmannSigmoidAcceptance()
        rng = np.random.default_rng(0)
        draws = [rule.accept(0.0, 1.0, rng) for _ in range(200)]
        # probability 0.5: both outcomes must occur
        assert any(draws) and not all(draws)

    @given(delta=st.floats(-50, 50), temp=st.floats(0.01, 100))
    @settings(max_examples=60, deadline=None)
    def test_probabilities_are_valid_and_monotone(self, delta, temp):
        rule = BoltzmannSigmoidAcceptance()
        p = rule.probability(delta, temp)
        assert 0.0 <= p <= 1.0
        # worse moves are never more likely than better ones
        assert rule.probability(delta + 1.0, temp) <= p + 1e-12


class TestCooling:
    def test_geometric(self):
        c = GeometricCooling(alpha=0.5)
        assert c.sequence(3, 8.0) == [8.0, 4.0, 2.0]

    def test_geometric_alpha_validation(self):
        with pytest.raises(ValueError):
            GeometricCooling(alpha=1.0)
        with pytest.raises(ValueError):
            GeometricCooling(alpha=0.0)

    def test_linear_hits_floor(self):
        c = LinearCooling(step=1.0, floor=0.5)
        assert c.temperature(10, 2.0) == 0.5

    def test_logarithmic_decreasing(self):
        c = LogarithmicCooling()
        temps = c.sequence(10, 5.0)
        assert all(a >= b for a, b in zip(temps, temps[1:]))

    def test_constant(self):
        c = ConstantTemperature()
        assert c.temperature(100, 3.0) == 3.0

    def test_negative_iteration_rejected(self):
        with pytest.raises(ValueError):
            GeometricCooling().temperature(-1, 1.0)


class TestStopping:
    def test_stall_stopping(self):
        rule = StallStopping(patience=3)
        rule.reset()
        costs = [5.0, 4.0, 4.0, 4.0, 4.0]
        decisions = [rule.should_stop(i, c) for i, c in enumerate(costs)]
        assert decisions == [False, False, False, False, True]

    def test_stall_resets_on_change(self):
        rule = StallStopping(patience=2)
        rule.reset()
        assert not rule.should_stop(0, 1.0)
        assert not rule.should_stop(1, 1.0)
        assert not rule.should_stop(2, 0.5)  # change resets the counter
        assert not rule.should_stop(3, 0.5)
        assert rule.should_stop(4, 0.5)

    def test_max_iterations(self):
        rule = MaxIterationsStopping(3)
        assert not rule.should_stop(0, 1.0)
        assert not rule.should_stop(1, 1.0)
        assert rule.should_stop(2, 1.0)

    def test_combined_any(self):
        rule = CombinedStopping([StallStopping(patience=10), MaxIterationsStopping(2)])
        rule.reset()
        assert not rule.should_stop(0, 1.0)
        assert rule.should_stop(1, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StallStopping(patience=0)
        with pytest.raises(ValueError):
            MaxIterationsStopping(0)
        with pytest.raises(ValueError):
            CombinedStopping([])


class _QuadraticProblem(AnnealingProblem):
    """Minimize (x - 3)^2 over integers via +-1 moves — a sanity problem."""

    def initial_state(self, rng):
        return 20

    def propose(self, state, rng):
        return state + int(rng.choice([-1, 1]))

    def cost(self, state):
        return float((state - 3) ** 2)


class TestAnnealer:
    def test_finds_near_optimum_of_quadratic(self):
        annealer = Annealer(
            moves_per_temperature=30,
            initial_temperature=10.0,
            stopping=MaxIterationsStopping(60),
        )
        result = annealer.run(_QuadraticProblem(), seed=1)
        assert abs(result.best_state - 3) <= 1
        assert result.best_cost <= 1.0

    def test_best_cost_never_worse_than_final(self):
        annealer = Annealer(moves_per_temperature=10, initial_temperature=5.0)
        result = annealer.run(_QuadraticProblem(), seed=2)
        assert result.best_cost <= result.final_cost + 1e-12

    def test_deterministic_given_seed(self):
        annealer = Annealer(moves_per_temperature=10, initial_temperature=5.0)
        r1 = annealer.run(_QuadraticProblem(), seed=7)
        r2 = annealer.run(_QuadraticProblem(), seed=7)
        assert r1.best_state == r2.best_state
        assert r1.n_proposals == r2.n_proposals

    def test_trajectory_recording(self):
        annealer = Annealer(
            moves_per_temperature=5,
            initial_temperature=5.0,
            stopping=MaxIterationsStopping(4),
            record_trajectory=True,
        )
        result = annealer.run(_QuadraticProblem(), seed=3)
        assert len(result.trajectory) == result.n_proposals == 20
        assert all(isinstance(r, AnnealingRecord) for r in result.trajectory)

    def test_callback_receives_state(self):
        seen = []
        annealer = Annealer(
            moves_per_temperature=5,
            initial_temperature=5.0,
            stopping=MaxIterationsStopping(2),
        )
        annealer.run(_QuadraticProblem(), seed=3, callback=lambda rec, state: seen.append(state))
        assert len(seen) == 10
        assert all(isinstance(s, int) for s in seen)

    def test_acceptance_ratio_between_zero_and_one(self):
        annealer = Annealer(moves_per_temperature=10, initial_temperature=1.0)
        result = annealer.run(_QuadraticProblem(), seed=4)
        assert 0.0 <= result.acceptance_ratio <= 1.0

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            Annealer(moves_per_temperature=0)
        with pytest.raises(ValueError):
            Annealer(initial_temperature=-1.0).run(_QuadraticProblem(), seed=0)

    def test_default_initial_temperature_estimation(self):
        problem = _QuadraticProblem()
        t0 = problem.initial_temperature(np.random.default_rng(0))
        assert t0 > 0


class _DriftingProblem(AnnealingProblem):
    """1-D quadratic whose incremental deltas carry a deliberate bias.

    Without per-temperature resynchronization the tracked cost diverges from
    the true cost by ~0.01 per accepted move.
    """

    def initial_state(self, rng):
        return 10.0

    def propose(self, state, rng):
        return state + float(rng.normal(0.0, 1.0))

    def cost(self, state):
        return state * state

    def cost_delta(self, state, new_state, state_cost):
        return (new_state * new_state - state * state) + 0.01


class TestIncrementalCostResync:
    def test_final_cost_resynchronized_against_drift(self):
        annealer = Annealer(moves_per_temperature=10)
        result = annealer.run(_DriftingProblem(), seed=0)
        # The biased deltas would otherwise accumulate ~0.01 * n_accepted of
        # drift; the per-temperature resync pins the final cost to the truth.
        assert result.final_cost == pytest.approx(result.final_state**2, abs=1e-9)
        assert result.n_accepted > 0

    def test_resync_tolerance_validated(self):
        with pytest.raises(ValueError):
            Annealer(resync_tolerance=-1.0)
