"""The workload zoo: structural contracts, determinism, engines and goldens.

Four layers of coverage for the pegasus/elementary/irw families:

* **registry** — every :class:`FamilySpec`'s closed-form count formulas hold
  for the calibrated default and large parameter sets, the large instance
  really is a >= 1000-task policy-study graph, groups partition the
  registry, and unknown keys fail loudly;
* **properties (hypothesis)** — across each family's full parameter grid and
  arbitrary seeds: the built graph passes ``validate()``, matches the
  registry count formulas, draws strictly positive durations (>= the shared
  ``MIN_DURATION`` floor) and non-negative communication weights, and is
  bit-reproducible (fixed seed ⇒ identical structural fingerprint);
* **differential** — each family runs through the object, fast and batched
  engines at both fidelities on homogeneous and heterogeneous machines,
  fingerprint-identical cell for cell, plus one mixed 14-lane batch;
* **golden** — one representative (family, machine, policy) cell per family
  is pinned in ``tests/golden/families.json`` (regenerate with
  ``python -m pytest tests/test_families.py --regen-golden``).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.comm.model import LinearCommModel
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.machine.machine import Machine
from repro.schedulers.etf import ETFScheduler
from repro.sim.batch_engine import run_batch
from repro.sim.compile import compile_scenario
from repro.sim.engine import simulate
from repro.sim.fast_engine import run_compiled
from repro.taskgraph.families import (
    FAMILIES,
    FAMILY_GROUPS,
    build_family,
    families_in_group,
    family_names,
    structural_fingerprint,
)
from repro.taskgraph.generators import MIN_DURATION

FAMILY_KEYS = sorted(FAMILIES)

# --------------------------------------------------------------------------- #
# Registry contracts
# --------------------------------------------------------------------------- #


class TestRegistry:
    def test_at_least_twelve_families(self):
        assert len(FAMILIES) >= 12

    def test_groups_partition_the_registry(self):
        assert sorted(FAMILY_GROUPS) == ["elementary", "irw", "pegasus"]
        flattened = [k for keys in FAMILY_GROUPS.values() for k in keys]
        assert sorted(flattened) == FAMILY_KEYS
        for group, keys in FAMILY_GROUPS.items():
            assert [s.key for s in families_in_group(group)] == keys

    @pytest.mark.parametrize("key", FAMILY_KEYS)
    def test_default_build_matches_count_formulas(self, key):
        spec = FAMILIES[key]
        graph = spec.build(seed=0)
        assert graph.n_tasks == spec.expected_tasks(**spec.default_params)
        assert graph.n_edges == spec.expected_edges(**spec.default_params)

    @pytest.mark.parametrize("key", FAMILY_KEYS)
    def test_large_build_is_a_policy_study_instance(self, key):
        spec = FAMILIES[key]
        expected = spec.expected_tasks(**spec.large_params)
        assert expected >= 1000
        # crossv's 111k-edge instance is exercised by the formula check only
        # at registry level; building it here would dominate suite runtime.
        if key == "crossv":
            return
        graph = spec.build_large(seed=0)
        assert graph.n_tasks == expected
        assert graph.n_edges == spec.expected_edges(**spec.large_params)

    def test_unknown_keys_fail_loudly(self):
        with pytest.raises(KeyError, match="unknown graph family"):
            build_family("no-such-family")
        with pytest.raises(KeyError, match="unknown family group"):
            families_in_group("no-such-group")

    def test_family_names_are_registry_order(self):
        assert family_names() == list(FAMILIES)


# --------------------------------------------------------------------------- #
# Hypothesis properties over each family's parameter grid
# --------------------------------------------------------------------------- #

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def _family_instance(draw):
    """(spec, params drawn from the spec's grid, seed)."""
    spec = draw(st.sampled_from([FAMILIES[k] for k in FAMILY_KEYS]))
    params = {
        name: draw(st.integers(lo, hi))
        for name, (lo, hi) in sorted(spec.param_grid.items())
    }
    seed = draw(st.integers(0, 10_000))
    return spec, params, seed


class TestFamilyProperties:
    @given(instance=_family_instance())
    @_SETTINGS
    def test_built_graph_is_valid_and_counts_match(self, instance):
        spec, params, seed = instance
        graph = spec.build(seed=seed, **params)
        graph.validate()
        assert graph.n_tasks == spec.expected_tasks(**{**spec.default_params, **params})
        assert graph.n_edges == spec.expected_edges(**{**spec.default_params, **params})

    @given(instance=_family_instance())
    @_SETTINGS
    def test_durations_positive_and_comm_non_negative(self, instance):
        spec, params, seed = instance
        graph = spec.build(seed=seed, **params)
        for task in graph.tasks:
            assert graph.duration(task) >= MIN_DURATION
        for _, _, weight in graph.edges():
            assert weight >= 0.0

    @given(instance=_family_instance())
    @_SETTINGS
    def test_fixed_seed_reproduces_the_graph_bit_for_bit(self, instance):
        spec, params, seed = instance
        first = spec.build(seed=seed, **params)
        second = spec.build(seed=seed, **params)
        assert structural_fingerprint(first) == structural_fingerprint(second)

    @given(instance=_family_instance())
    @_SETTINGS
    def test_seed_actually_steers_the_draws(self, instance):
        spec, params, seed = instance
        if spec.key == "duration_stairs":
            return  # deterministic ramp: seed intentionally unused
        first = spec.build(seed=seed, **params)
        second = spec.build(seed=seed + 1, **params)
        assert structural_fingerprint(first) != structural_fingerprint(second)


# --------------------------------------------------------------------------- #
# Differential: object vs fast vs batched engines, both fidelities
# --------------------------------------------------------------------------- #

_MACHINES = {
    "hom": lambda: Machine.hypercube(3),
    "het": lambda: Machine.ring(
        7,
        speeds=[1.0, 2.0, 1.0, 3.0, 1.0, 0.5, 1.0],
        link_weights={(0, 1): 2.0, (3, 4): 0.5},
    ),
}


class TestEngineEquivalence:
    @pytest.mark.parametrize("machine_kind", sorted(_MACHINES))
    @pytest.mark.parametrize("key", FAMILY_KEYS)
    def test_object_fast_and_batched_engines_agree(self, key, machine_kind):
        graph = FAMILIES[key].build(seed=3)
        machine = _MACHINES[machine_kind]()
        comm = LinearCommModel()
        graph.validate()
        scenario = compile_scenario(graph, machine, comm, levels=graph.levels())
        for fidelity in ("latency", "contention"):
            obj = simulate(
                graph, machine, ETFScheduler(), comm_model=comm,
                fidelity=fidelity, record_trace=False, fast=False,
            )
            fast = simulate(
                graph, machine, ETFScheduler(), comm_model=comm,
                fidelity=fidelity, record_trace=False, fast=True,
            )
            [batched] = run_batch([(scenario, ETFScheduler())], fidelity=fidelity)
            assert obj.fingerprint() == fast.fingerprint(), f"{key}/{fidelity}"
            assert fast.fingerprint() == batched.fingerprint(), f"{key}/{fidelity}"
            assert obj.task_processor == batched.task_processor

    @pytest.mark.parametrize("fidelity", ["latency", "contention"])
    def test_all_families_in_one_mixed_batch(self, fidelity):
        """Fourteen ragged family lanes in lock-step match their solo runs."""
        comm = LinearCommModel()
        machines = [_MACHINES["hom"](), _MACHINES["het"]()]
        lanes = []
        for i, key in enumerate(FAMILY_KEYS):
            graph = FAMILIES[key].build(seed=i)
            graph.validate()
            machine = machines[i % 2]
            scenario = compile_scenario(graph, machine, comm, levels=graph.levels())
            lanes.append((scenario, ETFScheduler()))
        batched = run_batch(
            [(s, ETFScheduler()) for s, _ in lanes], fidelity=fidelity
        )
        for (scenario, _), result in zip(lanes, batched):
            policy = ETFScheduler()
            policy.reset()
            solo = run_compiled(scenario, policy, fidelity=fidelity)
            assert solo.fingerprint() == result.fingerprint()


# --------------------------------------------------------------------------- #
# Golden-pinned representative cells
# --------------------------------------------------------------------------- #

_SA_REPRESENTATIVES = {"montage", "bigmerge", "mapreduce"}  # one per group


def _golden_cells():
    cells = [(key, "ETF") for key in FAMILY_KEYS]
    cells += [(key, "SA") for key in sorted(_SA_REPRESENTATIVES)]
    return cells


@pytest.mark.parametrize(
    "key,policy_name", _golden_cells(),
    ids=[f"{k}-{p}" for k, p in _golden_cells()],
)
def test_family_cell_matches_golden_trace(key, policy_name, golden_families):
    graph = FAMILIES[key].build(seed=0)
    machine = Machine.hypercube(3)
    policy = (
        SAScheduler(SAConfig.paper_defaults(seed=1))
        if policy_name == "SA"
        else ETFScheduler()
    )
    result = simulate(
        graph, machine, policy,
        comm_model=LinearCommModel(), record_trace=True,
    )
    result.trace.validate(FAMILIES[key].build(seed=0))
    golden_families.check(f"{key}|hypercube8|{policy_name}", result.fingerprint())
