"""Tests for the parallel experiment sweep runner."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError, WorkerError
from repro.experiments.sweep import (
    GRAPH_FAMILIES,
    HETERO_MACHINES,
    MACHINE_BUILDERS,
    POLICY_BUILDERS,
    build_grid,
    comparable_aggregates,
    comparable_rows,
    format_sweep_report,
    hetero_machine,
    main,
    parallel_map,
    run_lane_group,
    run_scenario,
    run_sweep,
    speed_ramp,
)
from repro.utils.chaos import FAULT_KINDS, ChaosConfig


def _poison_family(seed):
    """A graph family whose builder always fails (poisoned-spec tests)."""
    raise ValueError(f"poisoned family for seed {seed}")


def _spec(seed, family="layered", policy="HLF"):
    return {
        "policy": policy,
        "machine": "hypercube8",
        "family": family,
        "graph_seed": seed,
        "policy_seed": seed,
        "with_comm": True,
        "fidelity": "latency",
    }


class TestGrid:
    def test_default_grid_size(self):
        grid = build_grid()
        assert len(grid) == 3 * 2 * 2 * 17  # policies x machines x families x seeds
        assert len(grid) >= 200

    def test_grid_is_fully_specified(self):
        for spec in build_grid(n_seeds=2):
            assert spec["policy"] in POLICY_BUILDERS
            assert spec["machine"] in MACHINE_BUILDERS
            assert spec["family"] in GRAPH_FAMILIES
            assert isinstance(spec["graph_seed"], int)

    def test_unknown_keys_rejected_early(self):
        with pytest.raises(KeyError):
            build_grid(policies=("NOPE",))
        with pytest.raises(KeyError):
            build_grid(machines=("NOPE",))
        with pytest.raises(KeyError):
            build_grid(families=("NOPE",))

    def test_comm_settings_expand(self):
        grid = build_grid(policies=("HLF",), machines=("hypercube8",),
                          families=("layered",), n_seeds=1, comm=(False, True))
        assert [g["with_comm"] for g in grid] == [False, True]


class TestScenario:
    def test_run_scenario_returns_complete_row(self):
        spec = {
            "policy": "HLF",
            "machine": "hypercube8",
            "family": "layered",
            "graph_seed": 0,
            "policy_seed": 0,
            "with_comm": True,
            "fidelity": "latency",
        }
        row = run_scenario(spec)
        assert row["error"] is None
        assert row["makespan"] > 0
        assert 0 < row["speedup"] <= 8
        assert row["runtime_s"] >= 0

    def test_scenario_is_deterministic(self):
        spec = {
            "policy": "SA",
            "machine": "ring9",
            "family": "dag",
            "graph_seed": 3,
            "policy_seed": 3,
            "with_comm": True,
            "fidelity": "latency",
        }
        assert run_scenario(spec)["makespan"] == run_scenario(spec)["makespan"]

    def test_row_reports_cache_and_fallback_counters(self):
        spec = {
            "policy": "SA",
            "machine": "hypercube8",
            "family": "layered",
            "graph_seed": 5,
            "policy_seed": 5,
            "with_comm": True,
            "fidelity": "latency",
        }
        row = run_scenario(spec)
        assert row["error"] is None
        # SA is fully kernelized in the fast engine: no materialized contexts.
        assert row["n_fallback_epochs"] == 0
        assert row["compile_cache_hits"] + row["compile_cache_misses"] >= 1
        # Same spec again in this process: graph/machine come from the worker
        # caches, so the compiled scenario memo must hit.
        again = run_scenario(spec)
        assert again["compile_cache_hits"] >= 1
        assert again["compile_cache_misses"] == 0
        assert again["makespan"] == row["makespan"]

    def test_replicas_spec_changes_sa_only(self):
        base = {
            "machine": "hypercube8",
            "family": "layered",
            "graph_seed": 1,
            "policy_seed": 1,
            "with_comm": True,
            "fidelity": "latency",
        }
        sa = run_scenario({**base, "policy": "SA", "replicas": 3})
        sa2 = run_scenario({**base, "policy": "SA", "replicas": 3})
        assert sa["error"] is None
        assert sa["makespan"] == sa2["makespan"]  # deterministic
        hlf = run_scenario({**base, "policy": "HLF", "replicas": None})
        assert hlf["error"] is None


class TestSweep:
    def _small_kwargs(self):
        return dict(
            policies=("HLF", "SA"),
            machines=("hypercube8",),
            families=("layered",),
            n_seeds=2,
        )

    def test_serial_sweep_report_structure(self):
        report = run_sweep(jobs=1, **self._small_kwargs())
        assert report["meta"]["n_simulations"] == 4
        assert report["meta"]["n_failed"] == 0
        assert len(report["results"]) == 4
        assert len(report["aggregates"]) == 2  # one per policy
        for aggregate in report["aggregates"]:
            assert aggregate["n"] == 2
            assert aggregate["mean_speedup"] > 0

    def test_parallel_equals_serial(self):
        serial = run_sweep(jobs=1, **self._small_kwargs())
        parallel = run_sweep(jobs=2, **self._small_kwargs())
        serial_makespans = [r["makespan"] for r in serial["results"]]
        parallel_makespans = [r["makespan"] for r in parallel["results"]]
        assert serial_makespans == parallel_makespans

    def test_report_written_to_json(self, tmp_path):
        out = tmp_path / "report.json"
        run_sweep(jobs=1, out=str(out), **self._small_kwargs())
        loaded = json.loads(out.read_text())
        assert loaded["meta"]["n_simulations"] == 4

    def test_format_sweep_report(self):
        report = run_sweep(jobs=1, **self._small_kwargs())
        text = format_sweep_report(report)
        assert "Sweep: 4 simulations" in text
        assert "HLF" in text and "SA" in text

    def test_meta_surfaces_cache_and_fallback_totals(self):
        report = run_sweep(jobs=1, **self._small_kwargs())
        meta = report["meta"]
        assert meta["n_fallback_epochs"] == 0  # every builtin policy kernelized
        cache = meta["compile_cache"]
        assert cache["hits"] + cache["misses"] >= 1
        # Paired policies over the same (graph, machine, model) hit the memo.
        assert cache["hits"] >= 1

    def test_replicas_validated_early(self):
        with pytest.raises(ValueError, match="replicas"):
            build_grid(policies=("SA",), machines=("hypercube8",),
                       families=("layered",), n_seeds=1, replicas=0)
        with pytest.raises(ValueError, match="replicas"):
            run_sweep(jobs=1, replicas=-1, policies=("SA",),
                      machines=("hypercube8",), families=("layered",), n_seeds=1)

    def test_replicas_threads_into_sa_rows(self):
        grid = build_grid(policies=("HLF", "SA"), machines=("hypercube8",),
                          families=("layered",), n_seeds=1, replicas=4)
        by_policy = {g["policy"]: g for g in grid}
        assert by_policy["SA"]["replicas"] == 4
        assert by_policy["HLF"]["replicas"] is None
        report = run_sweep(jobs=1, replicas=2, **self._small_kwargs())
        assert report["meta"]["replicas"] == 2
        assert report["meta"]["n_failed"] == 0

    def test_replicas_cli_flag(self, tmp_path):
        out = tmp_path / "replicas.json"
        assert main(["--jobs", "1", "--seeds", "1", "--policies", "SA",
                     "--machines", "hypercube8", "--families", "layered",
                     "--replicas", "2", "--out", str(out)]) == 0
        loaded = json.loads(out.read_text())
        assert loaded["meta"]["replicas"] == 2
        assert loaded["results"][0]["replicas"] == 2


class TestLanes:
    _kwargs = dict(
        policies=("HLF", "ETF", "SA"),
        machines=("hypercube8", "ring9"),
        families=("layered",),
        n_seeds=2,
    )

    @staticmethod
    def _strip(rows):
        """Drop the timing/provenance/cache fields that legitimately vary
        (the scenario memo persists in-process, so a second sweep in the
        same test sees different hit/miss counts)."""
        varying = (
            "runtime_s", "worker_pid", "compile_cache_hits", "compile_cache_misses",
            "engine_used", "attempts", "supervisor_failures",
        )
        return [
            {k: v for k, v in row.items() if k not in varying} for row in rows
        ]

    def test_lane_rows_identical_to_solo(self):
        solo = run_sweep(jobs=1, **self._kwargs)
        laned = run_sweep(jobs=1, lanes=3, **self._kwargs)
        assert self._strip(laned["results"]) == self._strip(solo["results"])

    def test_lanes_compose_with_jobs(self):
        solo = run_sweep(jobs=1, **self._kwargs)
        laned = run_sweep(jobs=2, lanes=4, **self._kwargs)
        assert self._strip(laned["results"]) == self._strip(solo["results"])

    def test_lanes_validated_and_capped(self):
        with pytest.raises(ValueError, match="lanes"):
            run_sweep(jobs=1, lanes=0, **self._kwargs)
        report = run_sweep(jobs=1, lanes=999, **self._kwargs)
        meta = report["meta"]["lanes"]
        assert meta["requested"] == 999
        # Auto-capped at the grid size; SA rows (replicas or not) still lane.
        assert meta["effective"] <= report["meta"]["n_simulations"]
        assert report["meta"]["n_failed"] == 0

    def test_lane_meta_records_configuration(self):
        report = run_sweep(jobs=1, lanes=3, **self._kwargs)
        meta = report["meta"]["lanes"]
        assert meta["requested"] == 3
        assert meta["effective"] == 3
        assert meta["n_groups"] >= 1
        assert meta["n_lane_rows"] == len(meta["per_lane_fallback_epochs"])
        assert meta["n_lane_rows"] > 0
        # Every builtin policy is kernelized: no materialized contexts.
        assert set(meta["per_lane_fallback_epochs"]) == {0}

    def test_replica_rows_stay_solo(self):
        report = run_sweep(jobs=1, lanes=4, replicas=2, **self._kwargs)
        meta = report["meta"]["lanes"]
        # SA rows carry replicas and are excluded from the lane groups.
        n_sa = sum(1 for r in report["results"] if r["policy"] == "SA")
        assert meta["n_lane_rows"] == report["meta"]["n_simulations"] - n_sa
        assert report["meta"]["n_failed"] == 0

    def test_cache_stats_aggregated_across_workers(self):
        report = run_sweep(jobs=2, lanes=2, **self._kwargs)
        cache = report["meta"]["compile_cache"]
        assert cache["hits"] + cache["misses"] >= 1
        assert 1 <= cache["n_workers"] <= 2

    def test_lanes_cli_flag(self, tmp_path, capsys):
        out = tmp_path / "lanes.json"
        assert main(["--jobs", "1", "--lanes", "3", "--seeds", "2",
                     "--policies", "HLF", "ETF",
                     "--machines", "hypercube8", "--families", "layered",
                     "--out", str(out)]) == 0
        loaded = json.loads(out.read_text())
        assert loaded["meta"]["lanes"]["effective"] == 3
        assert loaded["meta"]["n_failed"] == 0

    def test_lanes_cli_rejects_non_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["--lanes", "0"])


class TestParallelMap:
    def test_preserves_order(self):
        items = [{"policy": "HLF", "machine": "hypercube8", "family": "layered",
                  "graph_seed": s, "policy_seed": s, "with_comm": True,
                  "fidelity": "latency"} for s in range(4)]
        rows = parallel_map(run_scenario, items, jobs=2)
        assert [r["graph_seed"] for r in rows] == [0, 1, 2, 3]

    def test_serial_fallback(self):
        rows = parallel_map(run_scenario, [], jobs=4)
        assert rows == []


class TestHeteroScenarios:
    def test_speed_ramp_spans_spread(self):
        ramp = speed_ramp(9, 4.0)
        assert ramp[0] == 1.0
        assert ramp[-1] == pytest.approx(4.0)
        assert ramp == sorted(ramp)

    def test_speed_ramp_unit_spread_is_homogeneous(self):
        assert speed_ramp(9, 1.0) is None

    def test_hetero_registry_has_nine_machines(self):
        assert len(HETERO_MACHINES) == 9
        for name in HETERO_MACHINES:
            machine = MACHINE_BUILDERS[name]()
            assert machine.is_heterogeneous  # all carry weighted links
            assert not machine.has_unit_link_weights

    def test_hetero_spreads_set_speeds(self):
        assert hetero_machine("ring9", 1.0).has_unit_speeds
        m = hetero_machine("ring9", 4.0)
        assert not m.has_unit_speeds
        assert max(m.speeds) / min(m.speeds) == pytest.approx(4.0)
        with pytest.raises(KeyError):
            hetero_machine("bogus", 2.0)

    def test_hetero_grid_covers_54_cells(self):
        grid = build_grid(policies=("HLF", "ETF", "SA"), machines=HETERO_MACHINES,
                          families=("layered", "dag"), n_seeds=1)
        cells = {(g["policy"], g["machine"], g["family"]) for g in grid}
        assert len(cells) == 54

    def test_hetero_scenario_runs(self):
        spec = {
            "policy": "HLF",
            "machine": "hetero-ring9-4x",
            "family": "layered",
            "graph_seed": 0,
            "policy_seed": 0,
            "with_comm": True,
            "fidelity": "latency",
        }
        row = run_scenario(spec)
        assert row["error"] is None
        assert row["makespan"] > 0


class TestFailureTaxonomy:
    """Satellite coverage: poisoned specs, worker exceptions, the engine
    degradation ladder, and lane-group fallback parity."""

    def test_poisoned_spec_produces_structured_error_row(self, monkeypatch):
        monkeypatch.setitem(GRAPH_FAMILIES, "poison", _poison_family)
        row = run_scenario(_spec(0, family="poison"))
        assert row["makespan"] is None
        assert row["error"] == "ValueError: poisoned family for seed 0"
        assert row["error_type"] == "ValueError"
        assert "poisoned family" in row["traceback"]
        assert row["engine_used"] is None

    def test_sweep_carries_error_rows_and_fault_taxonomy(self, monkeypatch):
        monkeypatch.setitem(GRAPH_FAMILIES, "poison", _poison_family)
        report = run_sweep(
            jobs=1, policies=("HLF",), machines=("hypercube8",),
            families=("layered", "poison"), n_seeds=2, retries=0,
        )
        assert report["meta"]["n_simulations"] == 4
        assert report["meta"]["n_failed"] == 2
        assert report["meta"]["faults"]["errors"] == {"ValueError": 2}
        for row in report["results"]:
            if row["family"] == "poison":
                assert row["error_type"] == "ValueError" and row["traceback"]
            else:
                assert row["error"] is None and row["error_type"] is None
        healthy = [a for a in report["aggregates"] if a["family"] == "layered"]
        assert healthy[0]["n_failed"] == 0 and healthy[0]["mean_speedup"] > 0

    def test_fast_engine_failure_degrades_to_object(self, monkeypatch):
        import repro.sim.engine as engine_mod

        expected = run_scenario(_spec(1))
        assert expected["engine_used"] == "fast"

        def boom(*args, **kwargs):
            raise RuntimeError("fast engine exploded")

        monkeypatch.setattr(engine_mod, "run_compiled", boom)
        row = run_scenario(_spec(1))
        assert row["error"] is None
        assert row["engine_used"] == "object"
        assert len(row["engine_fallbacks"]) == 1
        fallback = row["engine_fallbacks"][0]
        assert fallback["from"] == "fast" and fallback["to"] == "object"
        assert fallback["error_type"] == "RuntimeError"
        assert "fast engine exploded" in fallback["traceback"]
        # The ladder never changes the numbers: both engines are bit-identical.
        assert row["makespan"] == expected["makespan"]
        assert row["speedup"] == expected["speedup"]

    def test_lane_group_quarantines_poisoned_cell(self, monkeypatch):
        monkeypatch.setitem(GRAPH_FAMILIES, "poison", _poison_family)
        specs = [_spec(0), _spec(1, family="poison"), _spec(2)]
        rows = run_lane_group([dict(s) for s in specs])
        # Healthy lanes still ran batched, unaffected by the poisoned cell.
        for pos in (0, 2):
            assert rows[pos]["error"] is None
            assert rows[pos]["engine_used"] == "batched"
            assert rows[pos]["lane_fallback"] is None
            solo = run_scenario(dict(specs[pos]))
            assert rows[pos]["makespan"] == solo["makespan"]
        # The poisoned cell carries its own error row plus the reason it
        # left the batched tier.
        bad = rows[1]
        assert bad["error_type"] == "ValueError"
        assert bad["lane_fallback"]["error_type"] == "ValueError"
        assert "poisoned family" in bad["lane_fallback"]["error"]

    def test_lane_group_run_failure_quarantines_every_lane(self, monkeypatch):
        specs = [_spec(0), _spec(1)]
        solo_rows = [run_scenario(dict(s)) for s in specs]

        def boom(lanes, fidelity):
            raise RuntimeError("batched engine blew up")

        monkeypatch.setattr("repro.experiments.sweep.run_lanes", boom)
        rows = run_lane_group([dict(s) for s in specs])
        for solo, row in zip(solo_rows, rows):
            assert row["error"] is None
            assert row["lane_fallback"]["error_type"] == "RuntimeError"
            assert row["engine_used"] == "fast"
            assert row["makespan"] == solo["makespan"]
            # The solo fallback re-measures its own compile-cache traffic
            # (so meta.compile_cache stays accurate).
            assert row["compile_cache_hits"] + row["compile_cache_misses"] >= 1

    def test_lane_fallbacks_surface_in_sweep_meta(self, monkeypatch):
        monkeypatch.setattr(
            "repro.experiments.sweep.run_lanes",
            lambda lanes, fidelity: (_ for _ in ()).throw(RuntimeError("nope")),
        )
        report = run_sweep(
            jobs=1, lanes=4, policies=("HLF", "ETF"), machines=("hypercube8",),
            families=("layered",), n_seeds=2, retries=0,
        )
        assert report["meta"]["n_failed"] == 0
        assert report["meta"]["faults"]["lane_fallbacks"] == {"RuntimeError": 4}

    def test_parallel_map_raises_worker_error_on_failure(self):
        def boom(item):
            raise ValueError("exploding worker")

        with pytest.raises(WorkerError, match="ValueError: exploding worker"):
            parallel_map(boom, [{"x": 1}], jobs=1)
        try:
            parallel_map(boom, [{"x": 1}], jobs=1)
        except WorkerError as exc:
            assert exc.error_type == "ValueError"
            assert "exploding worker" in exc.traceback


class TestChaosDifferential:
    """The acceptance contract: with seeded faults injected, the sweep must
    complete with science rows bit-identical to a fault-free run."""

    _kwargs = dict(
        policies=("HLF", "ETF"),
        machines=("hypercube8",),
        families=("layered",),
        n_seeds=8,
    )

    def test_chaotic_sweep_is_bit_identical_to_clean(self):
        clean = run_sweep(jobs=1, **self._kwargs)
        # Seed 3 provably injects faults on this grid: retries, a timeout
        # kill, and a worker death all fire (asserted below), exercising
        # every recovery path at --jobs 4 --lanes 8.
        chaos = ChaosConfig(rate=0.35, seed=3, hang_s=20.0)
        chaotic = run_sweep(
            jobs=4, lanes=8, timeout=2.0, retries=8,
            chaos=chaos, supervisor_seed=3, **self._kwargs,
        )
        stats = chaotic["meta"]["supervisor"]["stats"]
        assert stats["retries"] + stats["timeouts"] + stats["worker_deaths"] > 0
        assert chaotic["meta"]["n_failed"] == 0
        assert comparable_rows(chaotic) == comparable_rows(clean)
        assert comparable_aggregates(chaotic) == comparable_aggregates(clean)
        assert chaotic["meta"]["supervisor"]["chaos"] == {
            "rate": 0.35, "kinds": list(FAULT_KINDS), "seed": 3, "hang_s": 20.0,
        }

    def test_chaos_hang_faults_require_a_timeout(self):
        with pytest.raises(ConfigurationError, match="hang"):
            run_sweep(jobs=1, chaos=ChaosConfig(rate=0.1), **self._kwargs)


class TestCheckpointResume:
    _kwargs = dict(
        policies=("HLF", "ETF"),
        machines=("hypercube8",),
        families=("layered",),
        n_seeds=4,
    )

    def test_checkpoint_journals_every_completed_row(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        report = run_sweep(jobs=1, checkpoint=str(path), **self._kwargs)
        entries = [json.loads(line) for line in path.read_text().splitlines()]
        assert entries[0]["kind"] == "header"
        rows = [e for e in entries if e["kind"] == "row"]
        assert len(rows) == report["meta"]["n_simulations"]

    def test_kill_and_resume_reproduces_identical_report(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        full = run_sweep(jobs=1, **self._kwargs)
        run_sweep(jobs=1, checkpoint=str(path), **self._kwargs)
        # Simulate a kill mid-run: keep the header + the first 3 completed
        # rows, plus a partial trailing line from the interrupted write.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:4]) + "\n" + lines[4][:25])
        resumed = run_sweep(
            jobs=2, lanes=4, checkpoint=str(path), resume=True, **self._kwargs
        )
        meta = resumed["meta"]["resume"]
        assert meta["resumed"] is True
        assert meta["n_restored"] == 3
        assert meta["n_executed"] == resumed["meta"]["n_simulations"] - 3
        assert comparable_rows(resumed) == comparable_rows(full)
        assert comparable_aggregates(resumed) == comparable_aggregates(full)
        # The journal is complete again after the resumed run.
        entries = [json.loads(line) for line in path.read_text().splitlines()]
        assert sum(1 for e in entries if e["kind"] == "row") >= len(
            resumed["results"]
        )

    def test_resume_requires_a_checkpoint_path(self):
        with pytest.raises(ConfigurationError, match="checkpoint"):
            run_sweep(jobs=1, resume=True, **self._kwargs)

    def test_resume_refuses_a_checkpoint_from_another_grid(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        run_sweep(jobs=1, checkpoint=str(path), **self._kwargs)
        with pytest.raises(ConfigurationError, match="different sweep"):
            run_sweep(
                jobs=1, checkpoint=str(path), resume=True,
                **dict(self._kwargs, n_seeds=2),
            )


class TestSupervisionCli:
    _base = [
        "--seeds", "4", "--policies", "HLF",
        "--machines", "hypercube8", "--families", "layered",
    ]

    def test_chaos_with_hang_requires_timeout(self, capsys):
        with pytest.raises(SystemExit):
            main(self._base + ["--chaos", "0.2"])  # default kinds include hang

    def test_flag_validation(self, capsys):
        with pytest.raises(SystemExit):
            main(self._base + ["--chaos", "1.5"])
        with pytest.raises(SystemExit):
            main(self._base + ["--retries", "-1"])
        with pytest.raises(SystemExit):
            main(self._base + ["--timeout", "0"])

    def test_chaos_cli_run_matches_clean_run(self, tmp_path, capsys):
        clean_out = tmp_path / "clean.json"
        assert main(self._base + ["--jobs", "1", "--out", str(clean_out)]) == 0
        chaos_out = tmp_path / "chaos.json"
        assert main(self._base + [
            "--jobs", "2", "--retries", "8",
            "--chaos", "0.4", "--chaos-kinds", "raise", "malform",
            "--chaos-seed", "3", "--maxtasksperchild", "4",
            "--out", str(chaos_out),
        ]) == 0
        clean = json.loads(clean_out.read_text())
        chaotic = json.loads(chaos_out.read_text())
        supervisor = chaotic["meta"]["supervisor"]
        assert supervisor["chaos"]["rate"] == 0.4
        assert supervisor["chaos"]["kinds"] == ["raise", "malform"]
        assert supervisor["maxtasksperchild"] == 4
        assert chaotic["meta"]["n_failed"] == 0
        assert comparable_rows(chaotic) == comparable_rows(clean)
        assert comparable_aggregates(chaotic) == comparable_aggregates(clean)

    def test_resume_cli_restores_all_finished_cells(self, tmp_path, capsys):
        ckpt = tmp_path / "run.ckpt.jsonl"
        first_out = tmp_path / "first.json"
        assert main(self._base + [
            "--checkpoint", str(ckpt), "--out", str(first_out),
        ]) == 0
        second_out = tmp_path / "second.json"
        assert main(self._base + [
            "--checkpoint", str(ckpt), "--resume", "--out", str(second_out),
        ]) == 0
        first = json.loads(first_out.read_text())
        second = json.loads(second_out.read_text())
        meta = second["meta"]["resume"]
        assert meta["resumed"] is True
        assert meta["n_restored"] == second["meta"]["n_simulations"]
        assert meta["n_executed"] == 0
        assert comparable_rows(second) == comparable_rows(first)


class TestCli:
    def test_hetero_flag_selects_hetero_grid(self, tmp_path, capsys):
        out = tmp_path / "hetero.json"
        code = main([
            "--hetero", "--jobs", "2", "--seeds", "1",
            "--policies", "HLF",
            "--families", "layered",
            "--out", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["meta"]["machines"] == HETERO_MACHINES
        assert report["meta"]["n_simulations"] == 9
        assert report["meta"]["n_failed"] == 0

    def test_hetero_conflicts_with_explicit_machines(self, capsys):
        with pytest.raises(SystemExit):
            main(["--hetero", "--machines", "hypercube8"])

    def test_main_writes_report(self, tmp_path, capsys):
        out = tmp_path / "cli_report.json"
        code = main([
            "--jobs", "2", "--seeds", "2",
            "--policies", "HLF", "SA",
            "--machines", "hypercube8",
            "--families", "layered",
            "--out", str(out),
        ])
        assert code == 0
        assert json.loads(out.read_text())["meta"]["n_simulations"] == 4
        captured = capsys.readouterr()
        assert "report written" in captured.out
