"""Tests for the parallel experiment sweep runner."""

from __future__ import annotations

import json

import pytest

from repro.experiments.sweep import (
    GRAPH_FAMILIES,
    HETERO_MACHINES,
    MACHINE_BUILDERS,
    POLICY_BUILDERS,
    build_grid,
    format_sweep_report,
    hetero_machine,
    main,
    parallel_map,
    run_scenario,
    run_sweep,
    speed_ramp,
)


class TestGrid:
    def test_default_grid_size(self):
        grid = build_grid()
        assert len(grid) == 3 * 2 * 2 * 17  # policies x machines x families x seeds
        assert len(grid) >= 200

    def test_grid_is_fully_specified(self):
        for spec in build_grid(n_seeds=2):
            assert spec["policy"] in POLICY_BUILDERS
            assert spec["machine"] in MACHINE_BUILDERS
            assert spec["family"] in GRAPH_FAMILIES
            assert isinstance(spec["graph_seed"], int)

    def test_unknown_keys_rejected_early(self):
        with pytest.raises(KeyError):
            build_grid(policies=("NOPE",))
        with pytest.raises(KeyError):
            build_grid(machines=("NOPE",))
        with pytest.raises(KeyError):
            build_grid(families=("NOPE",))

    def test_comm_settings_expand(self):
        grid = build_grid(policies=("HLF",), machines=("hypercube8",),
                          families=("layered",), n_seeds=1, comm=(False, True))
        assert [g["with_comm"] for g in grid] == [False, True]


class TestScenario:
    def test_run_scenario_returns_complete_row(self):
        spec = {
            "policy": "HLF",
            "machine": "hypercube8",
            "family": "layered",
            "graph_seed": 0,
            "policy_seed": 0,
            "with_comm": True,
            "fidelity": "latency",
        }
        row = run_scenario(spec)
        assert row["error"] is None
        assert row["makespan"] > 0
        assert 0 < row["speedup"] <= 8
        assert row["runtime_s"] >= 0

    def test_scenario_is_deterministic(self):
        spec = {
            "policy": "SA",
            "machine": "ring9",
            "family": "dag",
            "graph_seed": 3,
            "policy_seed": 3,
            "with_comm": True,
            "fidelity": "latency",
        }
        assert run_scenario(spec)["makespan"] == run_scenario(spec)["makespan"]

    def test_row_reports_cache_and_fallback_counters(self):
        spec = {
            "policy": "SA",
            "machine": "hypercube8",
            "family": "layered",
            "graph_seed": 5,
            "policy_seed": 5,
            "with_comm": True,
            "fidelity": "latency",
        }
        row = run_scenario(spec)
        assert row["error"] is None
        # SA is fully kernelized in the fast engine: no materialized contexts.
        assert row["n_fallback_epochs"] == 0
        assert row["compile_cache_hits"] + row["compile_cache_misses"] >= 1
        # Same spec again in this process: graph/machine come from the worker
        # caches, so the compiled scenario memo must hit.
        again = run_scenario(spec)
        assert again["compile_cache_hits"] >= 1
        assert again["compile_cache_misses"] == 0
        assert again["makespan"] == row["makespan"]

    def test_replicas_spec_changes_sa_only(self):
        base = {
            "machine": "hypercube8",
            "family": "layered",
            "graph_seed": 1,
            "policy_seed": 1,
            "with_comm": True,
            "fidelity": "latency",
        }
        sa = run_scenario({**base, "policy": "SA", "replicas": 3})
        sa2 = run_scenario({**base, "policy": "SA", "replicas": 3})
        assert sa["error"] is None
        assert sa["makespan"] == sa2["makespan"]  # deterministic
        hlf = run_scenario({**base, "policy": "HLF", "replicas": None})
        assert hlf["error"] is None


class TestSweep:
    def _small_kwargs(self):
        return dict(
            policies=("HLF", "SA"),
            machines=("hypercube8",),
            families=("layered",),
            n_seeds=2,
        )

    def test_serial_sweep_report_structure(self):
        report = run_sweep(jobs=1, **self._small_kwargs())
        assert report["meta"]["n_simulations"] == 4
        assert report["meta"]["n_failed"] == 0
        assert len(report["results"]) == 4
        assert len(report["aggregates"]) == 2  # one per policy
        for aggregate in report["aggregates"]:
            assert aggregate["n"] == 2
            assert aggregate["mean_speedup"] > 0

    def test_parallel_equals_serial(self):
        serial = run_sweep(jobs=1, **self._small_kwargs())
        parallel = run_sweep(jobs=2, **self._small_kwargs())
        serial_makespans = [r["makespan"] for r in serial["results"]]
        parallel_makespans = [r["makespan"] for r in parallel["results"]]
        assert serial_makespans == parallel_makespans

    def test_report_written_to_json(self, tmp_path):
        out = tmp_path / "report.json"
        run_sweep(jobs=1, out=str(out), **self._small_kwargs())
        loaded = json.loads(out.read_text())
        assert loaded["meta"]["n_simulations"] == 4

    def test_format_sweep_report(self):
        report = run_sweep(jobs=1, **self._small_kwargs())
        text = format_sweep_report(report)
        assert "Sweep: 4 simulations" in text
        assert "HLF" in text and "SA" in text

    def test_meta_surfaces_cache_and_fallback_totals(self):
        report = run_sweep(jobs=1, **self._small_kwargs())
        meta = report["meta"]
        assert meta["n_fallback_epochs"] == 0  # every builtin policy kernelized
        cache = meta["compile_cache"]
        assert cache["hits"] + cache["misses"] >= 1
        # Paired policies over the same (graph, machine, model) hit the memo.
        assert cache["hits"] >= 1

    def test_replicas_validated_early(self):
        with pytest.raises(ValueError, match="replicas"):
            build_grid(policies=("SA",), machines=("hypercube8",),
                       families=("layered",), n_seeds=1, replicas=0)
        with pytest.raises(ValueError, match="replicas"):
            run_sweep(jobs=1, replicas=-1, policies=("SA",),
                      machines=("hypercube8",), families=("layered",), n_seeds=1)

    def test_replicas_threads_into_sa_rows(self):
        grid = build_grid(policies=("HLF", "SA"), machines=("hypercube8",),
                          families=("layered",), n_seeds=1, replicas=4)
        by_policy = {g["policy"]: g for g in grid}
        assert by_policy["SA"]["replicas"] == 4
        assert by_policy["HLF"]["replicas"] is None
        report = run_sweep(jobs=1, replicas=2, **self._small_kwargs())
        assert report["meta"]["replicas"] == 2
        assert report["meta"]["n_failed"] == 0

    def test_replicas_cli_flag(self, tmp_path):
        out = tmp_path / "replicas.json"
        assert main(["--jobs", "1", "--seeds", "1", "--policies", "SA",
                     "--machines", "hypercube8", "--families", "layered",
                     "--replicas", "2", "--out", str(out)]) == 0
        loaded = json.loads(out.read_text())
        assert loaded["meta"]["replicas"] == 2
        assert loaded["results"][0]["replicas"] == 2


class TestLanes:
    _kwargs = dict(
        policies=("HLF", "ETF", "SA"),
        machines=("hypercube8", "ring9"),
        families=("layered",),
        n_seeds=2,
    )

    @staticmethod
    def _strip(rows):
        """Drop the timing/provenance/cache fields that legitimately vary
        (the scenario memo persists in-process, so a second sweep in the
        same test sees different hit/miss counts)."""
        varying = (
            "runtime_s", "worker_pid", "compile_cache_hits", "compile_cache_misses",
        )
        return [
            {k: v for k, v in row.items() if k not in varying} for row in rows
        ]

    def test_lane_rows_identical_to_solo(self):
        solo = run_sweep(jobs=1, **self._kwargs)
        laned = run_sweep(jobs=1, lanes=3, **self._kwargs)
        assert self._strip(laned["results"]) == self._strip(solo["results"])

    def test_lanes_compose_with_jobs(self):
        solo = run_sweep(jobs=1, **self._kwargs)
        laned = run_sweep(jobs=2, lanes=4, **self._kwargs)
        assert self._strip(laned["results"]) == self._strip(solo["results"])

    def test_lanes_validated_and_capped(self):
        with pytest.raises(ValueError, match="lanes"):
            run_sweep(jobs=1, lanes=0, **self._kwargs)
        report = run_sweep(jobs=1, lanes=999, **self._kwargs)
        meta = report["meta"]["lanes"]
        assert meta["requested"] == 999
        # Auto-capped at the grid size; SA rows (replicas or not) still lane.
        assert meta["effective"] <= report["meta"]["n_simulations"]
        assert report["meta"]["n_failed"] == 0

    def test_lane_meta_records_configuration(self):
        report = run_sweep(jobs=1, lanes=3, **self._kwargs)
        meta = report["meta"]["lanes"]
        assert meta["requested"] == 3
        assert meta["effective"] == 3
        assert meta["n_groups"] >= 1
        assert meta["n_lane_rows"] == len(meta["per_lane_fallback_epochs"])
        assert meta["n_lane_rows"] > 0
        # Every builtin policy is kernelized: no materialized contexts.
        assert set(meta["per_lane_fallback_epochs"]) == {0}

    def test_replica_rows_stay_solo(self):
        report = run_sweep(jobs=1, lanes=4, replicas=2, **self._kwargs)
        meta = report["meta"]["lanes"]
        # SA rows carry replicas and are excluded from the lane groups.
        n_sa = sum(1 for r in report["results"] if r["policy"] == "SA")
        assert meta["n_lane_rows"] == report["meta"]["n_simulations"] - n_sa
        assert report["meta"]["n_failed"] == 0

    def test_cache_stats_aggregated_across_workers(self):
        report = run_sweep(jobs=2, lanes=2, **self._kwargs)
        cache = report["meta"]["compile_cache"]
        assert cache["hits"] + cache["misses"] >= 1
        assert 1 <= cache["n_workers"] <= 2

    def test_lanes_cli_flag(self, tmp_path, capsys):
        out = tmp_path / "lanes.json"
        assert main(["--jobs", "1", "--lanes", "3", "--seeds", "2",
                     "--policies", "HLF", "ETF",
                     "--machines", "hypercube8", "--families", "layered",
                     "--out", str(out)]) == 0
        loaded = json.loads(out.read_text())
        assert loaded["meta"]["lanes"]["effective"] == 3
        assert loaded["meta"]["n_failed"] == 0

    def test_lanes_cli_rejects_non_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["--lanes", "0"])


class TestParallelMap:
    def test_preserves_order(self):
        items = [{"policy": "HLF", "machine": "hypercube8", "family": "layered",
                  "graph_seed": s, "policy_seed": s, "with_comm": True,
                  "fidelity": "latency"} for s in range(4)]
        rows = parallel_map(run_scenario, items, jobs=2)
        assert [r["graph_seed"] for r in rows] == [0, 1, 2, 3]

    def test_serial_fallback(self):
        rows = parallel_map(run_scenario, [], jobs=4)
        assert rows == []


class TestHeteroScenarios:
    def test_speed_ramp_spans_spread(self):
        ramp = speed_ramp(9, 4.0)
        assert ramp[0] == 1.0
        assert ramp[-1] == pytest.approx(4.0)
        assert ramp == sorted(ramp)

    def test_speed_ramp_unit_spread_is_homogeneous(self):
        assert speed_ramp(9, 1.0) is None

    def test_hetero_registry_has_nine_machines(self):
        assert len(HETERO_MACHINES) == 9
        for name in HETERO_MACHINES:
            machine = MACHINE_BUILDERS[name]()
            assert machine.is_heterogeneous  # all carry weighted links
            assert not machine.has_unit_link_weights

    def test_hetero_spreads_set_speeds(self):
        assert hetero_machine("ring9", 1.0).has_unit_speeds
        m = hetero_machine("ring9", 4.0)
        assert not m.has_unit_speeds
        assert max(m.speeds) / min(m.speeds) == pytest.approx(4.0)
        with pytest.raises(KeyError):
            hetero_machine("bogus", 2.0)

    def test_hetero_grid_covers_54_cells(self):
        grid = build_grid(policies=("HLF", "ETF", "SA"), machines=HETERO_MACHINES,
                          families=("layered", "dag"), n_seeds=1)
        cells = {(g["policy"], g["machine"], g["family"]) for g in grid}
        assert len(cells) == 54

    def test_hetero_scenario_runs(self):
        spec = {
            "policy": "HLF",
            "machine": "hetero-ring9-4x",
            "family": "layered",
            "graph_seed": 0,
            "policy_seed": 0,
            "with_comm": True,
            "fidelity": "latency",
        }
        row = run_scenario(spec)
        assert row["error"] is None
        assert row["makespan"] > 0


class TestCli:
    def test_hetero_flag_selects_hetero_grid(self, tmp_path, capsys):
        out = tmp_path / "hetero.json"
        code = main([
            "--hetero", "--jobs", "2", "--seeds", "1",
            "--policies", "HLF",
            "--families", "layered",
            "--out", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["meta"]["machines"] == HETERO_MACHINES
        assert report["meta"]["n_simulations"] == 9
        assert report["meta"]["n_failed"] == 0

    def test_hetero_conflicts_with_explicit_machines(self, capsys):
        with pytest.raises(SystemExit):
            main(["--hetero", "--machines", "hypercube8"])

    def test_main_writes_report(self, tmp_path, capsys):
        out = tmp_path / "cli_report.json"
        code = main([
            "--jobs", "2", "--seeds", "2",
            "--policies", "HLF", "SA",
            "--machines", "hypercube8",
            "--families", "layered",
            "--out", str(out),
        ])
        assert code == 0
        assert json.loads(out.read_text())["meta"]["n_simulations"] == 4
        captured = capsys.readouterr()
        assert "report written" in captured.out
