"""Tests for the equation-4 communication cost model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.model import LinearCommModel, ZeroCommModel, effective_comm_cost
from repro.machine.machine import Machine
from repro.machine.params import CommParams


class TestEffectiveCommCost:
    def test_same_processor_is_free(self, paper_params):
        # d = 0, delta = 1: every term vanishes (paper's co-location case)
        assert effective_comm_cost(10.0, 0, True, paper_params) == pytest.approx(0.0)

    def test_neighbor_cost(self, paper_params):
        # d = 1, delta = 0: w + sigma, no routing term
        assert effective_comm_cost(4.0, 1, False, paper_params) == pytest.approx(4.0 + 7.0)

    def test_two_hop_cost(self, paper_params):
        # d = 2: 2w + tau + sigma
        assert effective_comm_cost(4.0, 2, False, paper_params) == pytest.approx(8.0 + 9.0 + 7.0)

    def test_three_hop_cost(self, paper_params):
        assert effective_comm_cost(4.0, 3, False, paper_params) == pytest.approx(
            12.0 + 2 * 9.0 + 7.0
        )

    def test_zero_weight_still_pays_overheads(self, paper_params):
        # a zero-length message still needs setup and routing
        assert effective_comm_cost(0.0, 2, False, paper_params) == pytest.approx(9.0 + 7.0)

    def test_negative_inputs_rejected(self, paper_params):
        with pytest.raises(ValueError):
            effective_comm_cost(-1.0, 1, False, paper_params)
        with pytest.raises(ValueError):
            effective_comm_cost(1.0, -1, False, paper_params)

    @given(w=st.floats(0, 100), d=st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_cost_monotone_in_weight_and_distance(self, w, d):
        p = CommParams.paper_defaults()
        c = effective_comm_cost(w, d, False, p)
        assert c >= effective_comm_cost(w, d - 1, d == 1, p) or d == 1
        assert effective_comm_cost(w + 1.0, d, False, p) > c


class TestModels:
    def test_linear_model_uses_machine_distance(self, hypercube8):
        model = LinearCommModel()
        # processors 0 and 7 are 3 hops apart in the 3-cube
        expected = effective_comm_cost(4.0, 3, False, hypercube8.params)
        assert model.cost(hypercube8, 4.0, 0, 7) == pytest.approx(expected)

    def test_linear_model_same_proc_free(self, hypercube8):
        assert LinearCommModel().cost(hypercube8, 4.0, 5, 5) == 0.0

    def test_zero_model(self, hypercube8):
        model = ZeroCommModel()
        assert model.cost(hypercube8, 100.0, 0, 7) == 0.0
        assert not model.enabled

    def test_linear_model_enabled_flag(self):
        assert LinearCommModel().enabled

    def test_bus_versus_hypercube_distance_effect(self):
        bus = Machine.bus(8)
        cube = Machine.hypercube(3)
        model = LinearCommModel()
        # two non-hub bus processors are always two hops apart
        assert model.cost(bus, 4.0, 1, 2) == pytest.approx(
            effective_comm_cost(4.0, 2, False, bus.params)
        )
        # neighbouring hypercube nodes are cheaper
        assert model.cost(cube, 4.0, 0, 1) < model.cost(bus, 4.0, 1, 2)
