"""Tests for the supervised execution layer (repro.experiments.supervisor)
and the deterministic chaos harness (repro.utils.chaos).

The pool tests use marker files in tmp_path for cross-process state: a
worker that should fail "once" records its first visit on disk, so the
retried attempt (possibly in a different, respawned process) sees the marker
and succeeds.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.exceptions import ChaosError, ConfigurationError, WorkerError
from repro.experiments.supervisor import (
    Checkpoint,
    SupervisorConfig,
    group_key,
    spec_key,
    supervised_map,
)
from repro.utils.chaos import (
    FAULT_KINDS,
    MALFORMED_PAYLOAD,
    ChaosConfig,
    det_uniform,
)


# --------------------------------------------------------------------------- #
# Worker functions (module-level so they survive any start method)
# --------------------------------------------------------------------------- #

def _double(x):
    return x * 2


def _pid_of(_item):
    return os.getpid()


def _marker_seen(marker: str) -> bool:
    if os.path.exists(marker):
        return True
    with open(marker, "w") as fh:
        fh.write("seen")
    return False


def _flaky(item):
    """Raise on the first visit to this item's marker, succeed after."""
    value, marker = item
    if not _marker_seen(marker):
        raise ValueError(f"transient failure for {value}")
    return value * 10


def _die_once(item):
    """Abruptly exit the worker on the first visit (like a segfault)."""
    value, marker = item
    if not _marker_seen(marker):
        os._exit(13)
    return value * 10


def _hang_once(item):
    """Hang far past any test timeout on the first visit."""
    value, marker = item
    if not _marker_seen(marker):
        time.sleep(120)
    return value * 10


def _fail_always(item):
    raise RuntimeError(f"permanent failure for {item}")


# --------------------------------------------------------------------------- #
# Stable keys
# --------------------------------------------------------------------------- #

class TestKeys:
    def test_spec_key_is_stable_and_content_addressed(self):
        spec = {"policy": "HLF", "machine": "ring9", "graph_seed": 3}
        assert spec_key(spec) == spec_key(dict(spec))
        assert spec_key(spec) != spec_key({**spec, "graph_seed": 4})
        assert len(spec_key(spec)) == 16

    def test_spec_key_ignores_underscore_bookkeeping(self):
        spec = {"policy": "HLF", "machine": "ring9"}
        assert spec_key(spec) == spec_key({**spec, "_index": 7, "_key": "x"})

    def test_group_key_depends_on_members_and_order(self):
        assert group_key(["a", "b"]) == group_key(["a", "b"])
        assert group_key(["a", "b"]) != group_key(["b", "a"])
        assert group_key(["a", "b"]).startswith("g")


# --------------------------------------------------------------------------- #
# Chaos harness
# --------------------------------------------------------------------------- #

class TestChaos:
    def test_det_uniform_is_deterministic_and_bounded(self):
        draws = [det_uniform(5, "fault", "cell", k) for k in range(200)]
        assert draws == [det_uniform(5, "fault", "cell", k) for k in range(200)]
        assert all(0.0 <= d < 1.0 for d in draws)
        # Distinct keys give distinct draws (no accidental constant).
        assert len(set(draws)) == len(draws)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError, match="rate"):
            ChaosConfig(rate=1.5)
        with pytest.raises(ConfigurationError, match="kinds"):
            ChaosConfig(rate=0.5, kinds=())
        with pytest.raises(ConfigurationError, match="unknown chaos kind"):
            ChaosConfig(rate=0.5, kinds=("explode",))
        with pytest.raises(ConfigurationError, match="hang_s"):
            ChaosConfig(rate=0.5, hang_s=0.0)

    def test_decide_is_deterministic_and_rate_extremes_hold(self):
        cfg = ChaosConfig(rate=0.5, seed=11)
        keys = [f"cell{i}" for i in range(300)]
        first = [cfg.decide(k, 1) for k in keys]
        assert first == [cfg.decide(k, 1) for k in keys]
        assert all(k is None for k in (ChaosConfig(rate=0.0).decide(k, 1) for k in keys))
        assert all(
            kind in FAULT_KINDS
            for kind in (ChaosConfig(rate=1.0).decide(k, 1) for k in keys)
        )
        # ~50% fault rate over 300 keys, generously bracketed.
        n_faults = sum(1 for kind in first if kind is not None)
        assert 100 < n_faults < 200

    def test_decide_respects_the_kind_restriction(self):
        cfg = ChaosConfig(rate=1.0, kinds=("raise",), seed=2)
        assert {cfg.decide(f"c{i}", 1) for i in range(50)} == {"raise"}

    def test_inject_raise_and_malform(self):
        cfg = ChaosConfig(rate=1.0, kinds=("raise",), seed=2)
        with pytest.raises(ChaosError, match="injected fault"):
            cfg.inject("cell", 1)
        cfg = ChaosConfig(rate=1.0, kinds=("malform",), seed=2)
        assert cfg.inject("cell", 1) == MALFORMED_PAYLOAD
        assert ChaosConfig(rate=0.0).inject("cell", 1) is None

    def test_plan_maps_only_faulting_keys(self):
        cfg = ChaosConfig(rate=0.5, seed=11)
        keys = [f"cell{i}" for i in range(100)]
        plan = cfg.plan(keys)
        assert plan == {k: cfg.decide(k, 1) for k in keys if cfg.decide(k, 1)}
        assert 0 < len(plan) < len(keys)


# --------------------------------------------------------------------------- #
# Supervisor configuration
# --------------------------------------------------------------------------- #

class TestSupervisorConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="jobs"):
            SupervisorConfig(jobs=0)
        with pytest.raises(ConfigurationError, match="retries"):
            SupervisorConfig(retries=-1)
        with pytest.raises(ConfigurationError, match="timeout"):
            SupervisorConfig(timeout=0.0)
        with pytest.raises(ConfigurationError, match="maxtasksperchild"):
            SupervisorConfig(maxtasksperchild=0)

    def test_isolation_required_by_timeout_or_chaos(self):
        assert not SupervisorConfig(jobs=4).needs_isolation
        assert SupervisorConfig(timeout=5.0).needs_isolation
        assert SupervisorConfig(chaos=ChaosConfig(rate=0.1)).needs_isolation

    def test_backoff_is_deterministic_exponential_and_capped(self):
        cfg = SupervisorConfig(backoff_base=0.1, backoff_max=1.0, seed=4)
        delays = [cfg.backoff_delay("cell", attempt) for attempt in range(1, 9)]
        assert delays == [cfg.backoff_delay("cell", a) for a in range(1, 9)]
        # Exponential: the un-jittered base doubles until the cap.
        assert delays[0] < delays[1] < delays[2]
        # Jitter is at most +100% of the capped base.
        assert all(d <= 2.0 * cfg.backoff_max for d in delays)


# --------------------------------------------------------------------------- #
# Checkpoint journal
# --------------------------------------------------------------------------- #

class TestCheckpoint:
    FP = {"n_cells": 3, "grid_sha": "abc123"}

    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with Checkpoint.open(path, self.FP) as ckpt:
            ckpt.record("k1", {"makespan": 1.0})
            ckpt.record("k2", {"makespan": 2.0})
        fingerprint, rows = Checkpoint.load(path)
        assert fingerprint == self.FP
        assert rows == {"k1": {"makespan": 1.0}, "k2": {"makespan": 2.0}}

    def test_resume_restores_previous_rows_and_appends(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with Checkpoint.open(path, self.FP) as ckpt:
            ckpt.record("k1", {"makespan": 1.0})
        with Checkpoint.open(path, self.FP, resume=True) as ckpt:
            assert ckpt.restored == {"k1": {"makespan": 1.0}}
            ckpt.record("k2", {"makespan": 2.0})
        _fp, rows = Checkpoint.load(path)
        assert set(rows) == {"k1", "k2"}

    def test_partial_trailing_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with Checkpoint.open(path, self.FP) as ckpt:
            ckpt.record("k1", {"makespan": 1.0})
        with open(path, "a") as fh:
            fh.write('{"kind": "row", "key": "k2", "row": {"makes')  # killed mid-write
        fingerprint, rows = Checkpoint.load(path)
        assert fingerprint == self.FP
        assert rows == {"k1": {"makespan": 1.0}}
        # Resuming over the truncated journal works too.
        with Checkpoint.open(path, self.FP, resume=True) as ckpt:
            assert ckpt.restored == {"k1": {"makespan": 1.0}}

    def test_resume_refuses_a_foreign_grid(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with Checkpoint.open(path, self.FP) as ckpt:
            ckpt.record("k1", {"makespan": 1.0})
        with pytest.raises(ConfigurationError, match="different sweep"):
            Checkpoint.open(path, {"n_cells": 9, "grid_sha": "zzz"}, resume=True)

    def test_resume_refuses_rows_without_header(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"kind": "row", "key": "k1", "row": {}}) + "\n")
        with pytest.raises(ConfigurationError, match="corrupt"):
            Checkpoint.open(path, self.FP, resume=True)

    def test_resume_without_existing_file_starts_fresh(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with Checkpoint.open(path, self.FP, resume=True) as ckpt:
            assert ckpt.restored == {}
        fingerprint, rows = Checkpoint.load(path)
        assert fingerprint == self.FP and rows == {}


# --------------------------------------------------------------------------- #
# supervised_map: inline path
# --------------------------------------------------------------------------- #

class TestInlineSupervision:
    def test_plain_map_in_order(self):
        results, stats = supervised_map(_double, [3, 1, 2])
        assert results == [6, 2, 4]
        assert stats["mode"] == "inline"
        assert stats["attempts"] == 3 and stats["retries"] == 0

    def test_transient_failure_is_retried(self):
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("transient")
            return x * 10

        config = SupervisorConfig(retries=2, backoff_base=0.0)
        results, stats = supervised_map(flaky, [7], config)
        assert results == [70]
        assert stats["retries"] == 1 and stats["failed_items"] == 0

    def test_exhausted_retries_raise_worker_error_with_taxonomy(self):
        config = SupervisorConfig(retries=1, backoff_base=0.0)
        with pytest.raises(WorkerError, match="failed after 2 attempt"):
            supervised_map(_fail_always, [1], config)
        try:
            supervised_map(_fail_always, [1], config)
        except WorkerError as exc:
            assert exc.error_type == "RuntimeError"
            assert exc.attempts == 2
            assert "permanent failure" in exc.traceback

    def test_on_failure_builds_terminal_results_instead_of_raising(self):
        config = SupervisorConfig(retries=1, backoff_base=0.0)
        results, stats = supervised_map(
            _fail_always,
            ["a", "b"],
            config,
            on_failure=lambda item, failures: {
                "item": item,
                "error_type": failures[-1]["error_type"],
                "n_failures": len(failures),
            },
        )
        assert results == [
            {"item": "a", "error_type": "RuntimeError", "n_failures": 2},
            {"item": "b", "error_type": "RuntimeError", "n_failures": 2},
        ]
        assert stats["failed_items"] == 2

    def test_validation_rejects_and_retries(self):
        calls = {"n": 0}

        def improving(x):
            calls["n"] += 1
            return calls["n"]  # 1 on the first attempt, 2 on the retry

        def validate(item, result):
            if result < 2:
                raise ValueError("result too small")

        config = SupervisorConfig(retries=2, backoff_base=0.0)
        results, stats = supervised_map(improving, [0], config, validate=validate)
        assert results == [2]
        assert stats["retries"] == 1

    def test_annotate_sees_attempt_and_failure_history(self):
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("transient")
            return x

        config = SupervisorConfig(retries=2, backoff_base=0.0)
        results, _stats = supervised_map(
            flaky,
            [5],
            config,
            annotate=lambda item, result, attempt, failures: {
                "result": result,
                "attempt": attempt,
                "prior_errors": [f["error_type"] for f in failures],
            },
        )
        assert results == [
            {"result": 5, "attempt": 2, "prior_errors": ["ValueError"]}
        ]

    def test_on_result_fires_for_successes_only(self):
        journal = []
        config = SupervisorConfig(retries=0, backoff_base=0.0)

        def sometimes(x):
            if x == 2:
                raise ValueError("no")
            return x

        results, _stats = supervised_map(
            sometimes,
            [1, 2, 3],
            config,
            on_failure=lambda item, failures: None,
            on_result=lambda item, result: journal.append(item),
        )
        assert results == [1, None, 3]
        assert journal == [1, 3]


# --------------------------------------------------------------------------- #
# supervised_map: pool path
# --------------------------------------------------------------------------- #

class TestPoolSupervision:
    def test_results_keep_input_order(self):
        results, stats = supervised_map(
            _double, list(range(12)), SupervisorConfig(jobs=4)
        )
        assert results == [x * 2 for x in range(12)]
        assert stats["mode"] == "pool"
        assert stats["attempts"] == 12

    def test_worker_exception_is_retried_across_processes(self, tmp_path):
        items = [(i, str(tmp_path / f"m{i}")) for i in range(4)]
        config = SupervisorConfig(jobs=2, retries=2, backoff_base=0.0)
        results, stats = supervised_map(_flaky, items, config)
        assert results == [0, 10, 20, 30]
        assert stats["retries"] == 4 and stats["failed_items"] == 0

    def test_worker_death_is_detected_and_the_item_redispatched(self, tmp_path):
        items = [(i, str(tmp_path / f"m{i}")) for i in range(3)]
        config = SupervisorConfig(jobs=2, retries=2, backoff_base=0.0)
        results, stats = supervised_map(_die_once, items, config)
        assert results == [0, 10, 20]
        assert stats["worker_deaths"] == 3
        assert stats["respawns"] >= 1

    def test_hung_worker_is_killed_at_the_timeout(self, tmp_path):
        items = [(i, str(tmp_path / f"m{i}")) for i in range(2)]
        config = SupervisorConfig(
            jobs=2, retries=2, timeout=1.0, backoff_base=0.0
        )
        start = time.monotonic()
        results, stats = supervised_map(_hang_once, items, config)
        assert results == [0, 10]
        assert stats["timeouts"] == 2
        assert stats["respawns"] >= 1
        # Far faster than the 120s hang: the kill actually happened.
        assert time.monotonic() - start < 30

    def test_maxtasksperchild_recycles_workers(self):
        config = SupervisorConfig(jobs=2, maxtasksperchild=2)
        results, stats = supervised_map(_pid_of, list(range(8)), config)
        assert stats["recycles"] >= 2
        # Recycling forced more distinct worker processes than pool slots.
        assert len(set(results)) > 2

    def test_exhausted_pool_retries_raise_worker_error(self):
        config = SupervisorConfig(jobs=2, retries=1, backoff_base=0.0)
        with pytest.raises(WorkerError, match="failed after 2 attempt"):
            supervised_map(_fail_always, [1, 2, 3], config)

    def test_on_failure_terminal_results_in_pool_mode(self):
        config = SupervisorConfig(jobs=2, retries=0, backoff_base=0.0)
        results, stats = supervised_map(
            _fail_always,
            [1, 2],
            config,
            on_failure=lambda item, failures: {
                "item": item,
                "error_type": failures[-1]["error_type"],
            },
        )
        assert results == [
            {"item": 1, "error_type": "RuntimeError"},
            {"item": 2, "error_type": "RuntimeError"},
        ]
        assert stats["failed_items"] == 2

    def test_chaos_forces_pool_isolation_even_at_one_job(self):
        chaos = ChaosConfig(rate=1.0, kinds=("die",), seed=0)
        config = SupervisorConfig(jobs=1, retries=0, chaos=chaos)
        results, stats = supervised_map(
            _double,
            [1, 2],
            config,
            on_failure=lambda item, failures: None,
        )
        assert stats["mode"] == "pool"
        assert results == [None, None]
        assert stats["worker_deaths"] == 2

    def test_chaos_malform_payload_is_rejected_and_retried(self):
        # Rate 1.0 malform on attempt 1 and 2... every attempt malforms, so
        # give the config enough retries that the deterministic draw matters:
        # with kinds=("malform",) every attempt faults; terminal rows result.
        chaos = ChaosConfig(rate=1.0, kinds=("malform",), seed=3)
        config = SupervisorConfig(jobs=1, retries=1, chaos=chaos, backoff_base=0.0)
        results, stats = supervised_map(
            _double,
            [4],
            config,
            on_failure=lambda item, failures: {
                "error_type": failures[-1]["error_type"],
                "kinds": [f["kind"] for f in failures],
            },
        )
        assert results == [{"error_type": "MalformedResult", "kinds": ["malformed", "malformed"]}]
        assert stats["failed_items"] == 1
