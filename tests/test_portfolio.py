"""Anytime SA portfolio: lane specs, successive-halving racing, anytime API.

The portfolio's contract, tested bottom-up:

* **config** — lane axes validate and cycle deterministically; lane 0 is
  always the paper's exact configuration; ``SAConfig(portfolio=...)``
  normalizes and rejects incompatible knobs.
* **controller** — successive-halving decisions derive only from recorded
  per-temperature costs: rank at rung boundaries, cull the worse half (ties
  to the lowest lane index), reallocate freed budget evenly with the
  remainder to the lowest-indexed survivors, credit each donor exactly once.
* **engine differential** — every lane of a portfolio run (culled lanes
  included) replays bit-identically as a scalar single-chain walk on its own
  child stream, which is the proof that racing changes *scheduling* of
  draws, never the draws themselves.
* **anytime layers** — ``best_so_far`` snapshots through the scheduler and
  the simulator knob; sweep rows are invariant to ``--jobs``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annealing.annealer import Annealer
from repro.annealing.acceptance import MetropolisAcceptance
from repro.annealing.cooling import GeometricCooling, LinearCooling
from repro.annealing.portfolio import (
    DEFAULT_LANE_AXES,
    PortfolioConfig,
    SuccessiveHalvingController,
)
from repro.annealing.replicas import ReplicaStats, summarize_replicas
from repro.annealing.stopping import (
    CombinedStopping,
    MaxIterationsStopping,
    StallStopping,
)
from repro.comm.model import LinearCommModel
from repro.core.array_annealer import anneal_array
from repro.core.config import SAConfig
from repro.core.cost import PacketCostFunction
from repro.core.packet import AnnealingPacket
from repro.core.packet_annealer import PacketAnnealer, _split_rng
from repro.core.sa_scheduler import SAScheduler
from repro.exceptions import ConfigurationError, SimulationError
from repro.machine.machine import Machine
from repro.schedulers.hlf import HLFScheduler
from repro.sim.engine import Simulator, simulate
from repro.taskgraph.generators import random_dag
from repro.utils.rng import as_rng, split


def _make_packet(n_ready: int, n_idle: int, seed: int, n_procs: int = 6):
    """A synthetic packet in the paper's regime (as in the SA benchmarks)."""
    rng = np.random.default_rng(seed)
    tasks = tuple(f"t{i}" for i in range(n_ready))
    levels = {t: float(rng.uniform(1, 100)) for t in tasks}
    placement = {
        t: tuple(
            (f"p{t}{k}", int(rng.integers(0, n_procs)), float(rng.uniform(0, 20)))
            for k in range(int(rng.integers(0, 3)))
        )
        for t in tasks
    }
    return AnnealingPacket(
        time=0.0,
        ready_tasks=tasks,
        idle_processors=tuple(range(n_idle)),
        levels=levels,
        predecessor_placement=placement,
    )


def _portfolio_outcome(lanes: int, packet_seed: int = 11, rng_seed: int = 123,
                       seed_assignments=None):
    packet = _make_packet(10, 5, packet_seed)
    machine = Machine.bus(6)
    cfg = SAConfig.paper_defaults(seed=5).with_portfolio(lanes)
    annealer = PacketAnnealer(cfg)
    cost_fn = PacketCostFunction(
        packet, machine, comm_model=LinearCommModel(), compiled=True
    )
    outcome = annealer._anneal_portfolio(
        packet, cost_fn.kernel, as_rng(rng_seed), seed_assignments
    )
    return packet, cost_fn.kernel, cfg, annealer, outcome


# --------------------------------------------------------------------------- #
# Configuration
# --------------------------------------------------------------------------- #

class TestPortfolioConfig:
    def test_lane_zero_is_the_paper_configuration(self):
        spec = PortfolioConfig(lanes=8).lane_specs()[0]
        assert isinstance(spec.cooling, GeometricCooling)
        assert spec.cooling.alpha == 0.9
        assert spec.initial == "hlf"
        assert spec.temperature_scale == 1.0

    def test_axes_cycle_beyond_their_count(self):
        specs = PortfolioConfig(lanes=10).lane_specs()
        assert len(specs) == 10
        n = len(DEFAULT_LANE_AXES)
        for b in (8, 9):
            cooling, initial, scale = DEFAULT_LANE_AXES[b % n]
            assert specs[b].cooling == cooling
            assert specs[b].initial == initial
            assert specs[b].lane == b

    def test_wants(self):
        assert PortfolioConfig(lanes=8).wants("etf")
        assert not PortfolioConfig(
            lanes=2, axes=((GeometricCooling(0.9), "hlf", 1.0),)
        ).wants("etf")

    @pytest.mark.parametrize("kwargs", [
        dict(lanes=1),
        dict(lanes=2.5),
        dict(rung=0),
        dict(base_budget=0),
        dict(axes=()),
        dict(axes=((GeometricCooling(0.9), "nope", 1.0),)),
        dict(axes=((GeometricCooling(0.9), "hlf", 0.0),)),
        dict(axes=(("not-cooling", "hlf", 1.0),)),
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PortfolioConfig(**kwargs)

    def test_saconfig_normalizes_int(self):
        cfg = SAConfig(portfolio=4)
        assert isinstance(cfg.portfolio, PortfolioConfig)
        assert cfg.portfolio.lanes == 4

    def test_saconfig_rejects_portfolio_with_replicas(self):
        with pytest.raises(ConfigurationError):
            SAConfig(portfolio=4, replicas=8)

    def test_saconfig_rejects_portfolio_off_the_vectorized_walk(self):
        with pytest.raises(ConfigurationError):
            SAConfig(portfolio=4, compiled=False)
        with pytest.raises(ConfigurationError):
            SAConfig(portfolio=4, walk="kernel")

    def test_saconfig_rejects_portfolio_with_other_acceptance(self):
        with pytest.raises(ConfigurationError):
            SAConfig(portfolio=4, acceptance=MetropolisAcceptance())

    def test_with_portfolio_resets_replicas(self):
        cfg = SAConfig(replicas=8).with_portfolio(4)
        assert cfg.replicas == 1
        assert cfg.portfolio.lanes == 4


# --------------------------------------------------------------------------- #
# Successive-halving controller (pure decisions, no engine)
# --------------------------------------------------------------------------- #

def _trajectories(best_costs, steps=10):
    """Flat trajectories whose racing metric equals ``best_costs``."""
    return [
        [(1.0, cost + 1.0)] * (steps - 1) + [(1.0, cost)]
        for cost in best_costs
    ]


class TestSuccessiveHalving:
    def test_culls_worse_half_and_reallocates(self):
        controller = SuccessiveHalvingController(rung=10, n_lanes=4)
        budgets = np.array([20, 20, 20, 20], dtype=np.int64)
        n_iters = np.array([10, 10, 10, 10], dtype=np.int64)
        culled = controller.on_step(
            10, [0, 1, 2, 3], budgets, n_iters,
            _trajectories([3.0, 1.0, 4.0, 2.0]),
        )
        assert culled == [0, 2]  # the two worst metrics
        rung = controller.rungs[0]
        assert rung.survivors == (1, 3)
        assert rung.metrics == ((1, 1.0), (3, 2.0), (0, 3.0), (2, 4.0))
        # The pool is every lane's unspent budget (4 x 10, credited once)
        # plus the culled lanes' steps beyond the rung (2 x 10): 60 steps,
        # split evenly over the two survivors.
        assert rung.reallocated == 60
        assert budgets.tolist() == [20, 50, 20, 50]
        assert controller.n_culled == 2
        assert controller.budget_reallocated == 60

    def test_ties_break_to_the_lowest_lane_index(self):
        controller = SuccessiveHalvingController(rung=5, n_lanes=2)
        budgets = np.array([10, 10], dtype=np.int64)
        n_iters = np.array([5, 5], dtype=np.int64)
        culled = controller.on_step(
            5, [0, 1], budgets, n_iters, _trajectories([7.0, 7.0], steps=5)
        )
        assert culled == [1]  # equal metrics: lane 0 survives

    def test_remainder_goes_to_lowest_indexed_survivors(self):
        controller = SuccessiveHalvingController(rung=10, n_lanes=6)
        budgets = np.array([20] * 6, dtype=np.int64)
        n_iters = np.array([10] * 6, dtype=np.int64)
        controller.on_step(
            10, list(range(6)), budgets, n_iters,
            _trajectories([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
        )
        # Pool: 6 x 10 unspent + 3 culled x 10 beyond the rung = 90 over the
        # 3 survivors, exactly 30 each.
        assert budgets.tolist() == [50, 50, 50, 20, 20, 20]
        # Uneven pool: 21 + 10 + 10 unspent + 10 from the culled lane = 51
        # over survivors [0, 1]: 26 to lane 0, 25 to lane 1.
        controller = SuccessiveHalvingController(rung=10, n_lanes=3)
        budgets = np.array([31, 20, 20], dtype=np.int64)
        n_iters = np.array([10, 10, 10], dtype=np.int64)
        controller.on_step(
            10, [0, 1, 2], budgets, n_iters, _trajectories([1.0, 2.0, 3.0])
        )
        assert budgets.tolist() == [57, 45, 20]

    def test_fires_only_on_rung_boundaries(self):
        controller = SuccessiveHalvingController(rung=10, n_lanes=2)
        budgets = np.array([20, 20], dtype=np.int64)
        n_iters = np.array([7, 7], dtype=np.int64)
        for step in (3, 7, 11, 19):
            assert controller.on_step(
                step, [0, 1], budgets, n_iters, _trajectories([1.0, 2.0])
            ) == []
        assert controller.rungs == []

    def test_single_survivor_is_never_culled(self):
        controller = SuccessiveHalvingController(rung=10, n_lanes=2)
        budgets = np.array([20, 20], dtype=np.int64)
        n_iters = np.array([10, 3], dtype=np.int64)
        culled = controller.on_step(
            10, [0], budgets, n_iters, _trajectories([1.0, 9.0])
        )
        assert culled == []
        # Lane 1 stalled naturally at step 3 and donates its 17 unspent
        # steps; lane 0's own 10 unspent steps round-trip through the pool.
        assert budgets.tolist() == [47, 20]

    def test_stalled_lane_donates_exactly_once(self):
        controller = SuccessiveHalvingController(rung=10, n_lanes=2)
        budgets = np.array([40, 20], dtype=np.int64)
        n_iters = np.array([10, 4], dtype=np.int64)
        trajectories = _trajectories([1.0, 9.0])
        controller.on_step(10, [0], budgets, n_iters, trajectories)
        # Pool: lane 0's 30 unspent + lane 1's 16 unspent, all to lane 0.
        assert budgets.tolist() == [86, 20]
        n_iters = np.array([20, 4], dtype=np.int64)
        controller.on_step(20, [0], budgets, n_iters, trajectories)
        assert budgets.tolist() == [86, 20]  # both already credited once


# --------------------------------------------------------------------------- #
# Engine: differential replay, determinism, replica accounting
# --------------------------------------------------------------------------- #

class TestPortfolioEngine:
    def test_every_lane_replays_as_a_scalar_walk(self):
        """Culled lanes included: racing reschedules draws, never alters them."""
        seeds = {"etf": {"t0": 0, "t1": 1}}
        packet, kernel, cfg, annealer, outcome = _portfolio_outcome(
            6, seed_assignments=seeds
        )
        plan = annealer.build_lane_plan(kernel, seeds)
        children = split(as_rng(123), cfg.portfolio.lanes)
        moves = cfg.moves_for_packet(packet.n_ready, packet.n_idle)
        assert any(s.culled for s in outcome.replica_stats), (
            "scenario produced no culls; the differential proves too little"
        )
        for b, child in enumerate(children):
            seed_rng, run_rng = _split_rng(child)
            initial_cost = plan.problems[b].cost(
                plan.problems[b].initial_state(seed_rng)
            )
            spec = plan.specs[b]
            stats = outcome.replica_stats[b]
            replay = Annealer(
                acceptance=cfg.acceptance,
                cooling=spec.cooling,
                stopping=CombinedStopping([
                    StallStopping(patience=cfg.stall_patience),
                    MaxIterationsStopping(
                        max_iterations=stats.n_temperature_steps
                    ),
                ]),
                moves_per_temperature=moves,
                initial_temperature=(
                    cfg.initial_temperature * spec.temperature_scale
                ),
                record_trajectory=False,
            )
            result = anneal_array(
                kernel, plan.problems[b], replay, as_rng(run_rng)
            )
            assert result.best_cost == stats.best_cost, f"lane {b}"
            assert result.n_iterations == stats.n_temperature_steps, f"lane {b}"
            assert result.n_proposals == stats.n_proposals, f"lane {b}"
            assert result.n_accepted == stats.n_accepted, f"lane {b}"
            assert result.final_cost == stats.final_cost, f"lane {b}"
            assert initial_cost == stats.initial_cost, f"lane {b}"

    def test_rerun_is_bit_identical(self):
        _, _, _, _, first = _portfolio_outcome(6)
        _, _, _, _, second = _portfolio_outcome(6)
        assert first.assignment == second.assignment
        assert first.best_cost == second.best_cost
        assert first.portfolio.final_budgets == second.portfolio.final_budgets
        assert [s.best_cost for s in first.replica_stats] == [
            s.best_cost for s in second.replica_stats
        ]

    def test_champion_achieves_the_lane_minimum(self):
        _, _, _, _, outcome = _portfolio_outcome(8)
        report = outcome.portfolio
        lane_costs = [s.best_cost for s in outcome.replica_stats]
        assert outcome.best_cost == min(lane_costs)
        assert report.champion == lane_costs.index(min(lane_costs))
        assert report.champion_cost == outcome.best_cost

    def test_trajectories_truncate_at_the_steps_walked(self):
        _, _, _, _, outcome = _portfolio_outcome(6)
        for stats in outcome.replica_stats:
            assert len(stats.temperature_trajectory) == stats.n_temperature_steps
            assert stats.budget is not None
            assert stats.n_temperature_steps <= stats.budget

    def test_summarize_replicas_accounts_for_racing(self):
        _, _, _, _, outcome = _portfolio_outcome(6)
        summary = summarize_replicas(outcome.replica_stats)
        assert summary["n_culled"] == float(outcome.portfolio.n_culled)
        assert summary["n_culled"] + summary["n_surviving"] == 6.0
        assert summary["total_budget"] == float(
            sum(outcome.portfolio.final_budgets)
        )
        assert summary["steps_used"] <= summary["total_budget"]

    def test_summarize_replicas_has_no_racing_keys_off_portfolio(self):
        stats = [
            ReplicaStats(
                replica=0, best_cost=1.0, initial_cost=2.0, final_cost=1.0,
                n_proposals=10, n_accepted=5, n_temperature_steps=3,
            )
        ]
        assert "n_culled" not in summarize_replicas(stats)

    @settings(max_examples=10, deadline=None)
    @given(
        lanes=st.integers(min_value=2, max_value=8),
        packet_seed=st.integers(min_value=0, max_value=50),
        rng_seed=st.integers(min_value=0, max_value=1000),
    )
    def test_champion_cost_bounds_every_lane(self, lanes, packet_seed, rng_seed):
        _, _, _, _, outcome = _portfolio_outcome(
            lanes, packet_seed=packet_seed, rng_seed=rng_seed
        )
        for stats in outcome.replica_stats:
            assert outcome.best_cost <= stats.best_cost


# --------------------------------------------------------------------------- #
# Simulator and scheduler layers
# --------------------------------------------------------------------------- #

class TestPortfolioSimulation:
    @pytest.fixture(scope="class")
    def scenario(self):
        return random_dag(40, 0.15, seed=3), Machine.bus(4)

    def test_fast_object_and_rerun_agree(self, scenario):
        graph, machine = scenario
        results = {}
        for label, fast in (("fast", True), ("object", False), ("rerun", True)):
            policy = SAScheduler(SAConfig.paper_defaults(seed=7))
            results[label] = simulate(
                graph, machine, policy, comm_model=LinearCommModel(),
                record_trace=False, fast=fast, portfolio=4,
            )
        assert results["fast"].fingerprint() == results["object"].fingerprint()
        assert results["fast"].fingerprint() == results["rerun"].fingerprint()

    def test_portfolio_and_replicas_are_mutually_exclusive(self, scenario):
        graph, machine = scenario
        with pytest.raises(SimulationError, match="mutually exclusive"):
            Simulator(
                graph, machine, SAScheduler(), replicas=4, portfolio=4
            )

    def test_policies_without_the_hook_are_rejected(self, scenario):
        graph, machine = scenario
        with pytest.raises(SimulationError, match="with_portfolio"):
            Simulator(graph, machine, HLFScheduler(), portfolio=4)

    def test_best_so_far_snapshot(self, scenario):
        graph, machine = scenario
        policy = SAScheduler(SAConfig.paper_defaults(seed=7)).with_portfolio(4)
        simulate(
            graph, machine, policy, comm_model=LinearCommModel(),
            record_trace=False,
        )
        snapshot = policy.best_so_far()
        assert snapshot["n_packets"] == len(policy.packet_stats) > 0
        assert snapshot["n_tasks_assigned"] == graph.n_tasks
        assert len(snapshot["assignment"]) == graph.n_tasks
        last = snapshot["last_packet"]
        assert last["n_lanes"] == 4
        assert 0 <= last["lane"] < 4
        assert set(last) >= {"cost", "initial", "n_culled", "n_rungs"}
        flat = policy.best_so_far(include_assignment=False)
        assert "assignment" not in flat

    def test_anytime_hook_streams_monotone_snapshots(self, scenario):
        graph, machine = scenario
        policy = SAScheduler(SAConfig.paper_defaults(seed=7))
        seen = []
        policy.anytime_hook = seen.append
        raced = policy.with_portfolio(4)  # the hook must survive the copy
        assert raced.anytime_hook == seen.append
        simulate(
            graph, machine, raced, comm_model=LinearCommModel(),
            record_trace=False,
        )
        assert len(seen) == len(raced.packet_stats)
        counts = [snapshot["n_packets"] for snapshot in seen]
        assert counts == sorted(counts)
        assert all("assignment" not in snapshot for snapshot in seen)

    def test_reset_clears_the_anytime_state(self, scenario):
        graph, machine = scenario
        policy = SAScheduler(SAConfig.paper_defaults(seed=7)).with_portfolio(2)
        simulate(
            graph, machine, policy, comm_model=LinearCommModel(),
            record_trace=False,
        )
        policy.reset()
        snapshot = policy.best_so_far()
        assert snapshot["n_packets"] == 0
        assert snapshot["n_tasks_assigned"] == 0
        assert "last_packet" not in snapshot


# --------------------------------------------------------------------------- #
# Sweep integration
# --------------------------------------------------------------------------- #

class TestPortfolioSweep:
    def test_build_grid_validates_portfolio(self):
        from repro.experiments.sweep import build_grid

        with pytest.raises(ValueError, match="portfolio"):
            build_grid(
                policies=["SA"], machines=["full4"], families=["dag"],
                n_seeds=1, portfolio=1,
            )
        with pytest.raises(ValueError, match="mutually exclusive"):
            build_grid(
                policies=["SA"], machines=["full4"], families=["dag"],
                n_seeds=1, replicas=4, portfolio=4,
            )

    def test_portfolio_applies_to_sa_rows_only(self):
        from repro.experiments.sweep import build_grid

        grid = build_grid(
            policies=["SA", "HLF"], machines=["full4"], families=["dag"],
            n_seeds=1, portfolio=4,
        )
        by_policy = {spec["policy"]: spec for spec in grid}
        assert by_policy["SA"]["portfolio"] == 4
        assert by_policy["HLF"]["portfolio"] is None

    def test_rows_are_invariant_to_jobs(self, tmp_path):
        from repro.experiments.sweep import comparable_rows, run_sweep

        reports = []
        for jobs in (1, 2):
            out = tmp_path / f"portfolio_jobs{jobs}.json"
            reports.append(
                run_sweep(
                    policies=["SA"], machines=["full4"], families=["dag"],
                    n_seeds=1, jobs=jobs, out=str(out), portfolio=4,
                )
            )
        assert comparable_rows(reports[0]) == comparable_rows(reports[1])
        assert reports[0]["meta"]["portfolio"] == 4
        row = reports[0]["results"][0]
        assert row["portfolio"] == 4
        assert row["error"] is None
