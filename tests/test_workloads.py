"""Tests for the four paper workload generators and the suite registry."""

from __future__ import annotations

import pytest

from repro.exceptions import TaskGraphError
from repro.taskgraph.properties import graph_properties
from repro.workloads.fft import fft_2d
from repro.workloads.gauss_jordan import gauss_jordan
from repro.workloads.matmul import matrix_multiply
from repro.workloads.newton_euler import newton_euler
from repro.workloads.suite import PAPER_PROGRAMS, paper_program, paper_program_names


class TestNewtonEuler:
    def test_paper_instance_has_95_tasks(self):
        g = newton_euler()
        assert g.n_tasks == 95
        g.validate()

    def test_calibration_close_to_table1(self):
        props = graph_properties(newton_euler())
        assert props.average_duration == pytest.approx(9.12, rel=0.1)
        assert props.average_communication == pytest.approx(3.96, rel=0.1)
        assert 0.30 <= props.cc_ratio <= 0.55  # paper: 43 %
        assert 5.0 <= props.max_speedup <= 10.0  # paper: 7.86

    def test_parametric_joint_count(self):
        g = newton_euler(n_joints=3)
        assert g.n_tasks == 15 * 3 + 5
        g.validate()

    def test_forward_chain_exists(self):
        g = newton_euler(n_joints=4)
        # the forward recursion chains joint i to joint i+1
        assert g.has_edge("fwd/chain[1]", "fwd/chain[2]")
        assert g.has_edge("fwd/chain[3]", "fwd/chain[4]")
        # the backward recursion runs tip to base
        assert g.has_edge("bwd/force[2]", "bwd/force[1]")

    def test_deterministic_for_seed(self):
        a, b = newton_euler(seed=3), newton_euler(seed=3)
        assert [a.duration(t) for t in a.tasks] == [b.duration(t) for t in b.tasks]

    def test_invalid_joints(self):
        with pytest.raises(TaskGraphError):
            newton_euler(n_joints=0)


class TestGaussJordan:
    def test_paper_instance_has_111_tasks(self):
        g = gauss_jordan()
        assert g.n_tasks == 111
        g.validate()

    def test_calibration_close_to_table1(self):
        props = graph_properties(gauss_jordan())
        assert props.average_duration == pytest.approx(84.77, rel=0.15)
        assert props.average_communication == pytest.approx(6.85, rel=0.15)
        assert 0.05 <= props.cc_ratio <= 0.12  # paper: 8.1 %

    def test_task_count_formula(self):
        g = gauss_jordan(n=6)
        assert g.n_tasks == 6 * (6 + 1) + 1

    def test_pivot_chain_on_critical_path(self):
        g = gauss_jordan(n=4)
        # normalization of step k depends on the previous update of row k
        assert g.has_edge("norm[0]", "elim[0][1]")
        assert g.has_edge("elim[0][1]", "norm[1]")

    def test_elimination_work_decreases_with_step(self):
        g = gauss_jordan(n=8, duration_spread=0.0)
        early = g.duration("elim[0][1]")
        late = g.duration("elim[6][1]")
        assert late < early

    def test_invalid_size(self):
        with pytest.raises(TaskGraphError):
            gauss_jordan(n=0)


class TestMatrixMultiply:
    def test_paper_instance_has_111_tasks(self):
        g = matrix_multiply()
        assert g.n_tasks == 111
        g.validate()

    def test_nearly_flat_graph(self):
        props = graph_properties(matrix_multiply())
        # the product tasks are independent: the maximum speedup is huge
        assert props.max_speedup > 50
        assert props.average_duration == pytest.approx(73.96, rel=0.15)

    def test_structure(self):
        g = matrix_multiply(n=3)
        assert g.n_tasks == 3 + 9 + 1
        assert g.has_edge("bcast[0]", "prod[0][2]")
        assert g.has_edge("prod[2][1]", "gather")

    def test_invalid_size(self):
        with pytest.raises(TaskGraphError):
            matrix_multiply(n=0)


class TestFFT:
    def test_paper_instance_has_73_tasks(self):
        g = fft_2d()
        assert g.n_tasks == 73
        g.validate()

    def test_two_pass_structure(self):
        g = fft_2d(n_vectors=4)
        assert g.n_tasks == 9
        assert g.has_edge("row_fft[0]", "transpose")
        assert g.has_edge("transpose", "col_fft[3]")
        # rows are mutually independent
        assert not g.has_edge("row_fft[0]", "row_fft[1]")

    def test_calibration_close_to_table1(self):
        props = graph_properties(fft_2d())
        assert props.average_duration == pytest.approx(72.74, rel=0.1)
        assert props.max_speedup > 20  # paper: 40.85 (wide, shallow graph)

    def test_invalid_size(self):
        with pytest.raises(TaskGraphError):
            fft_2d(n_vectors=0)


class TestSuite:
    def test_registry_contains_four_programs(self):
        assert paper_program_names() == ["NE", "GJ", "FFT", "MM"]

    def test_paper_program_builds_calibrated_instances(self):
        for key, spec in PAPER_PROGRAMS.items():
            g = paper_program(key)
            assert g.n_tasks == spec.paper_n_tasks

    def test_paper_program_case_insensitive_and_errors(self):
        assert paper_program("ne").n_tasks == 95
        with pytest.raises(KeyError):
            paper_program("nope")

    def test_spec_build_accepts_overrides(self):
        g = PAPER_PROGRAMS["NE"].build(seed=1, n_joints=2)
        assert g.n_tasks == 15 * 2 + 5
