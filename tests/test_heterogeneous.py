"""Heterogeneous machines end-to-end: speeds, link weights, and equivalences.

Three layers of guarantees:

1. The machine model — speed vectors, weighted links, weighted distances and
   routes — behaves as specified and validates its inputs.
2. Explicitly-unit heterogeneity parameters are *bit-for-bit* equivalent to
   the homogeneous default, for every policy and both fidelities.
3. The compiled SA kernel and the ``SAConfig(compiled=False)`` reference path
   commit identical assignments on randomized heterogeneous machines (speeds
   and link weights drawn per seed), extending PR 1's homogeneous-only
   equivalence proof to the full heterogeneous parameter space.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.model import LinearCommModel, ZeroCommModel, effective_comm_cost
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.exceptions import MachineError
from repro.machine.machine import Machine
from repro.schedulers.etf import ETFScheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.hlf import HLFScheduler
from repro.schedulers.lpt import LPTScheduler
from repro.sim.engine import simulate
from repro.taskgraph.generators import layered_random
from repro.taskgraph.graph import TaskGraph


# --------------------------------------------------------------------------- #
# Machine model
# --------------------------------------------------------------------------- #

class TestMachineSpeeds:
    def test_default_is_homogeneous(self):
        m = Machine.hypercube(3)
        assert m.has_unit_speeds
        assert m.has_unit_link_weights
        assert not m.is_heterogeneous
        assert m.speed_of(0) == 1.0
        assert np.all(m.speeds == 1.0)

    def test_explicit_speeds_are_exposed(self):
        m = Machine.ring(4, speeds=[1.0, 2.0, 3.0, 4.0])
        assert m.speed_of(3) == 4.0
        assert not m.has_unit_speeds
        assert m.is_heterogeneous
        assert list(m.speeds) == [1.0, 2.0, 3.0, 4.0]

    def test_speeds_length_must_match(self):
        with pytest.raises(MachineError):
            Machine.ring(4, speeds=[1.0, 2.0])

    def test_speeds_must_be_positive(self):
        with pytest.raises(MachineError):
            Machine.ring(3, speeds=[1.0, 0.0, 1.0])
        with pytest.raises(MachineError):
            Machine.ring(3, speeds=[1.0, -2.0, 1.0])


class TestLinkWeights:
    def test_weights_on_missing_link_rejected(self):
        with pytest.raises(MachineError):
            Machine.ring(4, link_weights={(0, 2): 2.0})  # not a ring link

    def test_weights_must_be_positive(self):
        with pytest.raises(MachineError):
            Machine.ring(4, link_weights={(0, 1): 0.0})

    def test_conflicting_orientations_rejected(self):
        with pytest.raises(MachineError):
            Machine.ring(4, link_weights={(0, 1): 2.0, (1, 0): 3.0})
        # consistent duplicate orientations are fine
        m = Machine.ring(4, link_weights={(0, 1): 2.0, (1, 0): 2.0})
        assert m.link_weight(0, 1) == 2.0

    def test_unit_weights_collapse_to_homogeneous(self):
        m = Machine.ring(4, link_weights={(0, 1): 1.0, (1, 2): 1.0})
        assert m.has_unit_link_weights
        assert not m.is_heterogeneous

    def test_link_weight_lookup_both_orientations(self):
        m = Machine.ring(4, link_weights={(1, 0): 2.5})
        assert m.link_weight(0, 1) == 2.5
        assert m.link_weight(1, 0) == 2.5
        assert m.link_weight(1, 2) == 1.0
        with pytest.raises(MachineError):
            m.link_weight(0, 2)  # not linked

    def test_weighted_distance_on_linear_chain(self):
        # 0 -2.0- 1 -3.0- 2: weighted distance accumulates link weights.
        m = Machine(
            topology=Machine.ring(3).topology,  # triangle ring: 0-1, 1-2, 0-2
            link_weights={(0, 1): 2.0, (1, 2): 3.0, (0, 2): 10.0},
        )
        # direct 0-2 costs 10; via 1 costs 5 — the weighted route wins
        assert m.weighted_distance(0, 2) == 5.0
        assert m.distance(0, 2) == 2  # hop count of the chosen weighted route
        assert m.route(0, 2) == [0, 1, 2]

    def test_weighted_route_ties_break_by_hops(self):
        # Square ring 0-1-2-3-0 with unit-ish weights arranged so that two
        # routes to the opposite corner have equal weight; both have 2 hops,
        # and the chosen route must be deterministic.
        m = Machine.ring(4, link_weights={(0, 1): 1.0, (1, 2): 1.0, (2, 3): 1.0, (0, 3): 2.0})
        assert m.weighted_distance(0, 2) == 2.0
        assert m.route(0, 2) == m.route(0, 2)

    def test_unweighted_weighted_distance_equals_hops(self):
        m = Machine.hypercube(3)
        assert np.array_equal(m.weighted_distance_matrix(), m.distance_matrix())
        assert m.weighted_diameter == m.diameter

    def test_weighted_distances_from_matches_scalar(self):
        m = Machine.mesh(3, 3, link_weights={(0, 1): 4.0, (0, 3): 0.5})
        row = m.weighted_distances_from(0)
        for j in range(9):
            assert row[j] == m.weighted_distance(0, j)


class TestEquation4WithWeights:
    def test_weighted_distance_scales_volume_only(self):
        m = Machine.ring(3)
        base = effective_comm_cost(4.0, 2, False, m.params)
        weighted = effective_comm_cost(4.0, 2, False, m.params, weighted_distance=5.0)
        # routing + setup identical; volume goes from 4*2 to 4*5
        assert weighted - base == pytest.approx(4.0 * 3.0)

    def test_cost_row_matches_scalar_cost_on_weighted_machine(self):
        m = Machine.ring(5, link_weights={(0, 1): 2.0, (2, 3): 0.5})
        model = LinearCommModel()
        procs = list(range(5))
        row = model.cost_row(m, 3.0, 1, procs)
        for j in procs:
            assert row[j] == model.cost(m, 3.0, 1, j)


# --------------------------------------------------------------------------- #
# Engine semantics
# --------------------------------------------------------------------------- #

def _two_task_graph() -> TaskGraph:
    g = TaskGraph("pair")
    g.add_task("a", 8.0)
    g.add_task("b", 4.0)
    g.add_dependency("a", "b", comm=1.0)
    return g


class TestEngineSpeedScaling:
    def test_task_runs_faster_on_fast_processor(self):
        g = TaskGraph("solo")
        g.add_task("t", 12.0)
        m = Machine.fully_connected(2, speeds=[1.0, 4.0])
        # LPT sends the longest task to the fastest processor.
        result = simulate(g, m, LPTScheduler(), comm_model=ZeroCommModel())
        rec = result.trace.record_for("t")
        assert rec.processor == 1
        assert rec.finish_time - rec.start_time == pytest.approx(12.0 / 4.0)

    def test_chain_on_one_fast_processor(self):
        g = _two_task_graph()
        m = Machine.fully_connected(1, speeds=[2.0])
        result = simulate(g, m, FIFOScheduler(), comm_model=LinearCommModel())
        assert result.makespan == pytest.approx((8.0 + 4.0) / 2.0)

    @pytest.mark.parametrize("fidelity", ["latency", "contention"])
    def test_contention_and_latency_charge_weighted_links(self, fidelity):
        # Two processors joined by one link of weight 3: the message of an
        # off-processor edge occupies/charges the link for comm * 3.
        g = _two_task_graph()
        m = Machine.fully_connected(2, link_weights={(0, 1): 3.0})
        hlf = HLFScheduler(placement="index")
        result = simulate(g, m, hlf, comm_model=LinearCommModel(), fidelity=fidelity)
        unit = simulate(
            g,
            Machine.fully_connected(2),
            HLFScheduler(placement="index"),
            comm_model=LinearCommModel(),
            fidelity=fidelity,
        )
        # Same placements, heavier link: the weighted run can only be slower
        # (or equal if both tasks landed on one processor).
        assert result.makespan >= unit.makespan
        if result.trace.record_for("b").processor != result.trace.record_for("a").processor:
            assert result.makespan > unit.makespan


class TestHomogeneousEquivalence:
    """Explicit unit heterogeneity parameters must be bit-identical to the default."""

    POLICIES = [
        lambda: HLFScheduler(seed=0),
        lambda: ETFScheduler(),
        lambda: LPTScheduler(),
        lambda: SAScheduler(SAConfig.paper_defaults(seed=3)),
    ]

    @pytest.mark.parametrize("fidelity", ["latency", "contention"])
    @pytest.mark.parametrize("policy_idx", range(len(POLICIES)))
    def test_unit_parameters_change_nothing(self, policy_idx, fidelity):
        g = layered_random(n_layers=4, width=6, edge_probability=0.4,
                           mean_duration=15.0, mean_comm=6.0, seed=7)
        links = {tuple(sorted(l)): 1.0 for l in Machine.hypercube(3).topology.links()}
        explicit = Machine.hypercube(3, speeds=[1.0] * 8, link_weights=links)
        default = Machine.hypercube(3)
        r_explicit = simulate(g, explicit, self.POLICIES[policy_idx](),
                              comm_model=LinearCommModel(), fidelity=fidelity)
        r_default = simulate(g, default, self.POLICIES[policy_idx](),
                             comm_model=LinearCommModel(), fidelity=fidelity)
        assert r_explicit.makespan == r_default.makespan
        assert r_explicit.task_processor == r_default.task_processor
        assert r_explicit.fingerprint() == r_default.fingerprint()


# --------------------------------------------------------------------------- #
# Compiled kernel vs reference path on heterogeneous machines
# --------------------------------------------------------------------------- #

def _random_hetero_machine(seed: int) -> Machine:
    """A machine with speeds and link weights drawn from the scenario seed."""
    rng = np.random.default_rng(seed)
    kind = seed % 3
    if kind == 0:
        topology = Machine.ring(9).topology
        builder = lambda **kw: Machine.ring(9, **kw)
    elif kind == 1:
        topology = Machine.hypercube(3).topology
        builder = lambda **kw: Machine.hypercube(3, **kw)
    else:
        topology = Machine.mesh(3, 4).topology
        builder = lambda **kw: Machine.mesh(3, 4, **kw)
    n = topology.n_processors
    speeds = rng.uniform(0.5, 4.0, n).tolist()
    link_weights = {
        tuple(sorted(l)): float(rng.uniform(0.5, 3.0)) for l in topology.links()
    }
    return builder(speeds=speeds, link_weights=link_weights)


class TestCompiledKernelHeterogeneousDifferential:
    """Compiled and reference SA must agree exactly on heterogeneous inputs."""

    @pytest.mark.parametrize("seed", range(20))
    def test_compiled_equals_reference_end_to_end(self, seed):
        machine = _random_hetero_machine(seed)
        graph = layered_random(n_layers=4, width=5, edge_probability=0.4,
                               mean_duration=15.0, mean_comm=6.0, seed=seed)
        fast = simulate(graph, machine, SAScheduler(SAConfig(seed=seed)),
                        comm_model=LinearCommModel(), record_trace=False)
        slow = simulate(graph, machine, SAScheduler(SAConfig(seed=seed, compiled=False)),
                        comm_model=LinearCommModel(), record_trace=False)
        assert fast.task_processor == slow.task_processor
        assert fast.makespan == slow.makespan
        assert fast.n_packets == slow.n_packets

    def test_sa_valid_schedule_on_hetero_machine(self):
        machine = _random_hetero_machine(5)
        graph = layered_random(n_layers=5, width=6, edge_probability=0.4,
                               mean_duration=15.0, mean_comm=6.0, seed=5)
        result = simulate(graph, machine, SAScheduler(SAConfig(seed=5)),
                          comm_model=LinearCommModel())
        result.trace.validate(graph)
        assert len(result.task_processor) == graph.n_tasks


# --------------------------------------------------------------------------- #
# Heterogeneity-aware placement behaviour
# --------------------------------------------------------------------------- #

class TestSpeedAwarePlacement:
    def test_hlf_fastest_places_top_level_on_fastest(self):
        g = TaskGraph("prio")
        g.add_task("high", 1.0)
        g.add_task("low", 1.0)
        g.add_task("tail", 9.0)
        g.add_dependency("high", "tail", 1.0)
        from repro.schedulers.base import PacketContext

        m = Machine.fully_connected(3, speeds=[1.0, 5.0, 2.0])
        ctx = PacketContext(
            time=0.0,
            ready_tasks=["high", "low"],
            idle_processors=[0, 1, 2],
            graph=g,
            machine=m,
            levels=g.levels(),
            task_processor={},
        )
        assignment = HLFScheduler(placement="fastest").assign(ctx)
        assert assignment["high"] == 1  # highest level -> fastest processor
        assert assignment["low"] == 2   # next level -> next fastest

    def test_lpt_sends_longest_task_to_fastest_processor(self):
        g = TaskGraph("lpt")
        g.add_task("long", 10.0)
        g.add_task("short", 1.0)
        m = Machine.fully_connected(2, speeds=[1.0, 3.0])
        result = simulate(g, m, LPTScheduler(), comm_model=ZeroCommModel())
        assert result.trace.record_for("long").processor == 1
