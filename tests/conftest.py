"""Shared fixtures for the test suite.

Golden-trace workflow: fixtures under ``tests/golden/`` pin fixed-seed
simulation fingerprints (see ``SimulationResult.fingerprint``).  Run

    python -m pytest tests/test_golden_trace.py --regen-golden

after an *intentional* behaviour change to rewrite them; without the flag the
golden tests fail on any bit-level drift.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.comm.model import LinearCommModel, ZeroCommModel
from repro.machine.machine import Machine
from repro.machine.params import CommParams
from repro.taskgraph.graph import TaskGraph

GOLDEN_DIR = Path(__file__).parent / "golden"


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="regenerate the golden-trace fixtures under tests/golden/ instead of diffing",
    )


class GoldenStore:
    """Load / compare / regenerate one golden JSON fixture file."""

    def __init__(self, path: Path, regen: bool) -> None:
        self.path = path
        self.regen = regen
        self._data = None
        self._dirty = False

    def _load(self) -> dict:
        if self._data is None:
            if self.path.exists():
                with open(self.path) as fh:
                    self._data = json.load(fh)
            else:
                self._data = {}
        return self._data

    def check(self, key: str, fingerprint: dict) -> None:
        """Diff *fingerprint* against the stored entry (or record it with --regen-golden)."""
        data = self._load()
        if self.regen:
            data[key] = fingerprint
            self._dirty = True
            return
        if key not in data:
            pytest.fail(
                f"golden fixture {self.path.name} has no entry {key!r}; "
                f"run: python -m pytest {Path(__file__).parent.name}/test_golden_trace.py --regen-golden"
            )
        stored = data[key]
        if stored != fingerprint:
            diffs = []
            for field in ("makespan", "n_packets", "n_messages"):
                if stored.get(field) != fingerprint.get(field):
                    diffs.append(f"{field}: golden={stored.get(field)!r} got={fingerprint.get(field)!r}")
            gold_tasks, got_tasks = stored.get("tasks", {}), fingerprint.get("tasks", {})
            changed = [
                t for t in sorted(set(gold_tasks) | set(got_tasks))
                if gold_tasks.get(t) != got_tasks.get(t)
            ]
            if changed:
                sample = ", ".join(
                    f"{t}: golden={gold_tasks.get(t)} got={got_tasks.get(t)}" for t in changed[:3]
                )
                diffs.append(f"{len(changed)} task record(s) drifted ({sample}, ...)")
            pytest.fail(
                f"golden trace drift in {self.path.name}[{key!r}]:\n  " + "\n  ".join(diffs)
            )

    def flush(self) -> None:
        if self._dirty:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "w") as fh:
                json.dump(self._data, fh, indent=1, sort_keys=True)
                fh.write("\n")
            self._dirty = False


@pytest.fixture(scope="session")
def golden_regen(request) -> bool:
    return bool(request.config.getoption("--regen-golden"))


@pytest.fixture(scope="session")
def golden_table2(golden_regen) -> GoldenStore:
    """Golden fingerprints for the 24 Table-2 cells."""
    store = GoldenStore(GOLDEN_DIR / "table2_cells.json", golden_regen)
    yield store
    store.flush()


@pytest.fixture(scope="session")
def golden_random(golden_regen) -> GoldenStore:
    """Golden fingerprints for the random-graph scenarios."""
    store = GoldenStore(GOLDEN_DIR / "random_graphs.json", golden_regen)
    yield store
    store.flush()


@pytest.fixture(scope="session")
def golden_contention(golden_regen) -> GoldenStore:
    """Golden fingerprints for the Table-2 cells under contention fidelity."""
    store = GoldenStore(GOLDEN_DIR / "contention_cells.json", golden_regen)
    yield store
    store.flush()


@pytest.fixture(scope="session")
def golden_families(golden_regen) -> GoldenStore:
    """Golden fingerprints for the workload-zoo family cells."""
    store = GoldenStore(GOLDEN_DIR / "families.json", golden_regen)
    yield store
    store.flush()


@pytest.fixture
def diamond_graph() -> TaskGraph:
    """A 4-task diamond: a -> {b, c} -> d, with communication weights."""
    g = TaskGraph("diamond")
    g.add_task("a", 2.0)
    g.add_task("b", 3.0)
    g.add_task("c", 1.0)
    g.add_task("d", 2.0)
    g.add_dependency("a", "b", comm=1.0)
    g.add_dependency("a", "c", comm=1.0)
    g.add_dependency("b", "d", comm=0.5)
    g.add_dependency("c", "d", comm=0.5)
    return g


@pytest.fixture
def chain_graph() -> TaskGraph:
    """A 5-task chain with unit durations and unit communication."""
    g = TaskGraph("chain5")
    for i in range(5):
        g.add_task(i, 1.0)
    for i in range(4):
        g.add_dependency(i, i + 1, comm=1.0)
    return g


@pytest.fixture
def wide_graph() -> TaskGraph:
    """One root fanning out to 6 independent tasks joined by a sink."""
    g = TaskGraph("wide")
    g.add_task("root", 1.0)
    g.add_task("sink", 1.0)
    for i in range(6):
        g.add_task(f"w{i}", 4.0)
        g.add_dependency("root", f"w{i}", comm=2.0)
        g.add_dependency(f"w{i}", "sink", comm=2.0)
    return g


@pytest.fixture
def hypercube8() -> Machine:
    return Machine.hypercube(3)


@pytest.fixture
def ring9() -> Machine:
    return Machine.ring(9)


@pytest.fixture
def bus8() -> Machine:
    return Machine.bus(8)


@pytest.fixture
def two_proc_machine() -> Machine:
    return Machine.fully_connected(2)


@pytest.fixture
def paper_params() -> CommParams:
    return CommParams.paper_defaults()


@pytest.fixture
def linear_comm() -> LinearCommModel:
    return LinearCommModel()


@pytest.fixture
def zero_comm() -> ZeroCommModel:
    return ZeroCommModel()
