"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.comm.model import LinearCommModel, ZeroCommModel
from repro.machine.machine import Machine
from repro.machine.params import CommParams
from repro.taskgraph.graph import TaskGraph


@pytest.fixture
def diamond_graph() -> TaskGraph:
    """A 4-task diamond: a -> {b, c} -> d, with communication weights."""
    g = TaskGraph("diamond")
    g.add_task("a", 2.0)
    g.add_task("b", 3.0)
    g.add_task("c", 1.0)
    g.add_task("d", 2.0)
    g.add_dependency("a", "b", comm=1.0)
    g.add_dependency("a", "c", comm=1.0)
    g.add_dependency("b", "d", comm=0.5)
    g.add_dependency("c", "d", comm=0.5)
    return g


@pytest.fixture
def chain_graph() -> TaskGraph:
    """A 5-task chain with unit durations and unit communication."""
    g = TaskGraph("chain5")
    for i in range(5):
        g.add_task(i, 1.0)
    for i in range(4):
        g.add_dependency(i, i + 1, comm=1.0)
    return g


@pytest.fixture
def wide_graph() -> TaskGraph:
    """One root fanning out to 6 independent tasks joined by a sink."""
    g = TaskGraph("wide")
    g.add_task("root", 1.0)
    g.add_task("sink", 1.0)
    for i in range(6):
        g.add_task(f"w{i}", 4.0)
        g.add_dependency("root", f"w{i}", comm=2.0)
        g.add_dependency(f"w{i}", "sink", comm=2.0)
    return g


@pytest.fixture
def hypercube8() -> Machine:
    return Machine.hypercube(3)


@pytest.fixture
def ring9() -> Machine:
    return Machine.ring(9)


@pytest.fixture
def bus8() -> Machine:
    return Machine.bus(8)


@pytest.fixture
def two_proc_machine() -> Machine:
    return Machine.fully_connected(2)


@pytest.fixture
def paper_params() -> CommParams:
    return CommParams.paper_defaults()


@pytest.fixture
def linear_comm() -> LinearCommModel:
    return LinearCommModel()


@pytest.fixture
def zero_comm() -> ZeroCommModel:
    return ZeroCommModel()
