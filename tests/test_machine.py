"""Tests for topologies, routing, communication parameters and the Machine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MachineError, TopologyError
from repro.machine.machine import Machine
from repro.machine.params import CommParams
from repro.machine.routing import all_pairs_hop_distance, routing_table, shortest_path
from repro.machine.topology import Topology


class TestCommParams:
    def test_paper_defaults_sigma_tau(self):
        p = CommParams.paper_defaults()
        assert p.sigma == pytest.approx(7.0)
        assert p.tau == pytest.approx(9.0)

    def test_word_transfer_time(self):
        p = CommParams.paper_defaults()
        # 40 bits over 10 bits/us = 4 us per variable
        assert p.word_transfer_time(1) == pytest.approx(4.0)
        assert p.word_transfer_time(2.5) == pytest.approx(10.0)

    def test_zero_overhead(self):
        p = CommParams.zero_overhead()
        assert p.sigma == 0.0 and p.tau == 0.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            CommParams(context_switch=-1)
        with pytest.raises(ValueError):
            CommParams(bandwidth_bits_per_us=0)


class TestTopologyConstructors:
    def test_hypercube_degree_and_size(self):
        t = Topology.hypercube(3)
        assert t.n_processors == 8
        assert all(t.degree(i) == 3 for i in range(8))
        assert t.n_links == 12

    def test_hypercube_dimension_zero(self):
        t = Topology.hypercube(0)
        assert t.n_processors == 1 and t.n_links == 0

    def test_ring_structure(self):
        t = Topology.ring(9)
        assert t.n_processors == 9
        assert all(t.degree(i) == 2 for i in range(9))
        assert t.has_link(0, 8)

    def test_ring_of_two(self):
        t = Topology.ring(2)
        assert t.n_links == 1

    def test_bus_is_star_with_hub_zero(self):
        t = Topology.bus(8)
        assert t.degree(0) == 7
        assert all(t.degree(i) == 1 for i in range(1, 8))

    def test_star_custom_hub(self):
        t = Topology.star(5, hub=2)
        assert t.degree(2) == 4

    def test_fully_connected(self):
        t = Topology.fully_connected(5)
        assert t.n_links == 10

    def test_linear(self):
        t = Topology.linear(4)
        assert t.n_links == 3
        assert not t.has_link(0, 3)

    def test_mesh_and_torus(self):
        mesh = Topology.mesh(3, 3)
        torus = Topology.torus(3, 3)
        assert mesh.n_processors == torus.n_processors == 9
        assert torus.n_links > mesh.n_links  # wraparound adds links

    def test_binary_tree(self):
        t = Topology.binary_tree(2)
        assert t.n_processors == 7
        assert t.degree(0) == 2

    def test_from_links(self):
        t = Topology.from_links(3, [(0, 1), (1, 2)])
        assert t.has_link(0, 1) and not t.has_link(0, 2)

    def test_from_links_invalid(self):
        with pytest.raises(TopologyError):
            Topology.from_links(2, [(0, 5)])
        with pytest.raises(TopologyError):
            Topology.from_links(2, [(0, 0)])

    def test_invalid_adjacency_shape(self):
        with pytest.raises(TopologyError):
            Topology(np.zeros((2, 3)))

    def test_adjacency_symmetrized_and_diagonal_cleared(self):
        t = Topology([[1, 1], [0, 0]])
        assert t.has_link(0, 1) and t.has_link(1, 0)
        assert not t.has_link(0, 0)

    def test_connectivity(self):
        connected = Topology.ring(4)
        assert connected.is_connected()
        disconnected = Topology.from_links(4, [(0, 1), (2, 3)])
        assert not disconnected.is_connected()

    def test_equality_and_hash(self):
        assert Topology.ring(4) == Topology.ring(4)
        assert Topology.ring(4) != Topology.linear(4)
        assert hash(Topology.ring(4)) == hash(Topology.ring(4))

    def test_processor_index_check(self):
        t = Topology.ring(3)
        with pytest.raises(TopologyError):
            t.neighbors(5)


class TestRouting:
    def test_hop_distance_hypercube_is_hamming(self):
        t = Topology.hypercube(3)
        dist = all_pairs_hop_distance(t)
        for i in range(8):
            for j in range(8):
                assert dist[i, j] == bin(i ^ j).count("1")

    def test_hop_distance_ring(self):
        t = Topology.ring(9)
        dist = all_pairs_hop_distance(t)
        assert dist[0, 4] == 4
        assert dist[0, 5] == 4  # wraps the other way
        assert dist.max() == 4

    def test_hop_distance_disconnected_marked(self):
        t = Topology.from_links(3, [(0, 1)])
        dist = all_pairs_hop_distance(t)
        assert dist[0, 2] == -1

    def test_shortest_path_endpoints_and_length(self):
        t = Topology.hypercube(3)
        path = shortest_path(t, 0, 7)
        assert path[0] == 0 and path[-1] == 7
        assert len(path) == 4  # 3 hops
        # consecutive nodes are linked
        for a, b in zip(path, path[1:]):
            assert t.has_link(a, b)

    def test_shortest_path_same_node(self):
        t = Topology.ring(5)
        assert shortest_path(t, 2, 2) == [2]

    def test_shortest_path_no_route(self):
        t = Topology.from_links(3, [(0, 1)])
        with pytest.raises(TopologyError):
            shortest_path(t, 0, 2)

    def test_routing_table_consistent_with_distances(self):
        t = Topology.ring(6)
        table = routing_table(t)
        dist = all_pairs_hop_distance(t)
        for (src, dst), path in table.items():
            assert len(path) - 1 == dist[src, dst]

    @given(dim=st.integers(0, 4), src=st.integers(0, 15), dst=st.integers(0, 15))
    @settings(max_examples=40, deadline=None)
    def test_hypercube_path_length_property(self, dim, src, dst):
        n = 1 << dim
        src, dst = src % n, dst % n
        t = Topology.hypercube(dim)
        path = shortest_path(t, src, dst)
        assert len(path) - 1 == bin(src ^ dst).count("1")


class TestMachine:
    def test_machine_defaults_to_paper_params(self, hypercube8):
        assert hypercube8.params.sigma == pytest.approx(7.0)
        assert hypercube8.n_processors == 8
        assert hypercube8.diameter == 3

    def test_machine_requires_connected_topology(self):
        with pytest.raises(MachineError):
            Machine(Topology.from_links(3, [(0, 1)]))

    def test_machine_requires_topology_type(self):
        with pytest.raises(MachineError):
            Machine("not a topology")

    def test_distance_and_route_cache(self, ring9):
        assert ring9.distance(0, 4) == 4
        r1 = ring9.route(0, 3)
        r2 = ring9.route(0, 3)
        assert r1 == r2 and r1[0] == 0 and r1[-1] == 3

    def test_link_path(self, bus8):
        links = bus8.link_path(1, 2)
        assert links == [(0, 1), (0, 2)]

    def test_paper_architectures(self):
        archs = Machine.paper_architectures()
        assert set(archs) == {"Hypercube (8p)", "Bus (8p)", "Ring (9p)"}
        assert archs["Hypercube (8p)"].n_processors == 8
        assert archs["Ring (9p)"].n_processors == 9

    def test_distance_matrix_is_copy(self, hypercube8):
        m = hypercube8.distance_matrix()
        m[0, 1] = 99
        assert hypercube8.distance(0, 1) == 1

    def test_constructors(self):
        assert Machine.mesh(2, 3).n_processors == 6
        assert Machine.fully_connected(4).diameter == 1
        assert Machine.bus(8).diameter == 2


class TestDistancesFrom:
    def test_matches_scalar_distance(self):
        from repro.machine.machine import Machine

        machine = Machine.hypercube(3)
        row = machine.distances_from(0)
        for j in range(8):
            assert row[j] == machine.distance(0, j)
        sub = machine.distances_from(3, [1, 5, 7])
        assert list(sub) == [machine.distance(3, p) for p in (1, 5, 7)]

    def test_out_of_range_indices_rejected(self):
        from repro.machine.machine import Machine

        machine = Machine.hypercube(3)
        with pytest.raises(IndexError):
            machine.distances_from(0, [-1])
        with pytest.raises(IndexError):
            machine.distances_from(0, [8])
