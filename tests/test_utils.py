"""Tests for repro.utils (rng, validation, tabulate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rng
from repro.utils.tabulate import format_table
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
    is_finite_number,
)


class TestRng:
    def test_as_rng_none_returns_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_as_rng_int_is_deterministic(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        assert np.allclose(a, b)

    def test_as_rng_different_seeds_differ(self):
        assert not np.allclose(as_rng(1).random(5), as_rng(2).random(5))

    def test_as_rng_passthrough(self):
        gen = np.random.default_rng(7)
        assert as_rng(gen) is gen

    def test_spawn_rng_children_independent_and_deterministic(self):
        parent1 = as_rng(123)
        parent2 = as_rng(123)
        kids1 = spawn_rng(parent1, 3)
        kids2 = spawn_rng(parent2, 3)
        for a, b in zip(kids1, kids2):
            assert np.allclose(a.random(4), b.random(4))
        # different children produce different streams
        assert not np.allclose(kids1[0].random(4), kids1[1].random(4))

    def test_spawn_rng_requires_positive_count(self):
        with pytest.raises(ValueError):
            spawn_rng(as_rng(0), 0)


class TestValidation:
    def test_is_finite_number(self):
        assert is_finite_number(3.5)
        assert is_finite_number(0)
        assert not is_finite_number(float("inf"))
        assert not is_finite_number(float("nan"))
        assert not is_finite_number("x")
        assert not is_finite_number(True)

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_check_non_negative_rejects_negative(self):
        with pytest.raises(ValueError, match="x"):
            check_non_negative("x", -1)

    def test_check_positive(self):
        assert check_positive("x", 2) == 2.0
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_probability_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability("p", 1.5)
        with pytest.raises(ValueError):
            check_probability("p", -0.1)

    def test_check_in_range(self):
        assert check_in_range("x", 5, 0, 10) == 5.0
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)

    def test_check_type(self):
        assert check_type("x", 3, int) == 3
        with pytest.raises(TypeError):
            check_type("x", "3", int)


class TestTabulate:
    def test_basic_table_alignment(self):
        out = format_table([["a", 1], ["bb", 22]], headers=["col", "n"])
        lines = out.splitlines()
        assert lines[0].startswith("col")
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_float_formatting(self):
        out = format_table([[1.23456]], floatfmt=".1f")
        assert "1.2" in out and "1.23" not in out

    def test_title_and_empty(self):
        assert format_table([], title="T") == "T"
        out = format_table([[1]], title="Title")
        assert out.splitlines()[0] == "Title"

    def test_ragged_rows_are_padded(self):
        out = format_table([[1, 2, 3], [4]], headers=["a", "b", "c"])
        assert "4" in out


class TestStreamDraws:
    """StreamDraws must replay numpy Generator scalar draws bit for bit."""

    def test_random_matches_generator(self):
        from repro.utils.rng import StreamDraws

        reference = np.random.default_rng(42)
        draws = StreamDraws(np.random.default_rng(42))
        for _ in range(500):
            assert draws.random() == reference.random()

    def test_integers_matches_generator(self):
        from repro.utils.rng import StreamDraws

        reference = np.random.default_rng(7)
        draws = StreamDraws(np.random.default_rng(7))
        for n in (2, 3, 5, 8, 15, 16, 31, 64, 200, 1):
            for _ in range(100):
                assert draws.integers(0, n) == int(reference.integers(0, n))

    def test_interleaved_draws_match(self):
        from repro.utils.rng import StreamDraws

        reference = np.random.default_rng(123)
        draws = StreamDraws(np.random.default_rng(123))
        for k in range(1000):
            if k % 3 == 0:
                assert draws.random() == reference.random()
            else:
                n = (k % 17) + 1
                assert draws.integers(0, n) == int(reference.integers(0, n))

    def test_buffered_half_word_handoff(self):
        from repro.utils.rng import StreamDraws

        # A bounded draw on the generator before wrapping leaves a buffered
        # 32-bit half in its state; StreamDraws must consume it first.
        reference = np.random.default_rng(5)
        wrapped = np.random.default_rng(5)
        reference.integers(0, 10)
        wrapped.integers(0, 10)
        draws = StreamDraws(wrapped)
        for _ in range(200):
            assert draws.integers(0, 6) == int(reference.integers(0, 6))

    def test_low_high_form(self):
        from repro.utils.rng import StreamDraws

        reference = np.random.default_rng(9)
        draws = StreamDraws(np.random.default_rng(9))
        for _ in range(200):
            assert draws.integers(3, 12) == int(reference.integers(3, 12))

    def test_trivial_ranges_consume_nothing(self):
        from repro.utils.rng import StreamDraws

        reference = np.random.default_rng(1)
        draws = StreamDraws(np.random.default_rng(1))
        assert draws.integers(0, 1) == 0
        assert draws.integers(5, 6) == 5
        assert draws.random() == reference.random()

    def test_inverted_range_raises_like_numpy(self):
        from repro.utils.rng import StreamDraws

        draws = StreamDraws(np.random.default_rng(0))
        with pytest.raises(ValueError):
            draws.integers(5, 3)
        with pytest.raises(ValueError):
            draws.integers(0)
