"""Tests for the experiment drivers (Tables 1-2, Figures 1-2).

Table 2 over the full paper suite is expensive; the tests here run scaled-down
variants (fewer programs / smaller instances) and check the structure of the
outputs.  The full-size regenerations live in benchmarks/.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure1 import format_figure1, run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import (
    PAPER_TABLE2,
    format_table2,
    paper_table2_reference,
    run_table2,
)
from repro.machine.machine import Machine


class TestTable1:
    def test_rows_cover_all_programs(self):
        rows = run_table1()
        assert [r.program for r in rows] == [
            "Newton-Euler",
            "Gauss-Jordan",
            "FFT",
            "Matrix Multiply",
        ]

    def test_task_counts_match_paper_exactly(self):
        for row in run_table1():
            assert row.n_tasks == row.paper_n_tasks

    def test_calibrated_averages_within_tolerance(self):
        for row in run_table1():
            assert row.avg_duration == pytest.approx(row.paper_avg_duration, rel=0.15)
            assert row.avg_comm == pytest.approx(row.paper_avg_comm, rel=0.15)

    def test_format_contains_headers(self):
        text = format_table1()
        assert "Table 1" in text
        assert "Newton-Euler" in text and "Max" in text


class TestTable2:
    def test_reference_values_exposed(self):
        assert paper_table2_reference("NE", "Ring (9p)") == (8.00, 8.00, 5.5, 3.6)
        assert set(PAPER_TABLE2) == {"NE", "GJ", "MM", "FFT"}

    def test_single_program_block_structure(self):
        blocks = run_table2(
            programs=["FFT"],
            sa_weights=(0.5,),
            hlf_placement_seeds=(0,),
        )
        assert len(blocks) == 1
        block = blocks[0]
        assert block.program == "FFT"
        assert len(block.cells) == 6  # 3 architectures x 2 comm settings
        for arch in ("Hypercube (8p)", "Bus (8p)", "Ring (9p)"):
            wo = block.cell(arch, with_communication=False)
            wi = block.cell(arch, with_communication=True)
            assert wo.speedup_sa > 0 and wi.speedup_hlf > 0
            # without communication SA matches HLF (paper's first observation)
            assert wo.speedup_sa == pytest.approx(wo.speedup_hlf, rel=0.02)
            # with communication, speedups drop
            assert wi.speedup_sa <= wo.speedup_sa + 1e-9

    def test_missing_cell_raises(self):
        blocks = run_table2(programs=["FFT"], sa_weights=(0.5,), hlf_placement_seeds=(0,))
        with pytest.raises(KeyError):
            blocks[0].cell("Nonexistent", True)

    def test_parallel_jobs_identical_to_serial(self):
        kwargs = dict(programs=["FFT"], sa_weights=(0.5,), hlf_placement_seeds=(0,))
        serial = run_table2(jobs=1, **kwargs)
        parallel = run_table2(jobs=2, **kwargs)
        for b_serial, b_parallel in zip(serial, parallel):
            assert b_serial.program == b_parallel.program
            for c_serial, c_parallel in zip(b_serial.cells, b_parallel.cells):
                assert c_serial.speedup_sa == c_parallel.speedup_sa
                assert c_serial.speedup_hlf == c_parallel.speedup_hlf

    def test_fidelity_is_threaded_through(self):
        kwargs = dict(programs=["FFT"], sa_weights=(0.5,), hlf_placement_seeds=(0,))
        latency = run_table2(fidelity="latency", **kwargs)
        contention = run_table2(fidelity="contention", **kwargs)
        # The contention model charges link queueing and routing busy time, so
        # at least one with-comm cell must differ from the latency model.
        diffs = [
            abs(cl.speedup_sa - cc.speedup_sa) + abs(cl.speedup_hlf - cc.speedup_hlf)
            for bl, bc in zip(latency, contention)
            for cl, cc in zip(bl.cells, bc.cells)
            if cl.with_communication
        ]
        assert max(diffs) > 0

    def test_format_produces_one_section_per_program(self):
        blocks = run_table2(programs=["FFT"], sa_weights=(0.5,), hlf_placement_seeds=(0,))
        text = format_table2(blocks)
        assert text.count("Table 2 -") == 1
        assert "% gain" in text


class TestFigure1:
    def test_trajectory_and_stats(self):
        result = run_figure1(program="NE", machine=Machine.hypercube(3))
        assert result.trajectory.n_points > 0
        assert result.n_packets > 0
        assert result.average_candidates > 0
        assert result.average_idle_processors >= 1.0
        # both component costs must not increase over the annealing of the packet
        b0, c0, t0 = result.trajectory.initial_costs()
        b1, c1, t1 = result.trajectory.final_costs()
        assert t1 <= t0 + 1e-9

    def test_format_mentions_costs(self):
        text = format_figure1(run_figure1())
        assert "Figure 1" in text
        assert "Communication cost" in text
        assert "annealing packets" in text


class TestFigure2:
    def test_gantt_chart_rendered(self):
        fig = run_figure2(width=60, detail_fraction=0.3)
        assert fig.result.makespan > 0
        assert fig.chart.count("\n") >= 8  # one line per processor + header
        assert "P0" in fig.chart
        # the contention-fidelity trace records communication overheads
        assert len(fig.result.trace.overhead_records) > 0
        fig.result.trace.validate()
