"""Tests for the task-graph substrate (Task, TaskGraph, levels, properties)."""

from __future__ import annotations

import pytest

from repro.exceptions import CycleError, TaskGraphError, UnknownTaskError
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.levels import (
    compute_colevels,
    compute_levels,
    critical_path,
    critical_path_length,
)
from repro.taskgraph.properties import (
    communication_to_computation_ratio,
    edge_density,
    graph_properties,
    graph_width,
    max_speedup,
    parallelism_profile,
)
from repro.taskgraph.task import Task


class TestTask:
    def test_label_defaults_to_id(self):
        assert Task("t1", 2.0).label == "t1"

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Task("t", -1.0)

    def test_with_duration_returns_copy(self):
        t = Task("t", 1.0, "name", {"k": 1})
        t2 = t.with_duration(5.0)
        assert t2.duration == 5.0 and t.duration == 1.0
        assert t2.label == "name" and t2.attrs == {"k": 1}


class TestTaskGraphConstruction:
    def test_add_task_and_query(self, diamond_graph):
        assert diamond_graph.n_tasks == 4
        assert diamond_graph.n_edges == 4
        assert diamond_graph.duration("b") == 3.0
        assert diamond_graph.comm("a", "b") == 1.0

    def test_duplicate_task_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        with pytest.raises(TaskGraphError):
            g.add_task("a", 2.0)

    def test_dependency_to_unknown_task_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        with pytest.raises(UnknownTaskError):
            g.add_dependency("a", "missing")
        with pytest.raises(UnknownTaskError):
            g.add_dependency("missing", "a")

    def test_self_loop_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        with pytest.raises(TaskGraphError):
            g.add_dependency("a", "a")

    def test_negative_comm_rejected(self, diamond_graph):
        with pytest.raises(ValueError):
            diamond_graph.add_dependency("a", "d", comm=-1.0)

    def test_remove_dependency(self, diamond_graph):
        diamond_graph.remove_dependency("a", "b")
        assert not diamond_graph.has_edge("a", "b")
        with pytest.raises(TaskGraphError):
            diamond_graph.remove_dependency("a", "b")

    def test_contains_iter_len(self, diamond_graph):
        assert "a" in diamond_graph and "zz" not in diamond_graph
        assert len(diamond_graph) == 4
        assert list(diamond_graph) == ["a", "b", "c", "d"]

    def test_predecessors_successors(self, diamond_graph):
        assert set(diamond_graph.successors("a")) == {"b", "c"}
        assert set(diamond_graph.predecessors("d")) == {"b", "c"}
        assert diamond_graph.in_degree("d") == 2
        assert diamond_graph.out_degree("a") == 2

    def test_entry_exit_tasks(self, diamond_graph):
        assert diamond_graph.entry_tasks() == ["a"]
        assert diamond_graph.exit_tasks() == ["d"]

    def test_total_work_and_comm(self, diamond_graph):
        assert diamond_graph.total_work() == pytest.approx(8.0)
        assert diamond_graph.total_communication() == pytest.approx(3.0)

    def test_unknown_task_queries_raise(self, diamond_graph):
        with pytest.raises(UnknownTaskError):
            diamond_graph.duration("zz")
        with pytest.raises(UnknownTaskError):
            diamond_graph.successors("zz")
        with pytest.raises(UnknownTaskError):
            diamond_graph.predecessors("zz")

    def test_comm_missing_edge_raises(self, diamond_graph):
        with pytest.raises(TaskGraphError):
            diamond_graph.comm("a", "d")


class TestOrderingValidation:
    def test_topological_order_respects_edges(self, diamond_graph):
        order = diamond_graph.topological_order()
        pos = {t: i for i, t in enumerate(order)}
        for u, v, _ in diamond_graph.edges():
            assert pos[u] < pos[v]

    def test_cycle_detected(self):
        g = TaskGraph()
        for t in "abc":
            g.add_task(t, 1.0)
        g.add_dependency("a", "b")
        g.add_dependency("b", "c")
        g.add_dependency("c", "a")
        assert not g.is_acyclic()
        with pytest.raises(CycleError):
            g.topological_order()
        with pytest.raises(TaskGraphError):
            g.validate()

    def test_validate_passes_on_valid_graph(self, diamond_graph):
        diamond_graph.validate()


class TestConversionCopy:
    def test_networkx_roundtrip(self, diamond_graph):
        nxg = diamond_graph.to_networkx()
        back = TaskGraph.from_networkx(nxg)
        assert back.n_tasks == diamond_graph.n_tasks
        assert back.n_edges == diamond_graph.n_edges
        assert back.duration("b") == diamond_graph.duration("b")
        assert back.comm("a", "b") == diamond_graph.comm("a", "b")

    def test_copy_is_independent(self, diamond_graph):
        c = diamond_graph.copy()
        c.add_task("extra", 1.0)
        assert "extra" not in diamond_graph

    def test_relabeled(self, diamond_graph):
        r = diamond_graph.relabeled({"a": "A", "d": "D"})
        assert "A" in r and "D" in r and "a" not in r
        assert r.comm("A", "b") == 1.0

    def test_relabeled_collision_rejected(self, diamond_graph):
        with pytest.raises(TaskGraphError):
            diamond_graph.relabeled({"a": "b"})


class TestLevels:
    def test_levels_of_diamond(self, diamond_graph):
        levels = compute_levels(diamond_graph)
        assert levels["d"] == pytest.approx(2.0)
        assert levels["b"] == pytest.approx(5.0)
        assert levels["c"] == pytest.approx(3.0)
        assert levels["a"] == pytest.approx(7.0)

    def test_levels_with_communication(self, diamond_graph):
        levels = compute_levels(diamond_graph, include_communication=True)
        assert levels["a"] == pytest.approx(2.0 + 1.0 + 3.0 + 0.5 + 2.0)

    def test_colevels_of_diamond(self, diamond_graph):
        co = compute_colevels(diamond_graph)
        assert co["a"] == pytest.approx(2.0)
        assert co["d"] == pytest.approx(7.0)

    def test_chain_levels_decrease(self, chain_graph):
        levels = compute_levels(chain_graph)
        assert [levels[i] for i in range(5)] == [5.0, 4.0, 3.0, 2.0, 1.0]

    def test_critical_path_diamond(self, diamond_graph):
        assert critical_path(diamond_graph) == ["a", "b", "d"]
        assert critical_path_length(diamond_graph) == pytest.approx(7.0)

    def test_critical_path_empty_graph(self):
        g = TaskGraph()
        assert critical_path(g) == []
        assert critical_path_length(g) == 0.0

    def test_level_equals_remaining_time_on_chain(self, chain_graph):
        # on a chain, level == remaining serial time including self
        levels = chain_graph.levels()
        for i in range(5):
            assert levels[i] == pytest.approx(5 - i)


class TestProperties:
    def test_cc_ratio(self, diamond_graph):
        # avg comm = 3/4, avg dur = 8/4
        assert communication_to_computation_ratio(diamond_graph) == pytest.approx(0.375)

    def test_cc_ratio_no_edges(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        assert communication_to_computation_ratio(g) == 0.0

    def test_max_speedup(self, diamond_graph):
        assert max_speedup(diamond_graph) == pytest.approx(8.0 / 7.0)

    def test_parallelism_profile_and_width(self, diamond_graph):
        assert parallelism_profile(diamond_graph) == [1, 2, 1]
        assert graph_width(diamond_graph) == 2

    def test_parallelism_profile_padding(self, diamond_graph):
        assert parallelism_profile(diamond_graph, n_bins=5) == [1, 2, 1, 0, 0]

    def test_edge_density(self, diamond_graph):
        assert edge_density(diamond_graph) == pytest.approx(4 / 6)

    def test_graph_properties_summary(self, diamond_graph):
        props = graph_properties(diamond_graph)
        assert props.n_tasks == 4
        assert props.width == 2
        assert props.depth == 3
        assert props.total_work == pytest.approx(8.0)
        row = props.as_table1_row()
        assert row[0] == "diamond" and row[1] == 4
