"""Tests for metrics, policy comparison, trajectory capture and reports."""

from __future__ import annotations

import pytest

from repro.analysis.comparison import compare_policies, run_policy
from repro.analysis.metrics import efficiency, percent_gain, schedule_length_ratio, speedup
from repro.analysis.report import comparison_table, properties_table
from repro.analysis.trajectory import record_packet_trajectory
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.machine.machine import Machine
from repro.schedulers.hlf import HLFScheduler
from repro.taskgraph import generators as gen
from repro.taskgraph.properties import graph_properties
from repro.workloads.newton_euler import newton_euler


class TestMetrics:
    def test_speedup_and_efficiency(self):
        assert speedup(100.0, 25.0) == pytest.approx(4.0)
        assert efficiency(100.0, 25.0, 8) == pytest.approx(0.5)

    def test_speedup_validation(self):
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)
        with pytest.raises(ValueError):
            speedup(-1.0, 5.0)
        with pytest.raises(ValueError):
            efficiency(10.0, 5.0, 0)

    def test_percent_gain(self):
        assert percent_gain(5.6, 4.9) == pytest.approx(14.2857, rel=1e-3)
        assert percent_gain(4.0, 4.0) == 0.0
        with pytest.raises(ValueError):
            percent_gain(1.0, 0.0)

    def test_schedule_length_ratio(self):
        assert schedule_length_ratio(20.0, 10.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            schedule_length_ratio(20.0, 0.0)


class TestComparison:
    def test_compare_policies_runs_all(self, hypercube8):
        graph = gen.layered_random(3, 5, seed=0, mean_comm=4.0)
        comparison = compare_policies(
            graph,
            hypercube8,
            [SAScheduler(SAConfig(seed=0)), HLFScheduler()],
            with_communication=True,
        )
        assert set(comparison.policy_names()) == {"SA", "HLF"}
        assert comparison.speedup("SA") > 0
        assert isinstance(comparison.gain_percent("SA", "HLF"), float)
        assert comparison.comm_enabled

    def test_compare_without_communication(self, hypercube8):
        graph = gen.fork_join(8, branch_duration=2.0)
        comparison = compare_policies(
            graph, hypercube8, [HLFScheduler()], with_communication=False
        )
        assert not comparison.comm_enabled

    def test_run_policy_record_trace_flag(self, hypercube8):
        graph = gen.fork_join(4)
        result = run_policy(graph, hypercube8, HLFScheduler(), record_trace=True)
        assert result.trace is not None


class TestTrajectory:
    def test_record_packet_trajectory_curves_decrease(self, hypercube8):
        graph = newton_euler(n_joints=3)
        traj = record_packet_trajectory(graph, hypercube8, config=SAConfig.paper_defaults(seed=0))
        assert traj.n_points > 0
        assert len(traj.balance_cost) == len(traj.total_cost) == traj.n_points
        # annealing must not end with a worse total cost than it started with
        assert traj.total_cost[-1] <= traj.total_cost[0] + 1e-9

    def test_packet_selector_variants(self, hypercube8):
        graph = newton_euler(n_joints=2)
        first = record_packet_trajectory(graph, hypercube8, packet_selector="first")
        longest = record_packet_trajectory(graph, hypercube8, packet_selector="longest")
        assert first.packet_index == 0
        assert longest.n_points >= 1


class TestReports:
    def test_properties_table_lists_programs(self):
        props = [graph_properties(newton_euler(n_joints=2))]
        text = properties_table(props, title="Table 1")
        assert "Table 1" in text and "newton-euler" in text

    def test_comparison_table_contains_gain(self, hypercube8):
        graph = gen.layered_random(3, 4, seed=1, mean_comm=4.0)
        comparison = compare_policies(
            graph, hypercube8, [SAScheduler(SAConfig(seed=0)), HLFScheduler()]
        )
        text = comparison_table([comparison], policy="SA", baseline="HLF")
        assert "% gain" in text and "hypercube-8" in text
