"""Tests for annealing packets, packet mappings, the cost function and moves."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.model import LinearCommModel, ZeroCommModel, effective_comm_cost
from repro.core.cost import PacketCostFunction
from repro.core.moves import propose_move
from repro.core.packet import AnnealingPacket, PacketMapping
from repro.exceptions import ConfigurationError, SchedulingError
from repro.machine.machine import Machine


def make_packet(levels, pred_placement, idle_procs, time=0.0):
    """Convenience constructor for hand-built packets."""
    return AnnealingPacket(
        time=time,
        ready_tasks=tuple(levels.keys()),
        idle_processors=tuple(idle_procs),
        levels=dict(levels),
        predecessor_placement={t: tuple(pred_placement.get(t, ())) for t in levels},
    )


@pytest.fixture
def simple_packet():
    """Three ready tasks, two idle processors, one task has a remote predecessor."""
    return make_packet(
        levels={"x": 10.0, "y": 6.0, "z": 2.0},
        pred_placement={"x": [("p0", 3, 4.0)], "y": [("p1", 0, 4.0)]},
        idle_procs=[0, 1],
    )


class TestPacketMapping:
    def test_assign_and_query(self):
        m = PacketMapping()
        m.assign("a", 0)
        assert m.processor_of("a") == 0
        assert m.task_on(0) == "a"
        assert m.is_selected("a") and not m.is_selected("b")
        assert m.n_assigned == 1

    def test_assign_occupied_processor_rejected(self):
        m = PacketMapping({"a": 0})
        with pytest.raises(SchedulingError):
            m.assign("b", 0)

    def test_reassign_moves_task(self):
        m = PacketMapping({"a": 0})
        m.assign("a", 1)
        assert m.processor_of("a") == 1
        assert m.task_on(0) is None

    def test_unassign(self):
        m = PacketMapping({"a": 0})
        m.unassign("a")
        assert m.n_assigned == 0
        m.unassign("a")  # idempotent

    def test_swap(self):
        m = PacketMapping({"a": 0, "b": 1})
        m.swap("a", "b")
        assert m.processor_of("a") == 1 and m.processor_of("b") == 0

    def test_swap_requires_both_assigned(self):
        m = PacketMapping({"a": 0})
        with pytest.raises(SchedulingError):
            m.swap("a", "b")

    def test_duplicate_processor_in_constructor_rejected(self):
        with pytest.raises(SchedulingError):
            PacketMapping({"a": 0, "b": 0})

    def test_copy_independent(self):
        m = PacketMapping({"a": 0})
        c = m.copy()
        c.assign("b", 1)
        assert m.n_assigned == 1 and c.n_assigned == 2

    def test_equality_and_as_dict(self):
        assert PacketMapping({"a": 0}) == PacketMapping({"a": 0})
        assert PacketMapping({"a": 0}) != PacketMapping({"a": 1})
        assert PacketMapping({"a": 0}).as_dict() == {"a": 0}


class TestAnnealingPacket:
    def test_counts(self, simple_packet):
        assert simple_packet.n_ready == 3
        assert simple_packet.n_idle == 2
        assert simple_packet.n_assignable == 2

    def test_from_context(self, diamond_graph, hypercube8):
        from repro.schedulers.base import PacketContext

        ctx = PacketContext(
            time=5.0,
            ready_tasks=["b", "c"],
            idle_processors=[1, 2],
            graph=diamond_graph,
            machine=hypercube8,
            levels=diamond_graph.levels(),
            task_processor={"a": 0},
            finish_times={"a": 2.0},
        )
        packet = AnnealingPacket.from_context(ctx)
        assert packet.ready_tasks == ("b", "c")
        assert packet.predecessor_placement["b"] == (("a", 0, 1.0),)
        assert packet.levels["b"] == diamond_graph.levels()["b"]


class TestCostFunction:
    def test_balance_cost_is_negative_sum_of_selected_levels(self, simple_packet, hypercube8):
        fn = PacketCostFunction(simple_packet, hypercube8)
        mapping = PacketMapping({"x": 0, "y": 1})
        assert fn.balance_cost(mapping) == pytest.approx(-16.0)
        assert fn.balance_cost(PacketMapping()) == 0.0

    def test_communication_cost_uses_equation_4(self, simple_packet, hypercube8):
        fn = PacketCostFunction(simple_packet, hypercube8)
        # task x's predecessor ran on processor 3; placing x on 3's neighbour 1
        mapping = PacketMapping({"x": 1})
        expected = effective_comm_cost(4.0, hypercube8.distance(3, 1), False, hypercube8.params)
        assert fn.communication_cost(mapping) == pytest.approx(expected)

    def test_communication_cost_colocation_is_free(self, hypercube8):
        packet = make_packet(
            levels={"x": 5.0},
            pred_placement={"x": [("p", 0, 4.0)]},
            idle_procs=[0, 1],
        )
        fn = PacketCostFunction(packet, hypercube8)
        assert fn.communication_cost(PacketMapping({"x": 0})) == 0.0
        assert fn.communication_cost(PacketMapping({"x": 1})) > 0.0

    def test_zero_comm_model_kills_comm_term(self, simple_packet, hypercube8):
        fn = PacketCostFunction(simple_packet, hypercube8, comm_model=ZeroCommModel())
        assert fn.communication_cost(PacketMapping({"x": 1, "y": 0})) == 0.0

    def test_total_cost_prefers_high_levels(self, simple_packet, hypercube8):
        fn = PacketCostFunction(simple_packet, hypercube8, comm_model=ZeroCommModel())
        best = fn.total_cost(PacketMapping({"x": 0, "y": 1}))
        worse = fn.total_cost(PacketMapping({"z": 0, "y": 1}))
        assert best < worse

    def test_total_cost_prefers_colocation_when_levels_equal(self, hypercube8):
        packet = make_packet(
            levels={"x": 5.0, "y": 5.0},
            pred_placement={"x": [("p", 2, 4.0)], "y": [("q", 5, 4.0)]},
            idle_procs=[2],
        )
        fn = PacketCostFunction(packet, hypercube8)
        local = fn.total_cost(PacketMapping({"x": 2}))
        remote = fn.total_cost(PacketMapping({"y": 2}))
        assert local < remote

    def test_weights_must_sum_to_one(self, simple_packet, hypercube8):
        with pytest.raises(ConfigurationError):
            PacketCostFunction(simple_packet, hypercube8, weight_balance=0.7, weight_comm=0.7)
        with pytest.raises(ConfigurationError):
            PacketCostFunction(simple_packet, hypercube8, weight_balance=-0.5, weight_comm=1.5)

    def test_ranges_are_positive(self, simple_packet, hypercube8):
        fn = PacketCostFunction(simple_packet, hypercube8)
        assert fn.balance_range > 0
        assert fn.comm_range > 0

    def test_ranges_guarded_for_degenerate_packets(self, hypercube8):
        # single candidate without predecessors: both ranges fall back to guards
        packet = make_packet(levels={"x": 3.0}, pred_placement={}, idle_procs=[0])
        fn = PacketCostFunction(packet, hypercube8)
        assert fn.balance_range > 0
        assert fn.comm_range == 1.0
        # cost is still finite
        assert np.isfinite(fn.total_cost(PacketMapping({"x": 0})))

    def test_breakdown_consistent_with_total(self, simple_packet, hypercube8):
        fn = PacketCostFunction(simple_packet, hypercube8)
        mapping = PacketMapping({"x": 0, "y": 1})
        parts = fn.breakdown(mapping)
        assert parts.total == pytest.approx(fn.total_cost(mapping))
        assert parts.balance == pytest.approx(fn.balance_cost(mapping))
        assert parts.communication == pytest.approx(fn.communication_cost(mapping))

    def test_incremental_delta_matches_full_recompute(self, simple_packet, hypercube8):
        fn = PacketCostFunction(simple_packet, hypercube8)
        rng = np.random.default_rng(0)
        state = PacketMapping({"x": 0, "y": 1})
        for _ in range(100):
            new = propose_move(simple_packet, state, rng)
            delta_incremental = fn.incremental_delta(new.last_change)
            delta_full = fn.total_cost(new) - fn.total_cost(state)
            assert delta_incremental == pytest.approx(delta_full, abs=1e-9)
            state = new


class TestMoves:
    def test_move_returns_new_object_with_change_record(self, simple_packet):
        rng = np.random.default_rng(1)
        state = PacketMapping({"x": 0})
        new = propose_move(simple_packet, state, rng)
        assert new is not state
        assert new.last_change is not None

    def test_moves_preserve_injectivity(self, simple_packet):
        rng = np.random.default_rng(2)
        state = PacketMapping({"x": 0, "y": 1})
        for _ in range(300):
            state = propose_move(simple_packet, state, rng)
            procs = list(state.task_to_proc.values())
            assert len(procs) == len(set(procs))
            assert all(p in simple_packet.idle_processors for p in procs)
            assert all(t in simple_packet.ready_tasks for t in state.task_to_proc)

    def test_moves_never_exceed_assignable(self, simple_packet):
        rng = np.random.default_rng(3)
        state = PacketMapping()
        for _ in range(300):
            state = propose_move(simple_packet, state, rng)
            assert state.n_assigned <= simple_packet.n_assignable

    def test_empty_packet_move_is_noop(self):
        packet = make_packet(levels={}, pred_placement={}, idle_procs=[])
        rng = np.random.default_rng(0)
        new = propose_move(packet, PacketMapping(), rng)
        assert new.n_assigned == 0

    def test_single_task_single_proc_saturates(self):
        packet = make_packet(levels={"x": 1.0}, pred_placement={}, idle_procs=[0])
        rng = np.random.default_rng(0)
        state = PacketMapping({"x": 0})
        seen_unassigned = False
        for _ in range(200):
            state = propose_move(packet, state, rng)
            if state.n_assigned == 0:
                seen_unassigned = True
        # drop moves occasionally unselect the only task; the chain recovers
        assert seen_unassigned or state.n_assigned == 1

    @given(seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_move_chain_reaches_full_assignment(self, seed):
        packet = make_packet(
            levels={f"t{i}": float(i + 1) for i in range(5)},
            pred_placement={},
            idle_procs=[0, 1, 2],
        )
        rng = np.random.default_rng(seed)
        state = PacketMapping()
        max_seen = 0
        for _ in range(200):
            state = propose_move(packet, state, rng)
            max_seen = max(max_seen, state.n_assigned)
        assert max_seen == packet.n_assignable


class TestPacketKernel:
    """The compiled packet kernel (dense cost tables) and its degenerate cases."""

    def test_comm_table_matches_scalar_costs(self, simple_packet, hypercube8):
        from repro.comm.model import LinearCommModel
        from repro.core.kernel import PacketKernel

        model = LinearCommModel()
        kernel = PacketKernel(simple_packet, hypercube8, comm_model=model)
        for i, task in enumerate(simple_packet.ready_tasks):
            for j, proc in enumerate(simple_packet.idle_processors):
                expected = sum(
                    model.cost(hypercube8, w, pred_proc, proc)
                    for _, pred_proc, w in simple_packet.predecessor_placement.get(task, ())
                )
                assert kernel.comm_table[i, j] == expected

    def test_compiled_and_reference_costs_identical(self, simple_packet, hypercube8):
        fast = PacketCostFunction(simple_packet, hypercube8, compiled=True)
        slow = PacketCostFunction(simple_packet, hypercube8, compiled=False)
        rng = np.random.default_rng(4)
        state = PacketMapping()
        for _ in range(100):
            state = propose_move(simple_packet, state, rng)
            assert fast.total_cost(state) == slow.total_cost(state)
            assert fast.incremental_delta(state.last_change) == pytest.approx(
                slow.incremental_delta(state.last_change), abs=1e-12
            )
        assert fast.balance_range == slow.balance_range
        assert fast.comm_range == slow.comm_range

    def test_cost_for_processor_outside_packet_falls_back_to_scalar(self, hypercube8):
        # Idle set is {0, 1}; placing on processor 5 is legal for hand-built
        # mappings and must be scored identically by both paths.
        packet = make_packet(
            levels={"x": 5.0},
            pred_placement={"x": [("p", 3, 4.0)]},
            idle_procs=[0, 1],
        )
        fast = PacketCostFunction(packet, hypercube8, compiled=True)
        slow = PacketCostFunction(packet, hypercube8, compiled=False)
        assert fast.task_communication_cost("x", 5) == slow.task_communication_cost("x", 5)
        assert fast.task_communication_cost("x", 5) > 0.0

    def test_index_packet_and_assignment_roundtrip(self, simple_packet, hypercube8):
        from repro.core.kernel import PacketKernel

        kernel = PacketKernel(simple_packet, hypercube8)
        indexed = kernel.index_packet()
        assert indexed.ready_tasks == tuple(range(simple_packet.n_ready))
        assert indexed.idle_processors == tuple(range(simple_packet.n_idle))
        mapping = PacketMapping({0: 1, 2: 0})
        ids = kernel.assignment_to_ids(mapping)
        assert ids == {
            simple_packet.ready_tasks[0]: simple_packet.idle_processors[1],
            simple_packet.ready_tasks[2]: simple_packet.idle_processors[0],
        }

    def test_degenerate_packet_without_idle_processors_clamps_comm_range(self, hypercube8):
        # Regression: `min(n_idle, len(totals)) or len(totals)` silently
        # selected *all* candidates when n_idle == 0; the range must instead
        # fall back to the neutral guard value.
        packet = make_packet(
            levels={"x": 5.0, "y": 3.0},
            pred_placement={"x": [("p", 3, 4.0)], "y": [("q", 2, 9.0)]},
            idle_procs=[],
        )
        fn = PacketCostFunction(packet, hypercube8)
        assert fn.comm_range == 1.0
        assert fn.balance_range > 0
        assert np.isfinite(fn.total_cost(PacketMapping()))
