"""Tests for the discrete-event simulator (events, engine, trace, results, gantt)."""

from __future__ import annotations

import pytest

from repro.comm.model import LinearCommModel, ZeroCommModel, effective_comm_cost
from repro.exceptions import SimulationError
from repro.machine.machine import Machine
from repro.schedulers.base import SchedulingPolicy
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.hlf import HLFScheduler
from repro.sim.engine import Simulator, simulate
from repro.sim.events import EventQueue
from repro.sim.gantt import gantt_rows, render_gantt
from repro.sim.results import SimulationResult
from repro.sim.trace import ExecutionTrace, OverheadRecord, TaskRecord
from repro.taskgraph import generators as gen
from repro.taskgraph.graph import TaskGraph


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(5.0, "a")
        q.push(1.0, "b")
        q.push(3.0, "c")
        assert [q.pop().kind for _ in range(3)] == ["b", "c", "a"]

    def test_ties_broken_by_insertion_order(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop().kind == "first"

    def test_pop_simultaneous(self):
        q = EventQueue()
        q.push(2.0, "x")
        q.push(1.0, "a")
        q.push(1.0, "b")
        batch = q.pop_simultaneous()
        assert [e.kind for e in batch] == ["a", "b"]
        assert len(q) == 1

    def test_peek_and_bool(self):
        q = EventQueue()
        assert not q and q.peek() is None
        q.push(1.0, "x")
        assert q and q.peek().kind == "x"

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "x")


class TestEngineBasics:
    def test_single_task(self, two_proc_machine):
        g = TaskGraph("one")
        g.add_task("a", 5.0)
        result = simulate(g, two_proc_machine, FIFOScheduler())
        assert result.makespan == pytest.approx(5.0)
        assert result.speedup() == pytest.approx(1.0)

    def test_empty_graph(self, two_proc_machine):
        result = simulate(TaskGraph("empty"), two_proc_machine, FIFOScheduler())
        assert result.makespan == 0.0
        assert result.speedup() == 0.0

    def test_chain_is_serial(self, chain_graph, two_proc_machine):
        result = simulate(chain_graph, two_proc_machine, HLFScheduler(), comm_model=ZeroCommModel())
        assert result.makespan == pytest.approx(5.0)
        assert result.speedup() == pytest.approx(1.0)

    def test_independent_tasks_parallelize(self, two_proc_machine):
        g = gen.independent_tasks(4, duration=3.0)
        result = simulate(g, two_proc_machine, HLFScheduler())
        assert result.makespan == pytest.approx(6.0)
        assert result.speedup() == pytest.approx(2.0)

    def test_makespan_never_below_critical_path(self, hypercube8):
        g = gen.layered_random(4, 5, seed=1, mean_comm=4.0)
        result = simulate(g, hypercube8, HLFScheduler(), comm_model=ZeroCommModel())
        assert result.makespan >= g.critical_path_length() - 1e-9

    def test_colocated_diamond_without_comm_cost(self, diamond_graph):
        # on a single processor everything is serial and communication is free
        machine = Machine.fully_connected(1)
        result = simulate(diamond_graph, machine, FIFOScheduler(), comm_model=LinearCommModel())
        assert result.makespan == pytest.approx(diamond_graph.total_work())

    def test_communication_delays_remote_successor(self, two_proc_machine):
        # a -> b with the two tasks forced onto different processors by a
        # policy that spreads work; message latency must appear in the makespan
        g = TaskGraph("pair")
        g.add_task("a", 2.0)
        g.add_task("b", 2.0)
        g.add_task("filler", 2.0)  # occupies P0 so b lands on P1
        g.add_dependency("a", "b", comm=4.0)

        class SpreadPolicy(SchedulingPolicy):
            name = "spread"

            def assign(self, ctx):
                out = {}
                procs = list(ctx.idle_processors)
                for t in ctx.ready_tasks:
                    if not procs:
                        break
                    if t == "b":
                        out[t] = 1 if 1 in procs else procs[0]
                        procs.remove(out[t])
                    else:
                        out[t] = procs.pop(0)
                return out

        result = simulate(g, two_proc_machine, SpreadPolicy(), comm_model=LinearCommModel())
        # a on P0 finishes at 2; message takes 4*1 + sigma = 11; b runs 2
        expected_b_finish = 2.0 + effective_comm_cost(4.0, 1, False, two_proc_machine.params) + 2.0
        assert result.makespan == pytest.approx(expected_b_finish)

    def test_zero_comm_model_ignores_weights(self, diamond_graph, two_proc_machine):
        with_comm = simulate(diamond_graph, two_proc_machine, HLFScheduler(), comm_model=LinearCommModel())
        without = simulate(diamond_graph, two_proc_machine, HLFScheduler(), comm_model=ZeroCommModel())
        assert without.makespan <= with_comm.makespan

    def test_invalid_fidelity_rejected(self, diamond_graph, two_proc_machine):
        with pytest.raises(SimulationError):
            Simulator(diamond_graph, two_proc_machine, FIFOScheduler(), fidelity="bogus")

    def test_stalling_policy_raises(self, diamond_graph, two_proc_machine):
        class LazyPolicy(SchedulingPolicy):
            name = "lazy"

            def assign(self, ctx):
                return {}

        with pytest.raises(SimulationError, match="stalled"):
            simulate(diamond_graph, two_proc_machine, LazyPolicy())

    def test_record_trace_false_omits_trace(self, diamond_graph, two_proc_machine):
        result = simulate(diamond_graph, two_proc_machine, HLFScheduler(), record_trace=False)
        assert result.trace is None
        assert result.processor_utilization() == {}


class TestEngineValidity:
    @pytest.mark.parametrize("fidelity", ["latency", "contention"])
    def test_trace_is_valid_on_random_graphs(self, fidelity, hypercube8):
        for seed in range(3):
            g = gen.layered_random(4, 6, seed=seed, mean_comm=4.0)
            result = simulate(
                g, hypercube8, HLFScheduler(seed=seed), comm_model=LinearCommModel(), fidelity=fidelity
            )
            result.trace.validate(g)
            assert len(result.trace.task_records) == g.n_tasks

    def test_contention_never_faster_than_latency(self, hypercube8):
        g = gen.layered_random(4, 6, seed=4, mean_comm=6.0)
        lat = simulate(g, hypercube8, HLFScheduler(), comm_model=LinearCommModel(), fidelity="latency")
        con = simulate(g, hypercube8, HLFScheduler(), comm_model=LinearCommModel(), fidelity="contention")
        assert con.makespan >= lat.makespan - 1e-9

    def test_contention_links_carry_one_message_at_a_time(self, ring9):
        g = gen.layered_random(3, 8, seed=5, mean_comm=8.0)
        result = simulate(g, ring9, HLFScheduler(), comm_model=LinearCommModel(), fidelity="contention")
        # collect per-link hop intervals and check pairwise disjointness
        link_usage = {}
        for msg in result.trace.message_records:
            for (a, b), (start, end) in zip(
                zip(msg.route, msg.route[1:]), msg.hop_intervals
            ):
                link = (min(a, b), max(a, b))
                link_usage.setdefault(link, []).append((start, end))
        for intervals in link_usage.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-9

    def test_messages_only_between_distinct_processors(self, hypercube8):
        g = gen.layered_random(4, 4, seed=6, mean_comm=4.0)
        result = simulate(g, hypercube8, HLFScheduler(), comm_model=LinearCommModel())
        for msg in result.trace.message_records:
            assert msg.src_proc != msg.dst_proc
            assert msg.latency >= 0
            assert msg.route[0] == msg.src_proc and msg.route[-1] == msg.dst_proc


class TestTraceAndResults:
    def test_trace_checks_detect_overlap(self):
        trace = ExecutionTrace(
            task_records=[
                TaskRecord("a", 0, 0.0, 0.0, 5.0),
                TaskRecord("b", 0, 0.0, 3.0, 6.0),
            ]
        )
        with pytest.raises(SimulationError):
            trace.check_no_processor_overlap()

    def test_trace_checks_detect_precedence_violation(self, diamond_graph):
        trace = ExecutionTrace(
            task_records=[
                TaskRecord("a", 0, 0.0, 0.0, 2.0),
                TaskRecord("b", 1, 0.0, 1.0, 4.0),  # starts before a finishes
            ]
        )
        with pytest.raises(SimulationError):
            trace.check_precedence(diamond_graph)

    def test_record_for_missing_task(self):
        with pytest.raises(SimulationError):
            ExecutionTrace().record_for("nope")

    def test_busy_and_overhead_time(self):
        trace = ExecutionTrace(
            task_records=[TaskRecord("a", 0, 0.0, 0.0, 5.0)],
            overhead_records=[OverheadRecord(0, 5.0, 7.0, "send")],
        )
        assert trace.busy_time(0) == pytest.approx(5.0)
        assert trace.overhead_time(0) == pytest.approx(2.0)
        assert trace.makespan() == pytest.approx(5.0)

    def test_simulation_result_metrics(self, diamond_graph, two_proc_machine):
        result = simulate(diamond_graph, two_proc_machine, HLFScheduler(), comm_model=ZeroCommModel())
        assert result.speedup() == pytest.approx(result.total_work / result.makespan)
        assert 0 < result.efficiency() <= 1.0
        util = result.processor_utilization()
        assert set(util) == {0, 1}
        assert all(0 <= u <= 1 for u in util.values())
        counts = result.tasks_per_processor()
        assert sum(counts.values()) == diamond_graph.n_tasks
        assert "diamond" in result.summary()


class TestGantt:
    def test_render_contains_all_processors(self, hypercube8):
        g = gen.layered_random(3, 5, seed=7, mean_comm=4.0)
        result = simulate(g, hypercube8, HLFScheduler(), comm_model=LinearCommModel(), fidelity="contention")
        chart = render_gantt(result, width=60)
        lines = chart.splitlines()
        assert sum(1 for line in lines if line.startswith("P")) == 8
        assert "legend" in lines[-1]

    def test_render_without_trace(self):
        result = SimulationResult(makespan=1.0, total_work=1.0, n_processors=2)
        assert "no trace" in render_gantt(result)

    def test_render_empty_schedule(self, two_proc_machine):
        result = simulate(TaskGraph("empty"), two_proc_machine, FIFOScheduler())
        assert "empty schedule" in render_gantt(result)

    def test_gantt_rows_intervals_sorted(self, hypercube8):
        g = gen.layered_random(3, 4, seed=8, mean_comm=4.0)
        result = simulate(g, hypercube8, HLFScheduler(), comm_model=LinearCommModel(), fidelity="contention")
        rows = gantt_rows(result.trace, 8)
        for intervals in rows.values():
            starts = [iv[0] for iv in intervals]
            assert starts == sorted(starts)
