"""Golden-trace regression tests: fixed-seed runs must never drift.

Every (program, architecture, communication) cell of the paper's Table 2 is
simulated under the canonical SA configuration and compared bit-for-bit —
makespan, packet count, message count and every task's ``[processor, start,
finish]`` triple — against the fixtures in ``tests/golden/``.  Two
random-graph scenarios pin the generator + sweep stack the same way.

These tests are the contract behind every performance refactor: compiled
kernels, vectorized tables and parallel sweeps may change *how* the numbers
are produced, never *which* numbers.  After an intentional behaviour change,
regenerate with::

    python -m pytest tests/test_golden_trace.py --regen-golden
"""

from __future__ import annotations

import pytest

from repro.comm.model import LinearCommModel, ZeroCommModel
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.machine.machine import Machine
from repro.sim.engine import simulate
from repro.taskgraph.generators import layered_random, random_dag
from repro.workloads.suite import PAPER_PROGRAMS

PROGRAMS = ("NE", "GJ", "FFT", "MM")
ARCHITECTURES = ("Hypercube (8p)", "Bus (8p)", "Ring (9p)")
COMM_SETTINGS = ("with", "wo")

_ARCH_BUILDERS = {
    "Hypercube (8p)": lambda: Machine.hypercube(3),
    "Bus (8p)": lambda: Machine.bus(8),
    "Ring (9p)": lambda: Machine.ring(9),
}

TABLE2_CELLS = [
    (program, architecture, comm)
    for program in PROGRAMS
    for architecture in ARCHITECTURES
    for comm in COMM_SETTINGS
]


def _run_cell(program: str, architecture: str, comm: str):
    """One canonical fixed-seed SA run for a Table-2 cell, trace recorded."""
    graph = PAPER_PROGRAMS[program].build(seed=0)
    machine = _ARCH_BUILDERS[architecture]()
    comm_model = LinearCommModel() if comm == "with" else ZeroCommModel()
    return simulate(
        graph,
        machine,
        SAScheduler(SAConfig.paper_defaults(seed=1)),
        comm_model=comm_model,
        record_trace=True,
    )


@pytest.mark.parametrize("program,architecture,comm", TABLE2_CELLS,
                         ids=[f"{p}-{a.split(' ')[0]}-{c}" for p, a, c in TABLE2_CELLS])
def test_table2_cell_matches_golden_trace(program, architecture, comm, golden_table2):
    result = _run_cell(program, architecture, comm)
    # Sanity beyond the byte-diff: the schedule itself must be valid.
    result.trace.validate(PAPER_PROGRAMS[program].build(seed=0))
    golden_table2.check(f"{program}|{architecture}|{comm}", result.fingerprint())


RANDOM_SCENARIOS = {
    "layered-seed0-hypercube8-SA": lambda: simulate(
        layered_random(
            n_layers=6, width=8, edge_probability=0.4,
            mean_duration=20.0, mean_comm=8.0, seed=0,
        ),
        Machine.hypercube(3),
        SAScheduler(SAConfig.paper_defaults(seed=0)),
        comm_model=LinearCommModel(),
        record_trace=True,
    ),
    "dag40-seed0-ring9-SA": lambda: simulate(
        random_dag(40, edge_probability=0.2, mean_duration=15.0, mean_comm=5.0, seed=0),
        Machine.ring(9),
        SAScheduler(SAConfig.paper_defaults(seed=0)),
        comm_model=LinearCommModel(),
        record_trace=True,
    ),
}


@pytest.mark.parametrize("scenario", sorted(RANDOM_SCENARIOS), ids=sorted(RANDOM_SCENARIOS))
def test_random_graph_fingerprint_matches_golden(scenario, golden_random):
    result = RANDOM_SCENARIOS[scenario]()
    result.trace.validate()
    golden_random.check(scenario, result.fingerprint())
