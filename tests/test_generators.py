"""Tests for the random/structured task-graph generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TaskGraphError
from repro.taskgraph import generators as gen
from repro.taskgraph.properties import graph_width, parallelism_profile


class TestChainForkDiamond:
    def test_chain_structure(self):
        g = gen.chain(4, duration=2.0, comm=1.0)
        assert g.n_tasks == 4 and g.n_edges == 3
        assert g.critical_path_length() == pytest.approx(8.0)

    def test_chain_needs_one_task(self):
        with pytest.raises(TaskGraphError):
            gen.chain(0)

    def test_independent_tasks(self):
        g = gen.independent_tasks(7)
        assert g.n_tasks == 7 and g.n_edges == 0
        assert graph_width(g) == 7

    def test_fork_join(self):
        g = gen.fork_join(5, branch_duration=2.0, root_duration=1.0)
        assert g.n_tasks == 7
        assert g.entry_tasks() == ["fork"]
        assert g.exit_tasks() == ["join"]
        assert g.critical_path_length() == pytest.approx(4.0)

    def test_diamond_widths(self):
        g = gen.diamond(3)
        profile = parallelism_profile(g)
        assert profile == [1, 2, 3, 4, 3, 2, 1]
        assert g.is_acyclic()

    def test_diamond_depth_validation(self):
        with pytest.raises(TaskGraphError):
            gen.diamond(0)


class TestTrees:
    def test_intree_counts(self):
        g = gen.intree(depth=3, branching=2)
        assert g.n_tasks == 15
        # leaves are the entries, the root is the single exit
        assert len(g.entry_tasks()) == 8
        assert g.exit_tasks() == [(0, 0)]

    def test_outtree_is_reverse_of_intree(self):
        g = gen.outtree(depth=2, branching=3)
        assert g.n_tasks == 13
        assert g.entry_tasks() == [(0, 0)]
        assert len(g.exit_tasks()) == 9

    def test_tree_validation(self):
        with pytest.raises(TaskGraphError):
            gen.intree(-1)
        with pytest.raises(TaskGraphError):
            gen.outtree(2, branching=0)


class TestRandomGenerators:
    def test_layered_random_shape(self):
        g = gen.layered_random(4, 5, seed=3)
        assert g.n_tasks == 20
        assert g.is_acyclic()
        # every non-entry task has at least one predecessor in the previous layer
        for (layer, j) in g.tasks:
            if layer > 0:
                assert g.in_degree((layer, j)) >= 1

    def test_layered_random_deterministic(self):
        a = gen.layered_random(3, 4, seed=11)
        b = gen.layered_random(3, 4, seed=11)
        assert list(a.edges()) == list(b.edges())
        assert [a.duration(t) for t in a.tasks] == [b.duration(t) for t in b.tasks]

    def test_layered_random_validation(self):
        with pytest.raises(TaskGraphError):
            gen.layered_random(0, 3)
        with pytest.raises(ValueError):
            gen.layered_random(2, 2, edge_probability=1.5)

    def test_random_dag_acyclic_and_sized(self):
        g = gen.random_dag(30, edge_probability=0.2, seed=5)
        assert g.n_tasks == 30
        assert g.is_acyclic()

    def test_random_dag_edge_probability_extremes(self):
        empty = gen.random_dag(10, edge_probability=0.0, seed=1)
        assert empty.n_edges == 0
        full = gen.random_dag(10, edge_probability=1.0, seed=1)
        assert full.n_edges == 45  # complete DAG

    def test_series_parallel(self):
        g = gen.series_parallel(depth=2, fanout=2, seed=7)
        assert g.is_acyclic()
        assert len(g.entry_tasks()) == 1
        assert len(g.exit_tasks()) == 1

    def test_series_parallel_depth_zero_single_task(self):
        g = gen.series_parallel(depth=0, seed=1)
        assert g.n_tasks == 1


class TestGrahamAnomaly:
    def test_instance_shape(self):
        g = gen.graham_anomaly_graph()
        assert g.n_tasks == 9
        assert g.duration(9) == 9.0
        assert g.is_acyclic()
        # T5..T8 depend on both T3 and T4
        for t in (5, 6, 7, 8):
            assert set(g.predecessors(t)) == {3, 4}


class TestGeneratorProperties:
    """Property-based checks over the generator family."""

    @given(
        n_layers=st.integers(1, 6),
        width=st.integers(1, 6),
        p=st.floats(0.0, 1.0),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_layered_random_always_valid(self, n_layers, width, p, seed):
        g = gen.layered_random(n_layers, width, edge_probability=p, seed=seed)
        g.validate()
        assert g.n_tasks == n_layers * width

    @given(n=st.integers(1, 40), p=st.floats(0.0, 0.5), seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_random_dag_always_valid(self, n, p, seed):
        g = gen.random_dag(n, edge_probability=p, seed=seed)
        g.validate()
        assert g.n_tasks == n
        assert all(g.duration(t) > 0 for t in g.tasks)

    @given(depth=st.integers(0, 4), branching=st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_intree_task_count_formula(self, depth, branching):
        g = gen.intree(depth, branching)
        expected = sum(branching**l for l in range(depth + 1))
        assert g.n_tasks == expected
        g.validate()


class TestDrawDuration:
    """The shared gamma duration draw and its ``MIN_DURATION`` floor."""

    def test_cv_zero_is_deterministic(self):
        rng = np.random.default_rng(0)
        assert gen.draw_duration(rng, 7.5, 0.0) == 7.5

    def test_moderate_cv_never_needs_the_clamp(self):
        rng = np.random.default_rng(1)
        draws = [gen.draw_duration(rng, 10.0, 0.3) for _ in range(2000)]
        assert all(d > gen.MIN_DURATION for d in draws)

    def test_extreme_cv_underflow_is_clamped_to_min_duration(self):
        """cv >> 1 gives gamma shape 1/cv² ≈ 0; most mass underflows to 0.0.

        Without the floor those zero draws become zero-duration tasks, which
        ``TaskGraph.validate`` rejects and which break speedup ratios.  The
        clamp must engage (some draws land exactly on ``MIN_DURATION``) and
        every draw must respect the floor.
        """
        rng = np.random.default_rng(2)
        draws = [gen.draw_duration(rng, 10.0, 100.0) for _ in range(500)]
        assert all(d >= gen.MIN_DURATION for d in draws)
        assert any(d == gen.MIN_DURATION for d in draws), (
            "expected the cv=100 gamma (shape 1e-4) to underflow and engage "
            "the MIN_DURATION clamp"
        )

    def test_private_alias_still_points_at_the_public_draw(self):
        # _draw_duration predates the public name; generators and families
        # must share one clamp.
        assert gen._draw_duration is gen.draw_duration
