"""Tests for the list-scheduling baselines and the policy interface."""

from __future__ import annotations

import pytest

from repro.comm.model import LinearCommModel, ZeroCommModel
from repro.exceptions import ConfigurationError, SchedulingError
from repro.machine.machine import Machine
from repro.schedulers.base import PacketContext, validate_assignment
from repro.schedulers.etf import ETFScheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.hlf import HLFScheduler
from repro.schedulers.lpt import LPTScheduler
from repro.schedulers.random_policy import RandomScheduler
from repro.sim.engine import simulate
from repro.taskgraph import generators as gen
from repro.taskgraph.graph import TaskGraph


def make_ctx(graph, machine, ready, idle, placed=None, finish=None, comm=None, time=0.0):
    return PacketContext(
        time=time,
        ready_tasks=ready,
        idle_processors=idle,
        graph=graph,
        machine=machine,
        levels=graph.levels(),
        task_processor=placed or {},
        finish_times=finish or {},
        comm_model=comm or LinearCommModel(),
    )


@pytest.fixture
def priority_graph():
    """Three independent tasks with distinct levels via downstream chains."""
    g = TaskGraph("prio")
    g.add_task("high", 1.0)
    g.add_task("mid", 1.0)
    g.add_task("low", 1.0)
    # give 'high' a long tail and 'mid' a short one
    g.add_task("tail1", 5.0)
    g.add_task("tail2", 2.0)
    g.add_dependency("high", "tail1", 1.0)
    g.add_dependency("mid", "tail2", 1.0)
    return g


class TestValidateAssignment:
    def test_accepts_legal_assignment(self, diamond_graph, hypercube8):
        ctx = make_ctx(diamond_graph, hypercube8, ["b", "c"], [0, 1])
        validate_assignment(ctx, {"b": 0, "c": 1})

    def test_rejects_unready_task(self, diamond_graph, hypercube8):
        ctx = make_ctx(diamond_graph, hypercube8, ["b"], [0, 1])
        with pytest.raises(SchedulingError):
            validate_assignment(ctx, {"d": 0})

    def test_rejects_busy_processor(self, diamond_graph, hypercube8):
        ctx = make_ctx(diamond_graph, hypercube8, ["b", "c"], [0])
        with pytest.raises(SchedulingError):
            validate_assignment(ctx, {"b": 1})

    def test_rejects_duplicate_processor(self, diamond_graph, hypercube8):
        ctx = make_ctx(diamond_graph, hypercube8, ["b", "c"], [0, 1])
        with pytest.raises(SchedulingError):
            validate_assignment(ctx, {"b": 0, "c": 0})


class TestHLF:
    def test_selects_highest_level_tasks(self, priority_graph, hypercube8):
        ctx = make_ctx(priority_graph, hypercube8, ["high", "mid", "low"], [0])
        assignment = HLFScheduler().assign(ctx)
        assert list(assignment.keys()) == ["high"]

    def test_index_placement_is_deterministic(self, priority_graph, hypercube8):
        ctx = make_ctx(priority_graph, hypercube8, ["high", "mid"], [3, 5])
        assignment = HLFScheduler(placement="index").assign(ctx)
        assert assignment == {"high": 3, "mid": 5}

    def test_arbitrary_placement_reproducible_per_seed(self, priority_graph, hypercube8):
        ctx = make_ctx(priority_graph, hypercube8, ["high", "mid", "low"], [0, 1, 2])
        a = HLFScheduler(seed=7)
        b = HLFScheduler(seed=7)
        assert a.assign(ctx) == b.assign(ctx)

    def test_min_comm_placement_prefers_predecessor_processor(self, hypercube8):
        g = TaskGraph("g")
        g.add_task("p", 1.0)
        g.add_task("c", 1.0)
        g.add_dependency("p", "c", 4.0)
        ctx = make_ctx(g, hypercube8, ["c"], [2, 6], placed={"p": 6}, finish={"p": 1.0})
        assignment = HLFScheduler(placement="min_comm").assign(ctx)
        assert assignment == {"c": 6}

    def test_invalid_placement_rejected(self):
        with pytest.raises(ConfigurationError):
            HLFScheduler(placement="bogus")

    def test_empty_context(self, priority_graph, hypercube8):
        assert HLFScheduler().assign(make_ctx(priority_graph, hypercube8, [], [0])) == {}
        assert HLFScheduler().assign(make_ctx(priority_graph, hypercube8, ["high"], [])) == {}


class TestOtherBaselines:
    def test_fifo_takes_insertion_order(self, priority_graph, hypercube8):
        ctx = make_ctx(priority_graph, hypercube8, ["high", "mid", "low"], [4, 2])
        assert FIFOScheduler().assign(ctx) == {"high": 4, "mid": 2}

    def test_lpt_takes_longest_tasks(self, hypercube8):
        g = TaskGraph("g")
        for name, d in [("short", 1.0), ("long", 9.0), ("mid", 4.0)]:
            g.add_task(name, d)
        ctx = make_ctx(g, hypercube8, ["short", "long", "mid"], [0, 1])
        assignment = LPTScheduler().assign(ctx)
        assert set(assignment.keys()) == {"long", "mid"}

    def test_random_policy_is_valid_and_reproducible(self, priority_graph, hypercube8):
        ctx = make_ctx(priority_graph, hypercube8, ["high", "mid", "low"], [0, 1])
        a = RandomScheduler(seed=3)
        first = a.assign(ctx)
        validate_assignment(ctx, first)
        a.reset()
        assert a.assign(ctx) == first

    def test_etf_prefers_colocation(self, hypercube8):
        g = TaskGraph("g")
        g.add_task("p", 1.0)
        g.add_task("c1", 1.0)
        g.add_task("c2", 1.0)
        g.add_dependency("p", "c1", 4.0)
        g.add_dependency("p", "c2", 4.0)
        ctx = make_ctx(
            g,
            hypercube8,
            ["c1", "c2"],
            [0, 7],
            placed={"p": 0},
            finish={"p": 1.0},
            time=1.0,
        )
        assignment = ETFScheduler().assign(ctx)
        validate_assignment(ctx, assignment)
        # both children are placed; one of them gets the predecessor's processor
        assert 0 in assignment.values() and 7 in assignment.values()

    def test_etf_empty(self, priority_graph, hypercube8):
        assert ETFScheduler().assign(make_ctx(priority_graph, hypercube8, [], [])) == {}


class TestETFTieBreaking:
    """The docstring's tie rules, pinned: equal earliest start -> faster
    processor first, then the higher task level."""

    def test_equal_earliest_start_higher_level_wins(self, priority_graph, hypercube8):
        # All three roots are ready at t=0 with no predecessors, so every
        # (task, processor) pair has the same earliest start; only one
        # processor is idle, and the higher-level task must claim it.
        levels = priority_graph.levels()
        assert levels["high"] > levels["mid"] > levels["low"]
        ctx = make_ctx(priority_graph, hypercube8, ["low", "mid", "high"], [3])
        assignment = ETFScheduler().assign(ctx)
        assert assignment == {"high": 3}

    def test_equal_start_and_level_falls_back_to_packet_order(self, hypercube8):
        g = TaskGraph("twins")
        g.add_task("a", 2.0)
        g.add_task("b", 2.0)  # identical level, identical earliest start
        ctx = make_ctx(g, hypercube8, ["a", "b"], [5])
        assert ETFScheduler().assign(ctx) == {"a": 5}

    def test_level_beats_packet_order(self, priority_graph, hypercube8):
        # 'mid' precedes 'high' in the ready list, but 'high' has the higher
        # level and must win the single processor.
        ctx = make_ctx(priority_graph, hypercube8, ["mid", "high"], [0])
        assert ETFScheduler().assign(ctx) == {"high": 0}

    def test_equal_earliest_start_prefers_faster_processor(self, priority_graph):
        machine = Machine.fully_connected(3, speeds=[1.0, 1.0, 2.5])
        ctx = make_ctx(priority_graph, machine, ["high"], [0, 1, 2])
        assert ETFScheduler().assign(ctx) == {"high": 2}

    def test_speed_tie_break_is_inert_on_homogeneous_machines(self, priority_graph):
        default = Machine.fully_connected(3)
        explicit = Machine.fully_connected(3, speeds=[1.0, 1.0, 1.0])
        ctx_a = make_ctx(priority_graph, default, ["low", "mid", "high"], [0, 1, 2])
        ctx_b = make_ctx(priority_graph, explicit, ["low", "mid", "high"], [0, 1, 2])
        assert ETFScheduler().assign(ctx_a) == ETFScheduler().assign(ctx_b)

    def test_earlier_start_beats_level_and_speed(self, hypercube8):
        # 'far' is high-level but its predecessor data arrives late; the
        # low-level task that can start immediately goes first.
        g = TaskGraph("g")
        g.add_task("p", 1.0)
        g.add_task("far", 1.0)
        g.add_task("near", 1.0)
        g.add_task("tail", 20.0)
        g.add_dependency("p", "far", 50.0)
        g.add_dependency("far", "tail", 1.0)
        ctx = make_ctx(
            g, hypercube8, ["far", "near"], [7],
            placed={"p": 0}, finish={"p": 1.0}, time=1.0,
        )
        levels = g.levels()
        assert levels["far"] > levels["near"]
        assert ETFScheduler().assign(ctx) == {"near": 7}


class TestPoliciesEndToEnd:
    """Every baseline must produce a complete, valid schedule on random DAGs."""

    @pytest.mark.parametrize(
        "policy_factory",
        [
            lambda: HLFScheduler(),
            lambda: HLFScheduler(placement="index"),
            lambda: HLFScheduler(placement="min_comm"),
            lambda: FIFOScheduler(),
            lambda: LPTScheduler(),
            lambda: RandomScheduler(seed=0),
            lambda: ETFScheduler(),
        ],
    )
    def test_policy_completes_and_is_valid(self, policy_factory, hypercube8):
        graph = gen.layered_random(4, 6, seed=9, mean_comm=4.0)
        result = simulate(graph, hypercube8, policy_factory(), comm_model=LinearCommModel())
        assert len(result.task_processor) == graph.n_tasks
        result.trace.validate(graph)
        assert result.makespan > 0
        assert 0 < result.speedup() <= hypercube8.n_processors

    def test_hlf_on_two_processors_matches_hu_bound(self, two_proc_machine):
        # Hu's algorithm is optimal for unit-duration intrees on any number of
        # processors; check the classical bound on a small reduction tree.
        tree = gen.intree(depth=3, branching=2, duration=1.0)
        result = simulate(tree, two_proc_machine, HLFScheduler(), comm_model=ZeroCommModel())
        # 15 unit tasks on 2 processors, critical path 4: optimum is 8
        assert result.makespan == pytest.approx(8.0)


class _QuadraticETFScheduler(ETFScheduler):
    """The historical O(ready²·idle²·preds) ETF selection loop.

    Kept verbatim (rescan every remaining pair per round, ``list.remove``)
    as the differential oracle for the matrix kernel that replaced it: both
    must pick the identical (task, processor) pairs, since earliest starts
    are epoch-invariant and the matrix path scans the same lexicographic key
    ``(est, -speed, -level, ti, pi)``.
    """

    def assign(self, ctx):
        if ctx.n_idle == 0 or ctx.n_ready == 0:
            return {}
        remaining_tasks = list(ctx.ready_tasks)
        remaining_procs = list(ctx.idle_processors)
        speed_of = getattr(ctx.machine, "speed_of", None)
        assignment = {}
        while remaining_tasks and remaining_procs:
            best = None
            best_pair = None
            for ti, task in enumerate(remaining_tasks):
                for pi, proc in enumerate(remaining_procs):
                    est = self._earliest_start(ctx, task, proc)
                    speed = speed_of(proc) if speed_of is not None else 1.0
                    key = (est, -speed, -ctx.levels[task], ti, pi)
                    if best is None or key < best:
                        best = key
                        best_pair = (task, proc)
            task, proc = best_pair
            assignment[task] = proc
            remaining_tasks.remove(task)
            remaining_procs.remove(proc)
        return assignment


class TestETFMatrixKernelDifferential:
    """The matrix-based ETF selection must replay the quadratic loop exactly."""

    @staticmethod
    def _machine(seed: int) -> Machine:
        import numpy as np

        kind = seed % 4
        if kind == 0:
            return Machine.hypercube(3)
        if kind == 1:
            return Machine.ring(9)
        if kind == 2:
            return Machine.bus(8)
        rng = np.random.default_rng(seed)
        topo = Machine.mesh(3, 3).topology
        return Machine.mesh(
            3, 3,
            speeds=rng.uniform(0.5, 4.0, 9).tolist(),
            link_weights={tuple(sorted(l)): float(rng.uniform(0.5, 3.0))
                          for l in topo.links()},
        )

    @pytest.mark.parametrize("seed", range(20))
    def test_matrix_etf_matches_quadratic_etf(self, seed):
        """20 randomized scenarios: identical assignments end to end."""
        graph = gen.random_dag(
            10 + 3 * seed, edge_probability=0.1 + 0.01 * (seed % 5),
            mean_duration=10.0, mean_comm=4.0, seed=seed,
        )
        machine = self._machine(seed)
        comm = ZeroCommModel() if seed % 5 == 4 else LinearCommModel()
        old = simulate(graph, machine, _QuadraticETFScheduler(), comm_model=comm,
                       record_trace=True, fast=False)
        new = simulate(graph, machine, ETFScheduler(), comm_model=comm,
                       record_trace=True, fast=False)
        assert old.task_processor == new.task_processor
        assert old.fingerprint() == new.fingerprint()

    def test_matrix_etf_single_packet_matches_quadratic(self, diamond_graph, hypercube8):
        """One synthetic packet with placed predecessors and ties."""
        ctx = make_ctx(
            diamond_graph, hypercube8,
            ready=["b", "c"], idle=[0, 3, 5],
            placed={"a": 1}, finish={"a": 2.0}, time=2.0,
        )
        assert ETFScheduler().assign(ctx) == _QuadraticETFScheduler().assign(ctx)
