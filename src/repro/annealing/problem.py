"""The abstract annealing problem.

An :class:`AnnealingProblem` exposes the three ingredients the generic
annealer needs — an initial state, a random neighbourhood move, and the cost
of a state — and optionally a cheaper incremental-cost hook.  The packet
mapping problem of the paper (:mod:`repro.core`) and a couple of test
problems implement this interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional, Tuple

__all__ = ["AnnealingProblem"]


class AnnealingProblem(ABC):
    """Interface between the generic annealer and a concrete optimization problem.

    States may be any Python object; the annealer never mutates a state
    in-place, it only keeps references to the states the problem returns, so
    :meth:`propose` must return a *new* state (or an unshared copy).
    """

    @abstractmethod
    def initial_state(self, rng) -> Any:
        """Produce the starting state using the provided numpy Generator."""

    @abstractmethod
    def propose(self, state: Any, rng) -> Any:
        """Return a randomly perturbed copy of *state* (the mapping scheme)."""

    @abstractmethod
    def cost(self, state: Any) -> float:
        """The scalar cost ``F(state)`` to be minimized."""

    def cost_delta(self, state: Any, new_state: Any, state_cost: float) -> Optional[float]:
        """Optional incremental cost change ``F(new) - F(old)``.

        Return ``None`` (the default) to make the annealer call :meth:`cost`
        on the new state; problems with cheap incremental updates can override
        this to avoid recomputing the full cost for every proposal.
        """
        return None

    def initial_temperature(self, rng, n_samples: int = 32) -> float:
        """Estimate a reasonable starting temperature.

        The default samples *n_samples* random moves from the initial state
        and returns the mean absolute cost change, so that early acceptance
        probabilities sit in the productive range of the sigmoid.  Problems
        with normalized costs may simply return a constant.
        """
        state = self.initial_state(rng)
        base = self.cost(state)
        deltas = []
        for _ in range(max(1, n_samples)):
            cand = self.propose(state, rng)
            deltas.append(abs(self.cost(cand) - base))
        mean_delta = sum(deltas) / len(deltas)
        return max(mean_delta, 1e-6)
