"""Heterogeneous annealing-lane portfolios with successive-halving racing.

PR 7's cross-family study showed fixed-budget SA losing to ETF on every
>=1000-task family: one cooling schedule and one HLF seed per packet is not
enough diversity.  A *portfolio* runs ``lanes`` heterogeneous annealing
chains over the same packet in the lock-step batched engine
(:func:`repro.core.array_annealer.anneal_replicas_batched`), where each lane
varies three axes:

* **cooling schedule** — any :class:`~repro.annealing.cooling.CoolingSchedule`
  (geometric at several rates, linear, logarithmic);
* **initial assignment** — ``"hlf"`` (the paper's level-sorted seed),
  ``"random"``, or ``"etf"`` (seeded from the ETF scheduler's solution for
  the same packet, computed through its existing kernels);
* **perturbation scale** — a multiplier on the configured initial
  temperature (hotter lanes explore, colder lanes refine).

A :class:`SuccessiveHalvingController` races the lanes: at every ``rung``-th
temperature step it ranks the still-walking lanes by the best cost recorded
in their per-temperature trajectories (the same samples
:class:`~repro.annealing.replicas.ReplicaStats` keeps), culls the worse half
and reallocates the freed draw budget — the culled lanes' unused temperature
steps plus anything left behind by naturally-stalled lanes — evenly across
the survivors (remainder to the lowest lane indices).  All decisions derive
only from recorded costs with ties broken toward the lowest lane index
(mirroring :func:`~repro.annealing.replicas.best_replica_index`), so a
portfolio run is bit-reproducible under fixed seeds and each lane replays
exactly as a scalar single-chain walk on its own child stream.

This module is deliberately free of ``repro.core`` imports so that
``repro.core.config`` can depend on it without a cycle; the engine consumes
the :class:`LanePlan` duck-typed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.annealing.cooling import (
    CoolingSchedule,
    GeometricCooling,
    LinearCooling,
    LogarithmicCooling,
)
from repro.exceptions import ConfigurationError

__all__ = [
    "DEFAULT_LANE_AXES",
    "LaneSpec",
    "LanePlan",
    "PortfolioConfig",
    "PortfolioReport",
    "RungDecision",
    "SuccessiveHalvingController",
]

#: initial-assignment strategies a lane may use (superset of SAConfig's
#: ``initial_mapping`` choices: ``"etf"`` seeds from the ETF solution).
LANE_INITIAL_CHOICES = ("hlf", "random", "etf", "empty")

#: The default lane axes: ``(cooling, initial assignment, temperature scale)``
#: triples, cycled when ``lanes`` exceeds their count.  Lane 0 is always the
#: paper's exact configuration (geometric 0.9 from the HLF seed at scale 1)
#: so the portfolio never does worse than the baseline chain on stream 0;
#: the rest mix slower/faster coolings, ETF and random seeds, and hotter or
#: colder starts.
DEFAULT_LANE_AXES: Tuple[Tuple[CoolingSchedule, str, float], ...] = (
    (GeometricCooling(0.9), "hlf", 1.0),
    (GeometricCooling(0.9), "etf", 1.0),
    (GeometricCooling(0.95), "etf", 0.5),
    (GeometricCooling(0.8), "random", 1.0),
    (LinearCooling(step=0.05), "hlf", 1.0),
    (GeometricCooling(0.85), "random", 2.0),
    (LogarithmicCooling(), "etf", 0.5),
    (LinearCooling(step=0.025), "random", 1.0),
)


@dataclass(frozen=True)
class LaneSpec:
    """One lane's point on the portfolio's three axes."""

    lane: int
    cooling: CoolingSchedule
    initial: str
    temperature_scale: float


@dataclass(frozen=True)
class PortfolioConfig:
    """Portfolio shape: lane count, rung cadence, and the lane axes.

    ``base_budget`` is the per-lane temperature-step budget before any
    reallocation; ``None`` inherits ``SAConfig.max_temperature_steps`` so a
    portfolio of B lanes starts from exactly the draw budget of a fixed
    ``replicas=B`` run.
    """

    lanes: int = 8
    rung: int = 10
    base_budget: Optional[int] = None
    axes: Tuple[Tuple[CoolingSchedule, str, float], ...] = DEFAULT_LANE_AXES

    def __post_init__(self) -> None:
        if not isinstance(self.lanes, int) or self.lanes < 2:
            raise ConfigurationError(
                f"portfolio lanes must be an int >= 2, got {self.lanes!r}"
            )
        if not isinstance(self.rung, int) or self.rung < 1:
            raise ConfigurationError(
                f"portfolio rung must be an int >= 1, got {self.rung!r}"
            )
        if self.base_budget is not None and (
            not isinstance(self.base_budget, int) or self.base_budget < 1
        ):
            raise ConfigurationError(
                f"portfolio base_budget must be an int >= 1 or None, "
                f"got {self.base_budget!r}"
            )
        if not self.axes:
            raise ConfigurationError("portfolio axes must be non-empty")
        for axis in self.axes:
            cooling, initial, scale = axis
            if not isinstance(cooling, CoolingSchedule):
                raise ConfigurationError(
                    f"lane axis cooling must be a CoolingSchedule, got {cooling!r}"
                )
            if initial not in LANE_INITIAL_CHOICES:
                raise ConfigurationError(
                    f"lane initial must be one of {LANE_INITIAL_CHOICES}, "
                    f"got {initial!r}"
                )
            if not float(scale) > 0:
                raise ConfigurationError(
                    f"lane temperature scale must be > 0, got {scale!r}"
                )

    def lane_specs(self) -> Tuple[LaneSpec, ...]:
        """The per-lane axis assignment: ``axes`` cycled over ``lanes``."""
        specs = []
        for b in range(self.lanes):
            cooling, initial, scale = self.axes[b % len(self.axes)]
            specs.append(
                LaneSpec(
                    lane=b,
                    cooling=cooling,
                    initial=initial,
                    temperature_scale=float(scale),
                )
            )
        return tuple(specs)

    def wants(self, initial: str) -> bool:
        """Whether any lane uses the given initial-assignment strategy."""
        return any(spec.initial == initial for spec in self.lane_specs())


@dataclass(frozen=True)
class RungDecision:
    """One rung boundary's audit record (all lanes, recorded costs only)."""

    step: int  #: temperature step at which the rung fired
    metrics: Tuple[Tuple[int, float], ...]  #: (lane, best recorded cost) ranked
    culled: Tuple[int, ...]  #: lanes culled at this rung
    survivors: Tuple[int, ...]  #: lanes still walking after the cull
    reallocated: int  #: temperature steps moved to the survivors
    budgets: Tuple[int, ...]  #: per-lane budgets after reallocation


class SuccessiveHalvingController:
    """Deterministic successive-halving over recorded lane trajectories.

    The engine calls :meth:`on_step` once per temperature step, after its
    own stall/budget stopping has retired lanes.  At rung boundaries
    (``step % rung == 0``) the still-walking lanes are ranked by the best
    cost in their recorded trajectory (ties to the lowest lane index), the
    worse half is culled, and the freed budget — culled lanes' remaining
    steps plus the unspent steps of lanes that stopped naturally since the
    last rung — is split evenly across the survivors, remainder to the
    lowest-indexed ones.  Budgets are mutated in place; the engine's stop
    condition reads them every step.
    """

    def __init__(self, rung: int, n_lanes: int):
        self.rung = int(rung)
        self.n_lanes = int(n_lanes)
        self.rungs: List[RungDecision] = []
        self.n_culled = 0
        self.budget_reallocated = 0
        self._credited: Set[int] = set()

    @staticmethod
    def metric(trajectory: Sequence[Tuple[float, float]]) -> float:
        """A lane's racing score: best (lowest) recorded per-temperature cost."""
        return min(cost for _, cost in trajectory)

    def on_step(
        self,
        step: int,
        active: Sequence[int],
        budgets: np.ndarray,
        n_iters: np.ndarray,
        trajectories: Sequence[Sequence[Tuple[float, float]]],
    ) -> List[int]:
        """Return the lanes to cull after temperature step ``step``."""
        if step % self.rung != 0 or not len(active):
            return []
        pool = 0
        for b in range(self.n_lanes):
            # Lanes that stopped on their own (stall) donate their unspent
            # budget; credit each stopped lane exactly once.
            if b in self._credited or int(n_iters[b]) == 0:
                continue
            pool += max(0, int(budgets[b]) - int(n_iters[b]))
            self._credited.add(b)
        ranked = sorted(
            ((self.metric(trajectories[b]), b) for b in active),
            key=lambda mb: (mb[0], mb[1]),
        )
        if len(active) > 1:
            keep = (len(active) + 1) // 2
            survivors = sorted(b for _, b in ranked[:keep])
            culled = sorted(b for _, b in ranked[keep:])
            for b in culled:
                pool += max(0, int(budgets[b]) - step)
                self._credited.add(b)
        else:
            survivors = [int(b) for b in active]
            culled = []
        if pool and survivors:
            share, rem = divmod(pool, len(survivors))
            for i, b in enumerate(survivors):
                budgets[b] += share + (1 if i < rem else 0)
            self.budget_reallocated += pool
        self.n_culled += len(culled)
        self.rungs.append(
            RungDecision(
                step=step,
                metrics=tuple((b, m) for m, b in ranked),
                culled=tuple(culled),
                survivors=tuple(survivors),
                reallocated=pool,
                budgets=tuple(int(x) for x in budgets),
            )
        )
        return culled


@dataclass
class LanePlan:
    """Per-lane walk parameters handed to the batched engine.

    ``problems[b]`` builds lane *b*'s initial state, ``coolings[b]`` /
    ``t0s[b]`` drive its temperature, ``budgets[b]`` is its (mutable)
    temperature-step budget, and ``controller`` is consulted once per step
    for rung culling.  The engine treats this duck-typed: any object with
    these attributes works.
    """

    problems: Sequence[object]
    coolings: Sequence[CoolingSchedule]
    t0s: Sequence[float]
    budgets: np.ndarray
    controller: SuccessiveHalvingController
    specs: Tuple[LaneSpec, ...] = ()


@dataclass(frozen=True)
class PortfolioReport:
    """What the racing did: lane specs, rung decisions, champion, budgets."""

    specs: Tuple[LaneSpec, ...]
    rungs: Tuple[RungDecision, ...]
    champion: int  #: winning lane (elitist best cost, ties to lowest index)
    champion_cost: float
    n_culled: int
    budget_reallocated: int
    final_budgets: Tuple[int, ...]
    n_steps: Tuple[int, ...] = ()  #: temperature steps each lane actually ran

    def best_so_far(self) -> Dict[str, object]:
        """The anytime summary: current champion plus racing counters."""
        return {
            "lane": self.champion,
            "cost": self.champion_cost,
            "initial": self.specs[self.champion].initial,
            "n_lanes": len(self.specs),
            "n_culled": self.n_culled,
            "n_rungs": len(self.rungs),
            "budget_reallocated": self.budget_reallocated,
        }

    def champion_history(
        self,
        trajectories: Sequence[Sequence[Tuple[float, float]]],
    ) -> List[Tuple[int, int, float]]:
        """``(step, lane, cost)`` whenever the recorded-cost champion improved.

        Derived purely from per-temperature trajectory samples (the racing
        signal), so truncating the trajectories at any step yields the
        champion an observer polling ``best_so_far`` would have seen then.
        """
        history: List[Tuple[int, int, float]] = []
        best = float("inf")
        step = 0
        while True:
            seen = False
            champion = -1
            champion_cost = best
            for b, traj in enumerate(trajectories):
                if step < len(traj):
                    seen = True
                    cost = traj[step][1]
                    if cost < champion_cost:
                        champion, champion_cost = b, cost
            if not seen:
                return history
            if champion >= 0:
                best = champion_cost
                history.append((step + 1, champion, champion_cost))
            step += 1
