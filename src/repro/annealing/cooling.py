"""Cooling schedules.

The cooling function generates the temperature sequence ``Temp_k`` that takes
the annealing process from (near-)random acceptance to deterministic descent.
The paper does not prescribe a specific schedule, only that the temperature
decreases and that the per-packet annealing stops after the cost stays
constant for five iterations or a preset iteration budget is exhausted; the
geometric schedule is the de-facto standard (Kirkpatrick et al. 1983) and is
the library default.  Alternative schedules are provided for the cooling
ablation benchmark.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.utils.validation import check_in_range, check_positive

__all__ = [
    "CoolingSchedule",
    "GeometricCooling",
    "LinearCooling",
    "LogarithmicCooling",
    "ConstantTemperature",
]


class CoolingSchedule(ABC):
    """Maps the outer-iteration index ``k = 0, 1, 2, ...`` to a temperature."""

    @abstractmethod
    def temperature(self, k: int, initial_temperature: float) -> float:
        """Temperature for outer iteration *k*, given the starting temperature."""

    def sequence(self, n: int, initial_temperature: float) -> list[float]:
        """The first *n* temperatures as a list (mainly for inspection/tests)."""
        return [self.temperature(k, initial_temperature) for k in range(n)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class GeometricCooling(CoolingSchedule):
    """``T_k = T_0 * alpha**k`` with ``0 < alpha < 1`` (default 0.9)."""

    def __init__(self, alpha: float = 0.9) -> None:
        self.alpha = check_in_range("alpha", alpha, 1e-9, 1.0 - 1e-12)

    def temperature(self, k: int, initial_temperature: float) -> float:
        if k < 0:
            raise ValueError(f"iteration index must be >= 0, got {k}")
        return initial_temperature * (self.alpha**k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GeometricCooling(alpha={self.alpha})"


class LinearCooling(CoolingSchedule):
    """``T_k = max(T_0 - k * step, floor)``; reaches the floor in a known number of steps."""

    def __init__(self, step: float = 0.05, floor: float = 0.0) -> None:
        self.step = check_positive("step", step)
        if floor < 0:
            raise ValueError(f"floor must be >= 0, got {floor}")
        self.floor = float(floor)

    def temperature(self, k: int, initial_temperature: float) -> float:
        if k < 0:
            raise ValueError(f"iteration index must be >= 0, got {k}")
        return max(initial_temperature - k * self.step, self.floor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinearCooling(step={self.step}, floor={self.floor})"


class LogarithmicCooling(CoolingSchedule):
    """``T_k = T_0 / log(k + e)`` — the slow schedule with asymptotic convergence guarantees."""

    def temperature(self, k: int, initial_temperature: float) -> float:
        if k < 0:
            raise ValueError(f"iteration index must be >= 0, got {k}")
        return initial_temperature / math.log(k + math.e)


class ConstantTemperature(CoolingSchedule):
    """No cooling at all — used as a degenerate baseline in ablations."""

    def temperature(self, k: int, initial_temperature: float) -> float:
        if k < 0:
            raise ValueError(f"iteration index must be >= 0, got {k}")
        return initial_temperature
