"""The generic simulated-annealing loop.

The loop structure follows the paper's algorithm (§5, step 2): for each
temperature of the cooling sequence a number of proposals are generated and
accepted according to the acceptance rule; the run terminates when a stopping
rule fires (cost constant for a number of temperature steps, or a maximum
number of temperature steps).

The annealer tracks the best state ever visited ("elitism") and can record
the full cost trajectory, which the Figure-1 reproduction uses to plot the
per-packet level / communication / total cost curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.annealing.acceptance import AcceptanceRule, BoltzmannSigmoidAcceptance
from repro.annealing.cooling import CoolingSchedule, GeometricCooling
from repro.annealing.problem import AnnealingProblem
from repro.annealing.stopping import CombinedStopping, MaxIterationsStopping, StallStopping, StoppingRule
from repro.utils.rng import SeedLike, as_rng

__all__ = ["Annealer", "AnnealingResult", "AnnealingRecord"]


@dataclass(frozen=True)
class AnnealingRecord:
    """One row of the annealing trajectory (recorded per accepted/rejected proposal)."""

    iteration: int
    temperature: float
    cost: float
    accepted: bool


@dataclass
class AnnealingResult:
    """Outcome of one annealing run.

    Attributes
    ----------
    best_state, best_cost:
        The lowest-cost state encountered and its cost.
    final_state, final_cost:
        The state the walk ended on (may be worse than the best when the
        last accepted move was uphill).
    n_iterations:
        Number of outer (temperature) iterations executed.
    n_proposals, n_accepted:
        Total proposals generated and accepted.
    trajectory:
        Per-proposal records when trajectory recording was enabled, else empty.
    """

    best_state: Any
    best_cost: float
    final_state: Any
    final_cost: float
    n_iterations: int
    n_proposals: int
    n_accepted: int
    trajectory: List[AnnealingRecord] = field(default_factory=list)

    @property
    def acceptance_ratio(self) -> float:
        """Fraction of proposals accepted (0.0 when nothing was proposed)."""
        return self.n_accepted / self.n_proposals if self.n_proposals else 0.0


class Annealer:
    """Run simulated annealing on an :class:`AnnealingProblem`.

    Parameters
    ----------
    acceptance:
        Acceptance rule; defaults to the paper's sigmoid Boltzmann rule.
    cooling:
        Cooling schedule; defaults to geometric cooling with alpha = 0.9.
    stopping:
        Stopping rule applied after each outer (temperature) iteration;
        defaults to the paper's rule — stop after the cost is unchanged for
        5 temperature steps or after 100 temperature steps, whichever comes
        first.
    moves_per_temperature:
        Number of proposals evaluated at each temperature (the inner loop).
    initial_temperature:
        Starting temperature; ``None`` asks the problem for an estimate.
    record_trajectory:
        Keep a per-proposal :class:`AnnealingRecord` list in the result.
    resync_tolerance:
        The walk tracks its cost through accumulated incremental deltas; once
        per temperature step the true cost is recomputed and, if the two
        differ by more than this tolerance, the tracked cost is
        resynchronized.  This bounds float drift on long runs without
        perturbing bit-level tie-breaking on short ones.
    """

    def __init__(
        self,
        acceptance: Optional[AcceptanceRule] = None,
        cooling: Optional[CoolingSchedule] = None,
        stopping: Optional[StoppingRule] = None,
        moves_per_temperature: int = 20,
        initial_temperature: Optional[float] = None,
        record_trajectory: bool = False,
        resync_tolerance: float = 1e-9,
    ) -> None:
        if moves_per_temperature < 1:
            raise ValueError(
                f"moves_per_temperature must be >= 1, got {moves_per_temperature}"
            )
        if resync_tolerance < 0:
            raise ValueError(f"resync_tolerance must be >= 0, got {resync_tolerance}")
        self.acceptance = acceptance or BoltzmannSigmoidAcceptance()
        self.cooling = cooling or GeometricCooling(alpha=0.9)
        self.stopping = stopping or CombinedStopping(
            [StallStopping(patience=5), MaxIterationsStopping(max_iterations=100)]
        )
        self.moves_per_temperature = int(moves_per_temperature)
        self.initial_temperature = initial_temperature
        self.record_trajectory = bool(record_trajectory)
        self.resync_tolerance = float(resync_tolerance)

    def run(
        self,
        problem: AnnealingProblem,
        seed: SeedLike = None,
        callback: Optional[Callable[[AnnealingRecord, Any], None]] = None,
    ) -> AnnealingResult:
        """Anneal *problem* and return an :class:`AnnealingResult`.

        *callback*, when given, is invoked with ``(record, current_state)``
        after every proposal regardless of the ``record_trajectory`` flag
        (used by the Figure-1 trajectory capture, which needs to decompose
        the cost of the current state without paying for list storage on
        every packet).
        """
        rng = as_rng(seed)
        state = problem.initial_state(rng)
        cost = problem.cost(state)
        best_state, best_cost = state, cost

        t0 = (
            self.initial_temperature
            if self.initial_temperature is not None
            else problem.initial_temperature(rng)
        )
        if t0 <= 0:
            raise ValueError(f"initial temperature must be > 0, got {t0}")

        self.stopping.reset()
        trajectory: List[AnnealingRecord] = []
        n_proposals = 0
        n_accepted = 0
        outer = 0
        while True:
            temperature = self.cooling.temperature(outer, t0)
            for _ in range(self.moves_per_temperature):
                candidate = problem.propose(state, rng)
                delta = problem.cost_delta(state, candidate, cost)
                if delta is None:
                    candidate_cost = problem.cost(candidate)
                    delta = candidate_cost - cost
                else:
                    candidate_cost = cost + delta
                n_proposals += 1
                accepted = self.acceptance.accept(delta, temperature, rng)
                if accepted:
                    state, cost = candidate, candidate_cost
                    n_accepted += 1
                    if cost < best_cost:
                        best_state, best_cost = state, cost
                if self.record_trajectory or callback is not None:
                    record = AnnealingRecord(
                        iteration=n_proposals,
                        temperature=temperature,
                        cost=cost,
                        accepted=accepted,
                    )
                    if self.record_trajectory:
                        trajectory.append(record)
                    if callback is not None:
                        callback(record, state)
            # Guard against incremental-cost float drift: the inner loop tracks
            # the cost through accumulated deltas, so recompute the true cost
            # once per temperature step and resynchronize when the two have
            # drifted apart — long runs can then never diverge from the true
            # cost, while bit-level drift (which would perturb best-state
            # tie-breaking) is left alone.
            resynced = problem.cost(state)
            if abs(resynced - cost) > self.resync_tolerance:
                cost = resynced
            if self.stopping.should_stop(outer, cost):
                outer += 1
                break
            outer += 1

        return AnnealingResult(
            best_state=best_state,
            best_cost=best_cost,
            final_state=state,
            final_cost=cost,
            n_iterations=outer,
            n_proposals=n_proposals,
            n_accepted=n_accepted,
            trajectory=trajectory,
        )
