"""Multi-replica (multi-start) annealing summaries.

A batched annealing run walks B independent replicas of the same problem —
one child RNG stream each, lock-stepped by the array engine
(:mod:`repro.core.array_annealer`) — and commits the best replica's result.
This module holds the replica-level bookkeeping shared by that engine and
its consumers: the per-replica statistics record, the deterministic
best-replica selection rule, and a small summary helper for variance
studies (the new capability batching opens beyond raw speed: B independent
end costs of the *same* packet quantify how sensitive the annealer is to
its stream).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ReplicaStats", "best_replica_index", "summarize_replicas"]


@dataclass(frozen=True)
class ReplicaStats:
    """Outcome summary of one replica of a batched annealing run.

    ``temperature_trajectory`` holds one ``(temperature, cost)`` sample per
    temperature step (the post-resync cost the stopping rule saw); it is
    populated by the vectorized lock-step engine and empty on the scalar
    fallback paths.  ``final_cost`` is ``None`` on paths that only surface
    the elitist best state (the reference / trajectory-recording fallbacks).
    """

    replica: int
    best_cost: float
    initial_cost: float
    final_cost: Optional[float]
    n_proposals: int
    n_accepted: int
    n_temperature_steps: int
    temperature_trajectory: Tuple[Tuple[float, float], ...] = field(default=())
    #: portfolio racing only: was this lane culled at a rung boundary?
    culled: bool = False
    #: portfolio racing only: the lane's final temperature-step budget
    #: (after reallocation); ``None`` outside portfolio runs.
    budget: Optional[int] = None

    @property
    def improvement(self) -> float:
        """Cost decrease relative to this replica's seed mapping."""
        return self.initial_cost - self.best_cost


def best_replica_index(best_costs: Sequence[float]) -> int:
    """Index of the winning replica: lowest best cost, ties to the lowest index.

    Deterministic by construction (pure comparison, no RNG), so batched runs
    commit the same replica on every rerun of the same seed.
    """
    if not best_costs:
        raise ValueError("best_replica_index needs at least one replica")
    best = 0
    for b in range(1, len(best_costs)):
        if best_costs[b] < best_costs[best]:
            best = b
    return best


def summarize_replicas(stats: Sequence[ReplicaStats]) -> Dict[str, float]:
    """Cross-replica dispersion of the best costs (variance-study headline).

    Plain aggregates — mean / min / max / spread / sample standard deviation
    — over ``best_cost``; NaN-free for a single replica (std reported as
    0.0).  Portfolio runs (any replica carrying a ``budget``) add the racing
    accounting: ``n_culled``, ``n_surviving``, ``total_budget`` (the
    post-reallocation step budgets summed) and ``steps_used`` (temperature
    steps actually walked, culled lanes truncated at their cull step).
    """
    if not stats:
        raise ValueError("summarize_replicas needs at least one replica")
    costs: List[float] = [s.best_cost for s in stats]
    n = len(costs)
    mean = sum(costs) / n
    if n > 1:
        var = sum((c - mean) ** 2 for c in costs) / (n - 1)
        std = var ** 0.5
    else:
        std = 0.0
    out = {
        "n_replicas": float(n),
        "mean_best_cost": mean,
        "std_best_cost": std,
        "min_best_cost": min(costs),
        "max_best_cost": max(costs),
        "spread": max(costs) - min(costs),
    }
    if any(s.budget is not None for s in stats):
        n_culled = sum(1 for s in stats if s.culled)
        out["n_culled"] = float(n_culled)
        out["n_surviving"] = float(n - n_culled)
        out["total_budget"] = float(sum(s.budget or 0 for s in stats))
        out["steps_used"] = float(sum(s.n_temperature_steps for s in stats))
    return out
