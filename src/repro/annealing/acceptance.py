"""Move-acceptance rules.

The paper (eq. 1) accepts a candidate mapping with probability

    B(dF, Temp) = 1 / (1 + exp(dF / Temp))

where ``dF = F(m') - F(m)`` is the cost change.  At ``Temp = inf`` every move
is accepted with probability 0.5; at ``Temp = 0`` only strictly improving
moves are accepted (eq. 2).  The classical Metropolis rule (accept improving
moves always, worsening moves with probability ``exp(-dF/T)``) is provided for
comparison, as is a purely greedy rule used as an ablation.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

__all__ = [
    "AcceptanceRule",
    "BoltzmannSigmoidAcceptance",
    "MetropolisAcceptance",
    "GreedyAcceptance",
]

# exp() overflows float64 beyond ~709; clamp the exponent to avoid warnings.
_MAX_EXPONENT = 500.0


class AcceptanceRule(ABC):
    """Maps a cost change and a temperature to an acceptance probability."""

    @abstractmethod
    def probability(self, delta_cost: float, temperature: float) -> float:
        """Probability in [0, 1] of accepting a move with cost change *delta_cost*."""

    def accept(self, delta_cost: float, temperature: float, rng) -> bool:
        """Draw an accept/reject decision using *rng* (a numpy Generator)."""
        p = self.probability(delta_cost, temperature)
        if p >= 1.0:
            return True
        if p <= 0.0:
            return False
        return bool(rng.random() < p)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class BoltzmannSigmoidAcceptance(AcceptanceRule):
    """The paper's sigmoid rule ``B(dF, T) = 1 / (1 + exp(dF / T))`` (eq. 1).

    Limits (eq. 2): at infinite temperature every move is a coin flip; at zero
    temperature improving moves (``dF < 0``) are always accepted and
    non-improving moves never are.
    """

    def probability(self, delta_cost: float, temperature: float) -> float:
        if temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {temperature}")
        if temperature == 0.0:
            return 1.0 if delta_cost < 0.0 else 0.0
        if math.isinf(temperature):
            return 0.5
        exponent = delta_cost / temperature
        if exponent > _MAX_EXPONENT:
            return 0.0
        if exponent < -_MAX_EXPONENT:
            return 1.0
        return 1.0 / (1.0 + math.exp(exponent))


class MetropolisAcceptance(AcceptanceRule):
    """Classical Metropolis rule: improving moves always, worsening with ``exp(-dF/T)``."""

    def probability(self, delta_cost: float, temperature: float) -> float:
        if temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {temperature}")
        if delta_cost <= 0.0:
            return 1.0
        if temperature == 0.0:
            return 0.0
        if math.isinf(temperature):
            return 1.0
        exponent = delta_cost / temperature
        if exponent > _MAX_EXPONENT:
            return 0.0
        return math.exp(-exponent)


class GreedyAcceptance(AcceptanceRule):
    """Hill-climbing ablation: accept only strictly improving moves, at any temperature."""

    def probability(self, delta_cost: float, temperature: float) -> float:
        return 1.0 if delta_cost < 0.0 else 0.0
