"""Stopping rules for the annealing loop.

The paper stops a packet's annealing "when the cost function remains constant
for five iterations, or when a preset maximum number is reached" (§6a).  Both
criteria are implemented, plus a combinator so the annealer can apply several
rules at once.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

__all__ = [
    "StoppingRule",
    "StallStopping",
    "MaxIterationsStopping",
    "CombinedStopping",
]


class StoppingRule(ABC):
    """Decides whether the outer annealing loop should terminate.

    The rule is stateful; :meth:`reset` is called once before each annealing
    run and :meth:`should_stop` once per outer iteration with the iteration
    index and the cost reached at the end of that iteration.
    """

    def reset(self) -> None:
        """Clear internal state before a new annealing run."""

    @abstractmethod
    def should_stop(self, iteration: int, cost: float) -> bool:
        """Return True to terminate after outer iteration *iteration*."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class StallStopping(StoppingRule):
    """Stop when the cost has not changed (within *tolerance*) for *patience* iterations."""

    def __init__(self, patience: int = 5, tolerance: float = 1e-12) -> None:
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        self.patience = int(patience)
        self.tolerance = float(tolerance)
        self._last_cost: float | None = None
        self._stall_count = 0

    def reset(self) -> None:
        self._last_cost = None
        self._stall_count = 0

    def should_stop(self, iteration: int, cost: float) -> bool:
        if self._last_cost is not None and abs(cost - self._last_cost) <= self.tolerance:
            self._stall_count += 1
        else:
            self._stall_count = 0
        self._last_cost = cost
        return self._stall_count >= self.patience

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StallStopping(patience={self.patience})"


class MaxIterationsStopping(StoppingRule):
    """Stop after a fixed number of outer iterations (the paper's ``N_I``)."""

    def __init__(self, max_iterations: int = 200) -> None:
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        self.max_iterations = int(max_iterations)

    def should_stop(self, iteration: int, cost: float) -> bool:
        return iteration + 1 >= self.max_iterations

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MaxIterationsStopping(max_iterations={self.max_iterations})"


class CombinedStopping(StoppingRule):
    """Stop as soon as *any* of the component rules wants to stop."""

    def __init__(self, rules: Sequence[StoppingRule]) -> None:
        if not rules:
            raise ValueError("CombinedStopping needs at least one rule")
        self.rules = list(rules)

    def reset(self) -> None:
        for rule in self.rules:
            rule.reset()

    def should_stop(self, iteration: int, cost: float) -> bool:
        # Evaluate every rule so all of them see every iteration (stateful rules).
        decisions = [rule.should_stop(iteration, cost) for rule in self.rules]
        return any(decisions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CombinedStopping({self.rules!r})"
