"""Generic simulated-annealing framework.

The paper's scheduler runs many small annealing processes (one per packet).
This subpackage factors the annealing machinery out of the scheduling logic:

* :mod:`~repro.annealing.acceptance` — the paper's sigmoid Boltzmann rule
  (eq. 1) and the classical Metropolis rule,
* :mod:`~repro.annealing.cooling`    — cooling schedules (geometric, linear,
  logarithmic, adaptive),
* :mod:`~repro.annealing.stopping`   — stall/iteration-budget stopping rules,
* :mod:`~repro.annealing.problem`    — the abstract annealing problem
  (state copy, random move, cost),
* :mod:`~repro.annealing.annealer`   — the annealing loop with optional
  trajectory recording and elitist best-state tracking,
* :mod:`~repro.annealing.replicas`   — multi-replica (multi-start) run
  summaries: per-replica statistics, deterministic best-replica selection,
  cross-replica dispersion for variance studies.
"""

from repro.annealing.acceptance import (
    AcceptanceRule,
    BoltzmannSigmoidAcceptance,
    MetropolisAcceptance,
    GreedyAcceptance,
)
from repro.annealing.cooling import (
    CoolingSchedule,
    GeometricCooling,
    LinearCooling,
    LogarithmicCooling,
    ConstantTemperature,
)
from repro.annealing.stopping import StoppingRule, StallStopping, MaxIterationsStopping, CombinedStopping
from repro.annealing.problem import AnnealingProblem
from repro.annealing.annealer import Annealer, AnnealingResult, AnnealingRecord
from repro.annealing.replicas import ReplicaStats, best_replica_index, summarize_replicas

__all__ = [
    "AcceptanceRule",
    "BoltzmannSigmoidAcceptance",
    "MetropolisAcceptance",
    "GreedyAcceptance",
    "CoolingSchedule",
    "GeometricCooling",
    "LinearCooling",
    "LogarithmicCooling",
    "ConstantTemperature",
    "StoppingRule",
    "StallStopping",
    "MaxIterationsStopping",
    "CombinedStopping",
    "AnnealingProblem",
    "Annealer",
    "AnnealingResult",
    "AnnealingRecord",
    "ReplicaStats",
    "best_replica_index",
    "summarize_replicas",
]
