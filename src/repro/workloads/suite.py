"""The paper's benchmark suite: registry and Table-1 calibration targets.

:data:`PAPER_PROGRAMS` maps the program names used throughout the paper to
their generator, the calibrated default parameters and the values the paper
reports in Table 1.  The Table-1 experiment driver iterates this registry and
prints the generated graphs' characteristics next to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.taskgraph.graph import TaskGraph
from repro.workloads.fft import fft_2d
from repro.workloads.gauss_jordan import gauss_jordan
from repro.workloads.matmul import matrix_multiply
from repro.workloads.newton_euler import newton_euler

__all__ = ["PaperProgramSpec", "PAPER_PROGRAMS", "paper_program", "paper_program_names"]


@dataclass(frozen=True)
class PaperProgramSpec:
    """One row of the paper's Table 1, plus the generator that rebuilds the graph."""

    key: str
    display_name: str
    generator: Callable[..., TaskGraph]
    #: Paper-reported values (Table 1)
    paper_n_tasks: int
    paper_avg_duration: float
    paper_avg_comm: float
    paper_cc_ratio_percent: float
    paper_max_speedup: float

    def build(self, seed: int = 0, **overrides) -> TaskGraph:
        """Instantiate the calibrated task graph (optionally overriding parameters)."""
        return self.generator(seed=seed, **overrides)


PAPER_PROGRAMS: Dict[str, PaperProgramSpec] = {
    "NE": PaperProgramSpec(
        key="NE",
        display_name="Newton-Euler",
        generator=newton_euler,
        paper_n_tasks=95,
        paper_avg_duration=9.12,
        paper_avg_comm=3.96,
        paper_cc_ratio_percent=43.0,
        paper_max_speedup=7.86,
    ),
    "GJ": PaperProgramSpec(
        key="GJ",
        display_name="Gauss-Jordan",
        generator=gauss_jordan,
        paper_n_tasks=111,
        paper_avg_duration=84.77,
        paper_avg_comm=6.85,
        paper_cc_ratio_percent=8.1,
        paper_max_speedup=9.14,
    ),
    "FFT": PaperProgramSpec(
        key="FFT",
        display_name="FFT",
        generator=fft_2d,
        paper_n_tasks=73,
        paper_avg_duration=72.74,
        paper_avg_comm=6.41,
        paper_cc_ratio_percent=8.8,
        paper_max_speedup=40.85,
    ),
    "MM": PaperProgramSpec(
        key="MM",
        display_name="Matrix Multiply",
        generator=matrix_multiply,
        paper_n_tasks=111,
        paper_avg_duration=73.96,
        paper_avg_comm=7.21,
        paper_cc_ratio_percent=9.7,
        paper_max_speedup=82.10,
    ),
}


def paper_program_names() -> List[str]:
    """The program keys in the order the paper lists them (NE, GJ, FFT, MM)."""
    return list(PAPER_PROGRAMS.keys())


def paper_program(key: str, seed: int = 0, **overrides) -> TaskGraph:
    """Build the calibrated task graph for program *key* ("NE", "GJ", "FFT" or "MM")."""
    try:
        spec = PAPER_PROGRAMS[key.upper()]
    except KeyError:
        raise KeyError(
            f"unknown paper program {key!r}; choose from {paper_program_names()}"
        ) from None
    return spec.build(seed=seed, **overrides)
