"""Fast Fourier Transform task graph (the paper's "FFT" program).

The paper partitions the FFT into *vector operations* and reports 73 tasks
with a maximum speedup of 40.85 — i.e. the task graph is only about two
vector operations deep.  That profile corresponds to the standard
two-dimensional (row–column) FFT decomposition: a length-``N²`` transform is
computed as independent FFTs over the rows, a transpose, and independent FFTs
over the columns.  The rows are mutually independent and so are the columns,
so the critical path is one row FFT + the transpose + one column FFT while
the total work grows with the number of vectors — exactly the wide, shallow
shape of Table 1.

With the default ``n_vectors = 36`` the generator emits 36 row-FFT tasks, one
transpose task and 36 column-FFT tasks: ``36 + 1 + 36 = 73`` tasks, matching
the paper.  Mean durations and communication weights are calibrated to the
Table-1 values (72.74 µs, 6.41 µs).
"""

from __future__ import annotations

from repro.exceptions import TaskGraphError
from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import SeedLike, as_rng

__all__ = ["fft_2d"]

_WORD_TIME = 4.0


def fft_2d(
    n_vectors: int = 36,
    fft_time: float = 73.5,
    transpose_time: float = 18.0,
    duration_spread: float = 0.1,
    words_per_edge: float = 1.6,
    seed: SeedLike = 0,
    name: str = "fft",
) -> TaskGraph:
    """Generate a two-dimensional (row–column) FFT task graph.

    Parameters
    ----------
    n_vectors:
        Number of rows (= columns) transformed; 36 gives the paper's 73 tasks.
    fft_time:
        Mean duration (µs) of one one-dimensional vector FFT task.
    transpose_time:
        Duration (µs) of the transpose/redistribution task between the two
        passes.
    duration_spread:
        Relative uniform jitter on every duration.
    words_per_edge:
        Mean number of 40-bit variables per dependence edge.
    seed:
        RNG seed (0 = calibrated paper instance).
    """
    if n_vectors < 1:
        raise TaskGraphError(f"n_vectors must be >= 1, got {n_vectors}")
    rng = as_rng(seed)
    g = TaskGraph(name)
    comm = words_per_edge * _WORD_TIME

    def dur(base: float) -> float:
        jitter = 1.0 + duration_spread * (2.0 * rng.random() - 1.0)
        return max(base * jitter, 0.5)

    for i in range(n_vectors):
        g.add_task(f"row_fft[{i}]", dur(fft_time), label=f"FFT row {i}", index=i, pass_="row")

    g.add_task("transpose", dur(transpose_time), label="transpose", pass_="transpose")
    for i in range(n_vectors):
        g.add_dependency(f"row_fft[{i}]", "transpose", comm)

    for j in range(n_vectors):
        tid = f"col_fft[{j}]"
        g.add_task(tid, dur(fft_time), label=f"FFT col {j}", index=j, pass_="col")
        g.add_dependency("transpose", tid, comm)
    return g
