"""The four paper workloads as parametric task-graph generators.

The original task graphs (extracted from real programs by the authors'
tooling) are not published; these generators rebuild the same *structure
class* for each program and are calibrated so that the Table-1
characteristics — task count, mean duration, mean communication weight and
communication/computation ratio — match the paper closely.  See
:mod:`repro.workloads.suite` for the calibration targets and the registry
used by the experiment drivers.
"""

from repro.workloads.newton_euler import newton_euler
from repro.workloads.gauss_jordan import gauss_jordan
from repro.workloads.matmul import matrix_multiply
from repro.workloads.fft import fft_2d
from repro.workloads.suite import (
    PAPER_PROGRAMS,
    PaperProgramSpec,
    paper_program,
    paper_program_names,
)

__all__ = [
    "newton_euler",
    "gauss_jordan",
    "matrix_multiply",
    "fft_2d",
    "PAPER_PROGRAMS",
    "PaperProgramSpec",
    "paper_program",
    "paper_program_names",
]
