"""The four paper workloads as parametric task-graph generators.

The original task graphs (extracted from real programs by the authors'
tooling) are not published; these generators rebuild the same *structure
class* for each program and are calibrated so that the Table-1
characteristics — task count, mean duration, mean communication weight and
communication/computation ratio — match the paper closely.  See
:mod:`repro.workloads.suite` for the calibration targets and the registry
used by the experiment drivers.

Beyond the paper's four programs, :mod:`repro.workloads.zoo` re-exports the
realistic workload zoo (:mod:`repro.taskgraph.families`: pegasus, elementary
and irw families) and adapts it to the sweep's graph-family registry.
"""

from repro.workloads.newton_euler import newton_euler
from repro.workloads.gauss_jordan import gauss_jordan
from repro.workloads.matmul import matrix_multiply
from repro.workloads.fft import fft_2d
from repro.workloads.suite import (
    PAPER_PROGRAMS,
    PaperProgramSpec,
    paper_program,
    paper_program_names,
)
from repro.workloads.zoo import (
    FAMILIES,
    FAMILY_GROUPS,
    FamilySpec,
    build_family,
    zoo_graph_families,
)

__all__ = [
    "newton_euler",
    "gauss_jordan",
    "matrix_multiply",
    "fft_2d",
    "PAPER_PROGRAMS",
    "PaperProgramSpec",
    "paper_program",
    "paper_program_names",
    "FAMILIES",
    "FAMILY_GROUPS",
    "FamilySpec",
    "build_family",
    "zoo_graph_families",
]
