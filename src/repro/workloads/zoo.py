"""Sweep-facing registry adapters for the workload zoo.

The family registry itself lives in :mod:`repro.taskgraph.families` (fourteen
validated pegasus/elementary/irw families, each with calibrated sweep-sized
and >= 1000-task parameter sets).  This module adapts it to the scenario
grids: :func:`zoo_graph_families` exposes every family as a
``seed -> TaskGraph`` builder under its registry key (the sweep-sized
instance) and as ``<key>-1k`` (the policy-study instance), the calling
convention of :data:`repro.experiments.sweep.GRAPH_FAMILIES` — so ``--families
montage mapreduce`` and ``--families montage-1k`` work on every sweep/runner
entry point, and the per-worker graph caches and batched-lane grouping apply
unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.taskgraph.families import FAMILIES, FAMILY_GROUPS, FamilySpec, build_family
from repro.taskgraph.graph import TaskGraph

__all__ = [
    "FAMILIES",
    "FAMILY_GROUPS",
    "FamilySpec",
    "build_family",
    "LARGE_SUFFIX",
    "zoo_graph_families",
]

#: Registry-key suffix selecting a family's >= 1000-task instance.
LARGE_SUFFIX = "-1k"


def zoo_graph_families() -> Dict[str, Callable[[int], TaskGraph]]:
    """Every zoo family as sweep graph-family builders (``seed -> graph``).

    Returns one entry per family under its registry key (sweep-sized, ~40-60
    tasks) and one under ``<key>-1k`` (the >= 1000-task policy-study
    instance).  Builders close over the frozen spec, so the mapping is stable
    and picklable by key for multiprocessing sweeps.
    """
    builders: Dict[str, Callable[[int], TaskGraph]] = {}
    for key, spec in FAMILIES.items():
        builders[key] = (lambda seed, _spec=spec: _spec.build(seed=seed))
        builders[key + LARGE_SUFFIX] = (
            lambda seed, _spec=spec: _spec.build_large(seed=seed)
        )
    return builders
