"""Newton–Euler inverse dynamics task graph (the paper's "NE" program).

The Newton–Euler inverse-dynamics algorithm for an ``n``-joint manipulator
has the classical two-sweep structure:

* a **forward recursion** over the joints propagating angular velocities,
  angular accelerations and linear accelerations from the base to the tip,
* a **backward recursion** propagating forces and torques from the tip back
  to the base,

with, at every joint, a cloud of independent scalar operations (vector cross
products, frame rotations, inertia products) hanging off the two recursion
chains.  The paper's NE graph has 95 scalar tasks with a mean duration of
9.12 µs, a mean communication weight of 3.96 µs (≈ one 40-bit variable over a
10 Mbit/s link) and a maximum speedup of 7.86.

This generator reproduces that structure parametrically: per joint it emits a
short forward-chain task, a block of parallel kinematics tasks, a block of
parallel dynamics tasks, inertia tasks that depend only on the initial
parameters, a backward-chain force task and parallel torque tasks.  With the
default 6 joints it produces exactly 95 tasks.  Scalar-operation durations
are drawn around the paper's 9.12 µs mean, with recursion-chain tasks kept
shorter than the parallel blocks (the chain operations are single
multiply–accumulate updates) so the critical path stays short relative to the
total work, as in the paper.
"""

from __future__ import annotations

from repro.exceptions import TaskGraphError
from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import SeedLike, as_rng

__all__ = ["newton_euler"]

#: per-link transfer time of one 40-bit variable over a 10 Mbit/s link (µs)
_WORD_TIME = 4.0


def newton_euler(
    n_joints: int = 6,
    mean_duration: float = 9.12,
    chain_duration_factor: float = 0.6,
    duration_spread: float = 0.25,
    words_per_edge: float = 1.0,
    seed: SeedLike = 0,
    name: str = "newton-euler",
) -> TaskGraph:
    """Generate a Newton–Euler inverse-dynamics task graph.

    Parameters
    ----------
    n_joints:
        Number of manipulator joints (6 in the paper ⇒ 95 tasks).
    mean_duration:
        Target mean task duration in µs (9.12 in the paper).
    chain_duration_factor:
        Relative duration of the recursion-chain tasks versus the mean; chain
        tasks are simple accumulate updates, so they are shorter than the
        parallel blocks.
    duration_spread:
        Relative half-width of the uniform jitter applied to every duration.
    words_per_edge:
        Number of 40-bit variables carried by each dependence edge (the paper
        transfers scalar values, ≈ 1 word ⇒ ≈ 4 µs).
    seed:
        RNG seed; the default of 0 yields the calibrated paper instance.
    """
    if n_joints < 1:
        raise TaskGraphError(f"n_joints must be >= 1, got {n_joints}")
    rng = as_rng(seed)
    g = TaskGraph(name)
    comm = words_per_edge * _WORD_TIME

    # With 15 tasks per joint plus 2 init and 3 output tasks, 6 joints give
    # exactly the paper's 95 tasks.
    chain_d = mean_duration * chain_duration_factor
    # Solve for the parallel-block duration so the overall mean stays on target:
    # per joint: 2 chain tasks (kinematics chain + force chain) and 13 block tasks,
    # plus 5 chain-like init/output tasks overall.
    n_tasks_total = 15 * n_joints + 5
    n_chain_tasks = 2 * n_joints + 5
    n_block_tasks = n_tasks_total - n_chain_tasks
    block_d = (mean_duration * n_tasks_total - chain_d * n_chain_tasks) / n_block_tasks

    def dur(base: float) -> float:
        jitter = 1.0 + duration_spread * (2.0 * rng.random() - 1.0)
        return max(base * jitter, 0.5)

    # ------------------------------------------------------------------ #
    # Initialization: base velocities / gravity vector.
    # ------------------------------------------------------------------ #
    g.add_task("init/base", dur(chain_d), label="base state")
    g.add_task("init/gravity", dur(chain_d), label="gravity")

    prev_kin_chain = "init/base"
    for j in range(1, n_joints + 1):
        # Forward recursion: one chained update per joint.
        kin_chain = f"fwd/chain[{j}]"
        g.add_task(kin_chain, dur(chain_d), label=f"omega[{j}]", joint=j, sweep="forward")
        g.add_dependency(prev_kin_chain, kin_chain, comm)

        # Parallel kinematics components (angular acceleration, linear
        # acceleration, centre-of-mass acceleration).
        kin_block = []
        for c, comp in enumerate(("alpha", "accel", "accel_com")):
            tid = f"fwd/{comp}[{j}]"
            g.add_task(tid, dur(block_d), label=f"{comp}[{j}]", joint=j, sweep="forward")
            g.add_dependency(kin_chain, tid, comm)
            kin_block.append(tid)

        # Parallel dynamics terms (inertial force / moment components).
        dyn_block = []
        for c in range(5):
            tid = f"dyn/term{c}[{j}]"
            g.add_task(tid, dur(block_d), label=f"dyn{c}[{j}]", joint=j, sweep="forward")
            g.add_dependency(kin_block[c % len(kin_block)], tid, comm)
            dyn_block.append(tid)

        # Inertia products depend only on the initial parameters (fully parallel).
        inertia_block = []
        for c in range(3):
            tid = f"inertia/term{c}[{j}]"
            g.add_task(tid, dur(block_d), label=f"I{c}[{j}]", joint=j, sweep="forward")
            g.add_dependency("init/gravity", tid, comm)
            inertia_block.append(tid)

        prev_kin_chain = kin_chain

    # Backward recursion: forces from the tip (joint n) towards the base.
    prev_force_chain = None
    for j in range(n_joints, 0, -1):
        force_chain = f"bwd/force[{j}]"
        g.add_task(force_chain, dur(chain_d), label=f"f[{j}]", joint=j, sweep="backward")
        g.add_dependency(f"dyn/term0[{j}]", force_chain, comm)
        g.add_dependency(f"inertia/term0[{j}]", force_chain, comm)
        if prev_force_chain is not None:
            g.add_dependency(prev_force_chain, force_chain, comm)

        for c in range(2):
            tid = f"bwd/torque{c}[{j}]"
            g.add_task(tid, dur(block_d), label=f"n{c}[{j}]", joint=j, sweep="backward")
            g.add_dependency(force_chain, tid, comm)
            g.add_dependency(f"dyn/term{1 + c}[{j}]", tid, comm)

        prev_force_chain = force_chain

    # Output: project torques onto the joint axes and assemble the result.
    g.add_task("out/project", dur(chain_d), label="project", sweep="output")
    g.add_dependency(f"bwd/torque0[1]", "out/project", comm)
    g.add_task("out/assemble", dur(chain_d), label="assemble", sweep="output")
    g.add_dependency("out/project", "out/assemble", comm)
    g.add_task("out/report", dur(chain_d), label="report", sweep="output")
    g.add_dependency("out/assemble", "out/report", comm)
    # every joint's torque feeds the assembly step
    for j in range(1, n_joints + 1):
        g.add_dependency(f"bwd/torque1[{j}]", "out/assemble", comm)

    return g
