"""Matrix-multiply task graph (the paper's "MM" program).

The paper partitions ``C = A · B`` into vector operations: one inner-product
(row-times-column) task per element block of the result, fed by lightweight
distribution tasks and collected by a final gather task.  The resulting graph
is almost flat — the product tasks are mutually independent — which is why
the paper reports a maximum speedup of 82.10 for only 111 tasks.

With the default ``n = 10`` the generator emits ``n`` row-broadcast tasks,
``n * n`` inner-product tasks and one gather task: ``10 + 100 + 1 = 111``
tasks, matching Table 1.  Inner products over length-``n`` vectors dominate
the durations (mean ≈ 74 µs in the paper); the broadcast and gather tasks are
short, which keeps the critical path near one product task.
"""

from __future__ import annotations

from repro.exceptions import TaskGraphError
from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import SeedLike, as_rng

__all__ = ["matrix_multiply"]

_WORD_TIME = 4.0


def matrix_multiply(
    n: int = 10,
    product_time: float = 81.0,
    setup_time: float = 8.0,
    duration_spread: float = 0.1,
    words_per_edge: float = 1.8,
    seed: SeedLike = 0,
    name: str = "matrix-multiply",
) -> TaskGraph:
    """Generate a blocked matrix-multiply task graph.

    Parameters
    ----------
    n:
        Matrix dimension in blocks (10 in the paper ⇒ 111 tasks).
    product_time:
        Mean duration (µs) of one inner-product task.
    setup_time:
        Duration (µs) of each row-broadcast task and of the final gather.
    duration_spread:
        Relative uniform jitter on every duration.
    words_per_edge:
        Mean number of 40-bit variables per dependence edge.
    seed:
        RNG seed (0 = calibrated paper instance).
    """
    if n < 1:
        raise TaskGraphError(f"n must be >= 1, got {n}")
    rng = as_rng(seed)
    g = TaskGraph(name)
    comm = words_per_edge * _WORD_TIME

    def dur(base: float) -> float:
        jitter = 1.0 + duration_spread * (2.0 * rng.random() - 1.0)
        return max(base * jitter, 0.5)

    # Row broadcasts: distribute row i of A (and the matching operand data).
    for i in range(n):
        g.add_task(f"bcast[{i}]", dur(setup_time), label=f"broadcast row {i}", row=i, kind="broadcast")

    # Inner products: element (i, j) of the result.
    for i in range(n):
        for j in range(n):
            tid = f"prod[{i}][{j}]"
            g.add_task(tid, dur(product_time), label=f"c[{i},{j}]", row=i, col=j, kind="product")
            g.add_dependency(f"bcast[{i}]", tid, comm)

    # Gather the result matrix.
    g.add_task("gather", dur(setup_time), label="gather C", kind="gather")
    for i in range(n):
        for j in range(n):
            g.add_dependency(f"prod[{i}][{j}]", "gather", comm)
    return g
