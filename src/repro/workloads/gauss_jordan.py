"""Gauss–Jordan linear-system solver task graph (the paper's "GJ" program).

Gauss–Jordan elimination on an ``n × n`` system (with right-hand side) is
partitioned into *vector operations*, exactly as in the paper:

* for every pivot step ``k`` a **normalization** task divides pivot row ``k``
  by the pivot element, and
* ``n`` **elimination** tasks subtract the scaled pivot row from every other
  row (the right-hand-side column is carried inside the row vectors), each
  depending on the normalization task of step ``k`` and on the previous
  update of the same row,
* a final **solution-extraction** task collects the result.

With the paper's ``n = 10`` this yields ``10 * (1 + 10) + 1 = 111`` tasks.
Durations follow the vector lengths: the amount of arithmetic per row shrinks
as the elimination proceeds, and the normalization (one division per element)
is cheaper than an elimination (multiply + subtract per element).  The
defaults are calibrated so the mean task duration is close to the paper's
84.77 µs and the mean communication weight close to 6.85 µs (≈ 1.7 variables
per message: the pivot element plus a couple of boundary values — the paper's
partitioning transfers only the values a row update actually needs, not whole
rows).
"""

from __future__ import annotations

from repro.exceptions import TaskGraphError
from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import SeedLike, as_rng

__all__ = ["gauss_jordan"]

_WORD_TIME = 4.0


def gauss_jordan(
    n: int = 10,
    element_time: float = 15.0,
    normalize_factor: float = 0.45,
    duration_spread: float = 0.1,
    words_per_edge: float = 1.7,
    seed: SeedLike = 0,
    name: str = "gauss-jordan",
) -> TaskGraph:
    """Generate a Gauss–Jordan elimination task graph.

    Parameters
    ----------
    n:
        System size (10 in the paper ⇒ 111 tasks).
    element_time:
        Time (µs) of one multiply–subtract on one vector element; an
        elimination task at step ``k`` works on ``n + 1 - k`` remaining
        elements.
    normalize_factor:
        Duration of a normalization task relative to an elimination task of
        the same step (a division is cheaper than multiply + subtract).
    duration_spread:
        Relative uniform jitter on every duration.
    words_per_edge:
        Mean number of 40-bit variables per dependence edge.
    seed:
        RNG seed (0 = calibrated paper instance).
    """
    if n < 1:
        raise TaskGraphError(f"n must be >= 1, got {n}")
    rng = as_rng(seed)
    g = TaskGraph(name)
    comm = words_per_edge * _WORD_TIME

    def dur(base: float) -> float:
        jitter = 1.0 + duration_spread * (2.0 * rng.random() - 1.0)
        return max(base * jitter, 0.5)

    # row_update[i] remembers the task that last touched row i.
    row_update: dict[int, str] = {}

    for k in range(n):
        remaining = n + 1 - k  # active columns (including the RHS)
        elim_d = element_time * remaining
        norm_d = normalize_factor * elim_d

        norm = f"norm[{k}]"
        g.add_task(norm, dur(norm_d), label=f"normalize row {k}", step=k, kind="normalize")
        if k in row_update:
            g.add_dependency(row_update[k], norm, comm)
        row_update[k] = norm

        for i in range(n):
            if i == k:
                continue
            elim = f"elim[{k}][{i}]"
            g.add_task(elim, dur(elim_d), label=f"eliminate row {i} (step {k})", step=k, row=i, kind="eliminate")
            g.add_dependency(norm, elim, comm)
            if i in row_update:
                g.add_dependency(row_update[i], elim, comm)
            row_update[i] = elim

        # The right-hand-side update is a separate (shorter) vector task so the
        # per-step task count is n + 1, matching the paper's 111 total.
        rhs = f"rhs[{k}]"
        g.add_task(rhs, dur(element_time * 2.0), label=f"update rhs (step {k})", step=k, kind="rhs")
        g.add_dependency(norm, rhs, comm)
        if ("rhs",) in row_update:
            g.add_dependency(row_update[("rhs",)], rhs, comm)
        row_update[("rhs",)] = rhs

    collect = "solution"
    g.add_task(collect, dur(element_time * 2.0), label="extract solution", kind="collect")
    for i in range(n):
        g.add_dependency(row_update[i], collect, comm)
    g.add_dependency(row_update[("rhs",)], collect, comm)
    return g
