"""Random list scheduling — the weakest baseline.

At every epoch a random subset of ready tasks is assigned to the idle
processors in random order.  Useful as a lower bound in the random-graph
benchmark and for exercising the simulator with arbitrary (but legal)
placements in property-based tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

import numpy as np

from repro.schedulers.base import PacketContext, SchedulingPolicy
from repro.utils.rng import SeedLike, as_rng

__all__ = ["RandomScheduler"]

TaskId = Hashable
ProcId = int


class RandomScheduler(SchedulingPolicy):
    """Assign random ready tasks to random idle processors."""

    name = "Random"

    def __init__(self, seed: SeedLike = None) -> None:
        self._seed = seed
        self._rng = as_rng(seed)

    def reset(self) -> None:
        """Re-seed so repeated simulations with the same seed are identical."""
        self._rng = as_rng(self._seed)

    def assign(self, ctx: PacketContext) -> Dict[TaskId, ProcId]:
        if ctx.n_idle == 0 or ctx.n_ready == 0:
            return {}
        k = min(ctx.n_idle, ctx.n_ready)
        task_idx = self._rng.permutation(ctx.n_ready)[:k]
        proc_idx = self._rng.permutation(ctx.n_idle)[:k]
        return {
            ctx.ready_tasks[int(ti)]: ctx.idle_processors[int(pi)]
            for ti, pi in zip(task_idx, proc_idx)
        }

    def fast_assign(self, packet) -> Optional[Dict[int, ProcId]]:
        """Index-space random placement with the object path's exact draws."""
        if packet.n_idle == 0 or packet.n_ready == 0:
            return {}
        k = min(packet.n_idle, packet.n_ready)
        task_idx = self._rng.permutation(packet.n_ready)[:k]
        proc_idx = self._rng.permutation(packet.n_idle)[:k]
        return {
            packet.ready[int(ti)]: packet.idle[int(pi)]
            for ti, pi in zip(task_idx, proc_idx)
        }

    def batch_assign(self, epoch, policies):
        """Lane-batched random placement.

        Every lane's two permutations come from that lane's own RNG — the
        stream-exact solo draws — so only the draw itself is a per-lane
        loop; the gathers stay on the padded matrices.  ``shuffle`` over an
        ``arange`` is ``permutation`` stream-for-stream, and a length-0/1
        shuffle consumes no stream state, so those draws are skipped.
        """
        lanes = epoch.lanes
        ready_pad, _, rcounts = epoch.ready_padded()
        idle_pad, _, icounts = epoch.idle_padded()
        out_l, out_t, out_p = [], [], []
        for row, b in enumerate(lanes.tolist()):
            n_ready, n_idle = int(rcounts[row]), int(icounts[row])
            k = n_ready if n_ready < n_idle else n_idle
            rng = policies[row]._rng
            task_idx = np.arange(n_ready, dtype=np.intp)
            if n_ready > 1:
                rng.shuffle(task_idx)
            proc_idx = np.arange(n_idle, dtype=np.intp)
            if n_idle > 1:
                rng.shuffle(proc_idx)
            out_l.append(np.full(k, b, dtype=np.intp))
            out_t.append(ready_pad[row, task_idx[:k]])
            out_p.append(idle_pad[row, proc_idx[:k]])
        return (
            np.concatenate(out_l),
            np.concatenate(out_t),
            np.concatenate(out_p),
        )
