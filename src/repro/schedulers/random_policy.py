"""Random list scheduling — the weakest baseline.

At every epoch a random subset of ready tasks is assigned to the idle
processors in random order.  Useful as a lower bound in the random-graph
benchmark and for exercising the simulator with arbitrary (but legal)
placements in property-based tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.schedulers.base import PacketContext, SchedulingPolicy
from repro.utils.rng import SeedLike, as_rng

__all__ = ["RandomScheduler"]

TaskId = Hashable
ProcId = int


class RandomScheduler(SchedulingPolicy):
    """Assign random ready tasks to random idle processors."""

    name = "Random"

    def __init__(self, seed: SeedLike = None) -> None:
        self._seed = seed
        self._rng = as_rng(seed)

    def reset(self) -> None:
        """Re-seed so repeated simulations with the same seed are identical."""
        self._rng = as_rng(self._seed)

    def assign(self, ctx: PacketContext) -> Dict[TaskId, ProcId]:
        if ctx.n_idle == 0 or ctx.n_ready == 0:
            return {}
        k = min(ctx.n_idle, ctx.n_ready)
        task_idx = self._rng.permutation(ctx.n_ready)[:k]
        proc_idx = self._rng.permutation(ctx.n_idle)[:k]
        return {
            ctx.ready_tasks[int(ti)]: ctx.idle_processors[int(pi)]
            for ti, pi in zip(task_idx, proc_idx)
        }

    def fast_assign(self, packet) -> Optional[Dict[int, ProcId]]:
        """Index-space random placement with the object path's exact draws."""
        if packet.n_idle == 0 or packet.n_ready == 0:
            return {}
        k = min(packet.n_idle, packet.n_ready)
        task_idx = self._rng.permutation(packet.n_ready)[:k]
        proc_idx = self._rng.permutation(packet.n_idle)[:k]
        return {
            packet.ready[int(ti)]: packet.idle[int(pi)]
            for ti, pi in zip(task_idx, proc_idx)
        }
