"""Scheduling policies.

Every scheduler — the paper's simulated-annealing scheduler in
:mod:`repro.core` and the list-scheduling baselines here — implements the
:class:`~repro.schedulers.base.SchedulingPolicy` interface: at every
assignment epoch the simulator hands the policy a
:class:`~repro.schedulers.base.PacketContext` (ready tasks, idle processors,
placement history) and the policy returns a partial mapping of ready tasks to
idle processors.
"""

from repro.schedulers.base import PacketContext, SchedulingPolicy, validate_assignment
from repro.schedulers.hlf import HLFScheduler
from repro.schedulers.random_policy import RandomScheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.etf import ETFScheduler
from repro.schedulers.lpt import LPTScheduler

__all__ = [
    "PacketContext",
    "SchedulingPolicy",
    "validate_assignment",
    "HLFScheduler",
    "RandomScheduler",
    "FIFOScheduler",
    "ETFScheduler",
    "LPTScheduler",
]
