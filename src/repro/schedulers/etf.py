"""Earliest Task First (ETF)-style greedy scheduling with communication awareness.

This baseline approximates the ETF heuristic of Hwang et al.: among all
(ready task, idle processor) pairs it repeatedly picks the pair whose task
could *start* earliest, where the start time accounts for the arrival of
predecessor data under the equation-4 communication cost.  Ties are broken
first towards the faster processor (a no-op on homogeneous machines, where
every speed is 1.0), then by the higher task level.  ETF is a stronger
communication-aware greedy baseline than HLF and shows how much of the SA
gain a deterministic look-ahead already captures.

On heterogeneous machines the communication cost already reflects weighted
links (through the machine's weighted distances), and the speed tie-break
steers equal-earliest-start candidates onto fast processors, which is where
ETF-style earliest-start heuristics recover most of the heterogeneity gain.

The selection is implemented as a matrix kernel.  Earliest starts are
*epoch-invariant*: nothing assigned during the epoch changes the arrival of
a ready task's (already finished) predecessors, so the ``(ready × idle)``
earliest-start matrix is computed once per :meth:`~ETFScheduler.assign` and
the greedy loop reduces to scanning a single lexicographic order — repeated
masked argmin over a static key is exactly "take the first unused (task,
processor) pair in that order".  The historical O(ready²·idle²·preds)
rescan-and-``list.remove`` loop produced identical assignments and survives
only in the differential tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.schedulers.base import PacketContext, SchedulingPolicy

__all__ = ["ETFScheduler", "greedy_pair_order"]

TaskId = Hashable
ProcId = int


def greedy_pair_order(
    est: np.ndarray, proc_speeds: np.ndarray, task_levels: np.ndarray
) -> List[Tuple[int, int]]:
    """Greedy ETF matching over a static ``(n_tasks, n_procs)`` key matrix.

    Returns up to ``min(n_tasks, n_procs)`` positional ``(task_row,
    proc_col)`` pairs, selected as if by repeatedly taking the masked argmin
    of the key ``(est, -speed, -level, task_row, proc_col)`` and retiring the
    chosen row and column.  Because the keys never change within an epoch,
    that equals a single lexicographic sort followed by a first-fit scan
    (``np.lexsort`` is stable, so row-major order supplies the positional
    tie-breaks).
    """
    n_tasks, n_procs = est.shape
    neg_speed = np.tile(-proc_speeds, n_tasks)
    neg_level = np.repeat(-task_levels, n_procs)
    order = np.lexsort((neg_level, neg_speed, est.ravel()))
    pairs: List[Tuple[int, int]] = []
    used_rows = [False] * n_tasks
    used_cols = [False] * n_procs
    budget = min(n_tasks, n_procs)
    for flat in order.tolist():
        i, j = divmod(flat, n_procs)
        if used_rows[i] or used_cols[j]:
            continue
        used_rows[i] = True
        used_cols[j] = True
        pairs.append((i, j))
        if len(pairs) == budget:
            break
    return pairs


class ETFScheduler(SchedulingPolicy):
    """Greedy earliest-start-time scheduling over the current packet.

    The selection key is ``(earliest start, -processor speed, -task level,
    tie indices)``: equal earliest starts prefer the faster processor, then
    the higher level.  On homogeneous machines every speed is 1.0, so the
    ordering reduces exactly to the classical earliest-start / higher-level
    rule.
    """

    name = "ETF"

    def __init__(self) -> None:
        self._fast_cache = None  # (scenario, have_row: bool[n], rows: (n, P))

    def reset(self) -> None:
        """Drop the per-run arrival-row cache of the fast path."""
        self._fast_cache = None

    def _earliest_start(self, ctx: PacketContext, task: TaskId, proc: ProcId) -> float:
        """Estimated earliest start of *task* on *proc* given predecessor placements."""
        start = ctx.time
        for pred in ctx.graph.predecessors(task):
            src = ctx.task_processor.get(pred)
            finish = ctx.finish_times.get(pred, ctx.time)
            if src is None:
                arrival = finish
            else:
                arrival = finish + ctx.comm_model.cost(
                    ctx.machine, ctx.graph.comm(pred, task), src, proc
                )
            if arrival > start:
                start = arrival
        return start

    def _earliest_start_matrix(self, ctx: PacketContext) -> np.ndarray:
        """The ``(n_ready, n_idle)`` matrix of :meth:`_earliest_start` values.

        Each row accumulates ``max(finish + cost_row(...))`` over the task's
        predecessors; ``cost_row`` is bit-identical to the scalar ``cost``
        and ``max`` is exact, so every entry equals the scalar helper's
        value bit for bit.
        """
        procs = np.asarray(ctx.idle_processors, dtype=np.intp)
        est = np.full((ctx.n_ready, ctx.n_idle), ctx.time, dtype=np.float64)
        for i, task in enumerate(ctx.ready_tasks):
            row = est[i]
            for pred in ctx.graph.predecessors(task):
                src = ctx.task_processor.get(pred)
                finish = ctx.finish_times.get(pred, ctx.time)
                if src is None:
                    np.maximum(row, finish, out=row)
                else:
                    arrivals = finish + ctx.comm_model.cost_row(
                        ctx.machine, ctx.graph.comm(pred, task), src, procs
                    )
                    np.maximum(row, arrivals, out=row)
        return est

    def assign(self, ctx: PacketContext) -> Dict[TaskId, ProcId]:
        if ctx.n_idle == 0 or ctx.n_ready == 0:
            return {}
        est = self._earliest_start_matrix(ctx)
        speed_of = getattr(ctx.machine, "speed_of", None)
        if speed_of is None:
            speeds = np.ones(ctx.n_idle, dtype=np.float64)
        else:
            speeds = np.array([speed_of(p) for p in ctx.idle_processors], dtype=np.float64)
        levels = np.array([ctx.levels[t] for t in ctx.ready_tasks], dtype=np.float64)
        return {
            ctx.ready_tasks[i]: ctx.idle_processors[j]
            for i, j in greedy_pair_order(est, speeds, levels)
        }

    def fast_assign(self, packet) -> Optional[Dict[int, ProcId]]:
        """Index-space ETF: cached arrival rows + one greedy scan per epoch.

        A ready task's predecessor-arrival row (latest ``finish + cost`` per
        processor) is a run-long invariant — every predecessor has finished
        and placements never change — so each row is computed once, the
        first epoch its task shows up ready, and the per-epoch work is just
        ``max(now, rows[ready][:, idle])`` plus the greedy scan.
        """
        if packet.n_idle == 0 or packet.n_ready == 0:
            return {}
        sc = packet.scenario
        cache = self._fast_cache
        if cache is None or cache[0] is not sc:
            cache = (sc, np.zeros(sc.n_tasks, dtype=bool), np.empty((sc.n_tasks, sc.n_procs)))
            self._fast_cache = cache
        _, have, rows = cache
        new = [ti for ti in packet.ready if not have[ti]]
        if new:
            rows[new] = packet.arrival_rows(new)
            have[new] = True
        ready = np.asarray(packet.ready, dtype=np.intp)
        idle = np.asarray(packet.idle, dtype=np.intp)
        est = np.maximum(rows[ready[:, None], idle[None, :]], packet.time)
        speeds = sc.speeds[idle]
        levels = sc.levels[ready]
        return {
            packet.ready[i]: packet.idle[j]
            for i, j in greedy_pair_order(est, speeds, levels)
        }
