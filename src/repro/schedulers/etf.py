"""Earliest Task First (ETF)-style greedy scheduling with communication awareness.

This baseline approximates the ETF heuristic of Hwang et al.: among all
(ready task, idle processor) pairs it repeatedly picks the pair whose task
could *start* earliest, where the start time accounts for the arrival of
predecessor data under the equation-4 communication cost.  Ties are broken
first towards the faster processor (a no-op on homogeneous machines, where
every speed is 1.0), then by the higher task level.  ETF is a stronger
communication-aware greedy baseline than HLF and shows how much of the SA
gain a deterministic look-ahead already captures.

On heterogeneous machines the communication cost already reflects weighted
links (through the machine's weighted distances), and the speed tie-break
steers equal-earliest-start candidates onto fast processors, which is where
ETF-style earliest-start heuristics recover most of the heterogeneity gain.

The selection is implemented as a matrix kernel.  Earliest starts are
*epoch-invariant*: nothing assigned during the epoch changes the arrival of
a ready task's (already finished) predecessors, so the ``(ready × idle)``
earliest-start matrix is computed once per :meth:`~ETFScheduler.assign` and
the greedy loop reduces to scanning a single lexicographic order — repeated
masked argmin over a static key is exactly "take the first unused (task,
processor) pair in that order".  The historical O(ready²·idle²·preds)
rescan-and-``list.remove`` loop produced identical assignments and survives
only in the differential tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.schedulers.base import PacketContext, SchedulingPolicy

__all__ = ["ETFScheduler", "greedy_pair_order", "batch_greedy_pairs"]

TaskId = Hashable
ProcId = int


def greedy_pair_order(
    est: np.ndarray, proc_speeds: np.ndarray, task_levels: np.ndarray
) -> List[Tuple[int, int]]:
    """Greedy ETF matching over a static ``(n_tasks, n_procs)`` key matrix.

    Returns up to ``min(n_tasks, n_procs)`` positional ``(task_row,
    proc_col)`` pairs, selected as if by repeatedly taking the masked argmin
    of the key ``(est, -speed, -level, task_row, proc_col)`` and retiring the
    chosen row and column.  Because the keys never change within an epoch,
    that equals a single lexicographic sort followed by a first-fit scan
    (``np.lexsort`` is stable, so row-major order supplies the positional
    tie-breaks).
    """
    n_tasks, n_procs = est.shape
    neg_speed = np.tile(-proc_speeds, n_tasks)
    neg_level = np.repeat(-task_levels, n_procs)
    order = np.lexsort((neg_level, neg_speed, est.ravel()))
    pairs: List[Tuple[int, int]] = []
    used_rows = [False] * n_tasks
    used_cols = [False] * n_procs
    budget = min(n_tasks, n_procs)
    for flat in order.tolist():
        i, j = divmod(flat, n_procs)
        if used_rows[i] or used_cols[j]:
            continue
        used_rows[i] = True
        used_cols[j] = True
        pairs.append((i, j))
        if len(pairs) == budget:
            break
    return pairs


def batch_greedy_pairs(
    est: np.ndarray,
    neg_speed: np.ndarray,
    neg_level: np.ndarray,
    alive: np.ndarray,
    budget: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Lane-parallel :func:`greedy_pair_order` over an ``(L, R, I)`` key tensor.

    Runs every lane's greedy ETF matching simultaneously.  The key
    ``(est, -speed, -level, row-major position)`` is static within the
    epoch, so it is rank-compressed once — a per-lane stable ``lexsort``
    whose positional fall-back is exactly the solo scan's tie-break — and
    each greedy pass is then a single masked *integer* argmin: pass *k*
    yields every lane's *k*-th pair, with the chosen row and column retired,
    which per lane reproduces the solo first-fit scan over the sorted order.
    The pass count is the largest per-lane pair count (at most
    ``min(R, I)``), not the pair total.  Returns ``(lane_rows, task_rows,
    proc_cols)`` positional triples in pass order; *alive* and *budget* are
    consumed.
    """
    n_rows, _, width_i = est.shape
    m = est.shape[1] * width_i
    order = np.lexsort(
        (
            np.broadcast_to(neg_level[:, :, None], est.shape).reshape(n_rows, m),
            np.broadcast_to(neg_speed[:, None, :], est.shape).reshape(n_rows, m),
            est.reshape(n_rows, m),
        ),
        axis=-1,
    )
    # int32 ranks: half the memory traffic of the per-pass argmins, and any
    # realistic epoch has far fewer than 2**31 (task, processor) pairs.
    rank = np.empty((n_rows, m), dtype=np.int32)
    rank[np.arange(n_rows)[:, None], order] = np.arange(m, dtype=np.int32)[None, :]
    # Retirement happens in the rank domain: dead cells are bumped to m
    # (past every live rank), so each pass is one argmin with no rebuilt
    # key tensor.
    cur = np.where(alive.reshape(n_rows, m), rank, np.int32(m))
    col_block = np.arange(width_i, dtype=np.intp)
    row_block = np.arange(est.shape[1], dtype=np.intp) * width_i
    out_l: List[np.ndarray] = []
    out_r: List[np.ndarray] = []
    out_c: List[np.ndarray] = []
    # Most lanes pair off in a couple of passes (the budget is the idle
    # count, usually small); the long tail belongs to a few lanes.  Each
    # pass therefore argmins only over the still-live lane rows, and lanes
    # leave `live` — instead of having their row blanked — the moment their
    # budget is spent or no alive cell remains.
    live = np.arange(n_rows, dtype=np.intp)
    while live.size:
        sub = cur if live.size == n_rows else cur[live]
        first = sub.argmin(axis=1)
        keep = sub[np.arange(live.size, dtype=np.intp), first] < m
        if not keep.all():
            live = live[keep]
            if not live.size:
                break
            first = first[keep]
        rows = first // width_i
        cols = first % width_i
        out_l.append(live)
        out_r.append(rows)
        out_c.append(cols)
        cur[live[:, None], rows[:, None] * width_i + col_block[None, :]] = m
        cur[live[:, None], cols[:, None] + row_block[None, :]] = m
        budget[live] -= 1
        cont = budget[live] > 0
        if not cont.all():
            live = live[cont]
    if not out_l:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty, empty
    return np.concatenate(out_l), np.concatenate(out_r), np.concatenate(out_c)


class ETFScheduler(SchedulingPolicy):
    """Greedy earliest-start-time scheduling over the current packet.

    The selection key is ``(earliest start, -processor speed, -task level,
    tie indices)``: equal earliest starts prefer the faster processor, then
    the higher level.  On homogeneous machines every speed is 1.0, so the
    ordering reduces exactly to the classical earliest-start / higher-level
    rule.
    """

    name = "ETF"

    def __init__(self) -> None:
        self._fast_cache = None  # (scenario, have_row: bool[n], rows: (n, P))

    def reset(self) -> None:
        """Drop the per-run arrival-row cache of the fast path."""
        self._fast_cache = None

    def _earliest_start(self, ctx: PacketContext, task: TaskId, proc: ProcId) -> float:
        """Estimated earliest start of *task* on *proc* given predecessor placements."""
        start = ctx.time
        for pred in ctx.graph.predecessors(task):
            src = ctx.task_processor.get(pred)
            finish = ctx.finish_times.get(pred, ctx.time)
            if src is None:
                arrival = finish
            else:
                arrival = finish + ctx.comm_model.cost(
                    ctx.machine, ctx.graph.comm(pred, task), src, proc
                )
            if arrival > start:
                start = arrival
        return start

    def _earliest_start_matrix(self, ctx: PacketContext) -> np.ndarray:
        """The ``(n_ready, n_idle)`` matrix of :meth:`_earliest_start` values.

        Each row accumulates ``max(finish + cost_row(...))`` over the task's
        predecessors; ``cost_row`` is bit-identical to the scalar ``cost``
        and ``max`` is exact, so every entry equals the scalar helper's
        value bit for bit.
        """
        procs = np.asarray(ctx.idle_processors, dtype=np.intp)
        est = np.full((ctx.n_ready, ctx.n_idle), ctx.time, dtype=np.float64)
        for i, task in enumerate(ctx.ready_tasks):
            row = est[i]
            for pred in ctx.graph.predecessors(task):
                src = ctx.task_processor.get(pred)
                finish = ctx.finish_times.get(pred, ctx.time)
                if src is None:
                    np.maximum(row, finish, out=row)
                else:
                    arrivals = finish + ctx.comm_model.cost_row(
                        ctx.machine, ctx.graph.comm(pred, task), src, procs
                    )
                    np.maximum(row, arrivals, out=row)
        return est

    def assign(self, ctx: PacketContext) -> Dict[TaskId, ProcId]:
        if ctx.n_idle == 0 or ctx.n_ready == 0:
            return {}
        est = self._earliest_start_matrix(ctx)
        speed_of = getattr(ctx.machine, "speed_of", None)
        if speed_of is None:
            speeds = np.ones(ctx.n_idle, dtype=np.float64)
        else:
            speeds = np.array([speed_of(p) for p in ctx.idle_processors], dtype=np.float64)
        levels = np.array([ctx.levels[t] for t in ctx.ready_tasks], dtype=np.float64)
        return {
            ctx.ready_tasks[i]: ctx.idle_processors[j]
            for i, j in greedy_pair_order(est, speeds, levels)
        }

    def fast_assign(self, packet) -> Optional[Dict[int, ProcId]]:
        """Index-space ETF: cached arrival rows + one greedy scan per epoch.

        A ready task's predecessor-arrival row (latest ``finish + cost`` per
        processor) is a run-long invariant — every predecessor has finished
        and placements never change — so each row is computed once, the
        first epoch its task shows up ready, and the per-epoch work is just
        ``max(now, rows[ready][:, idle])`` plus the greedy scan.
        """
        if packet.n_idle == 0 or packet.n_ready == 0:
            return {}
        sc = packet.scenario
        cache = self._fast_cache
        if cache is None or cache[0] is not sc:
            cache = (sc, np.zeros(sc.n_tasks, dtype=bool), np.empty((sc.n_tasks, sc.n_procs)))
            self._fast_cache = cache
        _, have, rows = cache
        new = [ti for ti in packet.ready if not have[ti]]
        if new:
            rows[new] = packet.arrival_rows(new)
            have[new] = True
        ready = np.asarray(packet.ready, dtype=np.intp)
        idle = np.asarray(packet.idle, dtype=np.intp)
        est = np.maximum(rows[ready[:, None], idle[None, :]], packet.time)
        speeds = sc.speeds[idle]
        levels = sc.levels[ready]
        return {
            packet.ready[i]: packet.idle[j]
            for i, j in greedy_pair_order(est, speeds, levels)
        }

    def batch_assign(self, epoch, policies):
        """Lane-batched ETF: shared arrival-row cache + parallel greedy passes.

        The solo kernel's run-long arrival-row invariant lifts lane-wise: a
        ``(B, n_max, p_max)`` row cache lives in the group's epoch cache,
        missing ``(lane, task)`` rows are filled by one batched gather the
        first epoch the task shows up ready, and the greedy matching of all
        lanes resolves together in :func:`batch_greedy_pairs` — per lane the
        same pairs, in the same order, as :func:`greedy_pair_order`.
        """
        st = epoch.stacked
        lanes = epoch.lanes
        cached = epoch.cache.get("rows")
        if cached is None:
            cached = epoch.cache["rows"] = (
                np.zeros((st.n_lanes, st.n_max), dtype=bool),
                np.empty((st.n_lanes, st.n_max, st.p_max), dtype=np.float64),
            )
        have, rows = cached
        ready_pad, rvalid, rcounts = epoch.ready_padded()
        idle_pad, ivalid, icounts = epoch.idle_padded()
        pair_lanes = np.repeat(lanes, rcounts)
        pair_tasks = ready_pad[rvalid]  # row-major: matches the repeat order
        need = ~have[pair_lanes, pair_tasks]
        if need.any():
            new_lanes, new_tasks = pair_lanes[need], pair_tasks[need]
            rows[new_lanes, new_tasks] = epoch.arrival_rows(new_lanes, new_tasks)
            have[new_lanes, new_tasks] = True
        est = rows[lanes[:, None, None], ready_pad[:, :, None], idle_pad[:, None, :]]
        est = np.maximum(est, epoch.now[:, None, None])
        neg_speed = np.where(ivalid, -st.speeds[lanes[:, None], idle_pad], np.inf)
        neg_level = np.where(rvalid, -st.levels[lanes[:, None], ready_pad], np.inf)
        alive = rvalid[:, :, None] & ivalid[:, None, :]
        budget = np.minimum(rcounts, icounts).astype(np.intp)
        sel_l, sel_r, sel_c = batch_greedy_pairs(
            est, neg_speed, neg_level, alive, budget
        )
        return lanes[sel_l], ready_pad[sel_l, sel_r], idle_pad[sel_l, sel_c]
