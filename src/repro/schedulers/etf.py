"""Earliest Task First (ETF)-style greedy scheduling with communication awareness.

This baseline approximates the ETF heuristic of Hwang et al.: among all
(ready task, idle processor) pairs it repeatedly picks the pair whose task
could *start* earliest, where the start time accounts for the arrival of
predecessor data under the equation-4 communication cost.  Ties are broken
first towards the faster processor (a no-op on homogeneous machines, where
every speed is 1.0), then by the higher task level.  ETF is a stronger
communication-aware greedy baseline than HLF and shows how much of the SA
gain a deterministic look-ahead already captures.

On heterogeneous machines the communication cost already reflects weighted
links (through the machine's weighted distances), and the speed tie-break
steers equal-earliest-start candidates onto fast processors, which is where
ETF-style earliest-start heuristics recover most of the heterogeneity gain.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.schedulers.base import PacketContext, SchedulingPolicy

__all__ = ["ETFScheduler"]

TaskId = Hashable
ProcId = int


class ETFScheduler(SchedulingPolicy):
    """Greedy earliest-start-time scheduling over the current packet.

    The selection key is ``(earliest start, -processor speed, -task level,
    tie indices)``: equal earliest starts prefer the faster processor, then
    the higher level.  On homogeneous machines every speed is 1.0, so the
    ordering reduces exactly to the classical earliest-start / higher-level
    rule.
    """

    name = "ETF"

    def _earliest_start(self, ctx: PacketContext, task: TaskId, proc: ProcId) -> float:
        """Estimated earliest start of *task* on *proc* given predecessor placements."""
        start = ctx.time
        for pred in ctx.graph.predecessors(task):
            src = ctx.task_processor.get(pred)
            finish = ctx.finish_times.get(pred, ctx.time)
            if src is None:
                arrival = finish
            else:
                arrival = finish + ctx.comm_model.cost(
                    ctx.machine, ctx.graph.comm(pred, task), src, proc
                )
            if arrival > start:
                start = arrival
        return start

    def assign(self, ctx: PacketContext) -> Dict[TaskId, ProcId]:
        if ctx.n_idle == 0 or ctx.n_ready == 0:
            return {}
        remaining_tasks: List[TaskId] = list(ctx.ready_tasks)
        remaining_procs: List[ProcId] = list(ctx.idle_processors)
        speed_of = getattr(ctx.machine, "speed_of", None)
        assignment: Dict[TaskId, ProcId] = {}
        while remaining_tasks and remaining_procs:
            best: Tuple[float, float, float, int, int] | None = None
            best_pair: Tuple[TaskId, ProcId] | None = None
            for ti, task in enumerate(remaining_tasks):
                for pi, proc in enumerate(remaining_procs):
                    est = self._earliest_start(ctx, task, proc)
                    speed = speed_of(proc) if speed_of is not None else 1.0
                    key = (est, -speed, -ctx.levels[task], ti, pi)
                    if best is None or key < best:
                        best = key
                        best_pair = (task, proc)
            assert best_pair is not None
            task, proc = best_pair
            assignment[task] = proc
            remaining_tasks.remove(task)
            remaining_procs.remove(proc)
        return assignment
