"""The scheduling-policy interface and the per-epoch packet context.

The paper builds the schedule *online*: an assignment epoch occurs at time
zero and whenever one or more processors become idle; at each epoch the
scheduler sees the ready tasks and the idle processors and assigns at most one
task to each idle processor.  Encoding that protocol as a
:class:`SchedulingPolicy` lets the simulated-annealing scheduler and every
list-scheduling baseline run under exactly the same execution semantics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.comm.model import CommunicationModel, LinearCommModel
from repro.exceptions import SchedulingError

__all__ = [
    "PacketContext",
    "SchedulingPolicy",
    "validate_assignment",
    "fastest_first",
    "stacked_ranks",
    "nontrivial_ranks",
    "rank_sorted",
]

TaskId = Hashable
ProcId = int


def fastest_first(machine, procs) -> List[ProcId]:
    """Processors sorted by decreasing speed, index order within equal speeds.

    The shared placement order of the speed-aware schedulers (LPT, HLF
    ``"fastest"``).  On homogeneous machines (or machines without a speed
    model) every speed ties, so the result is plain increasing index order.
    """
    speed_of = getattr(machine, "speed_of", None)
    if speed_of is None:
        return sorted(procs)
    return sorted(procs, key=lambda p: (-speed_of(p), p))


@dataclass
class PacketContext:
    """Everything a policy may consult at one assignment epoch.

    Attributes
    ----------
    time:
        Current simulation time (the epoch).
    ready_tasks:
        Tasks whose predecessors have all finished and that are not yet
        assigned, in deterministic (graph insertion) order.
    idle_processors:
        Processors with no running or pending task, in increasing index order.
    graph:
        The task graph being scheduled.
    machine:
        The target machine.
    levels:
        Precomputed task levels ``n_i`` for the whole graph.
    task_processor:
        Placement history: processor of every task assigned so far (finished,
        running or pending).  Policies use it to evaluate the communication
        cost of placing a ready task near or far from its predecessors.
    finish_times:
        Completion time of every finished task (empty entries for unfinished
        ones); available to communication-aware heuristics such as ETF.
    comm_model:
        The communication model in force (zero or linear), so policies can
        score candidate placements consistently with the simulator.
    processor_ready_time:
        For every processor, the earliest time it could start a new task
        (idle processors report the epoch time; busy ones their expected
        availability).  Used by look-ahead heuristics.

    The three mapping attributes are live **read-only views** of
    incrementally-maintained engine state (not per-epoch snapshots): they
    are only valid for the duration of the :meth:`SchedulingPolicy.assign`
    call that received them, mutating them raises ``TypeError``, and a
    policy that needs scratch state or a persistent snapshot must copy
    (``dict(ctx.task_processor)``).
    """

    time: float
    ready_tasks: List[TaskId]
    idle_processors: List[ProcId]
    graph: "object"
    machine: "object"
    levels: Mapping[TaskId, float]
    task_processor: Mapping[TaskId, ProcId]
    finish_times: Mapping[TaskId, float] = field(default_factory=dict)
    comm_model: CommunicationModel = field(default_factory=LinearCommModel)
    processor_ready_time: Mapping[ProcId, float] = field(default_factory=dict)

    @property
    def n_ready(self) -> int:
        return len(self.ready_tasks)

    @property
    def n_idle(self) -> int:
        return len(self.idle_processors)


def validate_assignment(ctx: PacketContext, assignment: Dict[TaskId, ProcId]) -> None:
    """Check that *assignment* is legal for *ctx*; raise :class:`SchedulingError` otherwise.

    A legal assignment maps a subset of the ready tasks injectively onto the
    idle processors (at most one task per processor, no task or processor
    outside the packet).
    """
    ready = set(ctx.ready_tasks)
    idle = set(ctx.idle_processors)
    seen_procs: set = set()
    for task, proc in assignment.items():
        if task not in ready:
            raise SchedulingError(f"task {task!r} is not ready at t={ctx.time}")
        if proc not in idle:
            raise SchedulingError(f"processor {proc!r} is not idle at t={ctx.time}")
        if proc in seen_procs:
            raise SchedulingError(f"processor {proc!r} assigned more than one task")
        seen_procs.add(proc)


class SchedulingPolicy(ABC):
    """Online scheduling policy invoked at every assignment epoch."""

    #: Display name used in reports and benchmark tables.
    name: str = "policy"

    @abstractmethod
    def assign(self, ctx: PacketContext) -> Dict[TaskId, ProcId]:
        """Return a partial mapping ``{task_id: processor}`` for this epoch.

        The mapping must satisfy :func:`validate_assignment`; tasks left out
        remain ready and reappear in the next packet.  Returning an empty
        mapping is legal (the simulator will re-invoke the policy at the next
        epoch), but a policy must eventually assign every task or the
        simulation will abort with a livelock error.
        """

    def batch_assign(
        self, epoch, policies: List["SchedulingPolicy"]
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Batched epoch assignment for the lock-step lane engine.

        *epoch* is a :class:`~repro.sim.batch_engine.BatchEpoch` covering a
        group of lanes that share this policy's configuration, and
        *policies* the per-lane policy instances aligned with
        ``epoch.lanes`` (``self`` is ``policies[0]``; per-lane stochastic
        state such as RNG streams must be drawn from the matching
        instance).  Returns three equal-length arrays ``(lanes, tasks,
        procs)`` of global lane indices and lane-local task / processor
        indices — entries of the same lane **must** appear in the order the
        policy's solo path would place them (contention fidelity replays
        placements in that order), while entries of different lanes may
        interleave freely.

        The contract extends :meth:`fast_assign` lane-wise: for every lane
        the triples must reproduce exactly the assignment (and consume
        exactly the RNG draws) the solo path would produce.  Returning
        ``None`` (the default) declines the whole group for this epoch; the
        engine then serves each lane through its :meth:`fast_assign` /
        reference fallback, so a kernel must decline *before* consuming any
        stochastic state.
        """
        return None

    def fast_assign(self, packet) -> Optional[Dict[int, ProcId]]:
        """Index-space epoch assignment for the compiled fast engine.

        *packet* is a :class:`~repro.sim.compile.FastPacket`: ready tasks are
        dense graph indices, and the compiled scenario exposes durations,
        levels, speeds and equation-4 cost tables as arrays.  A policy that
        implements this returns ``{task_index: processor}`` and **must**
        produce exactly the assignment (and consume exactly the RNG draws)
        its object-path :meth:`assign` would for the equivalent
        :class:`PacketContext` — the fast engine is proven bit-identical to
        the reference engine on that contract.

        Returning ``None`` (the default) means "no fast path": the engine
        materializes a :class:`PacketContext` and calls :meth:`assign`
        instead.  A policy deciding to return ``None`` must do so *before*
        consuming any stochastic state, or the fallback would replay draws.
        """
        return None

    def reset(self) -> None:
        """Clear any per-run state; called by the simulator before a run."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def stacked_ranks(keys: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Per-row rank of every column of *keys* in ascending stable order.

    The building block of the static-priority batched kernels: a policy
    whose selection is a stable sort of the ready list by a run-invariant
    key (LPT's ``-duration``, HLF's ``-level``, fastest-first's
    ``-speed``) precomputes each element's rank **once**; per epoch,
    sorting a ready/idle subset by its ranks reproduces the solo path's
    stable sort exactly (ranks are unique, and among equal keys the stable
    argsort leaves lower indices ranked first — the solo tie-break).
    Entries where *valid* is False (padding) rank after every real one.
    """
    keys = np.where(valid, keys, np.inf)
    order = np.argsort(keys, axis=1, kind="stable")
    ranks = np.empty_like(order)
    rows = np.arange(keys.shape[0], dtype=np.intp)[:, None]
    ranks[rows, order] = np.arange(keys.shape[1], dtype=np.intp)[None, :]
    return ranks


def nontrivial_ranks(keys: np.ndarray, valid: np.ndarray) -> Optional[np.ndarray]:
    """:func:`stacked_ranks`, or ``None`` when the ranking is the identity.

    A uniform key column (every processor the same speed, say) ranks every
    row ``0..n-1``; sorting an already index-ordered padded set by identity
    ranks is a no-op, so callers treat ``None`` as "keep the padded order"
    and skip the per-epoch sort entirely.
    """
    ranks = stacked_ranks(keys, valid)
    identity = np.arange(ranks.shape[1], dtype=np.intp)
    if np.array_equal(ranks, np.broadcast_to(identity, ranks.shape)):
        return None
    return ranks


def rank_sorted(
    padded: np.ndarray, valid: np.ndarray, ranks: np.ndarray, lanes: np.ndarray
) -> np.ndarray:
    """Each row of *padded* reordered by its elements' precomputed *ranks*.

    *padded*/*valid* are a :meth:`BatchEpoch.ready_padded`-style set matrix
    for the group's lanes, *ranks* a full ``(n_lanes_total, width)`` rank
    table, *lanes* the group's global lane indices.  Padding sorts last and
    stays ignorable through the caller's valid-count truncation.
    """
    key = ranks[lanes[:, None], padded]
    key = np.where(valid, key, np.iinfo(np.intp).max)
    order = np.argsort(key, axis=1, kind="stable")
    return padded[np.arange(padded.shape[0], dtype=np.intp)[:, None], order]
