"""Longest Processing Time first (LPT) list scheduling.

A classical machine-scheduling heuristic: among the ready tasks the ones with
the longest durations are assigned first.  For DAGs this is generally weaker
than level-based priorities (it ignores the downstream work a task unlocks)
and serves as another baseline point in the random-graph benchmark.

On heterogeneous machines the longest tasks go to the fastest idle
processors (the classical LPT rule for uniform machines, ``Q || C_max``);
with unit speeds the speed sort is inert and the placement is plain index
order, as before.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

import numpy as np

from repro.schedulers.base import (
    PacketContext,
    SchedulingPolicy,
    fastest_first,
    nontrivial_ranks,
    rank_sorted,
)

__all__ = ["LPTScheduler"]

TaskId = Hashable
ProcId = int


class LPTScheduler(SchedulingPolicy):
    """Assign the longest ready tasks to the fastest idle processors.

    Speed ties (every processor, on homogeneous machines) keep increasing
    index order, so the classical behaviour is unchanged there.
    """

    name = "LPT"

    def assign(self, ctx: PacketContext) -> Dict[TaskId, ProcId]:
        if ctx.n_idle == 0 or ctx.n_ready == 0:
            return {}
        order = sorted(
            ctx.ready_tasks,
            key=lambda t: (-ctx.graph.duration(t), ctx.ready_tasks.index(t)),
        )
        selected = order[: ctx.n_idle]
        return dict(zip(selected, fastest_first(ctx.machine, ctx.idle_processors)))

    def fast_assign(self, packet) -> Optional[Dict[int, ProcId]]:
        """Index-space LPT: stable duration argsort + fastest-first placement."""
        if packet.n_idle == 0 or packet.n_ready == 0:
            return {}
        sc = packet.scenario
        durations = sc.durations_list
        speeds = sc.speeds_list
        selected = sorted(packet.ready, key=lambda ti: -durations[ti])[: packet.n_idle]
        procs = sorted(packet.idle, key=lambda p: (-speeds[p], p))
        return dict(zip(selected, procs))

    def batch_assign(self, epoch, policies):
        """Lane-batched LPT: duration-rank selection, speed-rank placement.

        Both orders are run-invariant, so they are ranked once per group
        (:func:`~repro.schedulers.base.nontrivial_ranks`) and every epoch
        is at most two rank-gather argsorts — per lane exactly the solo
        stable sorts; an identity ranking (homogeneous speeds, say) skips
        its sort outright because the padded rows are already index-ordered.
        """
        st = epoch.stacked
        lanes = epoch.lanes
        ranks = epoch.cache.get("ranks")
        if ranks is None:
            ranks = epoch.cache["ranks"] = (
                nontrivial_ranks(-st.durations, st.task_valid),
                nontrivial_ranks(-st.speeds, st.proc_valid),
            )
        duration_rank, speed_rank = ranks
        ready_pad, rvalid, rcounts = epoch.ready_padded()
        idle_pad, ivalid, icounts = epoch.idle_padded()
        tasks_sel = (
            ready_pad
            if duration_rank is None
            else rank_sorted(ready_pad, rvalid, duration_rank, lanes)
        )
        procs_sel = (
            idle_pad
            if speed_rank is None
            else rank_sorted(idle_pad, ivalid, speed_rank, lanes)
        )
        k = np.minimum(rcounts, icounts)
        li, pos = np.nonzero(np.arange(tasks_sel.shape[1])[None, :] < k[:, None])
        return lanes[li], tasks_sel[li, pos], procs_sel[li, pos]
