"""First-come-first-served list scheduling.

Ready tasks are assigned in the order they became ready (approximated by the
graph's insertion order among simultaneously-ready tasks), ignoring both task
levels and communication.  This is the "no priority" baseline.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

import numpy as np

from repro.schedulers.base import PacketContext, SchedulingPolicy

__all__ = ["FIFOScheduler"]

TaskId = Hashable
ProcId = int


class FIFOScheduler(SchedulingPolicy):
    """Assign ready tasks to idle processors in arrival (insertion) order."""

    name = "FIFO"

    def assign(self, ctx: PacketContext) -> Dict[TaskId, ProcId]:
        if ctx.n_idle == 0 or ctx.n_ready == 0:
            return {}
        k = min(ctx.n_idle, ctx.n_ready)
        return dict(zip(ctx.ready_tasks[:k], ctx.idle_processors[:k]))

    def fast_assign(self, packet) -> Optional[Dict[int, ProcId]]:
        """Index-space FIFO: ready indices are already in insertion order."""
        k = min(packet.n_idle, packet.n_ready)
        return dict(zip(packet.ready[:k], packet.idle[:k]))

    def batch_assign(self, epoch, policies):
        """Lane-batched FIFO: the padded ready/idle rows *are* the selection.

        Both padded matrices already hold increasing indices, so the kernel
        is one truncation mask — lane *b*'s first ``min(n_ready, n_idle)``
        pairs, in index order, exactly the solo zip.
        """
        ready_pad, _, rcounts = epoch.ready_padded()
        idle_pad, _, icounts = epoch.idle_padded()
        k = np.minimum(rcounts, icounts)
        li, pos = np.nonzero(np.arange(ready_pad.shape[1])[None, :] < k[:, None])
        return epoch.lanes[li], ready_pad[li, pos], idle_pad[li, pos]
