"""The Highest Level First (HLF) list scheduler — the paper's baseline.

HLF (Hu 1961; Adam, Chandy & Dickinson 1974) assigns, at every epoch, the
ready tasks with the highest *levels* to the idle processors.  The level of a
task is the accumulated execution time along the longest path from the task
to a leaf, so HLF always advances the critical path first.  The placement of
a selected task onto a *particular* idle processor is **arbitrary** in the
classical algorithm — the paper exploits exactly this: simulated annealing
chooses the processor (and, among equal-priority candidates, the task) to
minimize communication, HLF does not.

Three placement variants are provided:

* ``placement="arbitrary"`` (default, the paper's baseline): selected tasks
  are placed on a random permutation of the idle processors (seeded, so runs
  are reproducible).  This is the honest reading of "arbitrary": the
  scheduler has no reason to prefer any processor.
* ``placement="index"``: selected tasks fill idle processors in increasing
  index order.  On very regular graphs (e.g. Gauss–Jordan) this deterministic
  choice can accidentally create data affinity between iterations and is then
  *better* than a typical arbitrary placement — useful as an upper-bound
  variant in the baseline benchmarks, but not representative of classical HLF.
* ``placement="min_comm"``: a communication-aware refinement that greedily
  places each selected task on the idle processor minimizing the equation-4
  cost to its predecessors — shows how much of SA's gain a simple greedy fix
  recovers (ablation).  Cost ties are broken towards the faster processor (a
  no-op on homogeneous machines).
* ``placement="fastest"``: a heterogeneity-aware variant that places the
  highest-level selected tasks on the fastest idle processors (speed ties
  broken by processor index).  On homogeneous machines this degenerates to
  ``"index"``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.schedulers.base import (
    PacketContext,
    SchedulingPolicy,
    fastest_first,
    nontrivial_ranks,
    rank_sorted,
)
from repro.utils.rng import SeedLike, as_rng

__all__ = ["HLFScheduler"]

TaskId = Hashable
ProcId = int

_PLACEMENTS = ("arbitrary", "index", "min_comm", "fastest")


class HLFScheduler(SchedulingPolicy):
    """Highest Level First list scheduling.

    Parameters
    ----------
    placement:
        ``"arbitrary"`` (default) — random placement on the idle processors;
        ``"index"`` — fill idle processors in index order;
        ``"min_comm"`` — greedy communication-aware placement;
        ``"fastest"`` — highest-level tasks on the fastest idle processors.
    seed:
        Seed for the arbitrary placement (ignored by the other variants).
    """

    def __init__(self, placement: str = "arbitrary", seed: SeedLike = 0) -> None:
        if placement not in _PLACEMENTS:
            raise ConfigurationError(
                f"placement must be one of {_PLACEMENTS}, got {placement!r}"
            )
        self.placement = placement
        self._seed = seed
        self._rng = as_rng(seed)
        if placement == "arbitrary":
            self.name = "HLF"
        elif placement == "index":
            self.name = "HLF/index"
        elif placement == "fastest":
            self.name = "HLF/fastest"
        else:
            self.name = "HLF/min-comm"

    def reset(self) -> None:
        """Re-seed the placement RNG so repeated runs are identical."""
        self._rng = as_rng(self._seed)

    def _select_tasks(self, ctx: PacketContext) -> List[TaskId]:
        """The ready tasks sorted by decreasing level, truncated to the idle count."""
        order = sorted(
            ctx.ready_tasks,
            key=lambda t: (-ctx.levels[t], ctx.ready_tasks.index(t)),
        )
        return order[: ctx.n_idle]

    def assign(self, ctx: PacketContext) -> Dict[TaskId, ProcId]:
        if ctx.n_idle == 0 or ctx.n_ready == 0:
            return {}
        selected = self._select_tasks(ctx)
        if self.placement == "index":
            return dict(zip(selected, ctx.idle_processors))
        if self.placement == "fastest":
            return dict(zip(selected, fastest_first(ctx.machine, ctx.idle_processors)))
        if self.placement == "arbitrary":
            procs = list(ctx.idle_processors)
            order = self._rng.permutation(len(procs))
            shuffled = [procs[int(i)] for i in order]
            return dict(zip(selected, shuffled))
        return self._assign_min_comm(ctx, selected)

    def fast_assign(self, packet) -> Optional[Dict[int, ProcId]]:
        """Index-space HLF: stable level argsort + the placement kernels.

        Consumes exactly the RNG draws of the object path (one
        ``permutation(n_idle)`` per epoch for ``"arbitrary"``), so a run is
        bit-identical whichever engine drives the policy.
        """
        if packet.n_idle == 0 or packet.n_ready == 0:
            return {}
        sc = packet.scenario
        levels = sc.levels_list
        # Stable sort on -level == sorted by (-level, ready position).
        selected = sorted(packet.ready, key=lambda ti: -levels[ti])[: packet.n_idle]
        idle = packet.idle
        if self.placement == "index":
            return dict(zip(selected, idle))
        if self.placement == "fastest":
            speeds = sc.speeds_list
            procs = sorted(idle, key=lambda p: (-speeds[p], p))
            return dict(zip(selected, procs))
        if self.placement == "arbitrary":
            perm = self._rng.permutation(len(idle))
            return dict(zip(selected, (idle[int(i)] for i in perm)))
        return self._fast_min_comm(packet, selected)

    def batch_assign(self, epoch, policies):
        """Lane-batched HLF: precomputed level ranks + vectorized placement.

        Selection is one rank-gather argsort per epoch (see
        :func:`~repro.schedulers.base.stacked_ranks` — equal levels keep
        index order exactly like the solo stable sort); ``"index"`` places
        straight onto the padded idle rows, ``"fastest"`` through the
        speed-rank table, and ``"arbitrary"`` draws each lane's
        ``permutation(n_idle)`` from that lane's own RNG — the solo draw,
        stream for stream.  ``"min_comm"`` declines (before any draw): its
        sequential greedy runs per lane through :meth:`fast_assign`.
        """
        if self.placement == "min_comm":
            return None
        st = epoch.stacked
        lanes = epoch.lanes
        ranks = epoch.cache.get("ranks")
        if ranks is None:
            ranks = epoch.cache["ranks"] = (
                nontrivial_ranks(-st.levels, st.task_valid),
                nontrivial_ranks(-st.speeds, st.proc_valid)
                if self.placement == "fastest"
                else None,
            )
        level_rank, speed_rank = ranks
        ready_pad, rvalid, rcounts = epoch.ready_padded()
        idle_pad, ivalid, icounts = epoch.idle_padded()
        tasks_sel = (
            ready_pad
            if level_rank is None
            else rank_sorted(ready_pad, rvalid, level_rank, lanes)
        )
        if self.placement == "index" or (
            self.placement == "fastest" and speed_rank is None
        ):
            procs_sel = idle_pad
        elif self.placement == "fastest":
            procs_sel = rank_sorted(idle_pad, ivalid, speed_rank, lanes)
        else:  # arbitrary
            # One permutation draw per lane (the solo stream), one batched
            # gather for all of them.  ``shuffle(arange(n))`` is exactly
            # ``permutation(n)`` stream-wise, and a length-0/1 shuffle
            # consumes no stream state at all, so those lanes skip the call.
            col = np.tile(
                np.arange(idle_pad.shape[1], dtype=np.intp), (len(lanes), 1)
            )
            for row, n_idle in enumerate(icounts.tolist()):
                if n_idle > 1:
                    perm = np.arange(n_idle, dtype=np.intp)
                    policies[row]._rng.shuffle(perm)
                    col[row, :n_idle] = perm
            procs_sel = idle_pad[
                np.arange(len(lanes), dtype=np.intp)[:, None], col
            ]
        k = np.minimum(rcounts, icounts)
        li, pos = np.nonzero(np.arange(tasks_sel.shape[1])[None, :] < k[:, None])
        return lanes[li], tasks_sel[li, pos], procs_sel[li, pos]

    def _fast_min_comm(self, packet, selected: List[int]) -> Dict[int, ProcId]:
        """Greedy min-comm placement over the compiled per-edge cost tables.

        Accumulates each candidate row in predecessor order (the float
        summation order of the scalar path) and scans free processors in
        order with the same ``cost < best or (cost == best and speed >
        best_speed)`` rule, so placements match the object path bit for bit.
        """
        sc = packet.scenario
        assignment: Dict[int, ProcId] = {}
        free: List[ProcId] = list(packet.idle)
        indptr, preds = sc.pred_indptr, sc.pred_ids
        for ti in selected:
            procs = np.asarray(free, dtype=np.intp)
            costs = np.zeros(len(free), dtype=np.float64)
            for e in range(indptr[ti], indptr[ti + 1]):
                table = sc.pred_table(e)
                if table is not None:
                    costs = costs + table[packet.assigned_proc[preds[e]], procs]
            best_k = 0
            best_cost = float("inf")
            best_speed = 0.0
            for k, proc in enumerate(free):
                cost = costs[k]
                speed = sc.speeds[proc]
                if cost < best_cost or (cost == best_cost and speed > best_speed):
                    best_cost = cost
                    best_k = k
                    best_speed = speed
            assignment[ti] = free.pop(best_k)
        return assignment

    def _assign_min_comm(self, ctx: PacketContext, selected: List[TaskId]) -> Dict[TaskId, ProcId]:
        """Greedy communication-aware placement of the already-selected tasks.

        Cost ties go to the faster processor — inert on homogeneous machines
        (every speed is 1.0, so the first minimal-cost processor wins as
        before).
        """
        speed_of = getattr(ctx.machine, "speed_of", None)
        assignment: Dict[TaskId, ProcId] = {}
        free = list(ctx.idle_processors)
        for task in selected:
            preds = ctx.graph.predecessors(task)
            best_proc = free[0]
            best_cost = float("inf")
            best_speed = 0.0
            for proc in free:
                cost = 0.0
                for pred in preds:
                    src = ctx.task_processor.get(pred)
                    if src is None:
                        continue
                    cost += ctx.comm_model.cost(
                        ctx.machine, ctx.graph.comm(pred, task), src, proc
                    )
                speed = speed_of(proc) if speed_of is not None else 1.0
                if cost < best_cost or (cost == best_cost and speed > best_speed):
                    best_cost = cost
                    best_proc = proc
                    best_speed = speed
            assignment[task] = best_proc
            free.remove(best_proc)
        return assignment

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HLFScheduler(placement={self.placement!r})"
