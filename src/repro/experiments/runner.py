"""Run every paper experiment and print the results.

``python -m repro.experiments.runner`` regenerates Table 1, Table 2, Figure 1
and Figure 2 in one go.  The benchmark harness under ``benchmarks/`` calls
the same per-experiment functions, so the two entry points always agree.

``--jobs N`` distributes Table 2's (program × architecture × comm) cells over
a process pool (results are identical for any job count); ``--fidelity``
selects the simulator model used for Table 2 ("latency" — the default the SA
cost function assumes — or the contention-aware "contention" model).
``--hetero`` appends a heterogeneous-machines extension study (speed spreads
{1x, 2x, 4x} on weighted ring/mesh/hypercube interconnects) that goes beyond
the paper's identical-processor setup; ``--lanes B`` runs that sweep's cells
as lock-step lanes of the batched engine (processes × lanes, results
bit-identical).
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.experiments.figure1 import format_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.table1 import format_table1
from repro.experiments.table2 import format_table2

__all__ = ["run_all", "run_hetero_study", "main"]


def run_hetero_study(
    seed: int = 0,
    jobs: int = 1,
    n_seeds: int = 3,
    lanes: int = 1,
    timeout: Optional[float] = None,
    retries: int = 2,
) -> str:
    """A small heterogeneous-machines sweep rendered as a report section.

    Runs HLF, ETF and SA over the 9-machine heterogeneous grid (speed spreads
    × weighted topologies) on *n_seeds* layered random graphs per machine and
    returns the aggregate table.  *lanes* batches compatible cells through
    the lock-step engine (processes × lanes, bit-identical results).
    *timeout* and *retries* arm the supervisor's per-cell wall-clock limit and
    retry budget (see :mod:`repro.experiments.supervisor`).
    """
    from repro.experiments.sweep import HETERO_MACHINES, format_sweep_report, run_sweep

    report = run_sweep(
        policies=("HLF", "ETF", "SA"),
        machines=tuple(HETERO_MACHINES),
        families=("layered",),
        n_seeds=n_seeds,
        base_seed=seed,
        jobs=jobs,
        lanes=lanes,
        timeout=timeout,
        retries=retries,
    )
    header = (
        "Extension - heterogeneous machines "
        "(speed spreads 1x/2x/4x on weighted ring/mesh/hypercube):"
    )
    return header + "\n" + format_sweep_report(report)


def run_all(
    seed: int = 0,
    programs: Optional[List[str]] = None,
    jobs: int = 1,
    fidelity: str = "latency",
    hetero: bool = False,
    lanes: int = 1,
    timeout: Optional[float] = None,
    retries: int = 2,
) -> str:
    """Regenerate every table and figure and return the combined report text."""
    sections = [
        format_table1(seed=seed),
        "",
        format_table2(seed=seed, programs=programs, jobs=jobs, fidelity=fidelity),
        "",
        format_figure1(seed=seed),
        "",
        "Figure 2 - Gantt chart (detail) of Newton-Euler on the 8-processor hypercube:",
        run_figure2(seed=seed).chart,
    ]
    if hetero:
        sections.extend(
            [
                "",
                run_hetero_study(
                    seed=seed, jobs=jobs, lanes=lanes, timeout=timeout, retries=retries
                ),
            ]
        )
    return "\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0, help="seed for workloads and SA")
    parser.add_argument(
        "--programs",
        nargs="*",
        default=None,
        help="restrict Table 2 to these program keys (NE GJ FFT MM)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the Table 2 grid (results identical for any count)",
    )
    parser.add_argument(
        "--fidelity",
        choices=["latency", "contention"],
        default="latency",
        help="simulator fidelity for Table 2",
    )
    parser.add_argument(
        "--hetero",
        action="store_true",
        help="append the heterogeneous-machines extension study",
    )
    parser.add_argument(
        "--lanes",
        type=int,
        default=1,
        help=(
            "lock-step lanes per batched-engine call in the --hetero sweep "
            "(composes with --jobs as processes x lanes; results identical)"
        ),
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-cell wall-clock timeout (seconds) for the --hetero sweep",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retry budget per failed cell in the --hetero sweep",
    )
    args = parser.parse_args(argv)
    if args.lanes < 1:
        parser.error(f"--lanes must be >= 1, got {args.lanes}")
    if args.timeout is not None and args.timeout <= 0:
        parser.error(f"--timeout must be > 0, got {args.timeout}")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")
    print(
        run_all(
            seed=args.seed,
            programs=args.programs,
            jobs=args.jobs,
            fidelity=args.fidelity,
            hetero=args.hetero,
            lanes=args.lanes,
            timeout=args.timeout,
            retries=args.retries,
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
