"""Table 2 — speedups of simulated annealing vs HLF.

For every program (NE, GJ, MM, FFT), every architecture (hypercube-8, bus-8,
ring-9) and both communication settings (without / with communication cost),
the SA scheduler and the HLF list scheduler are simulated under identical
conditions; the table reports the two speedups and the percentage gain, in
the layout of the paper's Table 2.

Measurement protocol (documented deviations are in EXPERIMENTS.md):

* **HLF** places selected tasks arbitrarily (the classical algorithm gives no
  placement rule), so its speedup is reported as the mean over a few seeded
  random placements.
* **SA** is run with the cost weights tuned over a small grid, as the paper
  prescribes ("the weight factors … can be tuned to optimize the allocation
  for the highest speed-up"); the best speedup is reported together with the
  winning weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.comm.model import LinearCommModel, ZeroCommModel
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.machine.machine import Machine
from repro.schedulers.hlf import HLFScheduler
from repro.sim.engine import simulate
from repro.utils.tabulate import format_table
from repro.workloads.suite import PAPER_PROGRAMS

__all__ = [
    "Table2Cell",
    "Table2Block",
    "run_table2",
    "format_table2",
    "paper_table2_reference",
    "PAPER_TABLE2",
]


@dataclass(frozen=True)
class Table2Cell:
    """One (architecture, communication setting) measurement for one program."""

    architecture: str
    with_communication: bool
    speedup_sa: float
    speedup_hlf: float
    sa_weight_comm: float = 0.5

    @property
    def gain_percent(self) -> float:
        if self.speedup_hlf <= 0:
            return 0.0
        return 100.0 * (self.speedup_sa - self.speedup_hlf) / self.speedup_hlf


@dataclass
class Table2Block:
    """All measurements for one program (one sub-table of Table 2)."""

    program: str
    cells: List[Table2Cell] = field(default_factory=list)

    def cell(self, architecture: str, with_communication: bool) -> Table2Cell:
        for c in self.cells:
            if c.architecture == architecture and c.with_communication == with_communication:
                return c
        raise KeyError((architecture, with_communication))


#: Paper-reported Table 2 values: program -> architecture ->
#: (SA w/o comm, HLF w/o comm, SA with comm, HLF with comm)
PAPER_TABLE2: Dict[str, Dict[str, tuple]] = {
    "NE": {
        "Hypercube (8p)": (7.20, 6.90, 5.6, 4.9),
        "Bus (8p)": (7.20, 6.90, 6.2, 5.2),
        "Ring (9p)": (8.00, 8.00, 5.5, 3.6),
    },
    "GJ": {
        "Hypercube (8p)": (6.67, 6.67, 4.80, 4.64),
        "Bus (8p)": (6.76, 6.67, 4.93, 4.74),
        "Ring (9p)": (8.25, 8.25, 5.02, 4.77),
    },
    "MM": {
        "Hypercube (8p)": (7.75, 7.75, 6.11, 5.19),
        "Bus (8p)": (7.75, 7.75, 6.34, 5.71),
        "Ring (9p)": (8.38, 8.38, 6.04, 4.96),
    },
    "FFT": {
        "Hypercube (8p)": (7.38, 7.38, 6.23, 4.93),
        "Bus (8p)": (7.48, 7.38, 6.27, 5.58),
        "Ring (9p)": (8.43, 8.43, 5.97, 5.10),
    },
}


def paper_table2_reference(program: str, architecture: str) -> tuple:
    """Return the paper's (SA w/o, HLF w/o, SA with, HLF with) speedups for one cell."""
    return PAPER_TABLE2[program][architecture]


def _architectures() -> Dict[str, Machine]:
    return Machine.paper_architectures()


def _hlf_speedup(
    graph, machine, comm_model, placement_seeds: Sequence[int], fidelity: str = "latency"
) -> float:
    """Mean HLF speedup over a few arbitrary-placement seeds."""
    speedups = [
        simulate(
            graph,
            machine,
            HLFScheduler(seed=s),
            comm_model=comm_model,
            fidelity=fidelity,
            record_trace=False,
        ).speedup()
        for s in placement_seeds
    ]
    return float(np.mean(speedups))


def _sa_speedup(
    graph,
    machine,
    comm_model,
    weights: Sequence[float],
    seed: int,
    fidelity: str = "latency",
) -> tuple[float, float]:
    """Best SA speedup over the weight grid; returns (speedup, winning w_c)."""
    best_speedup = -1.0
    best_wc = weights[0]
    for wc in weights:
        config = SAConfig.paper_defaults(seed=seed).with_weights(1.0 - wc, wc)
        result = simulate(
            graph,
            machine,
            SAScheduler(config),
            comm_model=comm_model,
            fidelity=fidelity,
            record_trace=False,
        )
        if result.speedup() > best_speedup:
            best_speedup = result.speedup()
            best_wc = wc
    return best_speedup, best_wc


def _run_cell(spec: dict) -> dict:
    """Compute one (program, architecture, comm) cell — the ``--jobs`` pool worker."""
    graph = PAPER_PROGRAMS[spec["program"]].build(seed=0)
    machine = _architectures()[spec["architecture"]]
    with_comm = spec["with_comm"]
    comm_model = LinearCommModel() if with_comm else ZeroCommModel()
    weights = tuple(spec["weights"]) if with_comm else (0.5,)
    sa_speedup, wc = _sa_speedup(
        graph, machine, comm_model, weights, spec["seed"], spec["fidelity"]
    )
    hlf_speedup = _hlf_speedup(
        graph, machine, comm_model, tuple(spec["hlf_seeds"]), spec["fidelity"]
    )
    return dict(spec, speedup_sa=sa_speedup, speedup_hlf=hlf_speedup, sa_weight_comm=wc)


def run_table2(
    programs: Optional[List[str]] = None,
    seed: int = 1,
    sa_weights: Sequence[float] = (0.3, 0.5, 0.7),
    hlf_placement_seeds: Sequence[int] = (0, 1, 2, 3),
    fidelity: str = "latency",
    jobs: int = 1,
) -> List[Table2Block]:
    """Regenerate Table 2.

    Parameters
    ----------
    programs:
        Subset of program keys to run (default: all four, i.e. NE GJ FFT MM).
    seed:
        Seed for the workload generators (the graphs themselves use seed 0,
        the calibrated instances) and the SA scheduler.
    sa_weights:
        Grid of communication weights ``w_c`` over which SA is tuned for the
        "with communication" columns; the "without" columns use 0.5 (the
        weights are irrelevant when communication is free).
    hlf_placement_seeds:
        Seeds of the arbitrary HLF placements averaged into the baseline.
    fidelity:
        Simulator fidelity ("latency" or "contention").
    jobs:
        Worker processes over the (program, architecture, comm) cells.  Every
        cell carries its own seeds, so results are identical for any job
        count.
    """
    from repro.experiments.sweep import parallel_map

    program_keys = programs if programs is not None else list(PAPER_PROGRAMS.keys())
    arch_names = list(_architectures().keys())
    specs = [
        {
            "program": key,
            "architecture": arch_name,
            "with_comm": with_comm,
            "weights": list(sa_weights),
            "hlf_seeds": list(hlf_placement_seeds),
            "seed": seed,
            "fidelity": fidelity,
        }
        for key in program_keys
        for arch_name in arch_names
        for with_comm in (False, True)
    ]
    cells = parallel_map(_run_cell, specs, jobs=jobs)
    blocks: List[Table2Block] = []
    for key in program_keys:
        block = Table2Block(program=PAPER_PROGRAMS[key].display_name)
        block.cells = [
            Table2Cell(
                architecture=c["architecture"],
                with_communication=c["with_comm"],
                speedup_sa=c["speedup_sa"],
                speedup_hlf=c["speedup_hlf"],
                sa_weight_comm=c["sa_weight_comm"],
            )
            for c in cells
            if c["program"] == key
        ]
        blocks.append(block)
    return blocks


def format_table2(blocks: Optional[List[Table2Block]] = None, **run_kwargs) -> str:
    """Render Table 2 in the paper's layout (one sub-table per program)."""
    blocks = blocks if blocks is not None else run_table2(**run_kwargs)
    sections: List[str] = []
    headers = [
        "Architecture",
        "(Sp)SA w/o",
        "(Sp)HLF w/o",
        "% gain",
        "(Sp)SA with",
        "(Sp)HLF with",
        "% gain",
    ]
    for block in blocks:
        rows = []
        architectures = []
        for cell in block.cells:
            if cell.architecture not in architectures:
                architectures.append(cell.architecture)
        for arch in architectures:
            wo = block.cell(arch, with_communication=False)
            wi = block.cell(arch, with_communication=True)
            rows.append(
                [
                    arch,
                    wo.speedup_sa,
                    wo.speedup_hlf,
                    wo.gain_percent,
                    wi.speedup_sa,
                    wi.speedup_hlf,
                    wi.gain_percent,
                ]
            )
        sections.append(
            format_table(rows, headers=headers, title=f"Table 2 - {block.program}")
        )
    return "\n\n".join(sections)
