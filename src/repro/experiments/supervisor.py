"""Supervised fault-tolerant execution for scenario sweeps.

``parallel_map``'s bare ``pool.map`` could not survive a single misbehaving
worker: a hung cell blocked the whole sweep forever, a crashed worker lost
every in-flight cell, and a 10k-cell grid that died at cell 9,999 had to
start over.  This module replaces it with a supervised worker pool in the
style of distributed discrete-event control systems, where supervision and
graceful degradation are first-class structure:

* **Per-cell wall-clock timeouts** — a worker that exceeds ``timeout`` on
  one cell is killed (SIGKILL) and replaced; the cell is retried elsewhere.
* **Bounded retry with exponential backoff + jitter** — transient failures
  (exceptions, malformed results) are retried up to ``retries`` additional
  times; the jitter is a deterministic hash draw so reruns behave
  identically.
* **Worker-death detection with respawn** — a worker that exits abruptly
  (segfault, ``os._exit``, OOM kill) is detected through its pipe's EOF,
  its in-flight cell is re-dispatched, and a replacement worker is forked.
* **Worker recycling** — ``maxtasksperchild`` retires a worker after a
  fixed number of cells so leaky workers cannot grow without bound.
* **Journaled checkpointing** — an append-only JSONL journal of completed
  rows keyed by spec hash lets an interrupted sweep ``--resume``: finished
  cells are restored from the journal and only unfinished cells re-execute,
  reproducing bit-identical aggregates.

The pool is plumbing, not policy: cells are dispatched one at a time over a
per-worker duplex pipe (so the supervisor always knows which worker owns
which cell, and killing one worker cannot corrupt a shared queue), results
return in input order, and a run with ``jobs=1`` and no supervision features
short-circuits to a plain in-process loop.

Fault injection (:mod:`repro.utils.chaos`) threads through the same worker
wrapper, so the test suite and the CI chaos job can prove the whole ladder:
with 10–20% injected crashes/hangs/deaths/malformed rows, a sweep completes
with rows bit-identical (science fields) to a fault-free run.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing as mp
import multiprocessing.connection as mp_connection
import os
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, WorkerError
from repro.utils.chaos import MALFORMED_PAYLOAD, ChaosConfig, det_uniform

__all__ = [
    "SupervisorConfig",
    "Checkpoint",
    "PoolTask",
    "PoolWorker",
    "supervised_map",
    "spec_key",
    "group_key",
    "progress_sender",
]


# --------------------------------------------------------------------------- #
# Anytime progress channel
# --------------------------------------------------------------------------- #

#: Worker-process-local progress sender, installed by :func:`_worker_loop`
#: around each cell.  A cell body (e.g. ``run_scenario`` wiring an SA
#: portfolio's ``anytime_hook``) fetches it with :func:`progress_sender` and
#: calls it with a JSON-ish snapshot dict; the snapshot travels up the worker
#: pipe as an out-of-band ``(index, attempt, "progress", snapshot, None)``
#: tuple.  Pipe replies are FIFO, so progress always precedes the cell's
#: final reply.  ``None`` whenever no supervised cell is in flight (direct
#: in-process calls) — callers must handle that.
_PROGRESS_SENDER: Optional[Callable[[dict], None]] = None


def progress_sender() -> Optional[Callable[[dict], None]]:
    """The in-flight cell's progress sender, or ``None`` outside a worker."""
    return _PROGRESS_SENDER


# --------------------------------------------------------------------------- #
# Stable cell keys
# --------------------------------------------------------------------------- #

def spec_key(spec: dict) -> str:
    """A stable content hash of a scenario spec.

    Keys starting with ``_`` (volatile bookkeeping such as ``_index``) are
    excluded, so the hash depends only on what the cell *is*, not on where
    it sits in the grid or how it was scheduled.  Used to key checkpoint
    journal entries and chaos decisions.

    A ``portfolio`` of ``None`` is also excluded: non-portfolio cells hash
    exactly as they did before the field existed, so checkpoint journals
    written by older sweeps still resume and seeded chaos plans keep firing
    on the same cells.
    """
    payload = {
        k: v for k, v in spec.items()
        if not k.startswith("_") and not (k == "portfolio" and v is None)
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def group_key(keys: Sequence[str]) -> str:
    """A stable key for a lane group, derived from its member cell keys."""
    blob = ",".join(keys).encode("utf-8")
    return "g" + hashlib.sha256(blob).hexdigest()[:15]


def _default_item_key(item: object) -> str:
    if isinstance(item, dict):
        return spec_key(item)
    if isinstance(item, (list, tuple)):
        return group_key([_default_item_key(member) for member in item])
    blob = json.dumps(item, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# --------------------------------------------------------------------------- #
# Configuration
# --------------------------------------------------------------------------- #

@dataclass
class SupervisorConfig:
    """How the supervised pool runs, retries, and degrades.

    ``timeout`` and ``chaos`` require process isolation (a hang can only be
    killed, and an injected ``die`` fault only survived, across a process
    boundary), so either forces the pool path even at ``jobs=1``; without
    them a single-job run executes inline.
    """

    jobs: int = 1
    #: Per-cell wall-clock budget in seconds; ``None`` disables timeouts.
    timeout: Optional[float] = None
    #: Additional attempts after the first (0 = fail on first error).
    retries: int = 2
    #: First-retry backoff in seconds; doubles per attempt, plus jitter.
    backoff_base: float = 0.05
    #: Ceiling for the exponential backoff delay.
    backoff_max: float = 2.0
    #: Seed for the deterministic backoff jitter.
    seed: int = 0
    #: Retire a worker after this many cells (``None`` = never).
    maxtasksperchild: Optional[int] = None
    #: Fault-injection plan applied around every cell in pool workers.
    chaos: Optional[ChaosConfig] = None
    #: Supervisor wake-up interval while waiting on workers.
    poll_interval: float = 0.1

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {self.timeout}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.maxtasksperchild is not None and self.maxtasksperchild < 1:
            raise ConfigurationError(
                f"maxtasksperchild must be >= 1, got {self.maxtasksperchild}"
            )

    @property
    def needs_isolation(self) -> bool:
        """Whether supervision features require subprocess workers."""
        return self.timeout is not None or self.chaos is not None

    def backoff_delay(self, key: str, attempt: int) -> float:
        """The deterministic backoff before retrying *key* after *attempt*."""
        base = min(self.backoff_max, self.backoff_base * (2 ** (attempt - 1)))
        return base * (1.0 + det_uniform(self.seed, "jitter", key, attempt))


# --------------------------------------------------------------------------- #
# Checkpoint journal
# --------------------------------------------------------------------------- #

class Checkpoint:
    """Append-only JSONL journal of completed sweep cells.

    Line 1 is a header carrying the grid fingerprint; every subsequent line
    is ``{"kind": "row", "key": <spec hash>, "row": {...}}`` appended (and
    flushed) the moment a cell completes.  A process killed mid-write leaves
    at most one partial trailing line, which :meth:`load` skips — everything
    before it is intact, which is the crash-safety contract ``--resume``
    relies on.
    """

    def __init__(self, path: str, fingerprint: dict, restored: Dict[str, dict], fh):
        self.path = path
        self.fingerprint = fingerprint
        self.restored = restored
        self._fh = fh

    # ------------------------------------------------------------------ #
    @staticmethod
    def _scan(path: str) -> Tuple[Optional[dict], Dict[str, dict], int]:
        """Parse a journal: ``(fingerprint, rows by key, valid byte length)``.

        The byte length covers every decodable line; a partial trailing line
        from a killed run falls outside it.
        """
        fingerprint: Optional[dict] = None
        rows: Dict[str, dict] = {}
        valid_end = 0
        offset = 0
        with open(path, "rb") as fh:
            for raw in fh:
                offset += len(raw)
                line = raw.decode("utf-8", errors="replace").strip()
                if line:
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue  # partial trailing line of an interrupted run
                    if entry.get("kind") == "header":
                        fingerprint = entry.get("fingerprint")
                    elif entry.get("kind") == "row":
                        rows[entry["key"]] = entry["row"]
                valid_end = offset
        return fingerprint, rows, valid_end

    @classmethod
    def load(cls, path: str) -> Tuple[Optional[dict], Dict[str, dict]]:
        """Read a journal: ``(header fingerprint, rows by spec key)``.

        Undecodable lines (the partial trailing write of a killed run) are
        skipped; a duplicate key keeps the last row recorded.
        """
        fingerprint, rows, _valid_end = cls._scan(path)
        return fingerprint, rows

    @classmethod
    def open(cls, path: str, fingerprint: dict, resume: bool = False) -> "Checkpoint":
        """Open (or create) the journal at *path* for this grid.

        With ``resume=True`` and an existing journal, previously completed
        rows are restored — after verifying the journal's header fingerprint
        matches this grid, so a checkpoint from a different sweep cannot be
        silently replayed into this one.  Without ``resume`` (or without an
        existing file) the journal is started fresh.
        """
        restored: Dict[str, dict] = {}
        if resume and os.path.exists(path):
            recorded, rows, valid_end = cls._scan(path)
            if recorded is None and rows:
                raise ConfigurationError(
                    f"checkpoint {path!r} has rows but no readable header; "
                    "refusing to resume from a corrupt journal"
                )
            if recorded is not None and recorded != fingerprint:
                raise ConfigurationError(
                    f"checkpoint {path!r} was journaled for a different sweep "
                    f"grid (header {recorded} != this grid {fingerprint}); "
                    "pass a fresh --checkpoint path or drop --resume"
                )
            restored = rows
            # Drop the partial trailing line a killed run may have left, so
            # appended records cannot merge into it.
            if valid_end < os.path.getsize(path):
                with open(path, "r+b") as trunc:
                    trunc.truncate(valid_end)
            fh = open(path, "a")
        else:
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            fh = open(path, "w")
            fh.write(json.dumps({"kind": "header", "fingerprint": fingerprint}) + "\n")
            fh.flush()
        return cls(path, fingerprint, restored, fh)

    def record(self, key: str, row: dict) -> None:
        """Append one completed row and flush it to disk immediately."""
        self._fh.write(json.dumps({"kind": "row", "key": key, "row": row}) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Checkpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# The supervised pool
# --------------------------------------------------------------------------- #

@dataclass
class PoolTask:
    """One unit of supervised work: a payload item plus its retry state.

    Shared between :func:`supervised_map`'s batch pool and the scheduling
    service's persistent pool (:mod:`repro.service.server`), which reuses
    the same worker processes and dispatch wire format.
    """

    index: int
    key: str
    item: object
    attempt: int = 1
    ready_at: float = 0.0
    failures: List[dict] = field(default_factory=list)


class PoolWorker:
    """One supervised worker process and its duplex pipe.

    The worker body (:func:`_worker_loop`) receives ``(index, attempt, key,
    item)`` tuples, runs ``fn(item)`` (through chaos injection when armed)
    and replies ``(index, attempt, ok, payload, error_tuple)``; EOF on the
    pipe means the process exited (recycle or death).  Besides
    :func:`supervised_map`, the long-lived scheduling service keeps these
    workers **persistent** across requests so per-process caches stay hot;
    ``conn.fileno()`` integrates with selector event loops.
    """

    def __init__(self, ctx, fn, config: SupervisorConfig):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_loop,
            args=(child_conn, fn, config.chaos, config.maxtasksperchild),
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        self.current: Optional[PoolTask] = None
        self.deadline: Optional[float] = None
        self.tasks_done = 0

    def dispatch(self, task: PoolTask, timeout: Optional[float]) -> None:
        self.conn.send((task.index, task.attempt, task.key, task.item))
        self.current = task
        self.deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )

    def shutdown(self, kill: bool = False) -> None:
        """Retire this worker: polite sentinel first, SIGKILL when asked."""
        if kill and self.proc.is_alive():
            self.proc.kill()
        elif self.proc.is_alive():
            try:
                self.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        self.proc.join(timeout=5.0)
        if self.proc.is_alive():  # pragma: no cover - stuck even after SIGKILL
            self.proc.kill()
            self.proc.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


def _worker_loop(conn, fn, chaos: Optional[ChaosConfig], max_tasks: Optional[int]):
    """Worker body: receive a cell, run it (through chaos, if armed), reply.

    Exits after ``max_tasks`` cells (the supervisor reads the EOF as a clean
    recycle) or on the ``None`` shutdown sentinel.  Every exception — the
    cell's or an injected one — is reported as a structured failure tuple;
    injected ``die`` faults never reach the reply.
    """
    done = 0
    while True:
        try:
            msg = conn.recv()
        except (EOFError, KeyboardInterrupt):  # pragma: no cover - supervisor gone
            break
        if msg is None:
            break
        index, attempt, key, item = msg

        def _send_progress(snapshot: dict, _i=index, _a=attempt) -> None:
            try:
                conn.send((_i, _a, "progress", snapshot, None))
            except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
                pass

        global _PROGRESS_SENDER
        try:
            payload = chaos.inject(key, attempt) if chaos is not None else None
            if payload is None:
                _PROGRESS_SENDER = _send_progress
                payload = fn(item)
            reply = (index, attempt, True, payload, None)
        except KeyboardInterrupt:  # pragma: no cover - interrupted mid-cell
            break
        except BaseException as exc:
            reply = (
                index,
                attempt,
                False,
                None,
                (type(exc).__name__, str(exc), traceback_module.format_exc()),
            )
        finally:
            _PROGRESS_SENDER = None
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover - supervisor gone
            break
        done += 1
        if max_tasks is not None and done >= max_tasks:
            break
    conn.close()


def _new_stats(mode: str, jobs: int, n_items: int) -> dict:
    return {
        "mode": mode,
        "jobs": jobs,
        "n_items": n_items,
        "attempts": 0,
        "retries": 0,
        "timeouts": 0,
        "worker_deaths": 0,
        "respawns": 0,
        "recycles": 0,
        "failed_items": 0,
    }


def _exception_failure(exc: BaseException) -> dict:
    return {
        "kind": "exception",
        "error_type": type(exc).__name__,
        "error": str(exc),
        "traceback": traceback_module.format_exc(),
    }


def supervised_map(
    fn: Callable[[object], object],
    items: Sequence[object],
    config: Optional[SupervisorConfig] = None,
    *,
    item_key: Optional[Callable[[object], str]] = None,
    validate: Optional[Callable[[object, object], None]] = None,
    annotate: Optional[Callable[[object, object, int, List[dict]], object]] = None,
    on_failure: Optional[Callable[[object, List[dict]], object]] = None,
    on_result: Optional[Callable[[object, object], None]] = None,
    on_progress: Optional[Callable[[object, dict], None]] = None,
) -> Tuple[List[object], dict]:
    """Map *fn* over *items* under supervision; returns ``(results, stats)``.

    Results keep input order regardless of scheduling, retries, or worker
    deaths.  Hooks:

    ``item_key(item)``
        Stable string key for chaos/backoff determinism and journaling
        (default: content hash of the item).
    ``validate(item, result)``
        Raise to reject a structurally invalid result; the attempt is
        recorded as a ``MalformedResult`` failure and retried.
    ``annotate(item, result, attempt, failures)``
        Transform a successful result before it is stored (e.g. stamp the
        attempt count onto sweep rows).
    ``on_failure(item, failures)``
        Build the terminal result for a cell whose attempts are exhausted;
        without it the supervisor raises :class:`WorkerError`.
    ``on_result(item, result)``
        Called once per *successful* item as it completes (checkpointing);
        terminal failures are not journaled, so a resumed run retries them.
    ``on_progress(item, snapshot)``
        Called for every anytime-progress snapshot a worker streams while a
        cell is still running (see :func:`progress_sender`); snapshots from
        superseded attempts are dropped, and without the hook progress
        tuples are silently discarded.
    """
    config = config or SupervisorConfig()
    items = list(items)
    key_fn = item_key or _default_item_key
    n = len(items)
    retries = config.retries

    def _check(item, payload) -> Optional[str]:
        """None when *payload* is valid, else a failure message."""
        if config.chaos is not None and payload == MALFORMED_PAYLOAD:
            return "worker returned the chaos-injected malformed payload"
        if validate is not None:
            try:
                validate(item, payload)
            except Exception as exc:
                return f"{type(exc).__name__}: {exc}"
        return None

    def _malformed_failure(message: str) -> dict:
        return {
            "kind": "malformed",
            "error_type": "MalformedResult",
            "error": message,
            "traceback": "",
        }

    # ------------------------------------------------------------------ #
    # Inline path: nothing to supervise across a process boundary.
    # ------------------------------------------------------------------ #
    if (config.jobs <= 1 or n <= 1) and not config.needs_isolation:
        stats = _new_stats("inline", 1, n)
        results: List[object] = [None] * n
        for index, item in enumerate(items):
            key = key_fn(item)
            failures: List[dict] = []
            attempt = 0
            while True:
                attempt += 1
                stats["attempts"] += 1
                failure = None
                try:
                    payload = fn(item)
                except Exception as exc:
                    failure = _exception_failure(exc)
                else:
                    message = _check(item, payload)
                    if message is not None:
                        failure = _malformed_failure(message)
                if failure is None:
                    if annotate is not None:
                        payload = annotate(item, payload, attempt, failures)
                    results[index] = payload
                    if on_result is not None:
                        on_result(item, payload)
                    break
                failures.append(failure)
                if attempt <= retries:
                    stats["retries"] += 1
                    time.sleep(config.backoff_delay(key, attempt))
                    continue
                stats["failed_items"] += 1
                if on_failure is None:
                    raise WorkerError(
                        f"cell {key} failed after {attempt} attempt(s): "
                        f"{failure['error_type']}: {failure['error']}",
                        error_type=failure["error_type"],
                        traceback=failure["traceback"],
                        attempts=attempt,
                    )
                results[index] = on_failure(item, failures)
                break
        return results, stats

    # ------------------------------------------------------------------ #
    # Pool path: per-worker pipes, timeouts, respawn, recycling.
    # ------------------------------------------------------------------ #
    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else "spawn")
    jobs = max(1, min(config.jobs, n))
    stats = _new_stats("pool", jobs, n)
    results = [None] * n
    done = [False] * n
    n_done = 0
    pending: List[PoolTask] = [
        PoolTask(index=i, key=key_fn(item), item=item) for i, item in enumerate(items)
    ]
    pending.reverse()  # pop() from the tail keeps input order

    def _pop_ready(now: float) -> Optional[PoolTask]:
        best = None
        for i in range(len(pending) - 1, -1, -1):
            task = pending[i]
            if task.ready_at <= now:
                best = i
                break
        if best is None:
            return None
        return pending.pop(best)

    workers: List[PoolWorker] = [PoolWorker(ctx, fn, config) for _ in range(jobs)]

    def _respawn(slot: int) -> None:
        stats["respawns"] += 1
        workers[slot] = PoolWorker(ctx, fn, config)

    def _complete(task: PoolTask, payload: object, journal: bool) -> None:
        nonlocal n_done
        results[task.index] = payload
        done[task.index] = True
        n_done += 1
        if journal and on_result is not None:
            on_result(task.item, payload)

    def _fail_attempt(task: PoolTask, failure: dict) -> None:
        """Record one failed attempt: requeue with backoff, or go terminal."""
        task.failures.append(failure)
        if task.attempt <= retries:
            stats["retries"] += 1
            delay = config.backoff_delay(task.key, task.attempt)
            task.attempt += 1
            task.ready_at = time.monotonic() + delay
            pending.append(task)
            return
        stats["failed_items"] += 1
        if on_failure is None:
            for worker in workers:
                worker.shutdown(kill=True)
            raise WorkerError(
                f"cell {task.key} failed after {task.attempt} attempt(s): "
                f"{failure['error_type']}: {failure['error']}",
                error_type=failure["error_type"],
                traceback=failure.get("traceback", ""),
                attempts=task.attempt,
            )
        _complete(task, on_failure(task.item, task.failures), journal=False)

    def _handle_exit(slot: int) -> None:
        """A worker's pipe hit EOF: clean recycle or abrupt death."""
        worker = workers[slot]
        task = worker.current
        worker.current = None
        worker.proc.join(timeout=5.0)
        exitcode = worker.proc.exitcode
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if task is not None:
            stats["worker_deaths"] += 1
            _fail_attempt(
                task,
                {
                    "kind": "death",
                    "error_type": "WorkerDeath",
                    "error": (
                        f"worker died with exit code {exitcode} while "
                        f"running cell {task.key} (attempt {task.attempt})"
                    ),
                    "traceback": "",
                },
            )
        elif (
            config.maxtasksperchild is not None
            and worker.tasks_done >= config.maxtasksperchild
        ):
            stats["recycles"] += 1
        if n_done < n:
            _respawn(slot)

    try:
        while n_done < n:
            now = time.monotonic()
            # Reap idle workers that exited (a maxtasksperchild recycle whose
            # EOF landed after its last reply): without this, the dead pipe
            # would never be drained and the slot never refilled.
            for slot, worker in enumerate(workers):
                if worker.current is None and not worker.proc.is_alive():
                    _handle_exit(slot)
            # Dispatch ready cells to idle, live workers.
            for slot, worker in enumerate(workers):
                if worker.current is not None or not worker.proc.is_alive():
                    continue
                task = _pop_ready(now)
                if task is None:
                    break
                try:
                    worker.dispatch(task, config.timeout)
                except (BrokenPipeError, OSError):
                    # The worker exited between the liveness check and the
                    # send (e.g. a recycle completing): the task never left,
                    # so requeue it and reap/refill the slot.
                    worker.current = None
                    worker.deadline = None
                    pending.append(task)
                    _handle_exit(slot)
                    continue
                stats["attempts"] += 1

            # Wait for the next event: a result, a death, a deadline, or a
            # backoff expiry — whichever comes first.
            wait_t = config.poll_interval
            for worker in workers:
                if worker.deadline is not None and worker.current is not None:
                    wait_t = min(wait_t, max(0.0, worker.deadline - now))
            for task in pending:
                wait_t = min(wait_t, max(0.0, task.ready_at - now))
            conn_map = {
                worker.conn: slot
                for slot, worker in enumerate(workers)
                if worker.current is not None or worker.proc.is_alive()
            }
            if conn_map:
                ready = mp_connection.wait(list(conn_map), timeout=wait_t)
            else:  # pragma: no cover - all workers retired simultaneously
                time.sleep(wait_t)
                ready = []

            for conn in ready:
                slot = conn_map[conn]
                worker = workers[slot]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    _handle_exit(slot)
                    continue
                index, attempt, ok, payload, err = msg
                if ok == "progress":
                    # Out-of-band anytime snapshot: the cell is still
                    # running, so the worker stays busy and its deadline
                    # stands.  Deliver only current-attempt snapshots.
                    task = worker.current
                    if (
                        on_progress is not None
                        and task is not None
                        and task.index == index
                        and task.attempt == attempt
                        and not done[index]
                    ):
                        on_progress(task.item, payload)
                    continue
                task = worker.current
                worker.current = None
                worker.deadline = None
                worker.tasks_done += 1
                if task is None or task.index != index or done[index]:
                    continue  # stale reply from a superseded attempt
                if ok:
                    message = _check(task.item, payload)
                    if message is None:
                        if annotate is not None:
                            payload = annotate(
                                task.item, payload, task.attempt, task.failures
                            )
                        _complete(task, payload, journal=True)
                    else:
                        _fail_attempt(task, _malformed_failure(message))
                else:
                    error_type, error, tb = err
                    _fail_attempt(
                        task,
                        {
                            "kind": "exception",
                            "error_type": error_type,
                            "error": error,
                            "traceback": tb,
                        },
                    )

            # Kill workers whose in-flight cell blew its wall-clock budget.
            now = time.monotonic()
            for slot, worker in enumerate(workers):
                if (
                    worker.current is not None
                    and worker.deadline is not None
                    and now > worker.deadline
                ):
                    task = worker.current
                    worker.current = None
                    stats["timeouts"] += 1
                    worker.shutdown(kill=True)
                    _fail_attempt(
                        task,
                        {
                            "kind": "timeout",
                            "error_type": "CellTimeoutError",
                            "error": (
                                f"cell {task.key} exceeded the {config.timeout}s "
                                f"wall-clock timeout (attempt {task.attempt}); "
                                "its worker was killed"
                            ),
                            "traceback": "",
                        },
                    )
                    if n_done < n:
                        _respawn(slot)
    finally:
        for worker in workers:
            worker.shutdown()
    return results, stats
