"""End-to-end reproductions of every table and figure of the paper.

Each module regenerates one artifact:

* :mod:`~repro.experiments.table1` — task-graph characteristics (Table 1),
* :mod:`~repro.experiments.table2` — SA vs HLF speedups for 4 programs × 3
  architectures × {w/o comm, with comm} (Table 2),
* :mod:`~repro.experiments.figure1` — per-packet cost trajectories (Figure 1),
* :mod:`~repro.experiments.figure2` — Gantt chart of the Newton–Euler start
  on the 8-processor hypercube (Figure 2),
* :mod:`~repro.experiments.sweep` — parallel scenario sweeps over policies ×
  machines × graph families × seeds (``python -m repro.experiments.sweep``).

The benchmark harness under ``benchmarks/`` simply calls these functions, so
``python -m repro.experiments.runner`` and ``pytest benchmarks/`` print the
same numbers.
"""

from repro.experiments.table1 import Table1Row, run_table1, format_table1
from repro.experiments.table2 import Table2Cell, Table2Block, run_table2, format_table2
from repro.experiments.figure1 import run_figure1, format_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.runner import run_all
from repro.experiments.sweep import run_sweep, format_sweep_report

__all__ = [
    "Table1Row",
    "run_table1",
    "format_table1",
    "Table2Cell",
    "Table2Block",
    "run_table2",
    "format_table2",
    "run_figure1",
    "format_figure1",
    "run_figure2",
    "run_all",
    "run_sweep",
    "format_sweep_report",
]
