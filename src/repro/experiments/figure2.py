"""Figure 2 — Gantt chart of the Newton–Euler program on the 8-processor hypercube.

The paper's figure shows a detail of the schedule's start: per processor,
numbered task blocks plus half-height send/receive blocks and quarter-height
routing blocks.  This module runs the SA scheduler under the
contention-aware simulator fidelity (which records the per-processor
communication overheads) and renders the text Gantt chart of the first part
of the schedule.

By default the run rides the compiled fast engine (``fast=True``), whose
contention loop emits bit-identical task, message and overhead records —
the equivalence tests render the chart through both engines and compare
the text character for character.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.comm.model import LinearCommModel
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.machine.machine import Machine
from repro.sim.engine import simulate
from repro.sim.gantt import render_gantt
from repro.sim.results import SimulationResult
from repro.workloads.suite import paper_program

__all__ = ["Figure2Result", "run_figure2"]


@dataclass
class Figure2Result:
    """The simulation result plus the rendered chart."""

    result: SimulationResult
    chart: str


def run_figure2(
    seed: int = 0,
    program: str = "NE",
    machine: Optional[Machine] = None,
    config: Optional[SAConfig] = None,
    detail_fraction: float = 0.35,
    width: int = 100,
    fast: Optional[bool] = True,
) -> Figure2Result:
    """Simulate the NE program on the hypercube and render the Gantt detail.

    Parameters
    ----------
    detail_fraction:
        Fraction of the makespan to show (the paper shows only the start of
        the schedule).
    width:
        Chart width in character columns.
    fast:
        Engine selection, as in :func:`~repro.sim.engine.simulate`.  The
        default forces the compiled fast engine, which records the same
        contention trace bit for bit; pass ``False`` for the object oracle.
    """
    graph = paper_program(program, seed=seed)
    machine = machine if machine is not None else Machine.hypercube(3)
    config = config if config is not None else SAConfig.paper_defaults(seed=seed)
    scheduler = SAScheduler(config)
    result = simulate(
        graph,
        machine,
        scheduler,
        comm_model=LinearCommModel(),
        fidelity="contention",
        record_trace=True,
        fast=fast,
    )
    horizon = result.makespan * max(min(detail_fraction, 1.0), 0.01)
    chart = render_gantt(result, width=width, until=horizon)
    return Figure2Result(result=result, chart=chart)
