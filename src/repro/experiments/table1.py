"""Table 1 — principal program characteristics.

For each of the four paper programs the generated task graph's
characteristics (task count, mean duration, mean communication weight, C/C
ratio, maximum speedup) are measured and placed next to the values reported
in the paper, so the calibration error is visible at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.taskgraph.properties import graph_properties
from repro.utils.tabulate import format_table
from repro.workloads.suite import PAPER_PROGRAMS, PaperProgramSpec

__all__ = ["Table1Row", "run_table1", "format_table1"]


@dataclass(frozen=True)
class Table1Row:
    """Measured vs paper-reported characteristics of one program."""

    program: str
    n_tasks: int
    avg_duration: float
    avg_comm: float
    cc_ratio_percent: float
    max_speedup: float
    paper_n_tasks: int
    paper_avg_duration: float
    paper_avg_comm: float
    paper_cc_ratio_percent: float
    paper_max_speedup: float


def _measure(spec: PaperProgramSpec, seed: int) -> Table1Row:
    graph = spec.build(seed=seed)
    props = graph_properties(graph)
    return Table1Row(
        program=spec.display_name,
        n_tasks=props.n_tasks,
        avg_duration=props.average_duration,
        avg_comm=props.average_communication,
        cc_ratio_percent=100.0 * props.cc_ratio,
        max_speedup=props.max_speedup,
        paper_n_tasks=spec.paper_n_tasks,
        paper_avg_duration=spec.paper_avg_duration,
        paper_avg_comm=spec.paper_avg_comm,
        paper_cc_ratio_percent=spec.paper_cc_ratio_percent,
        paper_max_speedup=spec.paper_max_speedup,
    )


def run_table1(seed: int = 0) -> List[Table1Row]:
    """Measure every paper program and return one :class:`Table1Row` per program."""
    return [_measure(spec, seed) for spec in PAPER_PROGRAMS.values()]


def format_table1(rows: List[Table1Row] | None = None, seed: int = 0) -> str:
    """Render Table 1 with measured and paper values side by side."""
    rows = rows if rows is not None else run_table1(seed=seed)
    headers = [
        "Program",
        "Tasks",
        "(paper)",
        "Avg.Dur",
        "(paper)",
        "Avg.Comm",
        "(paper)",
        "C/C %",
        "(paper)",
        "MaxSp",
        "(paper)",
    ]
    table_rows = [
        [
            r.program,
            r.n_tasks,
            r.paper_n_tasks,
            r.avg_duration,
            r.paper_avg_duration,
            r.avg_comm,
            r.paper_avg_comm,
            r.cc_ratio_percent,
            r.paper_cc_ratio_percent,
            r.max_speedup,
            r.paper_max_speedup,
        ]
        for r in rows
    ]
    return format_table(
        table_rows,
        headers=headers,
        title="Table 1 - principal program characteristics (measured vs paper)",
    )
