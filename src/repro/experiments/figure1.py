"""Figure 1 — cost trajectories of one Newton–Euler annealing packet.

The paper plots the level cost ``F_b``, the communication cost ``F_c`` and
the weighted total ``F_tot`` of one annealing packet of the Newton–Euler
program on the 8-node hypercube with equal weights ``w_b = w_c = 0.5``.  Both
component costs decrease as the packet anneals.  This module records the same
three curves and renders them as a compact ASCII chart plus summary
statistics (the §6a narrative: number of packets, average candidates and free
processors per packet).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.trajectory import PacketTrajectory, record_packet_trajectory
from repro.comm.model import LinearCommModel
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.machine.machine import Machine
from repro.sim.engine import simulate
from repro.workloads.suite import paper_program

__all__ = ["Figure1Result", "run_figure1", "format_figure1"]


@dataclass
class Figure1Result:
    """The trajectory of the selected packet plus run-level packet statistics."""

    trajectory: PacketTrajectory
    n_packets: int
    average_candidates: float
    average_idle_processors: float


def run_figure1(
    seed: int = 0,
    program: str = "NE",
    machine: Optional[Machine] = None,
    config: Optional[SAConfig] = None,
) -> Figure1Result:
    """Record the Figure-1 trajectory (default: Newton–Euler on the 8-node hypercube)."""
    graph = paper_program(program, seed=seed)
    machine = machine if machine is not None else Machine.hypercube(3)
    config = config if config is not None else SAConfig.paper_defaults(seed=seed)

    trajectory = record_packet_trajectory(graph, machine, config=config)

    # Re-run once more (cheap) to gather the packet statistics of §6a with the
    # exact paper configuration (HLF-seeded packets, no trajectory recording).
    scheduler = SAScheduler(SAConfig.paper_defaults(seed=seed))
    simulate(graph, machine, scheduler, comm_model=LinearCommModel(), record_trace=False)
    return Figure1Result(
        trajectory=trajectory,
        n_packets=scheduler.n_packets,
        average_candidates=scheduler.average_candidates_per_packet(),
        average_idle_processors=scheduler.average_idle_processors_per_packet(),
    )


def _ascii_series(values: List[float], width: int = 72, height: int = 12) -> List[str]:
    """Downsample *values* to *width* columns and render an ASCII line chart."""
    if not values:
        return ["(no data)"]
    n = len(values)
    cols = min(width, n)
    sampled = [values[int(i * (n - 1) / max(cols - 1, 1))] for i in range(cols)]
    vmin, vmax = min(sampled), max(sampled)
    span = vmax - vmin or 1.0
    grid = [[" "] * cols for _ in range(height)]
    for c, v in enumerate(sampled):
        r = height - 1 - int((v - vmin) / span * (height - 1))
        grid[r][c] = "*"
    lines = ["".join(row) for row in grid]
    lines.append(f"min={vmin:.3f}  max={vmax:.3f}  samples={n}")
    return lines


def format_figure1(result: Optional[Figure1Result] = None, seed: int = 0) -> str:
    """Render the Figure-1 curves and packet statistics as plain text."""
    result = result if result is not None else run_figure1(seed=seed)
    traj = result.trajectory
    parts = [
        "Figure 1 - cost trajectories of one annealing packet "
        f"(packet #{traj.packet_index} at t={traj.packet_time:.1f}, "
        f"{traj.n_ready} candidates, {traj.n_idle} idle processors)",
        "",
        "Level (balancing) cost F_b:",
        *_ascii_series(traj.balance_cost),
        "",
        "Communication cost F_c:",
        *_ascii_series(traj.communication_cost),
        "",
        "Total (normalized, weighted) cost F_tot:",
        *_ascii_series(traj.total_cost),
        "",
        "Packet statistics over the whole run (paper narrative, section 6a):",
        f"  annealing packets:              {result.n_packets}",
        f"  avg. candidates per packet:     {result.average_candidates:.2f}",
        f"  avg. idle processors per packet:{result.average_idle_processors:.2f}",
    ]
    return "\n".join(parts)
