"""Parallel scenario sweeps: policies × machines × graph families × seeds.

The paper evaluates four fixed programs on three architectures; the sweep
runner generalizes that grid to arbitrary scenario combinations and runs it
on a process pool, so large random-graph studies (hundreds to thousands of
simulations) complete in wall-clock time bounded by the slowest worker
rather than the sum of all runs.

Every scenario is fully described by a plain-dict spec (policy name, machine
name, graph family, seeds, communication setting, fidelity), so results are
deterministic and independent of worker count or scheduling order: the seeds
live in the spec, not in worker state.

Use it from Python::

    from repro.experiments.sweep import run_sweep
    report = run_sweep(jobs=4)
    print(report["aggregates"])

or from the command line::

    python -m repro.experiments.sweep --jobs 4 --out sweep_report.json

``--hetero`` switches the machine axis to the heterogeneous scenario family:
speed spreads {1x, 2x, 4x} (linear ramp of per-processor speed factors) on
weighted ring/mesh/hypercube interconnects, a 9-machine grid that exercises
the speed- and link-weight-aware paths of every scheduler::

    python -m repro.experiments.sweep --hetero --jobs 4 --out hetero.json

``--replicas B`` anneals every SA packet as B lock-stepped multi-start
chains (batched array engine, per-replica child RNG streams) and commits the
best replica — e.g. a 16-replica SA study over the 200-task family::

    python -m repro.experiments.sweep --policies SA --families dag200 \
        --replicas 16 --jobs 4 --out sa_replicas.json

``--fidelity contention`` switches every simulation to the store-and-forward
contention model; like latency runs, these ride the compiled fast engine
(``--engine auto``/``fast``) with the object engine available as the
differential oracle (``--engine object``) — CI runs the same sweep through
both and diffs the cells::

    python -m repro.experiments.sweep --fidelity contention --jobs 4 \
        --families dag200 --out contention.json

``--lanes B`` batches up to B compatible cells as lock-step lanes of one
batched-engine call per worker (``sim/batch_engine.py``), composing with
``--jobs`` as processes × lanes — the grid becomes ``ceil(cells/lanes)``
groups distributed over the pool.  Lanes change scheduling, never numbers:
every lane is bit-identical to its solo fast-engine run.  SA ``--replicas``
rows and ``--engine object`` sweeps stay solo::

    python -m repro.experiments.sweep --families dag200 --seeds 64 \
        --jobs 4 --lanes 32 --out dag200.json

``--families`` accepts, besides the random families, every workload-zoo
family (``repro.taskgraph.families``: montage, cybershake, epigenomics,
ligo, sipht; bigmerge, splitters, grid, fern, merge_neighbours,
duration_stairs; mapreduce, crossv, gridcat) at its calibrated sweep size,
and each family's >= 1000-task policy-study instance as ``<name>-1k``::

    python -m repro.experiments.sweep --families montage mapreduce \
        --jobs 4 --lanes 16 --out zoo.json

Workers memoize the deterministic graph/machine builders per process, so the
compiled-scenario cache (``sim/compile.py``) hits across the specs a worker
runs back to back; the report's ``meta.compile_cache`` aggregates those
hits/misses across worker processes (with the distinct worker count),
``meta.n_fallback_epochs`` counts fast-engine epochs that had to materialize
a reference ``PacketContext`` (0 when every policy ran through an
index-space kernel), and ``meta.lanes`` records the lane/batch configuration
with per-lane fallback counts.

Execution is **supervised** (``src/repro/experiments/supervisor.py``): every
cell (or lane group) runs under a per-item wall-clock ``--timeout``, failed
items are retried up to ``--retries`` times with exponential backoff +
deterministic jitter, a crashed or killed worker is respawned and its item
re-dispatched, and ``--maxtasksperchild`` recycles leaky workers.  Failures
degrade down an engine ladder instead of poisoning the sweep: a cell that
fails on the batched lane is quarantined to a solo fast-engine run, a cell
that fails on the fast engine retries on the reference object engine, and a
cell that exhausts every rung carries a structured error row
(``error_type`` / ``traceback`` / ``attempts`` / ``engine_used``).
``--checkpoint`` journals completed rows to an append-only JSONL file keyed
by spec hash, and ``--resume`` restores them — re-executing only unfinished
cells, with rows and aggregates identical to an uninterrupted run::

    python -m repro.experiments.sweep --jobs 4 --lanes 8 --timeout 30 \
        --checkpoint sweep.ckpt.jsonl --out sweep.json
    # ... interrupted? pick up where it left off:
    python -m repro.experiments.sweep --jobs 4 --lanes 8 --timeout 30 \
        --checkpoint sweep.ckpt.jsonl --resume --out sweep.json

``--chaos RATE`` injects seeded, deterministic faults (worker exceptions,
hangs, abrupt deaths, malformed rows — ``repro/utils/chaos.py``) to prove
the ladder: a chaotic sweep must complete with science rows bit-identical
to a fault-free run (the CI chaos job asserts exactly that).

The module also exposes :func:`parallel_map`, the supervised pool helper the
other experiment drivers (e.g. Table 2 with ``--jobs``) reuse.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import time
import traceback as traceback_module
from collections import Counter
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.comm.model import LinearCommModel, ZeroCommModel
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.exceptions import ConfigurationError, WorkerError
from repro.experiments.supervisor import (
    Checkpoint,
    SupervisorConfig,
    group_key,
    progress_sender,
    spec_key,
    supervised_map,
)
from repro.machine import io as machine_io
from repro.machine.machine import Machine
from repro.schedulers.etf import ETFScheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.hlf import HLFScheduler
from repro.schedulers.lpt import LPTScheduler
from repro.schedulers.random_policy import RandomScheduler
from repro.sim.compile import compile_scenario, scenario_cache_stats
from repro.sim.engine import simulate_degraded
from repro.sim.fast_engine import run_lanes
from repro.taskgraph import io as taskgraph_io
from repro.taskgraph.generators import layered_random, random_dag
from repro.utils.chaos import FAULT_KINDS, ChaosConfig
from repro.utils.tabulate import format_table
from repro.workloads.zoo import zoo_graph_families

__all__ = [
    "MACHINE_BUILDERS",
    "HETERO_MACHINES",
    "GRAPH_FAMILIES",
    "POLICY_BUILDERS",
    "SCIENCE_FIELDS",
    "speed_ramp",
    "hetero_machine",
    "build_grid",
    "run_scenario",
    "run_lane_group",
    "run_sweep",
    "parallel_map",
    "comparable_rows",
    "comparable_aggregates",
    "format_sweep_report",
    "main",
]

# --------------------------------------------------------------------------- #
# Scenario registries.  Every entry is a zero-state builder keyed by a plain
# string, so a scenario spec is picklable and self-describing.
# --------------------------------------------------------------------------- #


def speed_ramp(n_processors: int, spread: float) -> Optional[List[float]]:
    """A linear ramp of speed factors from 1.0 up to *spread*.

    ``spread = 1`` returns ``None`` (the homogeneous default), so a ``1x``
    scenario is exactly the unit-speed machine.
    """
    if spread <= 1.0 or n_processors < 2:
        return None
    step = (spread - 1.0) / (n_processors - 1)
    return [1.0 + step * i for i in range(n_processors)]


def _ring_link_weights(n: int) -> Dict[tuple, float]:
    """Alternating 1.0 / 2.0 transfer multipliers around the ring."""
    weights = {}
    for i in range(n):
        j = (i + 1) % n
        if i != j:
            weights[tuple(sorted((i, j)))] = 1.0 if i % 2 == 0 else 2.0
    return weights


def _mesh_link_weights(rows: int, cols: int) -> Dict[tuple, float]:
    """Row links at weight 1.0, column links at 2.0 (anisotropic mesh)."""
    weights = {}
    for r in range(rows):
        for c in range(cols):
            pid = r * cols + c
            if c + 1 < cols:
                weights[(pid, pid + 1)] = 1.0
            if r + 1 < rows:
                weights[(pid, pid + cols)] = 2.0
    return weights


def _hypercube_link_weights(dimension: int) -> Dict[tuple, float]:
    """Dimension-graded weights: a link along bit *k* costs ``1 + k/2``."""
    weights = {}
    for node in range(1 << dimension):
        for bit in range(dimension):
            other = node ^ (1 << bit)
            if node < other:
                weights[(node, other)] = 1.0 + 0.5 * bit
    return weights


def hetero_machine(kind: str, spread: float) -> Machine:
    """Build one heterogeneous scenario machine.

    *kind* is ``"ring9"``, ``"mesh16"`` or ``"hypercube8"``; *spread* is the
    ratio between the fastest and slowest processor (speeds ramp linearly).
    All three kinds carry non-unit link weights, so even the ``1x`` spread
    exercises weighted routing.
    """
    if kind == "ring9":
        return Machine.ring(9, speeds=speed_ramp(9, spread), link_weights=_ring_link_weights(9))
    if kind == "mesh16":
        return Machine.mesh(
            4, 4, speeds=speed_ramp(16, spread), link_weights=_mesh_link_weights(4, 4)
        )
    if kind == "hypercube8":
        return Machine.hypercube(
            3, speeds=speed_ramp(8, spread), link_weights=_hypercube_link_weights(3)
        )
    raise KeyError(f"unknown heterogeneous machine kind {kind!r}")


MACHINE_BUILDERS: Dict[str, Callable[[], Machine]] = {
    "hypercube8": lambda: Machine.hypercube(3),
    "bus8": lambda: Machine.bus(8),
    "ring9": lambda: Machine.ring(9),
    "mesh16": lambda: Machine.mesh(4, 4),
    "full4": lambda: Machine.fully_connected(4),
}

#: The heterogeneous scenario family: speed spreads {1x, 2x, 4x} on weighted
#: ring/mesh/hypercube interconnects.
HETERO_MACHINES: List[str] = []
for _kind in ("ring9", "mesh16", "hypercube8"):
    for _spread in (1, 2, 4):
        _name = f"hetero-{_kind}-{_spread}x"
        MACHINE_BUILDERS[_name] = (
            lambda kind=_kind, spread=float(_spread): hetero_machine(kind, spread)
        )
        HETERO_MACHINES.append(_name)
del _kind, _spread, _name

GRAPH_FAMILIES: Dict[str, Callable[[int], "object"]] = {
    "layered": lambda seed: layered_random(
        n_layers=6, width=8, edge_probability=0.4,
        mean_duration=20.0, mean_comm=8.0, seed=seed,
    ),
    "layered-wide": lambda seed: layered_random(
        n_layers=4, width=16, edge_probability=0.3,
        mean_duration=20.0, mean_comm=6.0, seed=seed,
    ),
    "dag": lambda seed: random_dag(
        40, edge_probability=0.2, mean_duration=15.0, mean_comm=5.0, seed=seed,
    ),
    "dag-dense": lambda seed: random_dag(
        60, edge_probability=0.35, mean_duration=15.0, mean_comm=8.0, seed=seed,
    ),
    # Large instance for engine benchmarking (bench_engine.py) and scale
    # studies: ~200 tasks, ~1500 edges.
    "dag200": lambda seed: random_dag(
        200, edge_probability=0.08, mean_duration=15.0, mean_comm=5.0, seed=seed,
    ),
}

# The realistic workload zoo (repro.taskgraph.families): every pegasus /
# elementary / irw family at its calibrated sweep size under its registry
# key, and at its >= 1000-task policy-study size as "<key>-1k".
GRAPH_FAMILIES.update(zoo_graph_families())

POLICY_BUILDERS: Dict[str, Callable[[int], "object"]] = {
    "HLF": lambda seed: HLFScheduler(seed=seed),
    "HLF/min-comm": lambda seed: HLFScheduler(placement="min_comm"),
    "HLF/fastest": lambda seed: HLFScheduler(placement="fastest"),
    "ETF": lambda seed: ETFScheduler(),
    "LPT": lambda seed: LPTScheduler(),
    "FIFO": lambda seed: FIFOScheduler(),
    "Random": lambda seed: RandomScheduler(seed=seed),
    "SA": lambda seed: SAScheduler(SAConfig.paper_defaults(seed=seed)),
}


# --------------------------------------------------------------------------- #
# Grid construction and the per-scenario worker
# --------------------------------------------------------------------------- #

#: Per-worker scenario-building caches.  Workers used to rebuild the graph
#: and machine for every spec, which defeated the compiled-scenario memo
#: (it is keyed on object identity): paired specs — the same (family, seed,
#: machine) under several policies — recompiled the same arrays per spec.
#: Caching the deterministic builders per process makes the PR-3 memo hit
#: across specs inside a worker; the hit/miss deltas are reported per row
#: and aggregated into the sweep meta.  Bounded FIFO so giant custom grids
#: cannot grow a worker without limit.
_GRAPH_CACHE: Dict[tuple, object] = {}
_MACHINE_CACHE: Dict[str, Machine] = {}
_WORKER_CACHE_LIMIT = 64


def _cached_graph(family: str, seed: int):
    key = (family, seed)
    graph = _GRAPH_CACHE.get(key)
    if graph is None:
        graph = GRAPH_FAMILIES[family](seed)
        while len(_GRAPH_CACHE) >= _WORKER_CACHE_LIMIT:
            _GRAPH_CACHE.pop(next(iter(_GRAPH_CACHE)))
        _GRAPH_CACHE[key] = graph
    return graph


def _cached_machine(name: str) -> Machine:
    machine = _MACHINE_CACHE.get(name)
    if machine is None:
        machine = MACHINE_BUILDERS[name]()
        while len(_MACHINE_CACHE) >= _WORKER_CACHE_LIMIT:
            _MACHINE_CACHE.pop(next(iter(_MACHINE_CACHE)))
        _MACHINE_CACHE[name] = machine
    return machine


def _spec_graph(spec: dict):
    """Resolve a spec's graph: registry ``(family, seed)`` or inline payload.

    Service jobs may carry the graph *by value* (``graph_payload``, the
    :func:`repro.taskgraph.io.to_dict` form) under a content-derived family
    key (``payload:<hash>``); the payload is deserialized once per worker and
    cached under that key, so repeated jobs on the same shipped graph hit
    the compiled-scenario memo exactly like registry families do.
    """
    payload = spec.get("graph_payload")
    if payload is None:
        return _cached_graph(spec["family"], spec["graph_seed"])
    key = (spec["family"], spec.get("graph_seed"))
    graph = _GRAPH_CACHE.get(key)
    if graph is None:
        graph = taskgraph_io.from_dict(payload)
        graph.validate()
        while len(_GRAPH_CACHE) >= _WORKER_CACHE_LIMIT:
            _GRAPH_CACHE.pop(next(iter(_GRAPH_CACHE)))
        _GRAPH_CACHE[key] = graph
    return graph


def _spec_machine(spec: dict) -> Machine:
    """Resolve a spec's machine: registry name or inline payload.

    The payload form (``machine_payload``, :func:`repro.machine.io.to_dict`)
    is cached per worker under its content-derived machine key, keeping the
    machine object identity stable so the scenario memo (keyed on
    ``id(machine)``) stays hot across jobs that ship the same machine.
    """
    payload = spec.get("machine_payload")
    if payload is None:
        return _cached_machine(spec["machine"])
    name = spec["machine"]
    machine = _MACHINE_CACHE.get(name)
    if machine is None:
        machine = machine_io.from_dict(payload)
        while len(_MACHINE_CACHE) >= _WORKER_CACHE_LIMIT:
            _MACHINE_CACHE.pop(next(iter(_MACHINE_CACHE)))
        _MACHINE_CACHE[name] = machine
    return machine


def build_grid(
    policies: Sequence[str] = ("HLF", "ETF", "SA"),
    machines: Sequence[str] = ("hypercube8", "ring9"),
    families: Sequence[str] = ("layered", "dag"),
    n_seeds: int = 17,
    base_seed: int = 0,
    comm: Sequence[bool] = (True,),
    fidelity: str = "latency",
    fast: Optional[bool] = None,
    replicas: Optional[int] = None,
    portfolio: Optional[int] = None,
) -> List[dict]:
    """Expand the scenario grid into a list of picklable spec dicts.

    Each seed index produces one graph instance per family (``graph_seed =
    base_seed + index``); every policy runs on the same instances so the
    comparison is paired.  Unknown registry keys raise ``KeyError`` early,
    before any worker starts.  *replicas* applies batched multi-start
    annealing to the SA rows only (the other policies have no replica
    notion); *portfolio* races the anytime heterogeneous-lane portfolio on
    the SA rows instead (the two are mutually exclusive).  Like unknown
    keys, an invalid count fails here rather than as one error row per SA
    spec.
    """
    if replicas is not None and replicas < 1:
        raise ValueError(f"replicas must be >= 1 or None, got {replicas}")
    if portfolio is not None and portfolio < 2:
        raise ValueError(f"portfolio must be >= 2 lanes or None, got {portfolio}")
    if replicas is not None and portfolio is not None:
        raise ValueError("replicas and portfolio are mutually exclusive")
    for name in policies:
        if name not in POLICY_BUILDERS:
            raise KeyError(f"unknown policy {name!r}; known: {sorted(POLICY_BUILDERS)}")
    for name in machines:
        if name not in MACHINE_BUILDERS:
            raise KeyError(f"unknown machine {name!r}; known: {sorted(MACHINE_BUILDERS)}")
    for name in families:
        if name not in GRAPH_FAMILIES:
            raise KeyError(f"unknown graph family {name!r}; known: {sorted(GRAPH_FAMILIES)}")
    grid: List[dict] = []
    for family in families:
        for index in range(n_seeds):
            for machine in machines:
                for with_comm in comm:
                    for policy in policies:
                        grid.append(
                            {
                                "policy": policy,
                                "machine": machine,
                                "family": family,
                                "graph_seed": base_seed + index,
                                "policy_seed": base_seed + index,
                                "with_comm": bool(with_comm),
                                "fidelity": fidelity,
                                "fast": fast,
                                "replicas": (
                                    replicas if policy.startswith("SA") else None
                                ),
                                "portfolio": (
                                    portfolio if policy.startswith("SA") else None
                                ),
                            }
                        )
    return grid


def _error_fields(exc_type: str, message: str, tb: str) -> dict:
    """The row fields of a cell that exhausted every tier of the ladder."""
    return dict(
        makespan=None, speedup=None, n_tasks=None, n_packets=None,
        n_fallback_epochs=None,
        error=f"{exc_type}: {message}",
        error_type=exc_type,
        traceback=tb,
        engine_used=None,
        engine_fallbacks=[],
    )


def _build_policy(spec: dict):
    """Fresh policy for one engine attempt, with anytime progress wired.

    Portfolio rows running under a supervised worker get the worker's
    progress sender as their ``anytime_hook``, so the per-packet
    ``best_so_far`` snapshots stream up the pipe while the cell runs
    (observability only — rows are bit-identical with or without it).
    """
    policy = POLICY_BUILDERS[spec["policy"]](spec["policy_seed"])
    if spec.get("portfolio") is not None:
        sender = progress_sender()
        if sender is not None and hasattr(policy, "anytime_hook"):
            policy.anytime_hook = sender
    return policy


def run_scenario(spec: dict) -> dict:
    """Run one scenario spec and return its result row (the pool worker).

    Runs through :func:`~repro.sim.engine.simulate_degraded`, so a cell that
    fails on the compiled fast engine retries once on the reference object
    engine (bit-identical numbers) before giving up; the rungs taken are
    recorded in the row's ``engine_used`` / ``engine_fallbacks`` fields.
    Terminal failures are captured in the row (``error`` plus the structured
    ``error_type`` / ``traceback``) instead of poisoning the whole sweep.
    """
    row = dict(spec)
    row.setdefault("lane_fallback", None)
    row.setdefault("attempts", 1)
    start = time.perf_counter()
    cache_before = scenario_cache_stats()
    try:
        graph = _spec_graph(spec)
        machine = _spec_machine(spec)
        comm_model = LinearCommModel() if spec["with_comm"] else ZeroCommModel()
        result, engine_used, fallbacks = simulate_degraded(
            graph,
            machine,
            # A fresh policy per engine attempt: the object-engine retry
            # replays the identical stochastic stream from the start.
            lambda: _build_policy(spec),
            comm_model=comm_model,
            fidelity=spec.get("fidelity", "latency"),
            record_trace=False,
            # None = auto: traceless statistical runs — both fidelities —
            # go through the compiled fast engine (bit-identical); False
            # pins the object engine.
            fast=spec.get("fast"),
            replicas=spec.get("replicas"),
            portfolio=spec.get("portfolio"),
        )
        row.update(
            makespan=result.makespan,
            speedup=result.speedup(),
            n_tasks=graph.n_tasks,
            n_packets=result.n_packets,
            n_fallback_epochs=result.n_fallback_epochs,
            error=None,
            error_type=None,
            traceback=None,
            engine_used=engine_used,
            engine_fallbacks=fallbacks,
        )
        if spec.get("_fingerprint"):
            row["fingerprint"] = result.fingerprint()
    except Exception as exc:
        # The row-capture boundary of the ladder: record the structured
        # taxonomy (type + traceback) so the failure is diagnosable from
        # the report, and let the sweep carry on.
        row.update(
            _error_fields(
                type(exc).__name__, str(exc), traceback_module.format_exc()
            )
        )
    cache_after = scenario_cache_stats()
    row["compile_cache_hits"] = cache_after["hits"] - cache_before["hits"]
    row["compile_cache_misses"] = cache_after["misses"] - cache_before["misses"]
    row["compile_cache_evictions"] = (
        cache_after["evictions"] - cache_before["evictions"]
    )
    row["runtime_s"] = time.perf_counter() - start
    row["worker_pid"] = os.getpid()
    return row


def _quarantine_solo(spec: dict, exc: Exception) -> dict:
    """Retry one lane-group cell solo, stamping why it left the batched tier.

    The top rung of the degradation ladder: the cell re-enters
    :func:`run_scenario` (fast engine, then object engine if needed), which
    also recomputes its compile-cache deltas — the fallback path measures
    its own cache traffic instead of inheriting half-recorded numbers, so
    ``meta.compile_cache`` stays accurate.
    """
    row = run_scenario(spec)
    row["lane_fallback"] = {
        "error_type": type(exc).__name__,
        "error": str(exc),
        "traceback": traceback_module.format_exc(),
    }
    return row


def run_lane_group(specs: List[dict]) -> List[dict]:
    """Run a chunk of scenario specs as lanes of one batched-engine call.

    The lane counterpart of :func:`run_scenario` (the pool worker behind
    ``--lanes``): every spec is compiled through the per-worker scenario
    memo and the whole chunk is handed to
    :func:`~repro.sim.fast_engine.run_lanes` as one lock-step group — each
    lane bit-identical to the solo run :func:`run_scenario` would have
    produced.

    Failures degrade with per-cell quarantine instead of taking down the
    group: a cell that fails to *build* (poisoned spec, compile error) is
    retried solo through :func:`_quarantine_solo` while the healthy lanes
    still run batched; if the batched *run* itself fails, every lane is
    quarantined solo.  Either way the triggering exception's type and
    traceback land in the affected rows' ``lane_fallback`` field (aggregated
    into ``meta.faults``), and a cell whose solo retry also fails carries
    its own error row.  The group's wall time is split evenly across its
    batched rows; per-lane attribution inside one batched call has no
    meaning.
    """
    start = time.perf_counter()
    rows = [dict(spec) for spec in specs]
    lanes = []
    built = []  # (row position, graph) per successfully compiled lane
    for pos, row in enumerate(rows):
        cache_before = scenario_cache_stats()
        try:
            graph = _spec_graph(row)
            machine = _spec_machine(row)
            policy = POLICY_BUILDERS[row["policy"]](row["policy_seed"])
            comm_model = (
                LinearCommModel() if row["with_comm"] else ZeroCommModel()
            )
            graph.validate()
            policy.reset()
            scenario = compile_scenario(
                graph, machine, comm_model, levels=graph.levels()
            )
        except Exception as exc:
            rows[pos] = _quarantine_solo(specs[pos], exc)
            continue
        cache_after = scenario_cache_stats()
        row["compile_cache_hits"] = cache_after["hits"] - cache_before["hits"]
        row["compile_cache_misses"] = (
            cache_after["misses"] - cache_before["misses"]
        )
        row["compile_cache_evictions"] = (
            cache_after["evictions"] - cache_before["evictions"]
        )
        lanes.append((scenario, policy))
        built.append((pos, graph))
    results = []
    if lanes:
        try:
            results = run_lanes(
                lanes, fidelity=specs[0].get("fidelity", "latency")
            )
        except Exception as exc:
            # The whole batched call failed: quarantine every lane solo.
            for pos, _graph in built:
                rows[pos] = _quarantine_solo(specs[pos], exc)
            built = []
    if built:
        per_lane_s = (time.perf_counter() - start) / len(rows)
        pid = os.getpid()
        for (pos, graph), result in zip(built, results):
            rows[pos].update(
                makespan=result.makespan,
                speedup=result.speedup(),
                n_tasks=graph.n_tasks,
                n_packets=result.n_packets,
                n_fallback_epochs=result.n_fallback_epochs,
                error=None,
                error_type=None,
                traceback=None,
                engine_used="batched",
                engine_fallbacks=[],
                lane_fallback=None,
                attempts=1,
                runtime_s=per_lane_s,
                worker_pid=pid,
            )
            if rows[pos].get("_fingerprint"):
                rows[pos]["fingerprint"] = result.fingerprint()
    return rows


def _run_sweep_item(item) -> List[dict]:
    """Pool worker: one spec dict, or a list of specs run as one lane group."""
    if isinstance(item, dict):
        return [run_scenario(item)]
    return run_lane_group(item)


def _item_specs(item) -> List[dict]:
    """The scenario specs behind one pool item (solo cell or lane group)."""
    return [item] if isinstance(item, dict) else list(item)


def _item_key(item) -> str:
    """Stable supervisor key: the spec hash, or the group hash of a lane chunk."""
    if isinstance(item, dict):
        return item.get("_key") or spec_key(item)
    return group_key([spec.get("_key") or spec_key(spec) for spec in item])


#: Row fields every worker result must carry for the row to count as valid.
_ROW_REQUIRED = ("policy", "machine", "family", "makespan", "error")


def _validate_rows(item, rows) -> None:
    """Reject structurally malformed worker results (one row per spec)."""
    specs = _item_specs(item)
    if not isinstance(rows, list) or len(rows) != len(specs):
        raise WorkerError(
            f"worker returned {type(rows).__name__} instead of "
            f"{len(specs)} row(s)"
        )
    for row in rows:
        if not isinstance(row, dict):
            raise WorkerError(f"worker returned a non-dict row: {row!r}")
        missing = [key for key in _ROW_REQUIRED if key not in row]
        if missing:
            raise WorkerError(f"worker row is missing keys {missing}")


def _annotate_rows(item, rows, attempt: int, failures: List[dict]) -> List[dict]:
    """Stamp supervisor provenance (attempt count, prior faults) on each row."""
    history = [
        {k: f.get(k) for k in ("kind", "error_type", "error")} for f in failures
    ]
    for row in rows:
        row["attempts"] = attempt
        row["supervisor_failures"] = history
    return rows


def _failure_rows(item, failures: List[dict]) -> List[dict]:
    """Terminal error rows for an item whose supervised attempts ran out."""
    last = failures[-1]
    rows = []
    for spec in _item_specs(item):
        row = dict(spec)
        row.update(
            _error_fields(
                last["error_type"], last["error"], last.get("traceback", "")
            )
        )
        row.update(
            lane_fallback=None,
            attempts=len(failures),
            supervisor_failures=[
                {k: f.get(k) for k in ("kind", "error_type", "error")}
                for f in failures
            ],
            compile_cache_hits=0,
            compile_cache_misses=0,
            runtime_s=0.0,
            worker_pid=None,
        )
        rows.append(row)
    return rows


def parallel_map(
    fn: Callable[[dict], dict],
    items: Iterable[dict],
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 0,
) -> List[dict]:
    """Map *fn* over *items* on the supervised worker pool.

    Results keep the input order regardless of worker scheduling, so a
    parallel run is indistinguishable from a serial one.  The pool is the
    supervised one from :mod:`repro.experiments.supervisor` — a hung or
    crashed worker is killed/respawned and its item re-dispatched — but with
    supervision features off by default (no timeout, no retries) a failure
    raises :class:`~repro.exceptions.WorkerError` like the bare ``pool.map``
    used to propagate exceptions.
    """
    results, _stats = supervised_map(
        fn,
        list(items),
        SupervisorConfig(jobs=jobs, timeout=timeout, retries=retries),
    )
    return results


# --------------------------------------------------------------------------- #
# Aggregation and the sweep driver
# --------------------------------------------------------------------------- #

def _aggregate(rows: List[dict]) -> List[dict]:
    """Group result rows by (policy, machine, family, comm) and summarize."""
    groups: Dict[tuple, List[dict]] = {}
    for row in rows:
        key = (row["policy"], row["machine"], row["family"], row["with_comm"])
        groups.setdefault(key, []).append(row)
    aggregates = []
    for (policy, machine, family, with_comm), members in sorted(groups.items()):
        ok = [m for m in members if m.get("error") is None]
        speedups = np.array([m["speedup"] for m in ok], dtype=float)
        makespans = np.array([m["makespan"] for m in ok], dtype=float)
        aggregates.append(
            {
                "policy": policy,
                "machine": machine,
                "family": family,
                "with_comm": with_comm,
                "n": len(members),
                "n_failed": len(members) - len(ok),
                "mean_speedup": float(speedups.mean()) if len(ok) else None,
                "std_speedup": float(speedups.std()) if len(ok) else None,
                "min_speedup": float(speedups.min()) if len(ok) else None,
                "max_speedup": float(speedups.max()) if len(ok) else None,
                "mean_makespan": float(makespans.mean()) if len(ok) else None,
                "total_runtime_s": float(sum(m["runtime_s"] for m in members)),
            }
        )
    return aggregates


def _fault_taxonomy(rows: List[dict]) -> dict:
    """Aggregate the structured error taxonomy across result rows."""
    errors = Counter(
        r["error_type"] for r in rows if r.get("error_type") is not None
    )
    lane_fallbacks = Counter(
        r["lane_fallback"]["error_type"]
        for r in rows
        if r.get("lane_fallback") is not None
    )
    engine_fallbacks = Counter(
        fb["error_type"] for r in rows for fb in (r.get("engine_fallbacks") or [])
    )
    return {
        "errors": dict(sorted(errors.items())),
        "lane_fallbacks": dict(sorted(lane_fallbacks.items())),
        "engine_fallbacks": dict(sorted(engine_fallbacks.items())),
        "n_retried_rows": sum(1 for r in rows if (r.get("attempts") or 1) > 1),
    }


def _grid_fingerprint(grid: List[dict]) -> dict:
    """A content fingerprint of the whole grid, for the checkpoint header."""
    keys = sorted(spec["_key"] for spec in grid)
    digest = hashlib.sha256(",".join(keys).encode("utf-8")).hexdigest()[:16]
    return {"n_cells": len(grid), "grid_sha": digest}


def run_sweep(
    policies: Sequence[str] = ("HLF", "ETF", "SA"),
    machines: Sequence[str] = ("hypercube8", "ring9"),
    families: Sequence[str] = ("layered", "dag"),
    n_seeds: int = 17,
    base_seed: int = 0,
    comm: Sequence[bool] = (True,),
    fidelity: str = "latency",
    jobs: int = 1,
    out: Optional[str] = None,
    fast: Optional[bool] = None,
    replicas: Optional[int] = None,
    portfolio: Optional[int] = None,
    lanes: int = 1,
    timeout: Optional[float] = None,
    retries: int = 2,
    maxtasksperchild: Optional[int] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    chaos: Optional[ChaosConfig] = None,
    supervisor_seed: int = 0,
) -> dict:
    """Run the whole scenario grid and return (optionally write) the report.

    The report dict has ``meta`` (grid shape, wall time, jobs), ``results``
    (one row per simulation) and ``aggregates`` (per-cell summary).  With the
    default grid that is 3 policies × 2 machines × 2 families × 17 seeds =
    204 simulations.  *fast* selects the simulation engine per
    :class:`~repro.sim.engine.Simulator` (``None`` — the default — lets
    latency runs use the compiled fast engine; ``False`` pins the object
    engine, e.g. for engine benchmarking); either way the numbers are
    bit-for-bit identical.  *replicas* turns on batched multi-start
    annealing for the SA rows (``--replicas`` on the CLI); *portfolio*
    races the anytime heterogeneous-lane portfolio on the SA rows instead
    (``--portfolio``; mutually exclusive with replicas).

    *lanes* batches up to that many cells as lock-step lanes of one
    batched-engine call per worker (:func:`run_lane_group`), composing with
    *jobs* as processes × lanes: the grid is cut into ``ceil(cells/lanes)``
    groups and the pool distributes groups over workers.  The count is
    capped at the cell count; SA replica rows and ``fast=False`` sweeps stay
    solo (the batched engine is a fast-engine tier).  Lanes change how the
    work is scheduled, never the numbers — every lane is bit-identical to
    its solo run.

    Execution is supervised (:mod:`repro.experiments.supervisor`): *timeout*
    arms a per-item wall-clock budget (a hung worker is killed and its item
    re-dispatched), *retries* bounds re-attempts with exponential backoff and
    deterministic jitter, *maxtasksperchild* recycles leaky workers, and
    *chaos* injects seeded faults (tests/CI).  *checkpoint* journals every
    completed row to an append-only JSONL file keyed by spec hash;
    ``resume=True`` restores finished cells from that journal and re-executes
    only the rest — producing rows and aggregates identical to an
    uninterrupted run.

    ``meta`` also surfaces how the work was produced: the total
    compiled-scenario cache hits/misses aggregated across worker processes
    (``meta.compile_cache``, with the distinct worker count), the total
    fast-engine fallback epochs (0 when every policy ran through an
    index-space kernel), the lane/batch configuration including per-lane
    fallback counts (``meta.lanes``), the supervisor's runtime counters
    (``meta.supervisor``: attempts, retries, timeouts, worker deaths,
    respawns, recycles), the checkpoint/restore summary (``meta.resume``)
    and the structured fault taxonomy (``meta.faults``: terminal errors,
    lane quarantines and engine degradations counted by exception type).
    """
    if lanes < 1:
        raise ValueError(f"lanes must be >= 1, got {lanes}")
    if chaos is not None and "hang" in chaos.kinds and timeout is None:
        raise ConfigurationError(
            "chaos 'hang' faults require a timeout (the supervisor can only "
            "recover a hung worker by killing it at the deadline)"
        )
    if resume and not checkpoint:
        raise ConfigurationError("resume=True requires a checkpoint path")
    grid = build_grid(
        policies=policies,
        machines=machines,
        families=families,
        n_seeds=n_seeds,
        base_seed=base_seed,
        comm=comm,
        fidelity=fidelity,
        fast=fast,
        replicas=replicas,
        portfolio=portfolio,
    )
    for index, spec in enumerate(grid):
        spec["_key"] = spec_key(spec)
        spec["_index"] = index
    index_by_key: Dict[str, List[int]] = {}
    for spec in grid:
        index_by_key.setdefault(spec["_key"], []).append(spec["_index"])

    ckpt: Optional[Checkpoint] = None
    restored_rows: Dict[str, dict] = {}
    if checkpoint:
        ckpt = Checkpoint.open(checkpoint, _grid_fingerprint(grid), resume=resume)
        restored_rows = {
            key: row for key, row in ckpt.restored.items() if key in index_by_key
        }
    remaining = [spec for spec in grid if spec["_key"] not in restored_rows]

    # Auto-cap at the cell count; only fast-engine-eligible cells (no SA
    # replica fan-out, engine not pinned to the object path) ride lanes.
    effective_lanes = max(1, min(lanes, len(grid)))
    lane_indices: List[int] = []
    if effective_lanes > 1 and fast is not False:
        lane_indices = [
            spec["_index"]
            for spec in remaining
            if spec["replicas"] is None and spec["portfolio"] is None
        ]
    items: List[object]
    spec_by_index = {spec["_index"]: spec for spec in remaining}
    if lane_indices:
        solo = set(spec_by_index) - set(lane_indices)
        items = [
            [spec_by_index[i] for i in lane_indices[k : k + effective_lanes]]
            for k in range(0, len(lane_indices), effective_lanes)
        ]
        items.extend(spec_by_index[i] for i in sorted(solo))
    else:
        effective_lanes = 1
        items = list(remaining)
    n_groups = sum(1 for item in items if isinstance(item, list))

    def _journal(item, rows: List[dict]) -> None:
        if ckpt is None:
            return
        for row in rows:
            if row.get("error") is None:
                ckpt.record(
                    row["_key"],
                    {k: v for k, v in row.items() if not k.startswith("_")},
                )

    sup_config = SupervisorConfig(
        jobs=jobs,
        timeout=timeout,
        retries=retries,
        maxtasksperchild=maxtasksperchild,
        chaos=chaos,
        seed=supervisor_seed,
    )
    wall_start = time.perf_counter()
    try:
        chunks, sup_stats = supervised_map(
            _run_sweep_item,
            items,
            sup_config,
            item_key=_item_key,
            validate=_validate_rows,
            annotate=_annotate_rows,
            on_failure=_failure_rows,
            on_result=_journal,
        )
    finally:
        if ckpt is not None:
            ckpt.close()
    wall = time.perf_counter() - wall_start
    rows = [row for chunk in chunks for row in chunk]
    # Splice journal-restored rows back in at their grid positions.
    consumed: Dict[str, int] = Counter()
    for key, stored in restored_rows.items():
        row = dict(stored)
        row["_index"] = index_by_key[key][consumed[key]]
        consumed[key] += 1
        rows.append(row)
    rows.sort(key=lambda r: r["_index"])
    per_lane_fallback = [
        int(rows[i].get("n_fallback_epochs") or 0) for i in lane_indices
    ]
    for row in rows:
        row.pop("_index", None)
        row.pop("_key", None)
    report = {
        "meta": {
            "n_simulations": len(rows),
            "n_failed": sum(1 for r in rows if r.get("error") is not None),
            "jobs": jobs,
            "wall_time_s": wall,
            "total_cpu_time_s": float(sum(r["runtime_s"] for r in rows)),
            "policies": list(policies),
            "machines": list(machines),
            "families": list(families),
            "n_seeds": n_seeds,
            "base_seed": base_seed,
            "comm": [bool(c) for c in comm],
            "fidelity": fidelity,
            "engine": {None: "auto", True: "fast", False: "object"}[fast],
            "replicas": replicas,
            "portfolio": portfolio,
            "n_fallback_epochs": sum(
                r.get("n_fallback_epochs") or 0 for r in rows
            ),
            "compile_cache": {
                "hits": sum(r.get("compile_cache_hits", 0) for r in rows),
                "misses": sum(r.get("compile_cache_misses", 0) for r in rows),
                "evictions": sum(
                    r.get("compile_cache_evictions", 0) or 0 for r in rows
                ),
                "n_workers": len(
                    {
                        r["worker_pid"]
                        for r in rows
                        if r.get("worker_pid") is not None
                    }
                ),
            },
            "lanes": {
                "requested": lanes,
                "effective": effective_lanes,
                "n_groups": n_groups,
                "n_lane_rows": len(lane_indices),
                "per_lane_fallback_epochs": per_lane_fallback,
            },
            "supervisor": {
                "timeout": timeout,
                "retries": retries,
                "maxtasksperchild": maxtasksperchild,
                "seed": supervisor_seed,
                "chaos": (
                    None
                    if chaos is None
                    else {
                        "rate": chaos.rate,
                        "kinds": list(chaos.kinds),
                        "seed": chaos.seed,
                        "hang_s": chaos.hang_s,
                    }
                ),
                "stats": sup_stats,
            },
            "resume": {
                "checkpoint": checkpoint,
                "resumed": bool(resume),
                "n_restored": len(restored_rows),
                "n_executed": len(rows) - len(restored_rows),
            },
            "faults": _fault_taxonomy(rows),
        },
        "results": rows,
        "aggregates": _aggregate(rows),
    }
    if out:
        # Reports often target artifact directories that fresh checkouts
        # don't have yet (e.g. the gitignored benchmarks/results/ in CI).
        parent = os.path.dirname(out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(out, "w") as fh:
            json.dump(report, fh, indent=1)
    return report


#: The science fields of a result row: what the cell *is* plus what the
#: simulation *measured* — everything that must be bit-identical across
#: engines, lane configurations, worker counts, chaos injection, and
#: checkpoint/resume.  Excludes provenance that legitimately varies
#: (timings, pids, attempt counts, cache deltas, degradation records).
SCIENCE_FIELDS = (
    "policy", "machine", "family", "graph_seed", "policy_seed", "with_comm",
    "fidelity", "fast", "replicas", "portfolio", "error",
    "makespan", "speedup", "n_tasks", "n_packets",
)


def comparable_rows(report: dict) -> List[dict]:
    """The report's rows reduced to :data:`SCIENCE_FIELDS`.

    The differential contract of the fault-tolerance layer: a chaotic,
    resumed, or degraded sweep must produce *exactly* these rows — the CI
    chaos job and the chaos differential tests compare reports through this
    projection.
    """
    return [
        {key: row.get(key) for key in SCIENCE_FIELDS}
        for row in report["results"]
    ]


def comparable_aggregates(report: dict) -> List[dict]:
    """The report's aggregates minus wall-clock totals (which always vary)."""
    return [
        {k: v for k, v in aggregate.items() if k != "total_runtime_s"}
        for aggregate in report["aggregates"]
    ]


def format_sweep_report(report: dict) -> str:
    """Render the aggregate table of a sweep report."""
    rows = [
        [
            a["policy"],
            a["machine"],
            a["family"],
            "with" if a["with_comm"] else "w/o",
            a["n"],
            a["mean_speedup"],
            a["std_speedup"],
            a["mean_makespan"],
        ]
        for a in report["aggregates"]
    ]
    meta = report["meta"]
    lanes_meta = meta.get("lanes", {})
    lanes_part = (
        f" x {lanes_meta['effective']} lanes"
        if lanes_meta.get("effective", 1) > 1
        else ""
    )
    title = (
        f"Sweep: {meta['n_simulations']} simulations "
        f"({meta['jobs']} jobs{lanes_part}, {meta['wall_time_s']:.1f}s wall, "
        f"{meta['total_cpu_time_s']:.1f}s cpu)"
    )
    return format_table(
        rows,
        headers=["Policy", "Machine", "Family", "Comm", "n", "Sp mean", "Sp std", "Makespan"],
        title=title,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run a parallel scheduling-scenario sweep and write a JSON report."
    )
    parser.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    parser.add_argument(
        "--lanes", type=int, default=1,
        help=(
            "batch up to this many compatible cells as lock-step lanes of one "
            "batched-engine call per worker (composes with --jobs as "
            "processes x lanes; auto-capped at the cell count; SA --replicas "
            "rows and --engine object sweeps stay solo)"
        ),
    )
    parser.add_argument("--seeds", type=int, default=17, help="graph seeds per family")
    parser.add_argument("--base-seed", type=int, default=0, help="first graph/policy seed")
    parser.add_argument(
        "--policies", nargs="*", default=["HLF", "ETF", "SA"],
        help=f"policies to run (known: {sorted(POLICY_BUILDERS)})",
    )
    parser.add_argument(
        "--machines", nargs="*", default=None,
        help=(
            f"machines to run (known: {sorted(MACHINE_BUILDERS)}); "
            "default hypercube8 ring9, or the 9-machine heterogeneous grid "
            "with --hetero"
        ),
    )
    parser.add_argument(
        "--hetero", action="store_true",
        help=(
            "run the heterogeneous scenario family: speed spreads {1x,2x,4x} "
            "on weighted ring/mesh/hypercube machines"
        ),
    )
    parser.add_argument(
        "--families", nargs="*", default=["layered", "dag"],
        help=f"graph families to run (known: {sorted(GRAPH_FAMILIES)})",
    )
    parser.add_argument(
        "--comm", choices=["with", "without", "both"], default="with",
        help="communication setting(s) to simulate",
    )
    parser.add_argument(
        "--fidelity", choices=["latency", "contention"], default="latency",
        help=(
            "simulator fidelity; both ride the compiled fast engine under "
            "--engine auto/fast, bit-identical to --engine object"
        ),
    )
    parser.add_argument(
        "--replicas", type=int, default=None,
        help=(
            "batched multi-start annealing for the SA rows: anneal this many "
            "lock-stepped replicas per packet (per-replica child RNG streams) "
            "and commit the best replica's mapping; other policies are "
            "unaffected (default: single-chain SA)"
        ),
    )
    parser.add_argument(
        "--portfolio", type=int, default=None,
        help=(
            "anytime SA portfolio racing for the SA rows: race this many "
            "heterogeneous lanes (cooling schedule x initial seed x "
            "temperature scale) per packet with successive-halving culling "
            "and commit the champion lane's mapping; mutually exclusive "
            "with --replicas (default: off)"
        ),
    )
    parser.add_argument(
        "--engine", choices=["auto", "fast", "object"], default="auto",
        help=(
            "simulation engine: 'auto' (default) compiles latency scenarios "
            "into the index-space fast engine, 'object' pins the reference "
            "engine, 'fast' forces the fast engine (errors on unsupported "
            "scenarios); results are bit-identical either way"
        ),
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help=(
            "per-cell (or per lane-group) wall-clock budget in seconds; a "
            "worker that exceeds it is killed and its item re-dispatched "
            "(default: no timeout)"
        ),
    )
    parser.add_argument(
        "--retries", type=int, default=2,
        help=(
            "additional supervised attempts per item after the first, with "
            "exponential backoff + deterministic jitter (default 2; "
            "0 disables retry)"
        ),
    )
    parser.add_argument(
        "--maxtasksperchild", type=int, default=None,
        help=(
            "recycle each worker process after this many items so leaky "
            "workers cannot grow without bound (default: never)"
        ),
    )
    parser.add_argument(
        "--checkpoint", default=None,
        help=(
            "journal every completed row to this append-only JSONL file "
            "(keyed by spec hash) as the sweep runs"
        ),
    )
    parser.add_argument(
        "--resume", action="store_true",
        help=(
            "restore finished cells from the --checkpoint journal and "
            "re-execute only the rest (derives <out>.checkpoint.jsonl when "
            "--checkpoint is omitted); rows and aggregates are identical to "
            "an uninterrupted run"
        ),
    )
    parser.add_argument(
        "--chaos", type=float, default=0.0, metavar="RATE",
        help=(
            "inject seeded faults into this fraction of (item, attempt) "
            "pairs to exercise the supervision ladder (default 0 = off)"
        ),
    )
    parser.add_argument(
        "--chaos-kinds", nargs="*", default=list(FAULT_KINDS),
        choices=list(FAULT_KINDS),
        help=f"fault kinds to inject (default: all of {list(FAULT_KINDS)})",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for the deterministic fault decisions (default 0)",
    )
    parser.add_argument(
        "--chaos-hang", type=float, default=60.0,
        help=(
            "how long an injected hang sleeps (default 60s; must exceed "
            "--timeout for the hang to be killed rather than waited out)"
        ),
    )
    parser.add_argument("--out", default="sweep_report.json", help="JSON report path")
    args = parser.parse_args(argv)

    comm = {"with": (True,), "without": (False,), "both": (False, True)}[args.comm]
    if args.replicas is not None and args.replicas < 1:
        parser.error(f"--replicas must be >= 1, got {args.replicas}")
    if args.portfolio is not None and args.portfolio < 2:
        parser.error(f"--portfolio must be >= 2, got {args.portfolio}")
    if args.replicas is not None and args.portfolio is not None:
        parser.error("--replicas and --portfolio are mutually exclusive")
    if args.lanes < 1:
        parser.error(f"--lanes must be >= 1, got {args.lanes}")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")
    if args.timeout is not None and args.timeout <= 0:
        parser.error(f"--timeout must be > 0, got {args.timeout}")
    if not 0.0 <= args.chaos <= 1.0:
        parser.error(f"--chaos must be in [0, 1], got {args.chaos}")
    chaos = None
    if args.chaos > 0.0:
        if "hang" in args.chaos_kinds and args.timeout is None:
            parser.error(
                "--chaos with 'hang' faults requires --timeout (drop hang "
                "from --chaos-kinds or set a timeout)"
            )
        chaos = ChaosConfig(
            rate=args.chaos,
            kinds=tuple(args.chaos_kinds),
            seed=args.chaos_seed,
            hang_s=args.chaos_hang,
        )
    checkpoint = args.checkpoint
    if args.resume and checkpoint is None:
        checkpoint = f"{args.out}.checkpoint.jsonl"
    if args.hetero and args.machines is not None:
        parser.error("--hetero selects the heterogeneous machine grid; drop --machines "
                     "or name hetero-* machines explicitly without --hetero")
    machines = args.machines
    if machines is None:
        machines = list(HETERO_MACHINES) if args.hetero else ["hypercube8", "ring9"]
    try:
        build_grid(policies=args.policies, machines=machines, families=args.families,
                   n_seeds=1)
    except KeyError as exc:
        parser.error(str(exc.args[0]))
    report = run_sweep(
        policies=args.policies,
        machines=machines,
        families=args.families,
        n_seeds=args.seeds,
        base_seed=args.base_seed,
        comm=comm,
        fidelity=args.fidelity,
        jobs=args.jobs,
        out=args.out,
        fast={"auto": None, "fast": True, "object": False}[args.engine],
        replicas=args.replicas,
        portfolio=args.portfolio,
        lanes=args.lanes,
        timeout=args.timeout,
        retries=args.retries,
        maxtasksperchild=args.maxtasksperchild,
        checkpoint=checkpoint,
        resume=args.resume,
        chaos=chaos,
        supervisor_seed=args.chaos_seed,
    )
    print(format_sweep_report(report))
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
