"""Parallel scenario sweeps: policies × machines × graph families × seeds.

The paper evaluates four fixed programs on three architectures; the sweep
runner generalizes that grid to arbitrary scenario combinations and runs it
on a process pool, so large random-graph studies (hundreds to thousands of
simulations) complete in wall-clock time bounded by the slowest worker
rather than the sum of all runs.

Every scenario is fully described by a plain-dict spec (policy name, machine
name, graph family, seeds, communication setting, fidelity), so results are
deterministic and independent of worker count or scheduling order: the seeds
live in the spec, not in worker state.

Use it from Python::

    from repro.experiments.sweep import run_sweep
    report = run_sweep(jobs=4)
    print(report["aggregates"])

or from the command line::

    python -m repro.experiments.sweep --jobs 4 --out sweep_report.json

``--hetero`` switches the machine axis to the heterogeneous scenario family:
speed spreads {1x, 2x, 4x} (linear ramp of per-processor speed factors) on
weighted ring/mesh/hypercube interconnects, a 9-machine grid that exercises
the speed- and link-weight-aware paths of every scheduler::

    python -m repro.experiments.sweep --hetero --jobs 4 --out hetero.json

``--replicas B`` anneals every SA packet as B lock-stepped multi-start
chains (batched array engine, per-replica child RNG streams) and commits the
best replica — e.g. a 16-replica SA study over the 200-task family::

    python -m repro.experiments.sweep --policies SA --families dag200 \
        --replicas 16 --jobs 4 --out sa_replicas.json

``--fidelity contention`` switches every simulation to the store-and-forward
contention model; like latency runs, these ride the compiled fast engine
(``--engine auto``/``fast``) with the object engine available as the
differential oracle (``--engine object``) — CI runs the same sweep through
both and diffs the cells::

    python -m repro.experiments.sweep --fidelity contention --jobs 4 \
        --families dag200 --out contention.json

``--lanes B`` batches up to B compatible cells as lock-step lanes of one
batched-engine call per worker (``sim/batch_engine.py``), composing with
``--jobs`` as processes × lanes — the grid becomes ``ceil(cells/lanes)``
groups distributed over the pool.  Lanes change scheduling, never numbers:
every lane is bit-identical to its solo fast-engine run.  SA ``--replicas``
rows and ``--engine object`` sweeps stay solo::

    python -m repro.experiments.sweep --families dag200 --seeds 64 \
        --jobs 4 --lanes 32 --out dag200.json

``--families`` accepts, besides the random families, every workload-zoo
family (``repro.taskgraph.families``: montage, cybershake, epigenomics,
ligo, sipht; bigmerge, splitters, grid, fern, merge_neighbours,
duration_stairs; mapreduce, crossv, gridcat) at its calibrated sweep size,
and each family's >= 1000-task policy-study instance as ``<name>-1k``::

    python -m repro.experiments.sweep --families montage mapreduce \
        --jobs 4 --lanes 16 --out zoo.json

Workers memoize the deterministic graph/machine builders per process, so the
compiled-scenario cache (``sim/compile.py``) hits across the specs a worker
runs back to back; the report's ``meta.compile_cache`` aggregates those
hits/misses across worker processes (with the distinct worker count),
``meta.n_fallback_epochs`` counts fast-engine epochs that had to materialize
a reference ``PacketContext`` (0 when every policy ran through an
index-space kernel), and ``meta.lanes`` records the lane/batch configuration
with per-lane fallback counts.

The module also exposes :func:`parallel_map`, the pool helper the other
experiment drivers (e.g. Table 2 with ``--jobs``) reuse.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing as mp
import os
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.comm.model import LinearCommModel, ZeroCommModel
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.machine.machine import Machine
from repro.schedulers.etf import ETFScheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.hlf import HLFScheduler
from repro.schedulers.lpt import LPTScheduler
from repro.schedulers.random_policy import RandomScheduler
from repro.sim.compile import compile_scenario, scenario_cache_stats
from repro.sim.engine import simulate
from repro.sim.fast_engine import run_lanes
from repro.taskgraph.generators import layered_random, random_dag
from repro.utils.tabulate import format_table
from repro.workloads.zoo import zoo_graph_families

__all__ = [
    "MACHINE_BUILDERS",
    "HETERO_MACHINES",
    "GRAPH_FAMILIES",
    "POLICY_BUILDERS",
    "speed_ramp",
    "hetero_machine",
    "build_grid",
    "run_scenario",
    "run_lane_group",
    "run_sweep",
    "parallel_map",
    "format_sweep_report",
    "main",
]

# --------------------------------------------------------------------------- #
# Scenario registries.  Every entry is a zero-state builder keyed by a plain
# string, so a scenario spec is picklable and self-describing.
# --------------------------------------------------------------------------- #


def speed_ramp(n_processors: int, spread: float) -> Optional[List[float]]:
    """A linear ramp of speed factors from 1.0 up to *spread*.

    ``spread = 1`` returns ``None`` (the homogeneous default), so a ``1x``
    scenario is exactly the unit-speed machine.
    """
    if spread <= 1.0 or n_processors < 2:
        return None
    step = (spread - 1.0) / (n_processors - 1)
    return [1.0 + step * i for i in range(n_processors)]


def _ring_link_weights(n: int) -> Dict[tuple, float]:
    """Alternating 1.0 / 2.0 transfer multipliers around the ring."""
    weights = {}
    for i in range(n):
        j = (i + 1) % n
        if i != j:
            weights[tuple(sorted((i, j)))] = 1.0 if i % 2 == 0 else 2.0
    return weights


def _mesh_link_weights(rows: int, cols: int) -> Dict[tuple, float]:
    """Row links at weight 1.0, column links at 2.0 (anisotropic mesh)."""
    weights = {}
    for r in range(rows):
        for c in range(cols):
            pid = r * cols + c
            if c + 1 < cols:
                weights[(pid, pid + 1)] = 1.0
            if r + 1 < rows:
                weights[(pid, pid + cols)] = 2.0
    return weights


def _hypercube_link_weights(dimension: int) -> Dict[tuple, float]:
    """Dimension-graded weights: a link along bit *k* costs ``1 + k/2``."""
    weights = {}
    for node in range(1 << dimension):
        for bit in range(dimension):
            other = node ^ (1 << bit)
            if node < other:
                weights[(node, other)] = 1.0 + 0.5 * bit
    return weights


def hetero_machine(kind: str, spread: float) -> Machine:
    """Build one heterogeneous scenario machine.

    *kind* is ``"ring9"``, ``"mesh16"`` or ``"hypercube8"``; *spread* is the
    ratio between the fastest and slowest processor (speeds ramp linearly).
    All three kinds carry non-unit link weights, so even the ``1x`` spread
    exercises weighted routing.
    """
    if kind == "ring9":
        return Machine.ring(9, speeds=speed_ramp(9, spread), link_weights=_ring_link_weights(9))
    if kind == "mesh16":
        return Machine.mesh(
            4, 4, speeds=speed_ramp(16, spread), link_weights=_mesh_link_weights(4, 4)
        )
    if kind == "hypercube8":
        return Machine.hypercube(
            3, speeds=speed_ramp(8, spread), link_weights=_hypercube_link_weights(3)
        )
    raise KeyError(f"unknown heterogeneous machine kind {kind!r}")


MACHINE_BUILDERS: Dict[str, Callable[[], Machine]] = {
    "hypercube8": lambda: Machine.hypercube(3),
    "bus8": lambda: Machine.bus(8),
    "ring9": lambda: Machine.ring(9),
    "mesh16": lambda: Machine.mesh(4, 4),
    "full4": lambda: Machine.fully_connected(4),
}

#: The heterogeneous scenario family: speed spreads {1x, 2x, 4x} on weighted
#: ring/mesh/hypercube interconnects.
HETERO_MACHINES: List[str] = []
for _kind in ("ring9", "mesh16", "hypercube8"):
    for _spread in (1, 2, 4):
        _name = f"hetero-{_kind}-{_spread}x"
        MACHINE_BUILDERS[_name] = (
            lambda kind=_kind, spread=float(_spread): hetero_machine(kind, spread)
        )
        HETERO_MACHINES.append(_name)
del _kind, _spread, _name

GRAPH_FAMILIES: Dict[str, Callable[[int], "object"]] = {
    "layered": lambda seed: layered_random(
        n_layers=6, width=8, edge_probability=0.4,
        mean_duration=20.0, mean_comm=8.0, seed=seed,
    ),
    "layered-wide": lambda seed: layered_random(
        n_layers=4, width=16, edge_probability=0.3,
        mean_duration=20.0, mean_comm=6.0, seed=seed,
    ),
    "dag": lambda seed: random_dag(
        40, edge_probability=0.2, mean_duration=15.0, mean_comm=5.0, seed=seed,
    ),
    "dag-dense": lambda seed: random_dag(
        60, edge_probability=0.35, mean_duration=15.0, mean_comm=8.0, seed=seed,
    ),
    # Large instance for engine benchmarking (bench_engine.py) and scale
    # studies: ~200 tasks, ~1500 edges.
    "dag200": lambda seed: random_dag(
        200, edge_probability=0.08, mean_duration=15.0, mean_comm=5.0, seed=seed,
    ),
}

# The realistic workload zoo (repro.taskgraph.families): every pegasus /
# elementary / irw family at its calibrated sweep size under its registry
# key, and at its >= 1000-task policy-study size as "<key>-1k".
GRAPH_FAMILIES.update(zoo_graph_families())

POLICY_BUILDERS: Dict[str, Callable[[int], "object"]] = {
    "HLF": lambda seed: HLFScheduler(seed=seed),
    "HLF/min-comm": lambda seed: HLFScheduler(placement="min_comm"),
    "HLF/fastest": lambda seed: HLFScheduler(placement="fastest"),
    "ETF": lambda seed: ETFScheduler(),
    "LPT": lambda seed: LPTScheduler(),
    "FIFO": lambda seed: FIFOScheduler(),
    "Random": lambda seed: RandomScheduler(seed=seed),
    "SA": lambda seed: SAScheduler(SAConfig.paper_defaults(seed=seed)),
}


# --------------------------------------------------------------------------- #
# Grid construction and the per-scenario worker
# --------------------------------------------------------------------------- #

#: Per-worker scenario-building caches.  Workers used to rebuild the graph
#: and machine for every spec, which defeated the compiled-scenario memo
#: (it is keyed on object identity): paired specs — the same (family, seed,
#: machine) under several policies — recompiled the same arrays per spec.
#: Caching the deterministic builders per process makes the PR-3 memo hit
#: across specs inside a worker; the hit/miss deltas are reported per row
#: and aggregated into the sweep meta.  Bounded FIFO so giant custom grids
#: cannot grow a worker without limit.
_GRAPH_CACHE: Dict[tuple, object] = {}
_MACHINE_CACHE: Dict[str, Machine] = {}
_WORKER_CACHE_LIMIT = 64


def _cached_graph(family: str, seed: int):
    key = (family, seed)
    graph = _GRAPH_CACHE.get(key)
    if graph is None:
        graph = GRAPH_FAMILIES[family](seed)
        while len(_GRAPH_CACHE) >= _WORKER_CACHE_LIMIT:
            _GRAPH_CACHE.pop(next(iter(_GRAPH_CACHE)))
        _GRAPH_CACHE[key] = graph
    return graph


def _cached_machine(name: str) -> Machine:
    machine = _MACHINE_CACHE.get(name)
    if machine is None:
        machine = MACHINE_BUILDERS[name]()
        while len(_MACHINE_CACHE) >= _WORKER_CACHE_LIMIT:
            _MACHINE_CACHE.pop(next(iter(_MACHINE_CACHE)))
        _MACHINE_CACHE[name] = machine
    return machine


def build_grid(
    policies: Sequence[str] = ("HLF", "ETF", "SA"),
    machines: Sequence[str] = ("hypercube8", "ring9"),
    families: Sequence[str] = ("layered", "dag"),
    n_seeds: int = 17,
    base_seed: int = 0,
    comm: Sequence[bool] = (True,),
    fidelity: str = "latency",
    fast: Optional[bool] = None,
    replicas: Optional[int] = None,
) -> List[dict]:
    """Expand the scenario grid into a list of picklable spec dicts.

    Each seed index produces one graph instance per family (``graph_seed =
    base_seed + index``); every policy runs on the same instances so the
    comparison is paired.  Unknown registry keys raise ``KeyError`` early,
    before any worker starts.  *replicas* applies batched multi-start
    annealing to the SA rows only (the other policies have no replica
    notion); like unknown keys, an invalid count fails here rather than as
    one error row per SA spec.
    """
    if replicas is not None and replicas < 1:
        raise ValueError(f"replicas must be >= 1 or None, got {replicas}")
    for name in policies:
        if name not in POLICY_BUILDERS:
            raise KeyError(f"unknown policy {name!r}; known: {sorted(POLICY_BUILDERS)}")
    for name in machines:
        if name not in MACHINE_BUILDERS:
            raise KeyError(f"unknown machine {name!r}; known: {sorted(MACHINE_BUILDERS)}")
    for name in families:
        if name not in GRAPH_FAMILIES:
            raise KeyError(f"unknown graph family {name!r}; known: {sorted(GRAPH_FAMILIES)}")
    grid: List[dict] = []
    for family in families:
        for index in range(n_seeds):
            for machine in machines:
                for with_comm in comm:
                    for policy in policies:
                        grid.append(
                            {
                                "policy": policy,
                                "machine": machine,
                                "family": family,
                                "graph_seed": base_seed + index,
                                "policy_seed": base_seed + index,
                                "with_comm": bool(with_comm),
                                "fidelity": fidelity,
                                "fast": fast,
                                "replicas": (
                                    replicas if policy.startswith("SA") else None
                                ),
                            }
                        )
    return grid


def run_scenario(spec: dict) -> dict:
    """Run one scenario spec and return its result row (the pool worker).

    Failures are captured in the row (``error`` key) instead of poisoning the
    whole sweep.
    """
    row = dict(spec)
    start = time.perf_counter()
    cache_before = scenario_cache_stats()
    try:
        graph = _cached_graph(spec["family"], spec["graph_seed"])
        machine = _cached_machine(spec["machine"])
        policy = POLICY_BUILDERS[spec["policy"]](spec["policy_seed"])
        comm_model = LinearCommModel() if spec["with_comm"] else ZeroCommModel()
        result = simulate(
            graph,
            machine,
            policy,
            comm_model=comm_model,
            fidelity=spec.get("fidelity", "latency"),
            record_trace=False,
            # None = auto: traceless statistical runs — both fidelities —
            # go through the compiled fast engine (bit-identical); False
            # pins the object engine.
            fast=spec.get("fast"),
            replicas=spec.get("replicas"),
        )
        row.update(
            makespan=result.makespan,
            speedup=result.speedup(),
            n_tasks=graph.n_tasks,
            n_packets=result.n_packets,
            n_fallback_epochs=result.n_fallback_epochs,
            error=None,
        )
    except Exception as exc:  # pragma: no cover - defensive
        row.update(makespan=None, speedup=None, n_tasks=None, n_packets=None,
                   n_fallback_epochs=None,
                   error=f"{type(exc).__name__}: {exc}")
    cache_after = scenario_cache_stats()
    row["compile_cache_hits"] = cache_after["hits"] - cache_before["hits"]
    row["compile_cache_misses"] = cache_after["misses"] - cache_before["misses"]
    row["runtime_s"] = time.perf_counter() - start
    row["worker_pid"] = os.getpid()
    return row


def run_lane_group(specs: List[dict]) -> List[dict]:
    """Run a chunk of scenario specs as lanes of one batched-engine call.

    The lane counterpart of :func:`run_scenario` (the pool worker behind
    ``--lanes``): every spec is compiled through the per-worker scenario
    memo and the whole chunk is handed to
    :func:`~repro.sim.fast_engine.run_lanes` as one lock-step group — each
    lane bit-identical to the solo run :func:`run_scenario` would have
    produced.  Any failure while building or running the group falls back to
    solo :func:`run_scenario` runs, so one poisoned cell cannot take down
    its group (and its error lands in its own row).  The group's wall time
    is split evenly across its rows; per-lane attribution inside one batched
    call has no meaning.
    """
    start = time.perf_counter()
    rows = [dict(spec) for spec in specs]
    try:
        lanes = []
        graphs = []
        for row in rows:
            cache_before = scenario_cache_stats()
            graph = _cached_graph(row["family"], row["graph_seed"])
            machine = _cached_machine(row["machine"])
            policy = POLICY_BUILDERS[row["policy"]](row["policy_seed"])
            comm_model = (
                LinearCommModel() if row["with_comm"] else ZeroCommModel()
            )
            graph.validate()
            policy.reset()
            scenario = compile_scenario(
                graph, machine, comm_model, levels=graph.levels()
            )
            cache_after = scenario_cache_stats()
            row["compile_cache_hits"] = cache_after["hits"] - cache_before["hits"]
            row["compile_cache_misses"] = (
                cache_after["misses"] - cache_before["misses"]
            )
            lanes.append((scenario, policy))
            graphs.append(graph)
        results = run_lanes(lanes, fidelity=specs[0].get("fidelity", "latency"))
    except Exception:  # pragma: no cover - defensive
        return [run_scenario(spec) for spec in specs]
    per_lane_s = (time.perf_counter() - start) / len(rows)
    pid = os.getpid()
    for row, graph, result in zip(rows, graphs, results):
        row.update(
            makespan=result.makespan,
            speedup=result.speedup(),
            n_tasks=graph.n_tasks,
            n_packets=result.n_packets,
            n_fallback_epochs=result.n_fallback_epochs,
            error=None,
            runtime_s=per_lane_s,
            worker_pid=pid,
        )
    return rows


def _run_sweep_item(item) -> List[dict]:
    """Pool worker: one spec dict, or a list of specs run as one lane group."""
    if isinstance(item, dict):
        return [run_scenario(item)]
    return run_lane_group(item)


def parallel_map(fn: Callable[[dict], dict], items: Iterable[dict], jobs: int = 1) -> List[dict]:
    """Map *fn* over *items*, on a process pool when ``jobs > 1``.

    Results keep the input order regardless of worker scheduling, so a
    parallel run is indistinguishable from a serial one.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else "spawn")
    chunksize = max(1, len(items) // (4 * jobs))
    with ctx.Pool(processes=jobs) as pool:
        return pool.map(fn, items, chunksize=chunksize)


# --------------------------------------------------------------------------- #
# Aggregation and the sweep driver
# --------------------------------------------------------------------------- #

def _aggregate(rows: List[dict]) -> List[dict]:
    """Group result rows by (policy, machine, family, comm) and summarize."""
    groups: Dict[tuple, List[dict]] = {}
    for row in rows:
        key = (row["policy"], row["machine"], row["family"], row["with_comm"])
        groups.setdefault(key, []).append(row)
    aggregates = []
    for (policy, machine, family, with_comm), members in sorted(groups.items()):
        ok = [m for m in members if m.get("error") is None]
        speedups = np.array([m["speedup"] for m in ok], dtype=float)
        makespans = np.array([m["makespan"] for m in ok], dtype=float)
        aggregates.append(
            {
                "policy": policy,
                "machine": machine,
                "family": family,
                "with_comm": with_comm,
                "n": len(members),
                "n_failed": len(members) - len(ok),
                "mean_speedup": float(speedups.mean()) if len(ok) else None,
                "std_speedup": float(speedups.std()) if len(ok) else None,
                "min_speedup": float(speedups.min()) if len(ok) else None,
                "max_speedup": float(speedups.max()) if len(ok) else None,
                "mean_makespan": float(makespans.mean()) if len(ok) else None,
                "total_runtime_s": float(sum(m["runtime_s"] for m in members)),
            }
        )
    return aggregates


def run_sweep(
    policies: Sequence[str] = ("HLF", "ETF", "SA"),
    machines: Sequence[str] = ("hypercube8", "ring9"),
    families: Sequence[str] = ("layered", "dag"),
    n_seeds: int = 17,
    base_seed: int = 0,
    comm: Sequence[bool] = (True,),
    fidelity: str = "latency",
    jobs: int = 1,
    out: Optional[str] = None,
    fast: Optional[bool] = None,
    replicas: Optional[int] = None,
    lanes: int = 1,
) -> dict:
    """Run the whole scenario grid and return (optionally write) the report.

    The report dict has ``meta`` (grid shape, wall time, jobs), ``results``
    (one row per simulation) and ``aggregates`` (per-cell summary).  With the
    default grid that is 3 policies × 2 machines × 2 families × 17 seeds =
    204 simulations.  *fast* selects the simulation engine per
    :class:`~repro.sim.engine.Simulator` (``None`` — the default — lets
    latency runs use the compiled fast engine; ``False`` pins the object
    engine, e.g. for engine benchmarking); either way the numbers are
    bit-for-bit identical.  *replicas* turns on batched multi-start
    annealing for the SA rows (``--replicas`` on the CLI).

    *lanes* batches up to that many cells as lock-step lanes of one
    batched-engine call per worker (:func:`run_lane_group`), composing with
    *jobs* as processes × lanes: the grid is cut into ``ceil(cells/lanes)``
    groups and the pool distributes groups over workers.  The count is
    capped at the cell count; SA replica rows and ``fast=False`` sweeps stay
    solo (the batched engine is a fast-engine tier).  Lanes change how the
    work is scheduled, never the numbers — every lane is bit-identical to
    its solo run.

    ``meta`` also surfaces how the work was produced: the total
    compiled-scenario cache hits/misses aggregated across worker processes
    (``meta.compile_cache``, with the distinct worker count), the total
    fast-engine fallback epochs (0 when every policy ran through an
    index-space kernel) and the lane/batch configuration including per-lane
    fallback counts (``meta.lanes``).
    """
    if lanes < 1:
        raise ValueError(f"lanes must be >= 1, got {lanes}")
    grid = build_grid(
        policies=policies,
        machines=machines,
        families=families,
        n_seeds=n_seeds,
        base_seed=base_seed,
        comm=comm,
        fidelity=fidelity,
        fast=fast,
        replicas=replicas,
    )
    # Auto-cap at the cell count; only fast-engine-eligible cells (no SA
    # replica fan-out, engine not pinned to the object path) ride lanes.
    effective_lanes = max(1, min(lanes, len(grid)))
    for index, spec in enumerate(grid):
        spec["_index"] = index
    lane_indices: List[int] = []
    if effective_lanes > 1 and fast is not False:
        lane_indices = [
            i for i, spec in enumerate(grid) if spec["replicas"] is None
        ]
    items: List[object]
    if lane_indices:
        solo = set(range(len(grid))) - set(lane_indices)
        items = [
            [grid[i] for i in lane_indices[k : k + effective_lanes]]
            for k in range(0, len(lane_indices), effective_lanes)
        ]
        items.extend(grid[i] for i in sorted(solo))
    else:
        effective_lanes = 1
        items = list(grid)
    n_groups = sum(1 for item in items if isinstance(item, list))
    wall_start = time.perf_counter()
    rows = [
        row for chunk in parallel_map(_run_sweep_item, items, jobs=jobs)
        for row in chunk
    ]
    wall = time.perf_counter() - wall_start
    rows.sort(key=lambda r: r["_index"])
    per_lane_fallback = [
        int(rows[i].get("n_fallback_epochs") or 0) for i in lane_indices
    ]
    for row in rows:
        del row["_index"]
    report = {
        "meta": {
            "n_simulations": len(rows),
            "n_failed": sum(1 for r in rows if r.get("error") is not None),
            "jobs": jobs,
            "wall_time_s": wall,
            "total_cpu_time_s": float(sum(r["runtime_s"] for r in rows)),
            "policies": list(policies),
            "machines": list(machines),
            "families": list(families),
            "n_seeds": n_seeds,
            "base_seed": base_seed,
            "comm": [bool(c) for c in comm],
            "fidelity": fidelity,
            "engine": {None: "auto", True: "fast", False: "object"}[fast],
            "replicas": replicas,
            "n_fallback_epochs": sum(
                r.get("n_fallback_epochs") or 0 for r in rows
            ),
            "compile_cache": {
                "hits": sum(r.get("compile_cache_hits", 0) for r in rows),
                "misses": sum(r.get("compile_cache_misses", 0) for r in rows),
                "n_workers": len(
                    {
                        r["worker_pid"]
                        for r in rows
                        if r.get("worker_pid") is not None
                    }
                ),
            },
            "lanes": {
                "requested": lanes,
                "effective": effective_lanes,
                "n_groups": n_groups,
                "n_lane_rows": len(lane_indices),
                "per_lane_fallback_epochs": per_lane_fallback,
            },
        },
        "results": rows,
        "aggregates": _aggregate(rows),
    }
    if out:
        # Reports often target artifact directories that fresh checkouts
        # don't have yet (e.g. the gitignored benchmarks/results/ in CI).
        parent = os.path.dirname(out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(out, "w") as fh:
            json.dump(report, fh, indent=1)
    return report


def format_sweep_report(report: dict) -> str:
    """Render the aggregate table of a sweep report."""
    rows = [
        [
            a["policy"],
            a["machine"],
            a["family"],
            "with" if a["with_comm"] else "w/o",
            a["n"],
            a["mean_speedup"],
            a["std_speedup"],
            a["mean_makespan"],
        ]
        for a in report["aggregates"]
    ]
    meta = report["meta"]
    lanes_meta = meta.get("lanes", {})
    lanes_part = (
        f" x {lanes_meta['effective']} lanes"
        if lanes_meta.get("effective", 1) > 1
        else ""
    )
    title = (
        f"Sweep: {meta['n_simulations']} simulations "
        f"({meta['jobs']} jobs{lanes_part}, {meta['wall_time_s']:.1f}s wall, "
        f"{meta['total_cpu_time_s']:.1f}s cpu)"
    )
    return format_table(
        rows,
        headers=["Policy", "Machine", "Family", "Comm", "n", "Sp mean", "Sp std", "Makespan"],
        title=title,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run a parallel scheduling-scenario sweep and write a JSON report."
    )
    parser.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    parser.add_argument(
        "--lanes", type=int, default=1,
        help=(
            "batch up to this many compatible cells as lock-step lanes of one "
            "batched-engine call per worker (composes with --jobs as "
            "processes x lanes; auto-capped at the cell count; SA --replicas "
            "rows and --engine object sweeps stay solo)"
        ),
    )
    parser.add_argument("--seeds", type=int, default=17, help="graph seeds per family")
    parser.add_argument("--base-seed", type=int, default=0, help="first graph/policy seed")
    parser.add_argument(
        "--policies", nargs="*", default=["HLF", "ETF", "SA"],
        help=f"policies to run (known: {sorted(POLICY_BUILDERS)})",
    )
    parser.add_argument(
        "--machines", nargs="*", default=None,
        help=(
            f"machines to run (known: {sorted(MACHINE_BUILDERS)}); "
            "default hypercube8 ring9, or the 9-machine heterogeneous grid "
            "with --hetero"
        ),
    )
    parser.add_argument(
        "--hetero", action="store_true",
        help=(
            "run the heterogeneous scenario family: speed spreads {1x,2x,4x} "
            "on weighted ring/mesh/hypercube machines"
        ),
    )
    parser.add_argument(
        "--families", nargs="*", default=["layered", "dag"],
        help=f"graph families to run (known: {sorted(GRAPH_FAMILIES)})",
    )
    parser.add_argument(
        "--comm", choices=["with", "without", "both"], default="with",
        help="communication setting(s) to simulate",
    )
    parser.add_argument(
        "--fidelity", choices=["latency", "contention"], default="latency",
        help=(
            "simulator fidelity; both ride the compiled fast engine under "
            "--engine auto/fast, bit-identical to --engine object"
        ),
    )
    parser.add_argument(
        "--replicas", type=int, default=None,
        help=(
            "batched multi-start annealing for the SA rows: anneal this many "
            "lock-stepped replicas per packet (per-replica child RNG streams) "
            "and commit the best replica's mapping; other policies are "
            "unaffected (default: single-chain SA)"
        ),
    )
    parser.add_argument(
        "--engine", choices=["auto", "fast", "object"], default="auto",
        help=(
            "simulation engine: 'auto' (default) compiles latency scenarios "
            "into the index-space fast engine, 'object' pins the reference "
            "engine, 'fast' forces the fast engine (errors on unsupported "
            "scenarios); results are bit-identical either way"
        ),
    )
    parser.add_argument("--out", default="sweep_report.json", help="JSON report path")
    args = parser.parse_args(argv)

    comm = {"with": (True,), "without": (False,), "both": (False, True)}[args.comm]
    if args.replicas is not None and args.replicas < 1:
        parser.error(f"--replicas must be >= 1, got {args.replicas}")
    if args.lanes < 1:
        parser.error(f"--lanes must be >= 1, got {args.lanes}")
    if args.hetero and args.machines is not None:
        parser.error("--hetero selects the heterogeneous machine grid; drop --machines "
                     "or name hetero-* machines explicitly without --hetero")
    machines = args.machines
    if machines is None:
        machines = list(HETERO_MACHINES) if args.hetero else ["hypercube8", "ring9"]
    try:
        build_grid(policies=args.policies, machines=machines, families=args.families,
                   n_seeds=1)
    except KeyError as exc:
        parser.error(str(exc.args[0]))
    report = run_sweep(
        policies=args.policies,
        machines=machines,
        families=args.families,
        n_seeds=args.seeds,
        base_seed=args.base_seed,
        comm=comm,
        fidelity=args.fidelity,
        jobs=args.jobs,
        out=args.out,
        fast={"auto": None, "fast": True, "object": False}[args.engine],
        replicas=args.replicas,
        lanes=args.lanes,
    )
    print(format_sweep_report(report))
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
