"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so that callers
can catch a single base class.  More specific subclasses are raised by the
individual subsystems (task graphs, machines, schedulers, simulator).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TaskGraphError",
    "CycleError",
    "UnknownTaskError",
    "MachineError",
    "TopologyError",
    "SchedulingError",
    "SimulationError",
    "ConfigurationError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class TaskGraphError(ReproError):
    """Raised for malformed task graphs (bad durations, weights, edges)."""


class CycleError(TaskGraphError):
    """Raised when a task graph that must be acyclic contains a cycle."""


class UnknownTaskError(TaskGraphError, KeyError):
    """Raised when a task identifier is not present in the graph."""


class MachineError(ReproError):
    """Raised for invalid machine / host-configuration descriptions."""


class TopologyError(MachineError):
    """Raised for malformed interconnection topologies."""


class SchedulingError(ReproError):
    """Raised when a scheduling policy produces an invalid assignment."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulator reaches an invalid state."""


class ConfigurationError(ReproError):
    """Raised for invalid configuration values (SA parameters, weights, ...)."""
