"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so that callers
can catch a single base class.  More specific subclasses are raised by the
individual subsystems (task graphs, machines, schedulers, simulator).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TaskGraphError",
    "CycleError",
    "UnknownTaskError",
    "MachineError",
    "TopologyError",
    "SchedulingError",
    "SimulationError",
    "ConfigurationError",
    "ProtocolError",
    "WorkerError",
    "CellTimeoutError",
    "EngineFallbackError",
    "ChaosError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class TaskGraphError(ReproError):
    """Raised for malformed task graphs (bad durations, weights, edges)."""


class CycleError(TaskGraphError):
    """Raised when a task graph that must be acyclic contains a cycle."""


class UnknownTaskError(TaskGraphError, KeyError):
    """Raised when a task identifier is not present in the graph."""


class MachineError(ReproError):
    """Raised for invalid machine / host-configuration descriptions."""


class TopologyError(MachineError):
    """Raised for malformed interconnection topologies."""


class SchedulingError(ReproError):
    """Raised when a scheduling policy produces an invalid assignment."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulator reaches an invalid state."""


class ConfigurationError(ReproError):
    """Raised for invalid configuration values (SA parameters, weights, ...)."""


class ProtocolError(ReproError):
    """Raised for malformed scheduling-service requests.

    Covers wire-level violations of the job protocol
    (:mod:`repro.service.protocol`): lines that are not JSON objects,
    unknown operations, missing or ill-typed job fields, and payloads
    exceeding the server's size limits.  Domain errors inside an
    otherwise well-formed job (unknown policy, invalid machine payload)
    keep their own taxonomy (:class:`ConfigurationError`,
    :class:`MachineError`, ...).
    """


class WorkerError(ReproError):
    """A supervised worker failed to produce a valid result for a cell.

    Carries the structured failure record the supervisor accumulated:
    *error_type* (the original exception class name, or a synthetic tag such
    as ``"WorkerDeath"`` / ``"MalformedResult"``), the formatted *traceback*
    when one was captured, and the number of *attempts* consumed.
    """

    def __init__(
        self,
        message: str,
        error_type: str = "WorkerError",
        traceback: str = "",
        attempts: int = 1,
    ) -> None:
        super().__init__(message)
        self.error_type = error_type
        self.traceback = traceback
        self.attempts = attempts


class CellTimeoutError(WorkerError):
    """A cell exceeded its per-cell wall-clock timeout and its worker was killed."""

    def __init__(self, message: str, attempts: int = 1) -> None:
        super().__init__(
            message, error_type="CellTimeoutError", attempts=attempts
        )


class EngineFallbackError(SimulationError):
    """An engine tier failed and execution degraded down the ladder.

    Subclasses :class:`SimulationError` so existing callers that catch the
    simulator's errors keep working; raised when a forced engine cannot run a
    scenario, and recorded (not raised) when the sweep quarantines a cell
    from the batched lane to a solo run or from the fast engine to the
    object engine.
    """

    def __init__(self, message: str, tier: str = "fast", cause: str = "") -> None:
        super().__init__(message)
        self.tier = tier
        self.cause = cause


class ChaosError(ReproError):
    """An injected fault from the chaos harness (:mod:`repro.utils.chaos`)."""
