"""CLI entry point: ``python -m repro.service``.

Starts the scheduling server and prints one readiness line
(``listening on <host>:<port>``) to stdout so wrappers — the CI smoke job,
the benchmark harness — can wait for it before connecting.  Runs until
interrupted.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.service.protocol import RequestLimits
from repro.service.server import SchedulerService, ServiceConfig
from repro.utils.chaos import ChaosConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Persistent scheduling-as-a-service job server.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 = let the OS pick; the bound port is printed)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="persistent pool workers (0 = inline debug mode)",
    )
    parser.add_argument(
        "--batch", type=int, default=8,
        help="coalescing flush size: queued compatible jobs per lane-group call",
    )
    parser.add_argument(
        "--window-ms", type=float, default=2.0,
        help="coalescing window: max milliseconds a queued job waits for company",
    )
    parser.add_argument(
        "--retries", type=int, default=2,
        help="re-dispatches after a worker death before a job is failed",
    )
    parser.add_argument(
        "--max-tasks", type=int, default=RequestLimits.max_tasks,
        help="reject inline graph payloads larger than this many tasks",
    )
    parser.add_argument(
        "--maxtasksperchild", type=int, default=None,
        help="recycle a worker after this many dispatches",
    )
    parser.add_argument(
        "--chaos-rate", type=float, default=0.0,
        help="fault-injection rate for the workers (CI smoke/chaos testing)",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=0,
        help="deterministic seed for --chaos-rate fault draws",
    )
    return parser


async def _main(config: ServiceConfig) -> None:
    service = SchedulerService(config)
    host, port = await service.start()
    print(f"listening on {host}:{port}", flush=True)
    try:
        await service.serve_forever()
    finally:
        await service.close()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    chaos = None
    if args.chaos_rate > 0:
        chaos = ChaosConfig(
            rate=args.chaos_rate, kinds=("die", "raise"), seed=args.chaos_seed
        )
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        batch=args.batch,
        window_ms=args.window_ms,
        retries=args.retries,
        limits=RequestLimits(max_tasks=args.max_tasks),
        maxtasksperchild=args.maxtasksperchild,
        chaos=chaos,
    )
    try:
        asyncio.run(_main(config))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
