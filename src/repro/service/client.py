"""A small blocking client for the scheduling service.

Speaks the newline-delimited JSON protocol of :mod:`repro.service.protocol`
over a plain TCP socket.  :meth:`ServiceClient.simulate_many` pipelines an
arbitrary number of jobs over one connection — a writer thread streams the
requests while the caller's thread reads responses, so neither side's
socket buffer can deadlock the exchange — and reorders the responses back
to submission order by ``id``.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Dict, Iterable, List, Optional

from repro.exceptions import ProtocolError, ReproError
from repro.service import protocol

__all__ = ["ServiceClient", "ServiceJobError"]


class ServiceJobError(ReproError):
    """A job the service answered with a structured error response.

    Carries the taxonomy fields from the wire: ``error_type`` (the server-
    side exception class name) and the optional formatted ``traceback``.
    """

    def __init__(self, message: str, error_type: str, traceback: str = ""):
        super().__init__(message)
        self.error_type = error_type
        self.traceback = traceback


class ServiceClient:
    """One TCP connection to a :class:`~repro.service.server.SchedulerService`."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._next_id = 0

    # ------------------------------------------------------------------ #
    def connect(self) -> "ServiceClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._reader = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._reader.close()
            finally:
                self._sock.close()
            self._sock = None
            self._reader = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _send(self, message: dict) -> None:
        assert self._sock is not None, "client is not connected"
        self._sock.sendall(protocol.encode_message(message))

    def _recv(self) -> dict:
        line = self._reader.readline()
        if not line:
            raise ProtocolError("service closed the connection")
        try:
            return json.loads(line)
        except ValueError as exc:
            raise ProtocolError(f"service sent invalid JSON: {exc}")

    def request(self, op: str, **fields) -> dict:
        """One synchronous request/response round trip."""
        self.connect()
        self._next_id += 1
        request_id = self._next_id
        self._send({"id": request_id, "op": op, **fields})
        while True:
            response = self._recv()
            if response.get("id") == request_id:
                return response

    # ------------------------------------------------------------------ #
    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def stats(self) -> dict:
        return self.request("stats")["stats"]

    def simulate(self, job: dict) -> dict:
        """Run one job and return its result row (raises on error response)."""
        return self._unwrap(self.request("simulate", job=job))

    def submit(self, job: dict) -> str:
        """Submit *job* asynchronously; returns its ``job_id`` immediately."""
        response = self.request("submit", job=job)
        if not response.get("ok"):
            self._raise_error(response)
        return response["job_id"]

    def poll(self, job_id: str) -> dict:
        """The current registry record of an async job.

        ``state`` is ``queued`` / ``running`` / ``done`` / ``error``;
        ``best_so_far`` carries the latest anytime snapshot an SA portfolio
        job has streamed (``None`` until the first packet commits), ``row``
        the finished result once ``state == "done"``.
        """
        response = self.request("poll", job_id=job_id)
        if not response.get("ok"):
            self._raise_error(response)
        return response["job"]

    def wait(self, job_id: str, timeout: float = 60.0, interval: float = 0.05) -> dict:
        """Poll an async job until it finishes; returns its result row.

        Raises :class:`ServiceJobError` if the job ends in ``error`` and
        :class:`ProtocolError` on timeout.
        """
        import time as _time

        deadline = _time.monotonic() + timeout
        while True:
            record = self.poll(job_id)
            if record["state"] == "done":
                return record["row"]
            if record["state"] == "error":
                error = record.get("error") or {}
                raise ServiceJobError(
                    error.get("message", "async job failed"),
                    error_type=error.get("type", "ServiceError"),
                )
            if _time.monotonic() > deadline:
                raise ProtocolError(
                    f"async job {job_id!r} did not finish within {timeout}s "
                    f"(state {record['state']!r})"
                )
            _time.sleep(interval)

    def simulate_many(
        self, jobs: Iterable[dict], raise_on_error: bool = True
    ) -> List[dict]:
        """Pipeline *jobs* over this connection; results in submission order.

        With ``raise_on_error=False``, failed jobs yield their raw error
        responses (``{"ok": False, "error": {...}}``) in place of rows.
        """
        self.connect()
        jobs = list(jobs)
        requests = []
        for job in jobs:
            self._next_id += 1
            requests.append({"id": self._next_id, "op": "simulate", "job": job})
        order = [request["id"] for request in requests]
        writer_error: List[BaseException] = []

        def _stream() -> None:
            try:
                for request in requests:
                    self._send(request)
            except BaseException as exc:  # pragma: no cover - socket failure
                writer_error.append(exc)

        writer = threading.Thread(target=_stream, daemon=True)
        writer.start()
        by_id: Dict[object, dict] = {}
        try:
            while len(by_id) < len(order):
                response = self._recv()
                by_id[response.get("id")] = response
        finally:
            writer.join(timeout=self.timeout)
        if writer_error:
            raise writer_error[0]
        responses = [by_id[request_id] for request_id in order]
        if not raise_on_error:
            return responses
        return [self._unwrap(response) for response in responses]

    @classmethod
    def _unwrap(cls, response: dict) -> dict:
        if response.get("ok"):
            return response["row"]
        cls._raise_error(response)

    @staticmethod
    def _raise_error(response: dict) -> None:
        error = response.get("error") or {}
        raise ServiceJobError(
            error.get("message", "service error"),
            error_type=error.get("type", "ServiceError"),
            traceback=error.get("traceback", ""),
        )
