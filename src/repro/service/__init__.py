"""Scheduling as a service: a persistent async job server over the simulator.

The sweep (:mod:`repro.experiments.sweep`) amortizes scenario compilation
across the cells of *one* grid; this package amortizes it across *clients*.
A long-lived asyncio TCP server (:mod:`repro.service.server`) accepts
newline-delimited JSON jobs — (task graph, machine, policy, config) tuples —
and answers with the same science rows (and optional placement fingerprints)
a direct :func:`repro.sim.engine.simulate` call would produce, bit-identical.

Three mechanisms make the server fast where one-process-per-request is slow:

* **Persistent workers** — the supervised pool workers of
  :mod:`repro.experiments.supervisor` are kept alive across requests, so
  the per-process compiled-scenario memo (:mod:`repro.sim.compile`) stays
  hot instead of being rebuilt for every job.
* **Cache-affinity sharding** — jobs are routed to workers by a stable hash
  of their (graph, machine) identity (:func:`repro.service.jobs.affinity_key`),
  so repeat scenarios land on the worker that already compiled them; the
  server's ``stats`` op proves the hit rate climbs as the cache warms.
* **Request coalescing** — compatible concurrent jobs queued for the same
  worker are flushed (on batch size or a small time window) as **one**
  batched B-lane engine call (:func:`repro.experiments.sweep.run_lane_group`),
  so ten concurrent SA jobs cost one lock-step batched run, not ten solos.

Workers that die mid-job are respawned and their jobs retried transparently;
malformed requests get structured errors from the :mod:`repro.exceptions`
taxonomy without disturbing the server or other clients.
"""

from repro.service.protocol import (
    PROTOCOL_VERSION,
    RequestLimits,
    decode_line,
    encode_message,
    error_response,
    job_to_spec,
    ok_response,
)
from repro.service.jobs import affinity_key, coalesce_key, lane_eligible
from repro.service.server import SchedulerService, ServiceConfig, serve_in_thread
from repro.service.client import ServiceClient

__all__ = [
    "PROTOCOL_VERSION",
    "RequestLimits",
    "decode_line",
    "encode_message",
    "error_response",
    "job_to_spec",
    "ok_response",
    "affinity_key",
    "coalesce_key",
    "lane_eligible",
    "SchedulerService",
    "ServiceConfig",
    "serve_in_thread",
    "ServiceClient",
]
