"""The scheduling service's newline-delimited JSON job protocol.

One request per line, one JSON object per request; the server answers each
request with exactly one JSON object on its own line (responses to pipelined
requests may interleave across jobs, so clients match on ``id``).

Requests::

    {"id": 1, "op": "ping"}
    {"id": 2, "op": "stats"}
    {"id": 3, "op": "simulate", "job": {
        "policy": "SA", "machine": "hypercube8",
        "family": "layered", "graph_seed": 0, "policy_seed": 0,
        "with_comm": true, "fidelity": "latency",
        "replicas": null, "fingerprint": true}}
    {"id": 4, "op": "submit", "job": {
        "policy": "SA", "machine": "hypercube8", "family": "dag200",
        "portfolio": 8}}
    {"id": 5, "op": "poll", "job_id": "job-1"}

``submit`` takes the same job object as ``simulate`` but returns
immediately with a ``job_id``; the job runs asynchronously and ``poll``
reports its ``state`` (``queued`` / ``running`` / ``done`` / ``error``), the
finished ``row`` once done, and — for SA ``portfolio`` jobs — the streamed
anytime ``best_so_far`` snapshot (committed packets, cumulative costs, the
last packet's champion lane) while the job is still running.

A ``simulate`` job addresses its graph by registry ``family`` + ``graph_seed``
or ships it inline as ``graph_payload`` (:mod:`repro.taskgraph.io` format);
machines likewise by registry ``machine`` name or inline ``machine_payload``
(:mod:`repro.machine.io` format).  Payload jobs are content-addressed
(``payload:<sha>`` pseudo-names), so resubmitting the same graph hits the
same worker-side caches a registry name would.

Responses::

    {"id": 3, "ok": true, "row": {"policy": "SA", ..., "fingerprint": {...}}}
    {"id": 4, "ok": false, "error": {"type": "ConfigurationError",
                                     "message": "unknown policy 'SSA' ..."}}

``row`` carries the same science fields a sweep row does (makespan, speedup,
packet counts, engine provenance, compile-cache deltas) — bit-identical to a
direct :func:`repro.sim.engine.simulate` call — plus the placement
``fingerprint`` when requested.  Errors reuse the :mod:`repro.exceptions`
taxonomy: wire-level violations are ``ProtocolError``, domain errors keep
their own types (``ConfigurationError``, ``MachineError``, ...).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.exceptions import ConfigurationError, ProtocolError, ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "FIDELITIES",
    "RequestLimits",
    "decode_line",
    "encode_message",
    "job_to_spec",
    "ok_response",
    "error_response",
]

PROTOCOL_VERSION = 1

#: Operations the server understands.
OPS = ("simulate", "submit", "poll", "stats", "ping")

FIDELITIES = ("latency", "contention")

_JOB_FIELDS = {
    "policy",
    "machine",
    "machine_payload",
    "family",
    "graph_payload",
    "graph_seed",
    "policy_seed",
    "with_comm",
    "fidelity",
    "fast",
    "replicas",
    "portfolio",
    "fingerprint",
}


@dataclass(frozen=True)
class RequestLimits:
    """Size guards applied before a job is accepted.

    ``max_line_bytes`` is enforced by the stream reader (a longer line is a
    protocol error and closes the connection); ``max_tasks`` bounds inline
    graph payloads so one oversized job cannot stall a shared worker, and
    ``max_replicas`` bounds the SA replica fan-out a single job may request.
    """

    max_line_bytes: int = 8 * 2**20
    max_tasks: int = 20_000
    max_replicas: int = 512


def encode_message(message: dict) -> bytes:
    """Serialize one protocol message to its wire line."""
    return (
        json.dumps(message, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def decode_line(line: Union[bytes, str]) -> dict:
    """Parse one request line into a message dict.

    Raises :class:`ProtocolError` for undecodable bytes, invalid JSON,
    non-object payloads, or an unknown/missing ``op``.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request line is not valid UTF-8: {exc}")
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"request line is not valid JSON: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(message).__name__}"
        )
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {list(OPS)})")
    return message


def _content_key(kind: str, payload: dict) -> str:
    """Content-addressed pseudo-name for an inline payload.

    Derived from the canonical JSON of the payload, so the same graph or
    machine shipped twice resolves to the same worker-cache key (and the
    same affinity shard) as if it were a registry name.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
    return f"payload:{kind}:{digest}"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def job_to_spec(
    job: object,
    limits: Optional[RequestLimits] = None,
    *,
    known_policies: Tuple[str, ...] = (),
    known_machines: Tuple[str, ...] = (),
    known_families: Tuple[str, ...] = (),
) -> dict:
    """Validate a ``simulate`` job and lower it to a sweep scenario spec.

    The returned spec runs through the exact worker entrypoints the sweep
    uses (:func:`repro.experiments.sweep.run_scenario` /
    :func:`run_lane_group`), which is what keeps service responses
    bit-identical to direct simulation.  Raises :class:`ProtocolError` for
    shape violations and :class:`ConfigurationError` for unknown registry
    names, mirroring the rest of the taxonomy.
    """
    limits = limits or RequestLimits()
    _require(isinstance(job, dict), "simulate request needs a 'job' object")
    unknown = set(job) - _JOB_FIELDS
    _require(not unknown, f"unknown job field(s) {sorted(unknown)}")

    policy = job.get("policy")
    _require(isinstance(policy, str), "job needs a string 'policy'")
    if known_policies and policy not in known_policies:
        raise ConfigurationError(
            f"unknown policy {policy!r} (known: {sorted(known_policies)})"
        )

    spec: dict = {"policy": policy}

    machine_payload = job.get("machine_payload")
    if machine_payload is not None:
        _require(
            isinstance(machine_payload, dict),
            "'machine_payload' must be a machine dictionary "
            "(see repro.machine.io.to_dict)",
        )
        _require(
            "machine" not in job,
            "give either 'machine' or 'machine_payload', not both",
        )
        spec["machine"] = _content_key("machine", machine_payload)
        spec["machine_payload"] = machine_payload
    else:
        machine = job.get("machine")
        _require(isinstance(machine, str), "job needs a string 'machine'")
        if known_machines and machine not in known_machines:
            raise ConfigurationError(
                f"unknown machine {machine!r} (known: {sorted(known_machines)})"
            )
        spec["machine"] = machine

    graph_payload = job.get("graph_payload")
    graph_seed = job.get("graph_seed", 0)
    _require(
        isinstance(graph_seed, int) and not isinstance(graph_seed, bool),
        "'graph_seed' must be an integer",
    )
    spec["graph_seed"] = graph_seed
    if graph_payload is not None:
        _require(
            isinstance(graph_payload, dict),
            "'graph_payload' must be a task-graph dictionary "
            "(see repro.taskgraph.io.to_dict)",
        )
        _require(
            "family" not in job,
            "give either 'family' or 'graph_payload', not both",
        )
        tasks = graph_payload.get("tasks")
        _require(
            isinstance(tasks, list),
            "'graph_payload' is missing its 'tasks' list",
        )
        if len(tasks) > limits.max_tasks:
            raise ProtocolError(
                f"graph payload has {len(tasks)} tasks, exceeding the "
                f"server's limit of {limits.max_tasks}"
            )
        spec["family"] = _content_key("graph", graph_payload)
        spec["graph_payload"] = graph_payload
    else:
        family = job.get("family")
        _require(isinstance(family, str), "job needs a string 'family'")
        if known_families and family not in known_families:
            raise ConfigurationError(
                f"unknown graph family {family!r} "
                f"(known: {sorted(known_families)})"
            )
        spec["family"] = family

    policy_seed = job.get("policy_seed", 0)
    _require(
        isinstance(policy_seed, int) and not isinstance(policy_seed, bool),
        "'policy_seed' must be an integer",
    )
    spec["policy_seed"] = policy_seed

    with_comm = job.get("with_comm", True)
    _require(isinstance(with_comm, bool), "'with_comm' must be a boolean")
    spec["with_comm"] = with_comm

    fidelity = job.get("fidelity", "latency")
    if fidelity not in FIDELITIES:
        raise ProtocolError(
            f"'fidelity' must be one of {list(FIDELITIES)}, got {fidelity!r}"
        )
    spec["fidelity"] = fidelity

    fast = job.get("fast")
    _require(fast is None or isinstance(fast, bool), "'fast' must be a boolean or null")
    spec["fast"] = fast

    replicas = job.get("replicas")
    if replicas is not None:
        _require(
            isinstance(replicas, int) and not isinstance(replicas, bool)
            and replicas >= 1,
            "'replicas' must be a positive integer or null",
        )
        if replicas > limits.max_replicas:
            raise ProtocolError(
                f"job requests {replicas} replicas, exceeding the server's "
                f"limit of {limits.max_replicas}"
            )
    spec["replicas"] = replicas

    portfolio = job.get("portfolio")
    if portfolio is not None:
        _require(
            isinstance(portfolio, int) and not isinstance(portfolio, bool)
            and portfolio >= 2,
            "'portfolio' must be an integer >= 2 or null",
        )
        _require(
            replicas is None,
            "'replicas' and 'portfolio' are mutually exclusive",
        )
        if portfolio > limits.max_replicas:
            raise ProtocolError(
                f"job requests {portfolio} portfolio lanes, exceeding the "
                f"server's limit of {limits.max_replicas}"
            )
    spec["portfolio"] = portfolio

    fingerprint = job.get("fingerprint", False)
    _require(isinstance(fingerprint, bool), "'fingerprint' must be a boolean")
    if fingerprint:
        # Underscore keys are excluded from spec_key, so asking for the
        # placement fingerprint does not change the job's identity.
        spec["_fingerprint"] = True
    return spec


def ok_response(request_id: object, row: dict) -> dict:
    """A success response carrying the result row for *request_id*."""
    return {"id": request_id, "ok": True, "row": row}


def error_response(
    request_id: object,
    error: Union[BaseException, Tuple[str, str]],
    traceback: str = "",
) -> dict:
    """A failure response: ``(type, message)`` from the taxonomy.

    Accepts either an exception instance (its class name becomes the type;
    :class:`ReproError` subclasses pass through unchanged, anything else is
    reported as-is so internal bugs stay diagnosable) or an explicit
    ``(type, message)`` pair from a worker's structured failure record.
    """
    if isinstance(error, BaseException):
        error_type = type(error).__name__
        message = str(error)
        if not isinstance(error, ReproError) and not traceback:
            message = f"{error_type}: {message}" if message else error_type
    else:
        error_type, message = error
    payload = {"type": error_type, "message": message}
    if traceback:
        payload["traceback"] = traceback
    return {"id": request_id, "ok": False, "error": payload}
