"""Job routing and coalescing decisions for the scheduling service.

Pure functions over scenario specs (the dicts
:func:`repro.service.protocol.job_to_spec` produces), separated from the
server's event loop so the routing policy is unit-testable on its own:

* :func:`affinity_key` / :func:`shard` — which worker a job *wants*: a
  stable hash of the (graph, machine) identity, so repeats of the same
  scenario land on the worker whose compiled-scenario memo
  (:mod:`repro.sim.compile`) already holds it.
* :func:`lane_eligible` / :func:`coalesce_key` — whether and with whom a
  job may share a batched B-lane engine call
  (:func:`repro.experiments.sweep.run_lane_group`).  The grouping rule
  matches the sweep's lane planner: no replica fan-out, engine not pinned
  off the fast path, and one fidelity per batched call.
"""

from __future__ import annotations

import hashlib
import json
from typing import Tuple

__all__ = ["affinity_key", "shard", "lane_eligible", "coalesce_key"]


def affinity_key(spec: dict) -> str:
    """The cache-affinity identity of a spec: its (graph, machine) pair.

    Policy, seeds and fidelity are deliberately excluded — a compiled
    scenario is reusable across all of them, so jobs differing only there
    should share a worker (and its hot cache), not scatter.
    """
    payload = {
        "family": spec.get("family"),
        "graph_seed": spec.get("graph_seed"),
        "machine": spec.get("machine"),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def shard(spec: dict, n_workers: int) -> int:
    """The worker index a spec routes to (stable across runs and processes)."""
    if n_workers <= 1:
        return 0
    return int(affinity_key(spec), 16) % n_workers


def lane_eligible(spec: dict) -> bool:
    """Whether this job may ride a batched lane group.

    Mirrors the sweep's lane planner: replica fan-out and portfolio racing
    run solo (each such cell is already an internal batch, and an anytime
    portfolio job's progress stream must attribute to exactly one job), and
    ``fast=False`` pins the reference object engine which has no lane path.
    SA jobs with neither fan-out are eligible — coalescing them is the
    service's main win, since annealing dominates per-job cost.
    """
    return (
        spec.get("replicas") is None
        and spec.get("portfolio") is None
        and spec.get("fast") is not False
    )


def coalesce_key(spec: dict) -> Tuple[str, ...]:
    """Jobs with equal keys may share one batched engine call.

    One fidelity per :func:`~repro.sim.fast_engine.run_lanes` call is the
    engine's contract; everything else (policy, machine, graph, seeds) may
    mix freely within a group, exactly as sweep lane chunks do.
    """
    return ("lanes", spec.get("fidelity", "latency"))
