"""The persistent asyncio scheduling server.

One process runs the event loop; simulation happens in the supervised pool
workers of :mod:`repro.experiments.supervisor`, kept **persistent** across
requests (unlike :func:`supervised_map`, which tears its pool down after
each grid).  Each worker owns a duplex pipe whose file descriptor is
registered with the loop (``add_reader``), so results, recycles and deaths
all surface as ordinary readiness events — no polling thread.

Request flow for a ``simulate`` job:

1. the job is validated and lowered to a sweep scenario spec
   (:func:`repro.service.protocol.job_to_spec`);
2. it is routed to the worker its :func:`~repro.service.jobs.affinity_key`
   hashes to, so repeats of a (graph, machine) pair reuse that worker's
   compiled-scenario memo;
3. it waits in that worker's queue until the **coalescer** flushes — at
   batch size ``batch`` or after ``window_ms`` — and compatible queued jobs
   leave as *one* :func:`~repro.experiments.sweep.run_lane_group` item
   (a single batched B-lane engine call); incompatible jobs run solo via
   :func:`~repro.experiments.sweep.run_scenario`;
4. the reply rows are matched back to their requests and written to each
   client, bit-identical to direct :func:`repro.sim.engine.simulate` calls.

A ``submit`` job takes the same path but detached from its client: the
server answers immediately with a ``job_id``, runs the job **solo** (never
coalesced, so the worker's anytime progress stream attributes to exactly one
job), and parks the outcome in a bounded in-memory registry that ``poll``
reads — including the per-packet ``best_so_far`` snapshots an SA portfolio
run streams up the worker pipe while it anneals.

A worker that dies mid-batch is respawned and its jobs are requeued
transparently (bounded by ``retries``); jobs that exhaust their attempts get
a structured ``WorkerError`` response.  The ``stats`` op exposes the
counters that prove the design: coalescing batch sizes, affinity hit rates,
aggregated compile-cache traffic across workers, and worker lifecycle
events.
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing as mp
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.exceptions import ConfigurationError, ProtocolError
from repro.experiments import sweep as sweep_module
from repro.experiments.supervisor import PoolTask, PoolWorker, SupervisorConfig
from repro.service import jobs as jobs_module
from repro.service import protocol
from repro.utils.chaos import ChaosConfig

__all__ = ["ServiceConfig", "SchedulerService", "serve_in_thread"]


@dataclass
class ServiceConfig:
    """How the scheduling server listens, shards, coalesces, and retries."""

    host: str = "127.0.0.1"
    #: TCP port; 0 asks the OS for a free port (read it back from
    #: :attr:`SchedulerService.address` after :meth:`~SchedulerService.start`).
    port: int = 0
    #: Persistent pool workers.  0 = inline debug mode: jobs run in the
    #: server process (through a thread executor) with no sharding or
    #: coalescing — protocol-identical, perf-irrelevant.
    workers: int = 2
    #: Coalescing flush size: a worker queue holding this many compatible
    #: jobs flushes immediately as one batched lane-group call.
    batch: int = 8
    #: Coalescing time window in milliseconds: the longest a queued job
    #: waits for company before flushing anyway.
    window_ms: float = 2.0
    #: Re-dispatches after a worker death (0 = fail jobs on first death).
    retries: int = 2
    #: Request guards (line length, payload graph size, replica fan-out).
    limits: protocol.RequestLimits = field(default_factory=protocol.RequestLimits)
    #: Retire a worker after this many dispatches (``None`` = never).
    maxtasksperchild: Optional[int] = None
    #: Fault-injection plan threaded into the pool workers (tests/CI chaos).
    chaos: Optional[ChaosConfig] = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {self.workers}")
        if self.batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {self.batch}")
        if self.window_ms < 0:
            raise ConfigurationError(
                f"window_ms must be >= 0, got {self.window_ms}"
            )
        if self.retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {self.retries}")


class _Job:
    """One in-flight ``simulate``/``submit`` request and its retry state.

    A ``submit`` job carries its registry ``job_id`` instead of answering a
    waiting client; it is never lane-coalesced, so the anytime progress its
    worker streams is unambiguous about which job it describes.
    """

    __slots__ = (
        "request_id", "spec", "writer", "attempt", "affinity", "eligible",
        "ckey", "job_id",
    )

    def __init__(
        self,
        request_id,
        spec: dict,
        writer: asyncio.StreamWriter,
        job_id: Optional[str] = None,
    ):
        self.request_id = request_id
        self.spec = spec
        self.writer = writer
        self.attempt = 1
        self.affinity = jobs_module.affinity_key(spec)
        self.eligible = job_id is None and jobs_module.lane_eligible(spec)
        self.ckey = jobs_module.coalesce_key(spec)
        self.job_id = job_id


class _WorkerSlot:
    """A persistent pool worker plus its coalescing queue and cache ledger."""

    __slots__ = ("worker", "queue", "inflight", "timer", "seen", "dispatches")

    def __init__(self, worker: PoolWorker):
        self.worker = worker
        self.queue: Deque[_Job] = deque()
        #: Jobs inside the currently dispatched item (None = worker idle).
        self.inflight: Optional[List[_Job]] = None
        self.timer: Optional[asyncio.TimerHandle] = None
        #: Affinity keys this worker has already compiled (hit-rate ledger,
        #: mirroring the worker-side scenario memo without a round trip).
        self.seen: Set[str] = set()
        self.dispatches = 0


def _new_stats() -> dict:
    return {
        "received": 0,
        "completed": 0,
        "errors": 0,
        "protocol_errors": 0,
        "retried": 0,
        "batches": 0,
        "coalesced_jobs": 0,
        "solo_jobs": 0,
        "max_batch": 0,
        "affinity_hits": 0,
        "affinity_misses": 0,
        "worker_deaths": 0,
        "respawns": 0,
        "submitted": 0,
        "polls": 0,
        "progress_updates": 0,
        "compile_cache_hits": 0,
        "compile_cache_misses": 0,
        "compile_cache_evictions": 0,
    }


class SchedulerService:
    """The asyncio front-end over a persistent supervised worker pool."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._slots: List[_WorkerSlot] = []
        self._stats = _new_stats()
        self._started_at: Optional[float] = None
        self._next_task_index = 0
        #: Async job registry for submit/poll, insertion-ordered so pruning
        #: drops the oldest *finished* jobs first (bounded memory).
        self._jobs: "OrderedDict[str, dict]" = OrderedDict()
        self._next_job_id = 0
        self._max_finished_jobs = 1024
        self._closing = False
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        self._pool_config = SupervisorConfig(
            jobs=max(1, self.config.workers),
            maxtasksperchild=self.config.maxtasksperchild,
            chaos=self.config.chaos,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._server is None:
            raise ConfigurationError("service is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> Tuple[str, int]:
        """Spawn the persistent workers and start listening."""
        self._loop = asyncio.get_running_loop()
        self._started_at = time.monotonic()
        for _ in range(self.config.workers):
            self._slots.append(self._spawn_slot())
        self._server = await asyncio.start_server(
            self._handle_client,
            self.config.host,
            self.config.port,
            limit=self.config.limits.max_line_bytes,
        )
        return self.address

    async def close(self) -> None:
        """Stop accepting, drop queued work, and retire the workers."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for slot in self._slots:
            if slot.timer is not None:
                slot.timer.cancel()
            self._remove_reader(slot)
            slot.worker.shutdown()
        self._slots = []

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    def _spawn_slot(self) -> _WorkerSlot:
        slot = _WorkerSlot(
            PoolWorker(self._ctx, sweep_module._run_sweep_item, self._pool_config)
        )
        self._add_reader(slot)
        return slot

    def _add_reader(self, slot: _WorkerSlot) -> None:
        assert self._loop is not None
        self._loop.add_reader(
            slot.worker.conn.fileno(), self._on_worker_readable, slot
        )

    def _remove_reader(self, slot: _WorkerSlot) -> None:
        if self._loop is None:
            return
        with contextlib.suppress(OSError, ValueError):
            self._loop.remove_reader(slot.worker.conn.fileno())

    # ------------------------------------------------------------------ #
    # Client protocol
    # ------------------------------------------------------------------ #

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The line blew the reader's limit; the stream position
                    # is unrecoverable, so answer and hang up.
                    self._stats["protocol_errors"] += 1
                    self._write(
                        writer,
                        protocol.error_response(
                            None,
                            ProtocolError(
                                "request line exceeds "
                                f"{self.config.limits.max_line_bytes} bytes"
                            ),
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self._handle_line(line, writer)
                await self._drain(writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    def _handle_line(self, line: bytes, writer: asyncio.StreamWriter) -> None:
        request_id = None
        try:
            message = protocol.decode_line(line)
            request_id = message.get("id")
            op = message["op"]
            if op == "ping":
                self._write(writer, {"id": request_id, "ok": True, "pong": True})
                return
            if op == "stats":
                self._write(
                    writer, {"id": request_id, "ok": True, "stats": self.stats()}
                )
                return
            if op == "poll":
                self._stats["polls"] += 1
                job_id = message.get("job_id")
                record = self._jobs.get(job_id)
                if record is None:
                    raise ProtocolError(f"unknown job_id {job_id!r}")
                self._write(
                    writer, {"id": request_id, "ok": True, "job": dict(record)}
                )
                return
            spec = protocol.job_to_spec(
                message.get("job"),
                self.config.limits,
                known_policies=tuple(sweep_module.POLICY_BUILDERS),
                known_machines=tuple(sweep_module.MACHINE_BUILDERS),
                known_families=tuple(sweep_module.GRAPH_FAMILIES),
            )
        except Exception as exc:
            self._stats["protocol_errors"] += 1
            self._write(writer, protocol.error_response(request_id, exc))
            return
        self._stats["received"] += 1
        job_id = None
        if op == "submit":
            self._stats["submitted"] += 1
            job_id = self._register_job(spec)
            # Answer now; the job continues detached and poll reads it back.
            self._write(writer, {"id": request_id, "ok": True, "job_id": job_id})
        job = _Job(request_id, spec, writer, job_id=job_id)
        if not self._slots:
            assert self._loop is not None
            self._loop.create_task(self._run_inline(job))
            return
        self._enqueue(job, front=False)

    def _register_job(self, spec: dict) -> str:
        self._next_job_id += 1
        job_id = f"job-{self._next_job_id}"
        self._jobs[job_id] = {
            "job_id": job_id,
            "state": "queued",
            "spec_key": sweep_module._item_key(spec),
            "best_so_far": None,
            "row": None,
            "error": None,
        }
        # Bound the registry: evict the oldest finished jobs beyond the cap
        # (in-flight jobs are never evicted).
        finished = [
            key
            for key, record in self._jobs.items()
            if record["state"] in ("done", "error")
        ]
        excess = len(self._jobs) - self._max_finished_jobs
        for key in finished[:max(0, excess)]:
            del self._jobs[key]
        return job_id

    async def _run_inline(self, job: _Job) -> None:
        """Debug path (``workers=0``): run in the server process."""
        assert self._loop is not None
        rows = await self._loop.run_in_executor(
            None, sweep_module._run_sweep_item, job.spec
        )
        self._stats["solo_jobs"] += 1
        self._finish_job(job, rows[0])

    # ------------------------------------------------------------------ #
    # Sharding, coalescing, dispatch
    # ------------------------------------------------------------------ #

    def _enqueue(self, job: _Job, front: bool) -> None:
        slot = self._slots[jobs_module.shard(job.spec, len(self._slots))]
        if front:
            slot.queue.appendleft(job)
        else:
            slot.queue.append(job)
        if slot.inflight is None and self._flushable(slot):
            self._flush(slot)
        elif slot.timer is None and slot.queue:
            assert self._loop is not None
            slot.timer = self._loop.call_later(
                self.config.window_ms / 1000.0, self._on_window, slot
            )

    def _flushable(self, slot: _WorkerSlot) -> bool:
        """Flush now, or wait out the window for more company?"""
        if not slot.queue:
            return False
        head = slot.queue[0]
        if not head.eligible or self.config.window_ms == 0:
            return True  # solo jobs gain nothing from waiting
        batchable = sum(
            1 for job in slot.queue if job.eligible and job.ckey == head.ckey
        )
        return batchable >= self.config.batch

    def _on_window(self, slot: _WorkerSlot) -> None:
        slot.timer = None
        if slot.inflight is None and slot.queue:
            self._flush(slot)

    def _take_batch(self, slot: _WorkerSlot) -> List[_Job]:
        """Pop the next dispatch group off the queue head.

        An ineligible head runs solo; an eligible head takes up to
        ``batch`` compatible jobs with it (skipped jobs keep their queue
        order for the next flush).
        """
        head = slot.queue.popleft()
        if not head.eligible:
            return [head]
        batch = [head]
        kept: List[_Job] = []
        while slot.queue and len(batch) < self.config.batch:
            job = slot.queue.popleft()
            if job.eligible and job.ckey == head.ckey:
                batch.append(job)
            else:
                kept.append(job)
        for job in reversed(kept):
            slot.queue.appendleft(job)
        return batch

    def _flush(self, slot: _WorkerSlot) -> None:
        if slot.inflight is not None or not slot.queue or self._closing:
            return
        if slot.timer is not None:
            slot.timer.cancel()
            slot.timer = None
        batch = self._take_batch(slot)
        for job in batch:
            if job.affinity in slot.seen:
                self._stats["affinity_hits"] += 1
            else:
                self._stats["affinity_misses"] += 1
                slot.seen.add(job.affinity)
        if len(slot.seen) > 4096:
            slot.seen.clear()  # ledger bound; worker memo is bounded too
        item = batch[0].spec if len(batch) == 1 else [job.spec for job in batch]
        self._stats["batches"] += 1
        self._stats["max_batch"] = max(self._stats["max_batch"], len(batch))
        if len(batch) == 1:
            self._stats["solo_jobs"] += 1
        else:
            self._stats["coalesced_jobs"] += len(batch)
        self._next_task_index += 1
        task = PoolTask(
            index=self._next_task_index,
            key=sweep_module._item_key(item),
            item=item,
            attempt=max(job.attempt for job in batch),
        )
        try:
            slot.worker.dispatch(task, timeout=None)
        except (BrokenPipeError, OSError):
            # The worker exited between replies (e.g. a maxtasksperchild
            # recycle); nothing was delivered, so requeue without charging
            # an attempt and replace the worker.
            for job in reversed(batch):
                slot.queue.appendleft(job)
            self._replace_worker(slot, died=False)
            return
        slot.inflight = batch
        slot.dispatches += 1
        for job in batch:
            if job.job_id is not None:
                record = self._jobs.get(job.job_id)
                if record is not None:
                    record["state"] = "running"

    # ------------------------------------------------------------------ #
    # Worker replies and deaths
    # ------------------------------------------------------------------ #

    def _on_worker_readable(self, slot: _WorkerSlot) -> None:
        try:
            msg = slot.worker.conn.recv()
        except (EOFError, OSError):
            self._handle_worker_exit(slot)
            return
        _index, _attempt, ok, payload, err = msg
        if ok == "progress":
            # Out-of-band anytime snapshot from a still-running cell: the
            # worker stays busy.  Async jobs dispatch solo, so the snapshot
            # belongs to the single inflight job; drop stale attempts.
            task = slot.worker.current
            batch = slot.inflight
            if (
                task is not None
                and task.index == _index
                and task.attempt == _attempt
                and batch is not None
                and len(batch) == 1
                and batch[0].job_id is not None
            ):
                record = self._jobs.get(batch[0].job_id)
                if record is not None and record["state"] == "running":
                    record["best_so_far"] = payload
                    self._stats["progress_updates"] += 1
            return
        batch = slot.inflight
        slot.inflight = None
        slot.worker.current = None
        slot.worker.tasks_done += 1
        if batch is None:  # pragma: no cover - stale reply after a requeue
            return
        if ok and isinstance(payload, list) and len(payload) == len(batch):
            for job, row in zip(batch, payload):
                self._account_row(row)
                self._finish_job(job, row)
        else:
            # The worker itself failed (chaos-injected exception, or an
            # unpicklable row): charge an attempt and retry the jobs.
            error = err or ("MalformedResult", "worker returned a malformed batch")
            self._retry_batch(slot, batch, error[0], error[1])
        self._flush(slot)

    def _handle_worker_exit(self, slot: _WorkerSlot) -> None:
        batch = slot.inflight
        slot.inflight = None
        if batch is not None:
            self._stats["worker_deaths"] += 1
        self._replace_worker(slot, died=batch is not None)
        if batch is not None:
            self._retry_batch(
                slot,
                batch,
                "WorkerDeath",
                "worker died mid-job; the job was re-dispatched",
            )
        self._flush(slot)

    def _replace_worker(self, slot: _WorkerSlot, died: bool) -> None:
        self._remove_reader(slot)
        slot.worker.current = None
        slot.worker.shutdown(kill=died)
        if self._closing:
            return
        self._stats["respawns"] += 1
        slot.worker = PoolWorker(
            self._ctx, sweep_module._run_sweep_item, self._pool_config
        )
        self._add_reader(slot)
        # A fresh process has a cold scenario memo: reset the ledger so the
        # hit-rate counters keep telling the truth.
        slot.seen.clear()

    def _retry_batch(
        self, slot: _WorkerSlot, batch: List[_Job], error_type: str, message: str
    ) -> None:
        for job in reversed(batch):
            if job.attempt > self.config.retries:
                self._stats["errors"] += 1
                terminal = (
                    error_type,
                    f"{message} (gave up after {job.attempt} attempt(s))",
                )
                if job.job_id is not None:
                    record = self._jobs.get(job.job_id)
                    if record is not None:
                        record["state"] = "error"
                        record["error"] = {
                            "type": terminal[0],
                            "message": terminal[1],
                        }
                    continue
                self._write(
                    job.writer,
                    protocol.error_response(job.request_id, terminal),
                )
                continue
            job.attempt += 1
            self._stats["retried"] += 1
            if job.job_id is not None:
                record = self._jobs.get(job.job_id)
                if record is not None:
                    record["state"] = "queued"
            self._enqueue(job, front=True)

    # ------------------------------------------------------------------ #
    # Responses and stats
    # ------------------------------------------------------------------ #

    def _account_row(self, row: dict) -> None:
        self._stats["compile_cache_hits"] += row.get("compile_cache_hits") or 0
        self._stats["compile_cache_misses"] += row.get("compile_cache_misses") or 0
        self._stats["compile_cache_evictions"] += (
            row.get("compile_cache_evictions") or 0
        )

    def _finish_job(self, job: _Job, row: dict) -> None:
        public = {k: v for k, v in row.items() if not k.startswith("_")}
        if job.job_id is not None:
            record = self._jobs.get(job.job_id)
            if record is not None:
                if public.get("error") is not None:
                    record["state"] = "error"
                    record["error"] = {
                        "type": public.get("error_type") or "SimulationError",
                        "message": public["error"],
                    }
                else:
                    record["state"] = "done"
                    record["row"] = public
            self._stats["errors" if public.get("error") is not None else "completed"] += 1
            return
        if public.get("error") is not None:
            self._stats["errors"] += 1
            self._write(
                job.writer,
                protocol.error_response(
                    job.request_id,
                    (public.get("error_type") or "SimulationError", public["error"]),
                    traceback=public.get("traceback") or "",
                ),
            )
            return
        self._stats["completed"] += 1
        self._write(job.writer, protocol.ok_response(job.request_id, public))

    def _write(self, writer: asyncio.StreamWriter, message: dict) -> None:
        if writer.is_closing():
            return  # the client went away; drop its responses
        with contextlib.suppress(ConnectionResetError, BrokenPipeError, OSError):
            writer.write(protocol.encode_message(message))

    async def _drain(self, writer: asyncio.StreamWriter) -> None:
        with contextlib.suppress(ConnectionResetError, BrokenPipeError, OSError):
            await writer.drain()

    def stats(self) -> dict:
        """A snapshot of the counters behind the service's perf claims."""
        s = self._stats
        hits, misses = s["affinity_hits"], s["affinity_misses"]
        routed = hits + misses
        dispatched = s["coalesced_jobs"] + s["solo_jobs"]
        return {
            "protocol_version": protocol.PROTOCOL_VERSION,
            "uptime_s": (
                time.monotonic() - self._started_at if self._started_at else 0.0
            ),
            "workers": {
                "n": len(self._slots),
                "deaths": s["worker_deaths"],
                "respawns": s["respawns"],
                "queued": sum(len(slot.queue) for slot in self._slots),
                "dispatches": [slot.dispatches for slot in self._slots],
            },
            "jobs": {
                "received": s["received"],
                "completed": s["completed"],
                "errors": s["errors"],
                "protocol_errors": s["protocol_errors"],
                "retried": s["retried"],
            },
            "async": {
                "submitted": s["submitted"],
                "polls": s["polls"],
                "progress_updates": s["progress_updates"],
                "registered": len(self._jobs),
            },
            "coalescing": {
                "batches": s["batches"],
                "coalesced_jobs": s["coalesced_jobs"],
                "solo_jobs": s["solo_jobs"],
                "max_batch": s["max_batch"],
                "mean_batch": (dispatched / s["batches"]) if s["batches"] else 0.0,
            },
            "affinity": {
                "hits": hits,
                "misses": misses,
                "hit_rate": (hits / routed) if routed else 0.0,
            },
            # meta.compile_cache, aggregated across the service's workers
            # from the per-row deltas (the same ledger sweep reports carry).
            "compile_cache": {
                "hits": s["compile_cache_hits"],
                "misses": s["compile_cache_misses"],
                "evictions": s["compile_cache_evictions"],
            },
        }


@contextlib.contextmanager
def serve_in_thread(config: Optional[ServiceConfig] = None):
    """Run a :class:`SchedulerService` on a background thread (tests/benchmarks).

    Yields the bound ``(host, port)``; the server and its workers are torn
    down when the context exits.
    """
    service = SchedulerService(config)
    started = threading.Event()
    failure: List[BaseException] = []
    address: List[Tuple[str, int]] = []
    loop = asyncio.new_event_loop()

    async def _main():
        try:
            address.append(await service.start())
        except BaseException as exc:  # surface startup failures to the caller
            failure.append(exc)
            raise
        finally:
            started.set()

    def _run():
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(_main())
            loop.run_forever()
        finally:
            loop.run_until_complete(service.close())
            loop.close()

    thread = threading.Thread(target=_run, name="repro-service", daemon=True)
    thread.start()
    started.wait(timeout=30.0)
    if failure:
        thread.join(timeout=5.0)
        raise failure[0]
    if not address:
        raise ConfigurationError("service failed to start within 30s")
    try:
        yield address[0]
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30.0)
