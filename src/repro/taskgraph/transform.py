"""Task-graph transformations.

The experiment drivers need a few simple graph rewrites:

* :func:`without_communication` — zero out every edge weight (the "w/o comm"
  columns of Table 2),
* :func:`scale_durations` / :func:`scale_communication` — calibrate generated
  graphs to the Table 1 averages and sweep the communication/computation
  ratio in the ablation benchmarks,
* :func:`merge_serial_chains` — a simple grain-packing pass that collapses
  pure chains into single tasks (useful for studying granularity).
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.exceptions import TaskGraphError
from repro.taskgraph.graph import TaskGraph
from repro.utils.validation import check_non_negative

__all__ = [
    "without_communication",
    "scale_durations",
    "scale_communication",
    "with_uniform_communication",
    "merge_serial_chains",
]


def without_communication(graph: TaskGraph, name: Optional[str] = None) -> TaskGraph:
    """Return a copy of *graph* whose edge communication weights are all zero."""
    new = TaskGraph(name or f"{graph.name}:nocomm")
    for tid in graph.tasks:
        t = graph.task(tid)
        new.add_task(tid, t.duration, t.label, **dict(t.attrs))
    for u, v, _ in graph.edges():
        new.add_dependency(u, v, 0.0)
    return new


def scale_durations(graph: TaskGraph, factor: float, name: Optional[str] = None) -> TaskGraph:
    """Return a copy with every task duration multiplied by *factor* (>= 0)."""
    check_non_negative("factor", factor)
    new = TaskGraph(name or graph.name)
    for tid in graph.tasks:
        t = graph.task(tid)
        new.add_task(tid, t.duration * factor, t.label, **dict(t.attrs))
    for u, v, w in graph.edges():
        new.add_dependency(u, v, w)
    return new


def scale_communication(graph: TaskGraph, factor: float, name: Optional[str] = None) -> TaskGraph:
    """Return a copy with every edge communication weight multiplied by *factor* (>= 0)."""
    check_non_negative("factor", factor)
    new = TaskGraph(name or graph.name)
    for tid in graph.tasks:
        t = graph.task(tid)
        new.add_task(tid, t.duration, t.label, **dict(t.attrs))
    for u, v, w in graph.edges():
        new.add_dependency(u, v, w * factor)
    return new


def with_uniform_communication(
    graph: TaskGraph, comm: float, name: Optional[str] = None
) -> TaskGraph:
    """Return a copy with every edge weight replaced by the constant *comm*."""
    check_non_negative("comm", comm)
    new = TaskGraph(name or graph.name)
    for tid in graph.tasks:
        t = graph.task(tid)
        new.add_task(tid, t.duration, t.label, **dict(t.attrs))
    for u, v, _ in graph.edges():
        new.add_dependency(u, v, comm)
    return new


def merge_serial_chains(graph: TaskGraph, name: Optional[str] = None) -> TaskGraph:
    """Collapse maximal serial chains into single tasks.

    A task ``v`` is merged into its predecessor ``u`` when ``u`` has exactly
    one successor (``v``) and ``v`` has exactly one predecessor (``u``): the
    two tasks can never run in parallel, so merging them preserves every
    feasible schedule while reducing scheduling overhead.  The merged task's
    duration is the sum of the chain durations; the internal communication
    weight disappears (the data never leaves the processor).

    The merged task keeps the identifier and label of the *first* task of the
    chain.  Attribute dictionaries of absorbed tasks are discarded.
    """
    graph.validate()
    # Union-find style chain head lookup.
    absorbed_into: dict[Hashable, Hashable] = {}

    def head(t: Hashable) -> Hashable:
        while t in absorbed_into:
            t = absorbed_into[t]
        return t

    durations = {t: graph.duration(t) for t in graph.tasks}
    for v in graph.topological_order():
        preds = graph.predecessors(v)
        if len(preds) != 1:
            continue
        u = preds[0]
        if len(graph.successors(u)) != 1:
            continue
        hu = head(u)
        absorbed_into[v] = hu
        durations[hu] += durations[v]

    new = TaskGraph(name or f"{graph.name}:merged")
    kept = [t for t in graph.tasks if t not in absorbed_into]
    for tid in kept:
        t = graph.task(tid)
        new.add_task(tid, durations[tid], t.label, **dict(t.attrs))
    for u, v, w in graph.edges():
        hu, hv = head(u), head(v)
        if hu == hv:
            continue
        if new.has_edge(hu, hv):
            # keep the largest weight among parallel merged edges
            if w > new.comm(hu, hv):
                new.remove_dependency(hu, hv)
                new.add_dependency(hu, hv, w)
        else:
            new.add_dependency(hu, hv, w)
    if not new.is_acyclic():  # pragma: no cover - defensive, should be impossible
        raise TaskGraphError("chain merging produced a cycle")
    return new
