"""The :class:`Task` record.

A task is a node of the directed task graph: it has an identifier, an
estimated CPU load (its *duration*, ``r_i`` in the paper) and an optional
human-readable label used by the workload generators (e.g. ``"pivot[3]"`` in
the Gauss–Jordan graph) and by Gantt-chart rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Any

from repro.utils.validation import check_non_negative

__all__ = ["Task"]


@dataclass(frozen=True)
class Task:
    """A single task of a directed task graph.

    Attributes
    ----------
    task_id:
        Hashable identifier, unique within its graph.
    duration:
        Estimated CPU load ``r_i`` (time units, the paper uses microseconds).
        Must be non-negative; zero-duration tasks are allowed and are used by
        some generators as pure synchronization points.
    label:
        Optional human-readable name.  Defaults to ``str(task_id)``.
    attrs:
        Free-form metadata attached by generators (e.g. the pivot index of a
        Gauss–Jordan elimination task).  Not interpreted by the library.
    """

    task_id: Hashable
    duration: float
    label: str = ""
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_non_negative("duration", self.duration)
        if not self.label:
            object.__setattr__(self, "label", str(self.task_id))

    def with_duration(self, duration: float) -> "Task":
        """Return a copy of this task with a different duration."""
        return Task(self.task_id, duration, self.label, dict(self.attrs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Task({self.task_id!r}, duration={self.duration:g})"
