"""Structural and quantitative properties of task graphs.

These are the quantities reported in the paper's Table 1 (number of tasks,
average duration, average communication, communication/computation ratio,
maximum speedup) plus a few additional measurements (graph width, parallelism
profile, edge density) used by the benchmarks and by the random-graph
calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List

import numpy as np

from repro.taskgraph.levels import compute_colevels, critical_path_length

__all__ = [
    "GraphProperties",
    "graph_properties",
    "communication_to_computation_ratio",
    "max_speedup",
    "parallelism_profile",
    "graph_width",
    "edge_density",
]

TaskId = Hashable


def communication_to_computation_ratio(graph) -> float:
    """The C/C ratio of Table 1: average communication / average duration.

    The paper reports the ratio of the average edge communication time to the
    average task duration (in per cent in the table).  Returns 0.0 for graphs
    without edges and raises :class:`ZeroDivisionError` only if total work is
    zero while communication is not.
    """
    n_edges = graph.n_edges
    n_tasks = graph.n_tasks
    if n_edges == 0 or n_tasks == 0:
        return 0.0
    avg_comm = graph.total_communication() / n_edges
    avg_dur = graph.total_work() / n_tasks
    if avg_dur == 0.0:
        if avg_comm == 0.0:
            return 0.0
        raise ZeroDivisionError("graph has zero total work but non-zero communication")
    return avg_comm / avg_dur


def max_speedup(graph) -> float:
    """Maximum achievable speedup ``T_1 / T_inf`` (no communication, unbounded processors)."""
    cp = critical_path_length(graph)
    if cp == 0.0:
        return 0.0
    return graph.total_work() / cp


def parallelism_profile(graph, n_bins: int = 0) -> List[int]:
    """Number of tasks that *could* run concurrently, per precedence depth.

    The profile is computed on precedence depth (unit-duration co-level), i.e.
    entry tasks are depth 0, a task's depth is one more than its deepest
    predecessor.  The return value is a list whose ``d``-th entry is the
    number of tasks at depth ``d``.  If *n_bins* is positive the list is
    padded or truncated to that length.
    """
    depth: Dict[TaskId, int] = {}
    for tid in graph.topological_order():
        preds = graph.predecessors(tid)
        depth[tid] = 0 if not preds else 1 + max(depth[p] for p in preds)
    if not depth:
        profile: List[int] = []
    else:
        max_depth = max(depth.values())
        profile = [0] * (max_depth + 1)
        for d in depth.values():
            profile[d] += 1
    if n_bins > 0:
        profile = (profile + [0] * n_bins)[:n_bins]
    return profile


def graph_width(graph) -> int:
    """Maximum number of tasks at any precedence depth (an upper bound on useful processors)."""
    profile = parallelism_profile(graph)
    return max(profile) if profile else 0


def edge_density(graph) -> float:
    """Edges divided by the maximum possible number of DAG edges ``n(n-1)/2``."""
    n = graph.n_tasks
    if n < 2:
        return 0.0
    return graph.n_edges / (n * (n - 1) / 2.0)


@dataclass(frozen=True)
class GraphProperties:
    """Summary record mirroring (and extending) one row of the paper's Table 1."""

    name: str
    n_tasks: int
    n_edges: int
    average_duration: float
    average_communication: float
    cc_ratio: float
    max_speedup: float
    critical_path_length: float
    total_work: float
    width: int
    depth: int

    def as_table1_row(self) -> list:
        """Return the row in the column order of the paper's Table 1."""
        return [
            self.name,
            self.n_tasks,
            self.average_duration,
            self.average_communication,
            100.0 * self.cc_ratio,
            self.max_speedup,
        ]


def graph_properties(graph) -> GraphProperties:
    """Compute the :class:`GraphProperties` summary of *graph*."""
    n_tasks = graph.n_tasks
    n_edges = graph.n_edges
    durations = np.array([graph.duration(t) for t in graph.tasks], dtype=float)
    comms = np.array([w for _, _, w in graph.edges()], dtype=float)
    avg_dur = float(durations.mean()) if n_tasks else 0.0
    avg_comm = float(comms.mean()) if n_edges else 0.0
    profile = parallelism_profile(graph)
    return GraphProperties(
        name=graph.name,
        n_tasks=n_tasks,
        n_edges=n_edges,
        average_duration=avg_dur,
        average_communication=avg_comm,
        cc_ratio=communication_to_computation_ratio(graph),
        max_speedup=max_speedup(graph),
        critical_path_length=critical_path_length(graph),
        total_work=graph.total_work(),
        width=max(profile) if profile else 0,
        depth=len(profile),
    )
