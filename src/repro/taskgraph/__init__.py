"""Directed task-graph substrate.

A :class:`~repro.taskgraph.graph.TaskGraph` is the quadruple
``TG = {T, R, W, <*}`` from the paper: a set of tasks ``T`` with CPU-load
requirements ``R`` (durations), communication weights ``W`` on the edges, and
the precedence relation ``<*`` encoded by the directed edges themselves.

The subpackage also provides level / critical-path computations, structural
property measurements, random and structured generators, serialization and
transformations.
"""

from repro.taskgraph.task import Task
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.levels import (
    compute_levels,
    compute_colevels,
    critical_path,
    critical_path_length,
)
from repro.taskgraph.properties import (
    GraphProperties,
    graph_properties,
    communication_to_computation_ratio,
    max_speedup,
    parallelism_profile,
    graph_width,
)
from repro.taskgraph import generators
from repro.taskgraph import families
from repro.taskgraph import io
from repro.taskgraph import transform

__all__ = [
    "Task",
    "TaskGraph",
    "compute_levels",
    "compute_colevels",
    "critical_path",
    "critical_path_length",
    "GraphProperties",
    "graph_properties",
    "communication_to_computation_ratio",
    "max_speedup",
    "parallelism_profile",
    "graph_width",
    "generators",
    "families",
    "io",
    "transform",
]
