"""The :class:`TaskGraph` container.

``TaskGraph`` stores the quadruple ``TG = {T, R, W, <*}`` of the paper:

* ``T`` — the tasks (nodes), each with a duration ``r_i`` (CPU load),
* ``W`` — communication weights ``w_ij`` on the edges (the *time* needed to
  transfer the data produced by ``t_i`` and consumed by ``t_j`` over one
  link, i.e. message length divided by link bandwidth),
* ``<*`` — the precedence constraints given by the directed edges.

The class is a thin, validated wrapper around adjacency dictionaries.  It
keeps insertion order for deterministic iteration, supports conversion to and
from :class:`networkx.DiGraph`, and exposes the level / critical-path helpers
from :mod:`repro.taskgraph.levels` as convenience methods.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Tuple

import networkx as nx

from repro.exceptions import CycleError, TaskGraphError, UnknownTaskError
from repro.taskgraph.task import Task
from repro.utils.validation import check_non_negative

__all__ = ["TaskGraph"]

TaskId = Hashable


class TaskGraph:
    """A directed acyclic task graph with durations and communication weights.

    Parameters
    ----------
    name:
        Human-readable name of the graph (used in reports and benchmarks).

    Examples
    --------
    >>> g = TaskGraph("diamond")
    >>> for t, d in [("a", 2.0), ("b", 3.0), ("c", 1.0), ("d", 2.0)]:
    ...     _ = g.add_task(t, d)
    >>> g.add_dependency("a", "b", comm=1.0)
    >>> g.add_dependency("a", "c", comm=1.0)
    >>> g.add_dependency("b", "d", comm=0.5)
    >>> g.add_dependency("c", "d", comm=0.5)
    >>> g.n_tasks, g.n_edges
    (4, 4)
    >>> g.critical_path()
    ['a', 'b', 'd']
    """

    def __init__(self, name: str = "taskgraph") -> None:
        self.name = str(name)
        self._tasks: Dict[TaskId, Task] = {}
        self._succ: Dict[TaskId, Dict[TaskId, float]] = {}
        self._pred: Dict[TaskId, Dict[TaskId, float]] = {}
        # Structural version counter: bumped by every mutation, lets
        # ``validate()`` memoize its full scan (tasks are frozen records, so
        # all mutations go through the methods below).
        self._version = 0
        self._validated_version = -1
        self._total_work_version = -1
        self._total_work = 0.0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_task(
        self,
        task_id: TaskId,
        duration: float,
        label: str = "",
        **attrs,
    ) -> Task:
        """Add a task and return the created :class:`Task`.

        Raises :class:`TaskGraphError` if the identifier already exists.
        """
        if task_id in self._tasks:
            raise TaskGraphError(f"duplicate task id {task_id!r} in graph {self.name!r}")
        task = Task(task_id, duration, label, attrs)
        self._tasks[task_id] = task
        self._succ[task_id] = {}
        self._pred[task_id] = {}
        self._version += 1
        return task

    def add_dependency(self, u: TaskId, v: TaskId, comm: float = 0.0) -> None:
        """Add the precedence constraint ``u <* v`` with communication weight *comm*.

        ``comm`` is the time needed to move the data produced by *u* and
        consumed by *v* across a single link (``w_uv`` in the paper).  Adding
        the same edge twice overwrites the weight.

        Raises
        ------
        UnknownTaskError
            If either endpoint has not been added.
        TaskGraphError
            For self-loops or negative weights.
        """
        if u not in self._tasks:
            raise UnknownTaskError(u)
        if v not in self._tasks:
            raise UnknownTaskError(v)
        if u == v:
            raise TaskGraphError(f"self-dependency on task {u!r} is not allowed")
        weight = check_non_negative("comm", comm)
        self._succ[u][v] = weight
        self._pred[v][u] = weight
        self._version += 1

    def remove_dependency(self, u: TaskId, v: TaskId) -> None:
        """Remove the edge ``u -> v``; raise :class:`TaskGraphError` if absent."""
        if u not in self._succ or v not in self._succ[u]:
            raise TaskGraphError(f"edge {u!r} -> {v!r} not present")
        del self._succ[u][v]
        del self._pred[v][u]
        self._version += 1

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def tasks(self) -> List[TaskId]:
        """Task identifiers in insertion order."""
        return list(self._tasks.keys())

    @property
    def n_tasks(self) -> int:
        return len(self._tasks)

    @property
    def n_edges(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: TaskId) -> bool:
        return task_id in self._tasks

    def __iter__(self) -> Iterator[TaskId]:
        return iter(self._tasks)

    def task(self, task_id: TaskId) -> Task:
        """Return the :class:`Task` record for *task_id*."""
        try:
            return self._tasks[task_id]
        except KeyError:
            raise UnknownTaskError(task_id) from None

    def duration(self, task_id: TaskId) -> float:
        """Return the CPU load ``r_i`` of *task_id*."""
        return self.task(task_id).duration

    def comm(self, u: TaskId, v: TaskId) -> float:
        """Return the communication weight ``w_uv`` of edge ``u -> v``.

        Raises :class:`TaskGraphError` if the edge does not exist.
        """
        if u not in self._tasks:
            raise UnknownTaskError(u)
        try:
            return self._succ[u][v]
        except KeyError:
            raise TaskGraphError(f"edge {u!r} -> {v!r} not present") from None

    def has_edge(self, u: TaskId, v: TaskId) -> bool:
        return u in self._succ and v in self._succ[u]

    def successors(self, task_id: TaskId) -> List[TaskId]:
        """Immediate successors of *task_id* (tasks that must start after it)."""
        if task_id not in self._tasks:
            raise UnknownTaskError(task_id)
        return list(self._succ[task_id].keys())

    def predecessors(self, task_id: TaskId) -> List[TaskId]:
        """Immediate predecessors of *task_id*."""
        if task_id not in self._tasks:
            raise UnknownTaskError(task_id)
        return list(self._pred[task_id].keys())

    def edges(self) -> Iterator[Tuple[TaskId, TaskId, float]]:
        """Iterate over ``(u, v, comm_weight)`` triples in insertion order."""
        for u, targets in self._succ.items():
            for v, w in targets.items():
                yield (u, v, w)

    def entry_tasks(self) -> List[TaskId]:
        """Tasks with no predecessors (the graph roots)."""
        return [t for t in self._tasks if not self._pred[t]]

    def exit_tasks(self) -> List[TaskId]:
        """Tasks with no successors (the graph leaves)."""
        return [t for t in self._tasks if not self._succ[t]]

    def in_degree(self, task_id: TaskId) -> int:
        if task_id not in self._tasks:
            raise UnknownTaskError(task_id)
        return len(self._pred[task_id])

    def out_degree(self, task_id: TaskId) -> int:
        if task_id not in self._tasks:
            raise UnknownTaskError(task_id)
        return len(self._succ[task_id])

    def total_work(self) -> float:
        """Sum of all task durations (the serial execution time ``T_1``).

        Memoized on the structural version: every simulation result reads
        it, so a batched sweep would otherwise re-sum the same graph once
        per lane.
        """
        if self._total_work_version != self._version:
            self._total_work = float(sum(t.duration for t in self._tasks.values()))
            self._total_work_version = self._version
        return self._total_work

    def total_communication(self) -> float:
        """Sum of all edge communication weights."""
        return float(sum(w for _, _, w in self.edges()))

    # ------------------------------------------------------------------ #
    # Ordering and validation
    # ------------------------------------------------------------------ #
    def topological_order(self) -> List[TaskId]:
        """Return the tasks in a topological order (Kahn's algorithm).

        The order is deterministic: among simultaneously-ready tasks the
        insertion order is preserved.  Raises :class:`CycleError` if the graph
        contains a cycle.
        """
        in_deg = {t: len(self._pred[t]) for t in self._tasks}
        ready = [t for t in self._tasks if in_deg[t] == 0]
        order: List[TaskId] = []
        idx = 0
        while idx < len(ready):
            u = ready[idx]
            idx += 1
            order.append(u)
            for v in self._succ[u]:
                in_deg[v] -= 1
                if in_deg[v] == 0:
                    ready.append(v)
        if len(order) != len(self._tasks):
            raise CycleError(f"task graph {self.name!r} contains a cycle")
        return order

    def is_acyclic(self) -> bool:
        """Return ``True`` if the graph has no cycles."""
        try:
            self.topological_order()
        except CycleError:
            return False
        return True

    def validate(self) -> None:
        """Check structural invariants; raise :class:`TaskGraphError` on violation.

        Invariants: the graph is acyclic, durations and weights are
        non-negative and finite, and the successor/predecessor maps are
        mutually consistent.

        The scan is memoized against the structural version counter (tasks
        are frozen records, so every mutation bumps it): validating the same
        unchanged graph repeatedly — as paired policy comparisons and sweep
        drivers do — costs O(1) after the first pass.
        """
        if self._validated_version == self._version:
            return
        self.topological_order()  # raises CycleError if cyclic
        for task in self._tasks.values():
            check_non_negative(f"duration of {task.task_id!r}", task.duration)
        for u, v, w in self.edges():
            check_non_negative(f"comm weight of edge {u!r}->{v!r}", w)
            if self._pred[v].get(u) != w:
                raise TaskGraphError(
                    f"inconsistent adjacency for edge {u!r} -> {v!r}"
                )
        self._validated_version = self._version

    # ------------------------------------------------------------------ #
    # Derived quantities (delegating to repro.taskgraph.levels)
    # ------------------------------------------------------------------ #
    def levels(self, include_communication: bool = False) -> Dict[TaskId, float]:
        """Task levels ``n_i`` (longest downward path including own duration)."""
        from repro.taskgraph.levels import compute_levels

        return compute_levels(self, include_communication=include_communication)

    def colevels(self, include_communication: bool = False) -> Dict[TaskId, float]:
        """Co-levels (longest upward path including own duration)."""
        from repro.taskgraph.levels import compute_colevels

        return compute_colevels(self, include_communication=include_communication)

    def critical_path(self) -> List[TaskId]:
        """One longest (duration-weighted) root-to-leaf chain."""
        from repro.taskgraph.levels import critical_path

        return critical_path(self)

    def critical_path_length(self) -> float:
        """Length of the critical path (the ``T_inf`` lower bound on makespan)."""
        from repro.taskgraph.levels import critical_path_length

        return critical_path_length(self)

    # ------------------------------------------------------------------ #
    # Conversion
    # ------------------------------------------------------------------ #
    def to_networkx(self) -> nx.DiGraph:
        """Export to a :class:`networkx.DiGraph`.

        Node attribute ``duration`` and edge attribute ``comm`` carry the
        quantitative data; node attribute ``label`` carries the display name.
        """
        g = nx.DiGraph(name=self.name)
        for task in self._tasks.values():
            g.add_node(task.task_id, duration=task.duration, label=task.label, **dict(task.attrs))
        for u, v, w in self.edges():
            g.add_edge(u, v, comm=w)
        return g

    @classmethod
    def from_networkx(cls, g: nx.DiGraph, name: Optional[str] = None) -> "TaskGraph":
        """Build a :class:`TaskGraph` from a :class:`networkx.DiGraph`.

        Missing ``duration`` node attributes default to 1.0 and missing
        ``comm`` edge attributes default to 0.0.
        """
        tg = cls(name or g.graph.get("name", "taskgraph"))
        for node, data in g.nodes(data=True):
            extra = {k: v for k, v in data.items() if k not in ("duration", "label")}
            tg.add_task(node, float(data.get("duration", 1.0)), data.get("label", ""), **extra)
        for u, v, data in g.edges(data=True):
            tg.add_dependency(u, v, float(data.get("comm", 0.0)))
        return tg

    def copy(self, name: Optional[str] = None) -> "TaskGraph":
        """Return an independent copy of this graph."""
        new = TaskGraph(name or self.name)
        for task in self._tasks.values():
            new.add_task(task.task_id, task.duration, task.label, **dict(task.attrs))
        for u, v, w in self.edges():
            new.add_dependency(u, v, w)
        return new

    def relabeled(self, mapping: Mapping[TaskId, TaskId], name: Optional[str] = None) -> "TaskGraph":
        """Return a copy with task ids replaced according to *mapping*.

        Identifiers absent from *mapping* are kept unchanged.  Raises
        :class:`TaskGraphError` if the relabeling collapses two tasks.
        """
        new_ids = [mapping.get(t, t) for t in self._tasks]
        if len(set(new_ids)) != len(new_ids):
            raise TaskGraphError("relabeling maps two tasks to the same identifier")
        new = TaskGraph(name or self.name)
        for task in self._tasks.values():
            nid = mapping.get(task.task_id, task.task_id)
            new.add_task(nid, task.duration, task.label, **dict(task.attrs))
        for u, v, w in self.edges():
            new.add_dependency(mapping.get(u, u), mapping.get(v, v), w)
        return new

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskGraph(name={self.name!r}, n_tasks={self.n_tasks}, "
            f"n_edges={self.n_edges})"
        )
