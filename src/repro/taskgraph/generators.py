"""Random and structured task-graph generators.

These generators serve three purposes:

* property-based and unit testing of the schedulers and the simulator,
* the random-graph benchmark that mirrors the paper's remark that HLF stays
  within 5 % of optimal on 900 random task graphs (Adam et al. 1974),
* building blocks for the paper workloads in :mod:`repro.workloads`.

All generators take a ``seed`` argument (``None``, int, or a numpy
``Generator``) and produce deterministic graphs for a fixed seed.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

from repro.exceptions import TaskGraphError
from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_non_negative, check_positive, check_probability

__all__ = [
    "MIN_DURATION",
    "draw_duration",
    "chain",
    "fork_join",
    "diamond",
    "intree",
    "outtree",
    "layered_random",
    "random_dag",
    "series_parallel",
    "independent_tasks",
    "graham_anomaly_graph",
]

#: Floor applied to every stochastic duration/communication draw.  At large
#: coefficients of variation (``cv >> 1``) the gamma shape ``1/cv^2`` is tiny
#: and ``rng.gamma`` underflows to exactly ``0.0`` for a sizeable fraction of
#: draws; a zero duration would make a task free and a zero-length critical
#: path possible, so draws are clamped to this floor.  Shared by every
#: generator here and by the workload-zoo families
#: (:mod:`repro.taskgraph.families`).
MIN_DURATION = 1e-9


def draw_duration(rng, mean: float, cv: float) -> float:
    """Draw a positive duration with the given mean and coefficient of variation.

    ``cv <= 0`` returns *mean* exactly (deterministic durations).  Otherwise
    the draw is gamma distributed (shape ``1/cv^2``, which keeps values
    positive) and clamped from below to :data:`MIN_DURATION` — the clamp only
    engages for ``cv >> 1``, where the tiny gamma shape underflows to zero.
    """
    if cv <= 0.0:
        return mean
    # Gamma distribution keeps durations positive; shape k = 1/cv^2.
    shape = 1.0 / (cv * cv)
    scale = mean / shape
    value = float(rng.gamma(shape, scale))
    return max(value, MIN_DURATION)


#: Backward-compatible alias (the generators below predate the public name).
_draw_duration = draw_duration


def chain(
    n_tasks: int,
    duration: float = 1.0,
    comm: float = 0.0,
    name: str = "chain",
) -> TaskGraph:
    """A linear chain ``t0 -> t1 -> ... -> t{n-1}`` (no parallelism at all)."""
    if n_tasks < 1:
        raise TaskGraphError(f"chain needs at least one task, got {n_tasks}")
    g = TaskGraph(name)
    for i in range(n_tasks):
        g.add_task(i, duration, label=f"chain[{i}]")
    for i in range(n_tasks - 1):
        g.add_dependency(i, i + 1, comm)
    return g


def independent_tasks(
    n_tasks: int,
    duration: float = 1.0,
    name: str = "independent",
) -> TaskGraph:
    """*n* tasks with no precedence constraints (perfectly parallel work)."""
    if n_tasks < 1:
        raise TaskGraphError(f"need at least one task, got {n_tasks}")
    g = TaskGraph(name)
    for i in range(n_tasks):
        g.add_task(i, duration, label=f"job[{i}]")
    return g


def fork_join(
    n_branches: int,
    branch_duration: float = 1.0,
    root_duration: float = 1.0,
    comm: float = 0.0,
    name: str = "fork_join",
) -> TaskGraph:
    """A root task forking into *n_branches* parallel tasks joined by a sink."""
    if n_branches < 1:
        raise TaskGraphError(f"need at least one branch, got {n_branches}")
    g = TaskGraph(name)
    g.add_task("fork", root_duration, label="fork")
    g.add_task("join", root_duration, label="join")
    for i in range(n_branches):
        tid = f"branch[{i}]"
        g.add_task(tid, branch_duration, label=tid)
        g.add_dependency("fork", tid, comm)
        g.add_dependency(tid, "join", comm)
    return g


def diamond(
    depth: int,
    duration: float = 1.0,
    comm: float = 0.0,
    name: str = "diamond",
) -> TaskGraph:
    """A diamond lattice: width grows to *depth* then shrinks back to one.

    Row ``r`` (0-based) has ``min(r, 2*depth - r) + 1`` tasks; every task
    depends on its at most two upper neighbours, as in a wavefront
    computation.
    """
    if depth < 1:
        raise TaskGraphError(f"depth must be >= 1, got {depth}")
    g = TaskGraph(name)
    n_rows = 2 * depth + 1

    def row_width(r: int) -> int:
        return min(r, 2 * depth - r) + 1

    for r in range(n_rows):
        for c in range(row_width(r)):
            g.add_task((r, c), duration, label=f"d[{r},{c}]")
    for r in range(1, n_rows):
        w_prev, w_cur = row_width(r - 1), row_width(r)
        for c in range(w_cur):
            if w_cur > w_prev:  # expanding half
                for pc in (c - 1, c):
                    if 0 <= pc < w_prev:
                        g.add_dependency((r - 1, pc), (r, c), comm)
            else:  # contracting half
                for pc in (c, c + 1):
                    if 0 <= pc < w_prev:
                        g.add_dependency((r - 1, pc), (r, c), comm)
    return g


def intree(
    depth: int,
    branching: int = 2,
    duration: float = 1.0,
    comm: float = 0.0,
    name: str = "intree",
) -> TaskGraph:
    """A complete in-tree (reduction tree): leaves feed towards a single root.

    Depth 0 is a single task; depth ``d`` has ``branching**d`` leaves.  This is
    the classical assembly-line / summation structure studied by Hu (1961).
    """
    if depth < 0:
        raise TaskGraphError(f"depth must be >= 0, got {depth}")
    if branching < 1:
        raise TaskGraphError(f"branching must be >= 1, got {branching}")
    g = TaskGraph(name)
    # level 0 = root (exit task); level depth = leaves (entry tasks)
    for lvl in range(depth + 1):
        for i in range(branching**lvl):
            g.add_task((lvl, i), duration, label=f"t[{lvl},{i}]")
    for lvl in range(1, depth + 1):
        for i in range(branching**lvl):
            g.add_dependency((lvl, i), (lvl - 1, i // branching), comm)
    return g


def outtree(
    depth: int,
    branching: int = 2,
    duration: float = 1.0,
    comm: float = 0.0,
    name: str = "outtree",
) -> TaskGraph:
    """A complete out-tree (broadcast tree): a single root fans out to leaves."""
    if depth < 0:
        raise TaskGraphError(f"depth must be >= 0, got {depth}")
    if branching < 1:
        raise TaskGraphError(f"branching must be >= 1, got {branching}")
    g = TaskGraph(name)
    for lvl in range(depth + 1):
        for i in range(branching**lvl):
            g.add_task((lvl, i), duration, label=f"t[{lvl},{i}]")
    for lvl in range(1, depth + 1):
        for i in range(branching**lvl):
            g.add_dependency((lvl - 1, i // branching), (lvl, i), comm)
    return g


def layered_random(
    n_layers: int,
    width: int,
    edge_probability: float = 0.5,
    mean_duration: float = 10.0,
    duration_cv: float = 0.3,
    mean_comm: float = 2.0,
    comm_cv: float = 0.3,
    seed: SeedLike = None,
    name: str = "layered_random",
) -> TaskGraph:
    """Random layered DAG: tasks arranged in layers, edges only between adjacent layers.

    Every non-entry task receives at least one predecessor from the previous
    layer so that the graph is connected along the precedence direction; the
    remaining adjacent-layer pairs are connected independently with
    *edge_probability*.  Durations and communication weights are gamma
    distributed with the requested means and coefficients of variation.
    """
    if n_layers < 1:
        raise TaskGraphError(f"n_layers must be >= 1, got {n_layers}")
    if width < 1:
        raise TaskGraphError(f"width must be >= 1, got {width}")
    check_probability("edge_probability", edge_probability)
    check_positive("mean_duration", mean_duration)
    check_non_negative("mean_comm", mean_comm)
    rng = as_rng(seed)
    g = TaskGraph(name)
    layers: list[list[Hashable]] = []
    for layer in range(n_layers):
        ids = []
        for j in range(width):
            tid = (layer, j)
            g.add_task(tid, _draw_duration(rng, mean_duration, duration_cv), label=f"L{layer}T{j}")
            ids.append(tid)
        layers.append(ids)
    for layer in range(1, n_layers):
        for v in layers[layer]:
            preds = [u for u in layers[layer - 1] if rng.random() < edge_probability]
            if not preds:
                preds = [layers[layer - 1][int(rng.integers(0, width))]]
            for u in preds:
                g.add_dependency(u, v, _draw_duration(rng, mean_comm, comm_cv) if mean_comm > 0 else 0.0)
    return g


def random_dag(
    n_tasks: int,
    edge_probability: float = 0.15,
    mean_duration: float = 10.0,
    duration_cv: float = 0.5,
    mean_comm: float = 2.0,
    comm_cv: float = 0.5,
    seed: SeedLike = None,
    name: str = "random_dag",
) -> TaskGraph:
    """Erdős–Rényi-style random DAG over a random topological order.

    Each ordered pair ``(i, j)`` with ``i < j`` in a random permutation becomes
    an edge with probability *edge_probability*; this is the classical model
    used for statistical list-scheduler comparisons (Adam et al. 1974).
    """
    if n_tasks < 1:
        raise TaskGraphError(f"n_tasks must be >= 1, got {n_tasks}")
    check_probability("edge_probability", edge_probability)
    rng = as_rng(seed)
    g = TaskGraph(name)
    order = list(rng.permutation(n_tasks))
    for i in range(n_tasks):
        g.add_task(i, _draw_duration(rng, mean_duration, duration_cv), label=f"t{i}")
    for a in range(n_tasks):
        for b in range(a + 1, n_tasks):
            if rng.random() < edge_probability:
                u, v = int(order[a]), int(order[b])
                if not g.has_edge(u, v):
                    g.add_dependency(
                        u, v, _draw_duration(rng, mean_comm, comm_cv) if mean_comm > 0 else 0.0
                    )
    return g


def series_parallel(
    depth: int,
    fanout: int = 2,
    mean_duration: float = 10.0,
    duration_cv: float = 0.3,
    mean_comm: float = 2.0,
    seed: SeedLike = None,
    name: str = "series_parallel",
) -> TaskGraph:
    """Recursive series-parallel graph (alternating fork/join composition).

    At each recursion level a segment either stays a single task (depth 0) or
    becomes a fork into *fanout* sub-segments followed by a join.  This shape
    is typical of divide-and-conquer programs.
    """
    if depth < 0:
        raise TaskGraphError(f"depth must be >= 0, got {depth}")
    if fanout < 1:
        raise TaskGraphError(f"fanout must be >= 1, got {fanout}")
    rng = as_rng(seed)
    g = TaskGraph(name)
    counter = [0]

    def new_task(tag: str) -> Hashable:
        tid = counter[0]
        counter[0] += 1
        g.add_task(tid, _draw_duration(rng, mean_duration, duration_cv), label=f"{tag}{tid}")
        return tid

    def build(level: int) -> tuple:
        """Return (entry_id, exit_id) of the generated segment."""
        if level == 0:
            t = new_task("w")
            return t, t
        fork = new_task("f")
        join = new_task("j")
        for _ in range(fanout):
            entry, exit_ = build(level - 1)
            g.add_dependency(fork, entry, mean_comm)
            g.add_dependency(exit_, join, mean_comm)
        return fork, join

    build(depth)
    return g


def graham_anomaly_graph(name: str = "graham_anomaly") -> TaskGraph:
    """The classical Graham (1969) list-scheduling anomaly instance.

    Nine tasks scheduled on three processors: the natural priority list gives
    a schedule of length 12 while the optimum is shorter; reducing durations
    or adding processors can paradoxically *increase* the list schedule
    length.  The paper notes that the SA scheduler resolves these anomalies.

    Durations follow Graham's example: T1=3, T2=2, T3=2, T4=2, T5=4, T6=4,
    T7=4, T8=4, T9=9, with T9 depending on T4, and T5..T8 depending on T4... we
    use the standard instance where T1..T3 are independent, T9 depends on T1,
    and T4..T8 are independent long tasks.
    """
    g = TaskGraph(name)
    durations = {1: 3, 2: 2, 3: 2, 4: 2, 5: 4, 6: 4, 7: 4, 8: 4, 9: 9}
    for tid, d in durations.items():
        g.add_task(tid, float(d), label=f"T{tid}")
    # Graham's figure: T9 must wait for T4; T5..T8 must wait for T3 and T4.
    g.add_dependency(4, 9, 0.0)
    for t in (5, 6, 7, 8):
        g.add_dependency(3, t, 0.0)
        g.add_dependency(4, t, 0.0)
    return g
