"""The realistic workload zoo: Pegasus, elementary and IRW graph families.

Fourteen validated task-graph families in three groups, ported from the
estee simulator's generator suite:

* **pegasus** — scientific-workflow shapes (montage, cybershake,
  epigenomics, ligo, sipht),
* **elementary** — minimal single-stress shapes (bigmerge, splitters, grid,
  fern, merge_neighbours, duration_stairs),
* **irw** — production data-pipeline shapes (mapreduce, crossv, gridcat).

Every family is parameterized by one dominant size knob, draws durations and
communication volumes deterministically from a seed, and asserts its exact
structural contract (closed-form task/edge counts, entry/exit counts,
hop-depth level shape, connectivity) at construction.

:data:`FAMILIES` is the registry: each :class:`FamilySpec` carries the
builder, two calibrated parameter sets (``default_params`` — a sweep-sized
instance of ~40-60 tasks comparable to the existing random families — and
``large_params`` — a >= 1000-task instance for the cross-family policy
study), the closed-form count formulas the property tests cross-check
against built graphs, and a hypothesis parameter grid.  The sweep runner
exposes every family under its registry key (and the large instance as
``<key>-1k``) through ``--families``; see :mod:`repro.workloads.zoo`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple

from repro.taskgraph.families import elementary, irw, pegasus
from repro.taskgraph.families._common import (
    depth_profile,
    hop_depths,
    n_weak_components,
    structural_fingerprint,
    validate_structure,
)
from repro.taskgraph.families.elementary import (
    bigmerge,
    duration_stairs,
    fern,
    grid,
    merge_neighbours,
    splitters,
)
from repro.taskgraph.families.irw import crossv, gridcat, mapreduce
from repro.taskgraph.families.pegasus import (
    cybershake,
    epigenomics,
    ligo,
    montage,
    sipht,
)
from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import SeedLike

__all__ = [
    "FamilySpec",
    "FAMILIES",
    "FAMILY_GROUPS",
    "family_names",
    "families_in_group",
    "build_family",
    "structural_fingerprint",
    "depth_profile",
    "hop_depths",
    "n_weak_components",
    "validate_structure",
    "pegasus",
    "elementary",
    "irw",
    "montage",
    "cybershake",
    "epigenomics",
    "ligo",
    "sipht",
    "bigmerge",
    "splitters",
    "grid",
    "fern",
    "merge_neighbours",
    "duration_stairs",
    "mapreduce",
    "crossv",
    "gridcat",
]


@dataclass(frozen=True)
class FamilySpec:
    """One registry entry: builder, calibrated sizes and structural formulas."""

    key: str
    group: str
    builder: Callable[..., TaskGraph]
    #: Sweep-sized parameters (~40-60 tasks, comparable to the random families).
    default_params: Mapping[str, int]
    #: Policy-study parameters (>= 1000 tasks).
    large_params: Mapping[str, int]
    #: Closed-form task count; takes the builder's size parameters as kwargs.
    expected_tasks: Callable[..., int]
    #: Closed-form edge count; takes the builder's size parameters as kwargs.
    expected_edges: Callable[..., int]
    #: Inclusive hypothesis bounds per size parameter.
    param_grid: Mapping[str, Tuple[int, int]] = field(default_factory=dict)
    description: str = ""

    def build(self, seed: SeedLike = 0, **overrides) -> TaskGraph:
        """Build the sweep-sized instance (parameters overridable per call)."""
        params = {**self.default_params, **overrides}
        return self.builder(seed=seed, **params)

    def build_large(self, seed: SeedLike = 0) -> TaskGraph:
        """Build the >= 1000-task policy-study instance."""
        return self.builder(seed=seed, **self.large_params)


def _spec(key, group, builder, default_params, large_params,
          expected_tasks, expected_edges, param_grid, description) -> FamilySpec:
    spec = FamilySpec(
        key=key, group=group, builder=builder,
        default_params=dict(default_params), large_params=dict(large_params),
        expected_tasks=expected_tasks, expected_edges=expected_edges,
        param_grid=dict(param_grid), description=description,
    )
    large = spec.expected_tasks(**spec.large_params)
    if large < 1000:
        raise AssertionError(
            f"{key}: large_params build only {large} tasks (< 1000)"
        )
    return spec


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


FAMILIES: Dict[str, FamilySpec] = {
    spec.key: spec
    for spec in (
        # ------------------------------ pegasus ------------------------- #
        _spec(
            "montage", "pegasus", montage,
            {"n_inputs": 12}, {"n_inputs": 250},
            lambda n_inputs: 4 * n_inputs + 3,
            lambda n_inputs: 10 * n_inputs - 5,
            {"n_inputs": (2, 40)},
            "astronomy mosaic: project/diff-fit/background/add pipeline",
        ),
        _spec(
            "cybershake", "pegasus", cybershake,
            {"n_sites": 8}, {"n_sites": 143},
            lambda n_sites: 7 * n_sites + 2,
            lambda n_sites: 12 * n_sites,
            {"n_sites": (1, 30)},
            "seismic hazard: wide fan-out/fan-in, depth 4 at any size",
        ),
        _spec(
            "epigenomics", "pegasus", epigenomics,
            {"n_lanes": 12}, {"n_lanes": 250},
            lambda n_lanes: 4 * n_lanes + 4,
            lambda n_lanes: 5 * n_lanes + 2,
            {"n_lanes": (1, 40)},
            "DNA methylation: split into parallel 4-stage chains, merge",
        ),
        _spec(
            "ligo", "pegasus", ligo,
            {"n_templates": 12}, {"n_templates": 250},
            lambda n_templates, group_size=5:
                4 * n_templates + 2 * _ceil_div(n_templates, group_size),
            lambda n_templates, group_size=5: 5 * n_templates,
            {"n_templates": (1, 40)},
            "inspiral analysis: grouped two-pass coincidence testing",
        ),
        _spec(
            "sipht", "pegasus", sipht,
            {"n_loci": 4}, {"n_loci": 72},
            lambda n_loci: 14 * n_loci,
            lambda n_loci: 15 * n_loci,
            {"n_loci": (1, 10)},
            "sRNA annotation: n independent 14-task blocks",
        ),
        # ----------------------------- elementary ----------------------- #
        _spec(
            "bigmerge", "elementary", bigmerge,
            {"n_producers": 50}, {"n_producers": 1000},
            lambda n_producers: n_producers + 1,
            lambda n_producers: n_producers,
            {"n_producers": (1, 120)},
            "maximal fan-in: n producers into one merge",
        ),
        _spec(
            "splitters", "elementary", splitters,
            {"depth": 5}, {"depth": 9},
            lambda depth: (1 << (depth + 1)) - 1,
            lambda depth: (1 << (depth + 1)) - 2,
            {"depth": (0, 7)},
            "pure fan-out: binary splitting cascade",
        ),
        _spec(
            "grid", "elementary", grid,
            {"side": 7}, {"side": 32},
            lambda side: side * side,
            lambda side: 2 * side * (side - 1),
            {"side": (1, 12)},
            "wavefront: right/down dependency grid",
        ),
        _spec(
            "fern", "elementary", fern,
            {"length": 25}, {"length": 501},
            lambda length: 2 * length - 1,
            lambda length: 3 * (length - 1),
            {"length": (1, 60)},
            "serial stem with one rejoining side leaf per segment",
        ),
        _spec(
            "merge_neighbours", "elementary", merge_neighbours,
            {"n_sources": 25}, {"n_sources": 501},
            lambda n_sources: 2 * n_sources - 1,
            lambda n_sources: 2 * (n_sources - 1),
            {"n_sources": (2, 60)},
            "pairwise-overlapping reduction layer",
        ),
        _spec(
            "duration_stairs", "elementary", duration_stairs,
            {"n_tasks": 50}, {"n_tasks": 1000},
            lambda n_tasks: n_tasks,
            lambda n_tasks: 0,
            {"n_tasks": (1, 120)},
            "independent tasks on a deterministic duration ramp",
        ),
        # -------------------------------- irw --------------------------- #
        _spec(
            "mapreduce", "irw", mapreduce,
            {"n_mappers": 5, "rounds": 5}, {"n_mappers": 16, "rounds": 32},
            lambda n_mappers, rounds=1: 2 * n_mappers * rounds,
            lambda n_mappers, rounds=1:
                rounds * n_mappers * n_mappers + (rounds - 1) * n_mappers,
            {"n_mappers": (1, 12), "rounds": (1, 5)},
            "chained map/reduce rounds with full n^2 shuffles",
        ),
        _spec(
            "crossv", "irw", crossv,
            {"n_folds": 12}, {"n_folds": 333},
            lambda n_folds: 3 * n_folds + 1,
            lambda n_folds: n_folds * n_folds + 2 * n_folds,
            {"n_folds": (2, 25)},
            "k-fold cross-validation with all-but-one chunk reuse",
        ),
        _spec(
            "gridcat", "irw", gridcat,
            {"n_pairs": 12}, {"n_pairs": 251},
            lambda n_pairs: 4 * n_pairs - 1,
            lambda n_pairs: 4 * n_pairs - 2,
            {"n_pairs": (1, 40)},
            "fetch pairs, cat each, fold serially (wide head, serial tail)",
        ),
    )
}

#: Group name -> family keys, in registry order.
FAMILY_GROUPS: Dict[str, List[str]] = {}
for _s in FAMILIES.values():
    FAMILY_GROUPS.setdefault(_s.group, []).append(_s.key)
del _s


def family_names() -> List[str]:
    """Every registered family key, in registry order."""
    return list(FAMILIES.keys())


def families_in_group(group: str) -> List[FamilySpec]:
    """The specs of one family group ("pegasus", "elementary" or "irw")."""
    try:
        keys = FAMILY_GROUPS[group]
    except KeyError:
        raise KeyError(
            f"unknown family group {group!r}; known: {sorted(FAMILY_GROUPS)}"
        ) from None
    return [FAMILIES[k] for k in keys]


def build_family(key: str, seed: SeedLike = 0, **overrides) -> TaskGraph:
    """Build family *key* at its calibrated sweep size (overridable)."""
    try:
        spec = FAMILIES[key]
    except KeyError:
        raise KeyError(
            f"unknown graph family {key!r}; known: {family_names()}"
        ) from None
    return spec.build(seed=seed, **overrides)
