"""IRW data-processing families: mapreduce, crossv, gridcat.

Ports of the estee generator suite's *irw* ("it really works") families —
shapes lifted from production data-pipeline jobs rather than scientific
workflows: shuffle-heavy map/reduce rounds, k-fold cross-validation with its
all-but-one data reuse, and hierarchical download-and-concatenate trees.
All builders assert their closed-form structural contract at construction.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import TaskGraphError
from repro.taskgraph.families._common import draw_duration, validate_structure
from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import SeedLike, as_rng

__all__ = ["mapreduce", "crossv", "gridcat"]

_CV = 0.3


def mapreduce(
    n_mappers: int,
    seed: SeedLike = 0,
    rounds: int = 1,
    name: Optional[str] = None,
) -> TaskGraph:
    """*rounds* chained map/reduce rounds of *n_mappers* mappers and reducers.

    Within a round every reducer consumes every mapper's partition (the full
    ``n^2`` shuffle, the densest communication pattern in the zoo); between
    rounds reducer ``j`` seeds mapper ``j`` of the next round.

    Structure: ``2 * n * rounds`` tasks, ``rounds * n^2 + (rounds - 1) * n``
    edges, ``n`` entries, ``n`` exits, depth ``2 * rounds``.
    """
    if n_mappers < 1:
        raise TaskGraphError(f"mapreduce needs >= 1 mapper, got {n_mappers}")
    if rounds < 1:
        raise TaskGraphError(f"mapreduce needs >= 1 round, got {rounds}")
    n = n_mappers
    rng = as_rng(seed)
    g = TaskGraph(name or f"mapreduce[{n}x{rounds}]")
    for r in range(rounds):
        for i in range(n):
            g.add_task(("map", r, i), draw_duration(rng, 8.0, _CV), label=f"map{r}.{i}")
        for j in range(n):
            tid = ("reduce", r, j)
            g.add_task(tid, draw_duration(rng, 6.0, _CV), label=f"reduce{r}.{j}")
            for i in range(n):
                g.add_dependency(("map", r, i), tid, draw_duration(rng, 3.0, _CV))
        if r > 0:
            for j in range(n):
                g.add_dependency(
                    ("reduce", r - 1, j), ("map", r, j), draw_duration(rng, 2.0, _CV)
                )
    return validate_structure(
        g,
        n_tasks=2 * n * rounds,
        n_edges=rounds * n * n + (rounds - 1) * n,
        n_entries=n,
        n_exits=n,
        profile=[n] * (2 * rounds),
    )


def crossv(
    n_folds: int, seed: SeedLike = 0, name: Optional[str] = None
) -> TaskGraph:
    """*k*-fold cross-validation: train on all-but-one chunk, evaluate, select.

    Chunk ``i`` is read by every training task except ``train_i`` (the
    all-but-one reuse that makes replication-versus-transfer decisions hard)
    and by its own evaluation task; one selection sink compares the folds.

    Structure: ``3k + 1`` tasks, ``k^2 + 2k`` edges, ``k`` entries, 1 exit,
    depth 4.  Requires ``n_folds >= 2``.
    """
    if n_folds < 2:
        raise TaskGraphError(f"crossv needs >= 2 folds, got {n_folds}")
    k = n_folds
    rng = as_rng(seed)
    g = TaskGraph(name or f"crossv[{k}]")
    for i in range(k):
        g.add_task(("chunk", i), draw_duration(rng, 3.0, _CV), label=f"chunk{i}")
    for i in range(k):
        tid = ("train", i)
        g.add_task(tid, draw_duration(rng, 20.0, _CV), label=f"train{i}")
        for j in range(k):
            if j != i:
                g.add_dependency(("chunk", j), tid, draw_duration(rng, 5.0, _CV))
    for i in range(k):
        tid = ("eval", i)
        g.add_task(tid, draw_duration(rng, 4.0, _CV), label=f"eval{i}")
        g.add_dependency(("train", i), tid, draw_duration(rng, 6.0, _CV))
        g.add_dependency(("chunk", i), tid, draw_duration(rng, 5.0, _CV))
    g.add_task("select", draw_duration(rng, 1.0, _CV), label="select")
    for i in range(k):
        g.add_dependency(("eval", i), "select", draw_duration(rng, 0.5, _CV))
    return validate_structure(
        g,
        n_tasks=3 * k + 1,
        n_edges=k * k + 2 * k,
        n_entries=k,
        n_exits=1,
        profile=[k, k, k, 1],
    )


def gridcat(
    n_pairs: int, seed: SeedLike = 0, name: Optional[str] = None
) -> TaskGraph:
    """Grid download-and-concatenate: fetch pairs, cat each, fold the cats serially.

    ``2n`` fetches feed ``n`` pairwise cat tasks; the cats are folded by a
    left-deep chain of ``n - 1`` concats (each consuming the running result
    and the next cat), so the tail is serial while the head is wide.

    Structure: ``4n - 1`` tasks, ``4n - 2`` edges, ``2n`` entries, 1 exit,
    depth ``n + 1``.
    """
    if n_pairs < 1:
        raise TaskGraphError(f"gridcat needs >= 1 pair, got {n_pairs}")
    n = n_pairs
    rng = as_rng(seed)
    g = TaskGraph(name or f"gridcat[{n}]")
    for i in range(n):
        for k in range(2):
            g.add_task(("fetch", i, k), draw_duration(rng, 6.0, _CV), label=f"fetch{i}.{k}")
        tid = ("cat", i)
        g.add_task(tid, draw_duration(rng, 2.0, _CV), label=f"cat{i}")
        g.add_dependency(("fetch", i, 0), tid, draw_duration(rng, 8.0, _CV))
        g.add_dependency(("fetch", i, 1), tid, draw_duration(rng, 8.0, _CV))
    prev = ("cat", 0)
    for j in range(n - 1):
        tid = ("concat", j)
        g.add_task(tid, draw_duration(rng, 2.0, _CV), label=f"concat{j}")
        g.add_dependency(prev, tid, draw_duration(rng, 8.0, _CV))
        g.add_dependency(("cat", j + 1), tid, draw_duration(rng, 8.0, _CV))
        prev = tid
    profile = [2 * n, n] + [1] * (n - 1)
    return validate_structure(
        g,
        n_tasks=4 * n - 1,
        n_edges=4 * n - 2,
        n_entries=2 * n,
        n_exits=1,
        profile=profile,
    )
