"""Shared machinery for the workload-zoo graph families.

Every family builder in :mod:`repro.taskgraph.families` funnels its finished
graph through :func:`validate_structure`, which asserts the family's exact
structural contract — task/edge counts, entry/exit counts, hop-depth profile
(level shapes) and weak-connectivity — at construction time, so a generator
bug surfaces as a :class:`~repro.exceptions.TaskGraphError` the moment the
graph is built rather than as a silently mis-shaped benchmark.

:func:`structural_fingerprint` hashes the full quantitative content of a
graph (ids, durations, edges, communication weights) into a hex digest; two
builds with the same parameters and seed must produce equal fingerprints
(the determinism contract the property tests pin).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Hashable, List, Optional, Sequence

from repro.exceptions import TaskGraphError
from repro.taskgraph.generators import MIN_DURATION, draw_duration  # noqa: F401
from repro.taskgraph.graph import TaskGraph

__all__ = [
    "draw_duration",
    "MIN_DURATION",
    "hop_depths",
    "depth_profile",
    "n_weak_components",
    "validate_structure",
    "structural_fingerprint",
]

TaskId = Hashable


def hop_depths(graph: TaskGraph) -> Dict[TaskId, int]:
    """Precedence depth of every task: entries are 0, else 1 + deepest pred."""
    depth: Dict[TaskId, int] = {}
    for tid in graph.topological_order():
        preds = graph.predecessors(tid)
        depth[tid] = 0 if not preds else 1 + max(depth[p] for p in preds)
    return depth


def depth_profile(graph: TaskGraph) -> List[int]:
    """Task count per precedence depth (the graph's level shape)."""
    depths = hop_depths(graph)
    if not depths:
        return []
    profile = [0] * (max(depths.values()) + 1)
    for d in depths.values():
        profile[d] += 1
    return profile


def n_weak_components(graph: TaskGraph) -> int:
    """Number of weakly-connected components (edges taken as undirected)."""
    parent: Dict[TaskId, TaskId] = {t: t for t in graph.tasks}

    def find(x: TaskId) -> TaskId:
        while parent[x] is not x and parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v, _ in graph.edges():
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
    return len({find(t) for t in graph.tasks})


def validate_structure(
    graph: TaskGraph,
    *,
    n_tasks: int,
    n_edges: int,
    n_entries: Optional[int] = None,
    n_exits: Optional[int] = None,
    profile: Optional[Sequence[int]] = None,
    n_components: int = 1,
) -> TaskGraph:
    """Assert a family's structural contract on a freshly built graph.

    Checks, in order: graph invariants (acyclicity, weight signs, adjacency
    consistency via :meth:`TaskGraph.validate`), exact task and edge counts,
    entry/exit task counts, the hop-depth profile (number of tasks at every
    precedence depth — the family's level shape) and the weak-component
    count.  Raises :class:`TaskGraphError` naming the graph and the violated
    expectation; returns the graph so builders can ``return
    validate_structure(g, ...)``.
    """
    graph.validate()
    if graph.n_tasks != n_tasks:
        raise TaskGraphError(
            f"{graph.name}: expected {n_tasks} tasks, built {graph.n_tasks}"
        )
    if graph.n_edges != n_edges:
        raise TaskGraphError(
            f"{graph.name}: expected {n_edges} edges, built {graph.n_edges}"
        )
    if n_entries is not None and len(graph.entry_tasks()) != n_entries:
        raise TaskGraphError(
            f"{graph.name}: expected {n_entries} entry tasks, "
            f"built {len(graph.entry_tasks())}"
        )
    if n_exits is not None and len(graph.exit_tasks()) != n_exits:
        raise TaskGraphError(
            f"{graph.name}: expected {n_exits} exit tasks, "
            f"built {len(graph.exit_tasks())}"
        )
    if profile is not None:
        built = depth_profile(graph)
        if built != list(profile):
            raise TaskGraphError(
                f"{graph.name}: expected depth profile {list(profile)}, "
                f"built {built}"
            )
    if n_components is not None and n_weak_components(graph) != n_components:
        raise TaskGraphError(
            f"{graph.name}: expected {n_components} weak component(s), "
            f"built {n_weak_components(graph)}"
        )
    return graph


def structural_fingerprint(graph: TaskGraph) -> str:
    """A hex digest of the graph's full quantitative content.

    Covers every task id and duration and every edge with its communication
    weight (ids stringified, floats via ``repr`` so the shortest
    round-trippable representation is hashed).  Equal parameters and seed
    must give equal fingerprints — the determinism contract of every family
    builder.  The graph *name* is excluded, so renamed but otherwise
    identical graphs compare equal.
    """
    payload = {
        "tasks": [[str(t), repr(graph.duration(t))] for t in graph.tasks],
        "edges": [[str(u), str(v), repr(w)] for u, v, w in graph.edges()],
    }
    blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()
