"""Pegasus scientific-workflow families: montage, cybershake, epigenomics, ligo, sipht.

Shape-faithful re-implementations of the five classic Pegasus workflow
benchmarks (Bharathi et al., "Characterization of Scientific Workflows",
WORKS 2008), as ported by the estee simulator's generator suite.  Each
builder is parameterized by one dominant size knob (input images, sites,
lanes, templates, loci), draws task durations and data-transfer volumes from
seeded gamma distributions with per-stage characteristic means, and asserts
its exact structural contract — closed-form task/edge counts, entry/exit
counts and the hop-depth level shape — at construction.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import TaskGraphError
from repro.taskgraph.families._common import draw_duration, validate_structure
from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import SeedLike, as_rng

__all__ = ["montage", "cybershake", "epigenomics", "ligo", "sipht"]

#: Coefficient of variation for every stochastic stage draw: tight enough
#: that stage means stay characteristic, wide enough that no two tasks tie.
_CV = 0.3


def montage(
    n_inputs: int, seed: SeedLike = 0, name: Optional[str] = None
) -> TaskGraph:
    """The Montage astronomy mosaic workflow over *n_inputs* sky images.

    ``n`` mProject tasks reproject the input images; mDiffFit tasks fit the
    overlap of every adjacent and next-adjacent image pair (``2n - 3``
    overlaps on a linear strip); one mConcatFit and one mBgModel derive the
    global background model; ``n`` mBackground tasks correct each projected
    image; mImgtbl, mAdd, mShrink and mJPEG assemble the final mosaic.

    Structure: ``4n + 3`` tasks, ``10n - 5`` edges, ``n`` entries, 1 exit,
    depth 9.  Requires ``n_inputs >= 2``.
    """
    if n_inputs < 2:
        raise TaskGraphError(f"montage needs >= 2 input images, got {n_inputs}")
    n = n_inputs
    rng = as_rng(seed)
    g = TaskGraph(name or f"montage[{n}]")
    for i in range(n):
        g.add_task(("project", i), draw_duration(rng, 12.0, _CV), label=f"mProject{i}")
    pairs = [(i, i + 1) for i in range(n - 1)] + [(i, i + 2) for i in range(n - 2)]
    for a, b in pairs:
        tid = ("diff", a, b)
        g.add_task(tid, draw_duration(rng, 2.0, _CV), label=f"mDiffFit{a}-{b}")
        g.add_dependency(("project", a), tid, draw_duration(rng, 8.0, _CV))
        g.add_dependency(("project", b), tid, draw_duration(rng, 8.0, _CV))
    g.add_task("concat", draw_duration(rng, 1.5, _CV), label="mConcatFit")
    for a, b in pairs:
        g.add_dependency(("diff", a, b), "concat", draw_duration(rng, 0.5, _CV))
    g.add_task("bgmodel", draw_duration(rng, 8.0, _CV), label="mBgModel")
    g.add_dependency("concat", "bgmodel", draw_duration(rng, 0.5, _CV))
    for i in range(n):
        tid = ("background", i)
        g.add_task(tid, draw_duration(rng, 3.0, _CV), label=f"mBackground{i}")
        g.add_dependency(("project", i), tid, draw_duration(rng, 8.0, _CV))
        g.add_dependency("bgmodel", tid, draw_duration(rng, 0.5, _CV))
    g.add_task("imgtbl", draw_duration(rng, 2.0, _CV), label="mImgtbl")
    for i in range(n):
        g.add_dependency(("background", i), "imgtbl", draw_duration(rng, 0.5, _CV))
    g.add_task("madd", draw_duration(rng, 15.0, _CV), label="mAdd")
    g.add_dependency("imgtbl", "madd", draw_duration(rng, 1.0, _CV))
    for i in range(n):
        g.add_dependency(("background", i), "madd", draw_duration(rng, 8.0, _CV))
    g.add_task("shrink", draw_duration(rng, 4.0, _CV), label="mShrink")
    g.add_dependency("madd", "shrink", draw_duration(rng, 10.0, _CV))
    g.add_task("jpeg", draw_duration(rng, 2.0, _CV), label="mJPEG")
    g.add_dependency("shrink", "jpeg", draw_duration(rng, 3.0, _CV))
    return validate_structure(
        g,
        n_tasks=4 * n + 3,
        n_edges=10 * n - 5,
        n_entries=n,
        n_exits=1,
        profile=[n, 2 * n - 3, 1, 1, n, 1, 1, 1, 1],
    )


def cybershake(
    n_sites: int, seed: SeedLike = 0, name: Optional[str] = None
) -> TaskGraph:
    """The CyberShake seismic-hazard workflow over *n_sites* rupture sites.

    Each ExtractSGT task feeds three SeismogramSynthesis tasks; one ZipSeis
    archives every seismogram, each seismogram gets a PeakValCalc, and one
    ZipPSA archives the peak values — the classic wide, shallow fan-out/fan-in
    shape (depth 4 at any size).

    Structure: ``7n + 2`` tasks, ``12n`` edges, ``n`` entries, 2 exits.
    """
    if n_sites < 1:
        raise TaskGraphError(f"cybershake needs >= 1 site, got {n_sites}")
    n = n_sites
    rng = as_rng(seed)
    g = TaskGraph(name or f"cybershake[{n}]")
    for i in range(n):
        g.add_task(("extract", i), draw_duration(rng, 10.0, _CV), label=f"ExtractSGT{i}")
    g.add_task("zipseis", draw_duration(rng, 3.0, _CV), label="ZipSeis")
    g.add_task("zippsa", draw_duration(rng, 3.0, _CV), label="ZipPSA")
    for i in range(n):
        for k in range(3):
            synth = ("synth", i, k)
            g.add_task(synth, draw_duration(rng, 6.0, _CV), label=f"Synth{i}.{k}")
            g.add_dependency(("extract", i), synth, draw_duration(rng, 12.0, _CV))
            g.add_dependency(synth, "zipseis", draw_duration(rng, 2.0, _CV))
            peak = ("peak", i, k)
            g.add_task(peak, draw_duration(rng, 1.5, _CV), label=f"PeakVal{i}.{k}")
            g.add_dependency(synth, peak, draw_duration(rng, 2.0, _CV))
            g.add_dependency(peak, "zippsa", draw_duration(rng, 0.5, _CV))
    return validate_structure(
        g,
        n_tasks=7 * n + 2,
        n_edges=12 * n,
        n_entries=n,
        n_exits=2,
        profile=[n, 3 * n, 3 * n + 1, 1],
    )


def epigenomics(
    n_lanes: int, seed: SeedLike = 0, name: Optional[str] = None
) -> TaskGraph:
    """The Epigenomics DNA-methylation pipeline over *n_lanes* read lanes.

    One fastqSplit fans the reads out into ``n`` four-stage per-lane chains
    (filterContams -> sol2sanger -> fastq2bfq -> map); mapMerge joins the
    mapped lanes and maqIndex and pileup finish serially — the classic
    pipeline-of-chains shape (depth 8 at any size).

    Structure: ``4n + 4`` tasks, ``5n + 2`` edges, 1 entry, 1 exit.
    """
    if n_lanes < 1:
        raise TaskGraphError(f"epigenomics needs >= 1 lane, got {n_lanes}")
    n = n_lanes
    rng = as_rng(seed)
    g = TaskGraph(name or f"epigenomics[{n}]")
    g.add_task("split", draw_duration(rng, 5.0, _CV), label="fastqSplit")
    stages = (
        ("filter", 4.0, 10.0),
        ("sol2sanger", 2.0, 8.0),
        ("fastq2bfq", 2.0, 6.0),
        ("map", 12.0, 6.0),
    )
    for i in range(n):
        prev = "split"
        for stage, mean_dur, mean_comm in stages:
            tid = (stage, i)
            g.add_task(tid, draw_duration(rng, mean_dur, _CV), label=f"{stage}{i}")
            g.add_dependency(prev, tid, draw_duration(rng, mean_comm, _CV))
            prev = tid
    g.add_task("merge", draw_duration(rng, 8.0, _CV), label="mapMerge")
    for i in range(n):
        g.add_dependency(("map", i), "merge", draw_duration(rng, 4.0, _CV))
    g.add_task("index", draw_duration(rng, 4.0, _CV), label="maqIndex")
    g.add_dependency("merge", "index", draw_duration(rng, 6.0, _CV))
    g.add_task("pileup", draw_duration(rng, 6.0, _CV), label="pileup")
    g.add_dependency("index", "pileup", draw_duration(rng, 2.0, _CV))
    return validate_structure(
        g,
        n_tasks=4 * n + 4,
        n_edges=5 * n + 2,
        n_entries=1,
        n_exits=1,
        profile=[1, n, n, n, n, 1, 1, 1],
    )


def ligo(
    n_templates: int,
    seed: SeedLike = 0,
    group_size: int = 5,
    name: Optional[str] = None,
) -> TaskGraph:
    """The LIGO inspiral-analysis workflow over *n_templates* template banks.

    ``n`` TmpltBank entries each feed an Inspiral task; Thinca tasks
    coincidence-test groups of *group_size* inspirals; each template then gets
    a TrigBank and a second Inspiral pass, closed by a second Thinca layer —
    the characteristic grouped two-pass shape.  Groups share no edges, so the
    graph has one weak component per group.

    Structure: with ``G = ceil(n / group_size)`` groups, ``4n + 2G`` tasks,
    ``5n`` edges, ``n`` entries, ``G`` exits, depth 6, ``G`` components.
    """
    if n_templates < 1:
        raise TaskGraphError(f"ligo needs >= 1 template, got {n_templates}")
    if group_size < 1:
        raise TaskGraphError(f"ligo group_size must be >= 1, got {group_size}")
    n = n_templates
    n_groups = -(-n // group_size)
    rng = as_rng(seed)
    g = TaskGraph(name or f"ligo[{n}]")
    for i in range(n):
        g.add_task(("tmplt", i), draw_duration(rng, 4.0, _CV), label=f"TmpltBank{i}")
    for i in range(n):
        tid = ("inspiral1", i)
        g.add_task(tid, draw_duration(rng, 18.0, _CV), label=f"Inspiral{i}")
        g.add_dependency(("tmplt", i), tid, draw_duration(rng, 2.0, _CV))
    for group in range(n_groups):
        g.add_task(("thinca1", group), draw_duration(rng, 3.0, _CV), label=f"Thinca{group}")
    for i in range(n):
        g.add_dependency(
            ("inspiral1", i), ("thinca1", i // group_size), draw_duration(rng, 1.0, _CV)
        )
    for i in range(n):
        tid = ("trigbank", i)
        g.add_task(tid, draw_duration(rng, 2.0, _CV), label=f"TrigBank{i}")
        g.add_dependency(("thinca1", i // group_size), tid, draw_duration(rng, 1.0, _CV))
    for i in range(n):
        tid = ("inspiral2", i)
        g.add_task(tid, draw_duration(rng, 18.0, _CV), label=f"Inspiral2.{i}")
        g.add_dependency(("trigbank", i), tid, draw_duration(rng, 2.0, _CV))
    for group in range(n_groups):
        g.add_task(("thinca2", group), draw_duration(rng, 3.0, _CV), label=f"Thinca2.{group}")
    for i in range(n):
        g.add_dependency(
            ("inspiral2", i), ("thinca2", i // group_size), draw_duration(rng, 1.0, _CV)
        )
    return validate_structure(
        g,
        n_tasks=4 * n + 2 * n_groups,
        n_edges=5 * n,
        n_entries=n,
        n_exits=n_groups,
        profile=[n, n, n_groups, n, n, n_groups],
        n_components=n_groups,
    )


def sipht(
    n_loci: int, seed: SeedLike = 0, name: Optional[str] = None
) -> TaskGraph:
    """The SIPHT sRNA-annotation workflow over *n_loci* independent loci.

    Each locus is one fixed 14-task block: four Patser motif searches feed a
    PatserConcat; Transterm, FindTerm, RNAMotif and Blast terminator/homology
    searches join the concat in an SRNA core; three downstream annotation
    passes (FFNParse, BlastQRNA, BlastParalogues) close into an SRNAAnnotate
    sink.  The blocks share no edges — SIPHT batches are embarrassingly
    parallel across loci (``n`` weak components).

    Structure: ``14n`` tasks, ``15n`` edges, ``8n`` entries, ``n`` exits,
    depth 5.
    """
    if n_loci < 1:
        raise TaskGraphError(f"sipht needs >= 1 locus, got {n_loci}")
    n = n_loci
    rng = as_rng(seed)
    g = TaskGraph(name or f"sipht[{n}]")
    finders = (("transterm", 8.0), ("findterm", 10.0), ("rnamotif", 4.0), ("blast", 12.0))
    annotators = (("ffn_parse", 2.0), ("blast_qrna", 9.0), ("blast_paral", 5.0))
    for b in range(n):
        for k in range(4):
            g.add_task(("patser", b, k), draw_duration(rng, 2.0, _CV), label=f"Patser{b}.{k}")
        concat = ("patser_concat", b)
        g.add_task(concat, draw_duration(rng, 1.0, _CV), label=f"PatserConcat{b}")
        for k in range(4):
            g.add_dependency(("patser", b, k), concat, draw_duration(rng, 1.0, _CV))
        srna = ("srna", b)
        g.add_task(srna, draw_duration(rng, 6.0, _CV), label=f"SRNA{b}")
        g.add_dependency(concat, srna, draw_duration(rng, 1.0, _CV))
        for stage, mean_dur in finders:
            tid = (stage, b)
            g.add_task(tid, draw_duration(rng, mean_dur, _CV), label=f"{stage}{b}")
            g.add_dependency(tid, srna, draw_duration(rng, 3.0, _CV))
        sink = ("annotate", b)
        g.add_task(sink, draw_duration(rng, 3.0, _CV), label=f"SRNAAnnotate{b}")
        for stage, mean_dur in annotators:
            tid = (stage, b)
            g.add_task(tid, draw_duration(rng, mean_dur, _CV), label=f"{stage}{b}")
            g.add_dependency(srna, tid, draw_duration(rng, 2.0, _CV))
            g.add_dependency(tid, sink, draw_duration(rng, 1.0, _CV))
    return validate_structure(
        g,
        n_tasks=14 * n,
        n_edges=15 * n,
        n_entries=8 * n,
        n_exits=n,
        profile=[8 * n, n, n, 3 * n, n],
        n_components=n,
    )
