"""Elementary graph families: minimal shapes isolating one scheduling stress.

Ports of the estee generator suite's *elementary* families — each family is
the smallest graph exhibiting exactly one structural challenge (a huge
fan-in, a pure fan-out cascade, a wavefront, a serial spine with side work,
pairwise reduction, or a duration ramp with no precedence at all), so a
policy's weakness on one axis cannot hide behind another.  All builders
assert their closed-form structural contract at construction.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import TaskGraphError
from repro.taskgraph.families._common import draw_duration, validate_structure
from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import SeedLike, as_rng

__all__ = [
    "bigmerge",
    "splitters",
    "grid",
    "fern",
    "merge_neighbours",
    "duration_stairs",
]

_CV = 0.3


def bigmerge(
    n_producers: int, seed: SeedLike = 0, name: Optional[str] = None
) -> TaskGraph:
    """*n* independent producers all merged by one sink (maximal fan-in).

    Structure: ``n + 1`` tasks, ``n`` edges, ``n`` entries, 1 exit, depth 2.
    """
    if n_producers < 1:
        raise TaskGraphError(f"bigmerge needs >= 1 producer, got {n_producers}")
    n = n_producers
    rng = as_rng(seed)
    g = TaskGraph(name or f"bigmerge[{n}]")
    g.add_task("merge", draw_duration(rng, 2.0, _CV), label="merge")
    for i in range(n):
        g.add_task(("produce", i), draw_duration(rng, 5.0, _CV), label=f"produce{i}")
        g.add_dependency(("produce", i), "merge", draw_duration(rng, 4.0, _CV))
    return validate_structure(
        g, n_tasks=n + 1, n_edges=n, n_entries=n, n_exits=1, profile=[n, 1]
    )


def splitters(
    depth: int, seed: SeedLike = 0, name: Optional[str] = None
) -> TaskGraph:
    """A binary splitting cascade: each task forks into two (pure fan-out).

    Structure: ``2^(depth+1) - 1`` tasks, ``2^(depth+1) - 2`` edges, 1 entry,
    ``2^depth`` exits, depth ``depth + 1`` levels of widths ``1, 2, 4, ...``.
    """
    if depth < 0:
        raise TaskGraphError(f"splitters depth must be >= 0, got {depth}")
    rng = as_rng(seed)
    g = TaskGraph(name or f"splitters[{depth}]")
    for lvl in range(depth + 1):
        for i in range(1 << lvl):
            g.add_task((lvl, i), draw_duration(rng, 3.0, _CV), label=f"split{lvl}.{i}")
    for lvl in range(1, depth + 1):
        for i in range(1 << lvl):
            g.add_dependency((lvl - 1, i // 2), (lvl, i), draw_duration(rng, 2.0, _CV))
    return validate_structure(
        g,
        n_tasks=(1 << (depth + 1)) - 1,
        n_edges=(1 << (depth + 1)) - 2,
        n_entries=1,
        n_exits=1 << depth,
        profile=[1 << lvl for lvl in range(depth + 1)],
    )


def grid(
    side: int, seed: SeedLike = 0, name: Optional[str] = None
) -> TaskGraph:
    """A *side* x *side* dependency grid (wavefront / dynamic-programming shape).

    Task ``(i, j)`` feeds its right and down neighbours; the anti-diagonal
    wavefront widens to *side* then narrows back to one.

    Structure: ``side^2`` tasks, ``2*side*(side - 1)`` edges, 1 entry, 1
    exit, depth ``2*side - 1``.
    """
    if side < 1:
        raise TaskGraphError(f"grid side must be >= 1, got {side}")
    n = side
    rng = as_rng(seed)
    g = TaskGraph(name or f"grid[{n}]")
    for i in range(n):
        for j in range(n):
            g.add_task((i, j), draw_duration(rng, 4.0, _CV), label=f"g{i}.{j}")
    for i in range(n):
        for j in range(n):
            if j + 1 < n:
                g.add_dependency((i, j), (i, j + 1), draw_duration(rng, 2.0, _CV))
            if i + 1 < n:
                g.add_dependency((i, j), (i + 1, j), draw_duration(rng, 2.0, _CV))
    return validate_structure(
        g,
        n_tasks=n * n,
        n_edges=2 * n * (n - 1),
        n_entries=1,
        n_exits=1,
        profile=[min(d + 1, n, 2 * n - 1 - d) for d in range(2 * n - 1)],
    )


def fern(
    length: int, seed: SeedLike = 0, name: Optional[str] = None
) -> TaskGraph:
    """A serial stem whose every segment sprouts a side leaf that rejoins it.

    Stem task ``s_i`` feeds both its leaf ``l_i`` and nothing else directly;
    ``s_{i+1}`` waits on ``s_i`` *and* ``l_i`` — an almost fully serial
    workload whose only parallelism is one leaf at a time.

    Structure: ``2*length - 1`` tasks, ``3*(length - 1)`` edges, 1 entry, 1
    exit, depth ``2*length - 1``.
    """
    if length < 1:
        raise TaskGraphError(f"fern length must be >= 1, got {length}")
    n = length
    rng = as_rng(seed)
    g = TaskGraph(name or f"fern[{n}]")
    g.add_task(("stem", 0), draw_duration(rng, 5.0, _CV), label="stem0")
    for i in range(n - 1):
        leaf = ("leaf", i)
        g.add_task(leaf, draw_duration(rng, 3.0, _CV), label=f"leaf{i}")
        nxt = ("stem", i + 1)
        g.add_task(nxt, draw_duration(rng, 5.0, _CV), label=f"stem{i + 1}")
        g.add_dependency(("stem", i), leaf, draw_duration(rng, 1.0, _CV))
        g.add_dependency(("stem", i), nxt, draw_duration(rng, 2.0, _CV))
        g.add_dependency(leaf, nxt, draw_duration(rng, 1.0, _CV))
    return validate_structure(
        g,
        n_tasks=2 * n - 1,
        n_edges=3 * (n - 1),
        n_entries=1,
        n_exits=1,
        profile=[1] * (2 * n - 1),
    )


def merge_neighbours(
    n_sources: int, seed: SeedLike = 0, name: Optional[str] = None
) -> TaskGraph:
    """One pairwise-overlapping reduction layer: merge ``i`` reads sources ``i, i+1``.

    Every interior source is read by two merges, so no placement can make all
    communication local — the minimal data-locality conflict.

    Structure: ``2n - 1`` tasks, ``2*(n - 1)`` edges, ``n`` entries,
    ``n - 1`` exits, depth 2.  Requires ``n_sources >= 2``.
    """
    if n_sources < 2:
        raise TaskGraphError(f"merge_neighbours needs >= 2 sources, got {n_sources}")
    n = n_sources
    rng = as_rng(seed)
    g = TaskGraph(name or f"merge_neighbours[{n}]")
    for i in range(n):
        g.add_task(("src", i), draw_duration(rng, 5.0, _CV), label=f"src{i}")
    for i in range(n - 1):
        tid = ("merge", i)
        g.add_task(tid, draw_duration(rng, 3.0, _CV), label=f"merge{i}")
        g.add_dependency(("src", i), tid, draw_duration(rng, 3.0, _CV))
        g.add_dependency(("src", i + 1), tid, draw_duration(rng, 3.0, _CV))
    return validate_structure(
        g,
        n_tasks=2 * n - 1,
        n_edges=2 * (n - 1),
        n_entries=n,
        n_exits=n - 1,
        profile=[n, n - 1],
    )


def duration_stairs(
    n_tasks: int, seed: SeedLike = 0, name: Optional[str] = None
) -> TaskGraph:
    """*n* independent tasks with a deterministic duration ramp ``1, 2, ..., n``.

    No precedence and no randomness — pure load balancing of maximally
    unequal pieces (the LPT-versus-FIFO separator).  *seed* is accepted for
    registry uniformity but unused; every build is identical.

    Structure: ``n`` tasks, 0 edges, depth 1.
    """
    if n_tasks < 1:
        raise TaskGraphError(f"duration_stairs needs >= 1 task, got {n_tasks}")
    n = n_tasks
    g = TaskGraph(name or f"duration_stairs[{n}]")
    for i in range(n):
        g.add_task(("stair", i), float(i + 1), label=f"stair{i}")
    return validate_structure(
        g, n_tasks=n, n_edges=0, n_entries=n, n_exits=n, profile=[n],
        n_components=n,
    )
