"""Serialization of task graphs.

Supported formats:

* **JSON** — the native round-trip format (durations, communication weights,
  labels, attributes).
* **DOT** — Graphviz output for visual inspection of generated workloads.
* **edge list** — a minimal whitespace-separated text format convenient for
  interoperability with external scheduling tools.

Task identifiers are serialized as strings in DOT and edge-list formats; the
JSON format preserves ints and strings exactly and stringifies other hashable
identifiers (tuples become strings on reload — use JSON only with int/str ids
if exact round-tripping matters).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.exceptions import TaskGraphError
from repro.taskgraph.graph import TaskGraph

__all__ = [
    "to_dict",
    "from_dict",
    "save_json",
    "load_json",
    "to_dot",
    "to_edge_list",
    "from_edge_list",
]

PathLike = Union[str, Path]
_FORMAT_VERSION = 1


def to_dict(graph: TaskGraph) -> dict:
    """Convert *graph* to a JSON-serializable dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": graph.name,
        "tasks": [
            {
                "id": tid,
                "duration": graph.duration(tid),
                "label": graph.task(tid).label,
                "attrs": dict(graph.task(tid).attrs),
            }
            for tid in graph.tasks
        ],
        "edges": [
            {"source": u, "target": v, "comm": w} for u, v, w in graph.edges()
        ],
    }


def _task_id(raw):
    """Restore a task id that crossed a JSON boundary.

    Several graph families key tasks by tuples (``(layer, index)``,
    ``("stem", 3)``), which JSON can only encode as lists; lists are
    unhashable and would poison the rebuilt graph.  Recursively converting
    them back to tuples makes ``from_dict(json.loads(json.dumps(to_dict(g))))``
    id-exact for every family — the contract service graph payloads rely on.
    """
    if isinstance(raw, list):
        return tuple(_task_id(part) for part in raw)
    return raw


def from_dict(data: dict) -> TaskGraph:
    """Rebuild a :class:`TaskGraph` from a dictionary produced by :func:`to_dict`."""
    if "tasks" not in data or "edges" not in data:
        raise TaskGraphError("dictionary is missing 'tasks' or 'edges' keys")
    g = TaskGraph(data.get("name", "taskgraph"))
    for t in data["tasks"]:
        g.add_task(
            _task_id(t["id"]), float(t["duration"]), t.get("label", ""),
            **t.get("attrs", {}),
        )
    for e in data["edges"]:
        g.add_dependency(
            _task_id(e["source"]), _task_id(e["target"]),
            float(e.get("comm", 0.0)),
        )
    return g


def save_json(graph: TaskGraph, path: PathLike, indent: int = 2) -> None:
    """Write *graph* to *path* as JSON."""
    Path(path).write_text(json.dumps(to_dict(graph), indent=indent, default=str))


def load_json(path: PathLike) -> TaskGraph:
    """Load a task graph previously written with :func:`save_json`."""
    return from_dict(json.loads(Path(path).read_text()))


def to_dot(graph: TaskGraph, show_comm: bool = True) -> str:
    """Render *graph* as a Graphviz DOT string.

    Node labels carry the task label and duration; edge labels carry the
    communication weight when *show_comm* is true and the weight is non-zero.
    """
    lines = [f'digraph "{graph.name}" {{', "  rankdir=TB;"]
    for tid in graph.tasks:
        task = graph.task(tid)
        lines.append(
            f'  "{tid}" [label="{task.label}\\n{task.duration:g}"];'
        )
    for u, v, w in graph.edges():
        if show_comm and w > 0:
            lines.append(f'  "{u}" -> "{v}" [label="{w:g}"];')
        else:
            lines.append(f'  "{u}" -> "{v}";')
    lines.append("}")
    return "\n".join(lines)


def to_edge_list(graph: TaskGraph) -> str:
    """Serialize to a simple text format.

    The output has one ``task <id> <duration>`` line per task followed by one
    ``edge <src> <dst> <comm>`` line per edge.  Identifiers are stringified.
    """
    lines = [f"# taskgraph {graph.name}"]
    for tid in graph.tasks:
        lines.append(f"task {tid} {graph.duration(tid):g}")
    for u, v, w in graph.edges():
        lines.append(f"edge {u} {v} {w:g}")
    return "\n".join(lines) + "\n"


def from_edge_list(text: str, name: str = "taskgraph") -> TaskGraph:
    """Parse the format produced by :func:`to_edge_list`.

    Task identifiers are read back as strings (or ints when they parse as
    ints).  Unknown line types raise :class:`TaskGraphError`.
    """

    def parse_id(token: str):
        try:
            return int(token)
        except ValueError:
            return token

    g = TaskGraph(name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "task" and len(parts) == 3:
            g.add_task(parse_id(parts[1]), float(parts[2]))
        elif parts[0] == "edge" and len(parts) == 4:
            g.add_dependency(parse_id(parts[1]), parse_id(parts[2]), float(parts[3]))
        else:
            raise TaskGraphError(f"cannot parse line {lineno}: {raw!r}")
    return g
