"""Task levels, co-levels and the critical path.

The *level* ``n_i`` of a task (paper §4.2a, citing Coffman 1976) is the
accumulated execution time of every task on the longest path connecting
``t_i`` with a leaf task, **including** ``t_i`` itself.  On a machine with an
unbounded number of processors and zero communication cost, the level is the
minimal remaining execution time once the task starts, which is why list
schedulers such as Highest Level First prioritize high-level tasks.

The *co-level* is the symmetric quantity measured from the roots downward and
is useful for earliest-start-time reasoning.

Both can optionally include edge communication weights on the path, which
yields the communication-aware ("static b-level") variant used by some list
schedulers; the paper's HLF and SA cost function use the pure computation
levels, which is the default here.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.exceptions import TaskGraphError

__all__ = [
    "compute_levels",
    "compute_colevels",
    "critical_path",
    "critical_path_length",
]

TaskId = Hashable


def compute_levels(graph, include_communication: bool = False) -> Dict[TaskId, float]:
    """Return the level ``n_i`` of every task in *graph*.

    Parameters
    ----------
    graph:
        A :class:`~repro.taskgraph.graph.TaskGraph`.
    include_communication:
        If ``True`` the edge weight ``w_ij`` is added along the path, giving
        the communication-inclusive bottom level.  The paper's cost function
        uses the computation-only level, i.e. ``False``.
    """
    order = graph.topological_order()
    levels: Dict[TaskId, float] = {}
    for tid in reversed(order):
        best_tail = 0.0
        for succ in graph.successors(tid):
            tail = levels[succ]
            if include_communication:
                tail += graph.comm(tid, succ)
            if tail > best_tail:
                best_tail = tail
        levels[tid] = graph.duration(tid) + best_tail
    return levels


def compute_colevels(graph, include_communication: bool = False) -> Dict[TaskId, float]:
    """Return the co-level of every task (longest path from any root, inclusive)."""
    order = graph.topological_order()
    colevels: Dict[TaskId, float] = {}
    for tid in order:
        best_head = 0.0
        for pred in graph.predecessors(tid):
            head = colevels[pred]
            if include_communication:
                head += graph.comm(pred, tid)
            if head > best_head:
                best_head = head
        colevels[tid] = graph.duration(tid) + best_head
    return colevels


def critical_path(graph) -> List[TaskId]:
    """Return one critical (longest duration-weighted) root-to-leaf chain.

    Ties are broken deterministically by following the successor with the
    largest level and, among equals, the earliest insertion order.  Returns an
    empty list for an empty graph.
    """
    if graph.n_tasks == 0:
        return []
    levels = compute_levels(graph)
    # start at the entry task with the maximal level
    entries = graph.entry_tasks()
    if not entries:
        raise TaskGraphError(f"graph {graph.name!r} has no entry task (cycle?)")
    current = max(entries, key=lambda t: (levels[t],))
    path = [current]
    while True:
        succs = graph.successors(current)
        if not succs:
            break
        current = max(succs, key=lambda t: (levels[t],))
        path.append(current)
    return path


def critical_path_length(graph) -> float:
    """Length (sum of durations) of the critical path; 0.0 for an empty graph.

    This equals ``max_i n_i`` and is the ``T_inf`` lower bound on any
    schedule's makespan when communication is free.
    """
    if graph.n_tasks == 0:
        return 0.0
    levels = compute_levels(graph)
    return float(max(levels.values()))
