"""Plain-text report formatting for experiment results."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.comparison import ComparisonResult
from repro.taskgraph.properties import GraphProperties
from repro.utils.tabulate import format_table

__all__ = ["comparison_table", "properties_table"]


def properties_table(properties: Iterable[GraphProperties], title: str | None = None) -> str:
    """Render Table-1-style rows (tasks, durations, communication, C/C ratio, max speedup)."""
    headers = ["Program", "Tasks", "Avg. Duration", "Avg. Commun.", "C/C Ratio %", "Max. Speedup"]
    rows = [p.as_table1_row() for p in properties]
    return format_table(rows, headers=headers, title=title)


def comparison_table(
    comparisons: Sequence[ComparisonResult],
    policy: str = "SA",
    baseline: str = "HLF",
    title: str | None = None,
) -> str:
    """Render Table-2-style rows: speedups of *policy* vs *baseline* and % gain.

    Each :class:`~repro.analysis.comparison.ComparisonResult` becomes one row
    labelled by its machine; the caller groups rows per program (the paper has
    one sub-table per program).
    """
    headers = ["Architecture", f"(Sp){policy}", f"(Sp){baseline}", "% gain"]
    rows = []
    for comp in comparisons:
        rows.append(
            [
                comp.machine_name,
                comp.speedup(policy),
                comp.speedup(baseline),
                comp.gain_percent(policy, baseline),
            ]
        )
    return format_table(rows, headers=headers, title=title, floatfmt=".2f")
