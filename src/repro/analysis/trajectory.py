"""Per-packet cost-trajectory capture (the Figure-1 reproduction).

Figure 1 of the paper plots, for one Newton–Euler annealing packet on the
8-node hypercube with ``w_b = w_c = 0.5``, three curves against the proposal
index: the level (balancing) cost ``F_b``, the communication cost ``F_c`` and
the normalized weighted total ``F_tot``.  This module runs the SA scheduler
with trajectory recording enabled, picks a representative packet and returns
its curves as plain Python lists ready for printing or plotting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.comm.model import CommunicationModel, LinearCommModel
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.machine.machine import Machine
from repro.sim.engine import simulate
from repro.taskgraph.graph import TaskGraph

__all__ = ["PacketTrajectory", "record_packet_trajectory"]


@dataclass
class PacketTrajectory:
    """The three Figure-1 curves for one annealing packet."""

    packet_index: int
    packet_time: float
    n_ready: int
    n_idle: int
    iterations: List[int] = field(default_factory=list)
    balance_cost: List[float] = field(default_factory=list)
    communication_cost: List[float] = field(default_factory=list)
    total_cost: List[float] = field(default_factory=list)

    @property
    def n_points(self) -> int:
        return len(self.iterations)

    def final_costs(self) -> tuple[float, float, float]:
        """The last (balance, communication, total) sample of the trajectory."""
        if not self.iterations:
            return (0.0, 0.0, 0.0)
        return (self.balance_cost[-1], self.communication_cost[-1], self.total_cost[-1])

    def initial_costs(self) -> tuple[float, float, float]:
        if not self.iterations:
            return (0.0, 0.0, 0.0)
        return (self.balance_cost[0], self.communication_cost[0], self.total_cost[0])


def record_packet_trajectory(
    graph: TaskGraph,
    machine: Machine,
    config: Optional[SAConfig] = None,
    comm_model: Optional[CommunicationModel] = None,
    packet_selector: str = "largest",
) -> PacketTrajectory:
    """Run the SA scheduler on (*graph*, *machine*) and return one packet's trajectory.

    Parameters
    ----------
    config:
        SA configuration; trajectory recording is forced on.  The default is
        the paper configuration with ``w_b = w_c = 0.5`` and a random initial
        mapping (so the curves start from an unoptimized state, as in the
        paper's figure).
    packet_selector:
        Which packet to return: ``"largest"`` (most ready candidates — the
        most informative curve), ``"first"``, or ``"longest"`` (most recorded
        proposals).
    """
    if config is None:
        config = SAConfig.paper_defaults(seed=0)
    # Trajectories must be recorded, and a random seed mapping makes the
    # descent visible (an HLF seed already starts near the balance optimum).
    from dataclasses import replace

    config = replace(config, record_trajectories=True, initial_mapping="random")
    scheduler = SAScheduler(config)
    comm = comm_model if comm_model is not None else LinearCommModel()
    simulate(graph, machine, scheduler, comm_model=comm, record_trace=False)

    outcomes = scheduler.packet_outcomes
    stats = scheduler.packet_stats
    if not outcomes:
        return PacketTrajectory(packet_index=-1, packet_time=0.0, n_ready=0, n_idle=0)

    if packet_selector == "first":
        idx = 0
    elif packet_selector == "longest":
        idx = max(range(len(outcomes)), key=lambda i: len(outcomes[i].trajectory))
    else:  # "largest"
        idx = max(range(len(stats)), key=lambda i: (stats[i].n_ready, stats[i].n_idle))

    outcome = outcomes[idx]
    stat = stats[idx]
    traj = PacketTrajectory(
        packet_index=idx,
        packet_time=stat.time,
        n_ready=stat.n_ready,
        n_idle=stat.n_idle,
    )
    for point in outcome.trajectory:
        traj.iterations.append(point.iteration)
        traj.balance_cost.append(point.balance_cost)
        traj.communication_cost.append(point.communication_cost)
        traj.total_cost.append(point.total_cost)
    return traj
