"""Analysis utilities: metrics, SA-vs-baseline comparisons, trajectories, reports."""

from repro.analysis.metrics import speedup, efficiency, percent_gain, schedule_length_ratio
from repro.analysis.comparison import ComparisonResult, compare_policies, run_policy
from repro.analysis.trajectory import PacketTrajectory, record_packet_trajectory
from repro.analysis.report import comparison_table, properties_table

__all__ = [
    "speedup",
    "efficiency",
    "percent_gain",
    "schedule_length_ratio",
    "ComparisonResult",
    "compare_policies",
    "run_policy",
    "PacketTrajectory",
    "record_packet_trajectory",
    "comparison_table",
    "properties_table",
]
