"""Scalar performance metrics used throughout the evaluation.

The paper reports *speedup* (serial time over parallel completion time) and
the *% gain* of simulated annealing over the HLF baseline; efficiency and the
schedule-length ratio against the critical-path lower bound are added for the
extension benchmarks.
"""

from __future__ import annotations

from repro.utils.validation import check_positive

__all__ = ["speedup", "efficiency", "percent_gain", "schedule_length_ratio"]


def speedup(total_work: float, makespan: float) -> float:
    """``T_1 / T_p``: serial execution time divided by the parallel completion time."""
    if makespan <= 0:
        raise ValueError(f"makespan must be > 0, got {makespan}")
    if total_work < 0:
        raise ValueError(f"total_work must be >= 0, got {total_work}")
    return total_work / makespan


def efficiency(total_work: float, makespan: float, n_processors: int) -> float:
    """Speedup divided by the processor count."""
    if n_processors < 1:
        raise ValueError(f"n_processors must be >= 1, got {n_processors}")
    return speedup(total_work, makespan) / n_processors


def percent_gain(value: float, baseline: float) -> float:
    """Relative improvement of *value* over *baseline*, in percent.

    This is the paper's "% gain" column: ``100 * (S_SA - S_HLF) / S_HLF``.
    """
    check_positive("baseline", baseline)
    return 100.0 * (value - baseline) / baseline


def schedule_length_ratio(makespan: float, critical_path_length: float) -> float:
    """Makespan divided by the critical-path lower bound (>= 1 for valid schedules
    when communication is free)."""
    check_positive("critical_path_length", critical_path_length)
    if makespan < 0:
        raise ValueError(f"makespan must be >= 0, got {makespan}")
    return makespan / critical_path_length
