"""Run several scheduling policies on the same (graph, machine) and compare speedups.

This is the machinery behind the Table-2 reproduction: for every program ×
architecture × communication setting the SA scheduler and the HLF baseline
are simulated under identical conditions and the percentage gain is reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import percent_gain
from repro.comm.model import CommunicationModel, LinearCommModel, ZeroCommModel
from repro.machine.machine import Machine
from repro.schedulers.base import SchedulingPolicy
from repro.sim.engine import simulate
from repro.sim.results import SimulationResult
from repro.taskgraph.graph import TaskGraph

__all__ = ["ComparisonResult", "run_policy", "compare_policies"]


@dataclass
class ComparisonResult:
    """Speedups of several policies on one (graph, machine, comm-model) combination."""

    graph_name: str
    machine_name: str
    comm_enabled: bool
    results: Dict[str, SimulationResult] = field(default_factory=dict)

    def speedup(self, policy_name: str) -> float:
        return self.results[policy_name].speedup()

    def gain_percent(self, policy_name: str, baseline_name: str) -> float:
        """The paper's "% gain" of *policy_name* over *baseline_name*."""
        return percent_gain(self.speedup(policy_name), self.speedup(baseline_name))

    def policy_names(self) -> List[str]:
        return list(self.results.keys())


def run_policy(
    graph: TaskGraph,
    machine: Machine,
    policy: SchedulingPolicy,
    comm_model: Optional[CommunicationModel] = None,
    fidelity: str = "latency",
    record_trace: bool = False,
) -> SimulationResult:
    """Simulate one policy once and return its result (trace off by default)."""
    return simulate(
        graph,
        machine,
        policy,
        comm_model=comm_model,
        fidelity=fidelity,
        record_trace=record_trace,
    )


def compare_policies(
    graph: TaskGraph,
    machine: Machine,
    policies: Sequence[SchedulingPolicy],
    with_communication: bool = True,
    fidelity: str = "latency",
    record_trace: bool = False,
) -> ComparisonResult:
    """Run every policy in *policies* on the same problem and collect the results.

    Parameters
    ----------
    with_communication:
        ``True`` uses the full equation-4 model; ``False`` uses the zero model
        (the paper's "w/o comm" columns).
    """
    comm_model: CommunicationModel = LinearCommModel() if with_communication else ZeroCommModel()
    comparison = ComparisonResult(
        graph_name=graph.name,
        machine_name=machine.name,
        comm_enabled=with_communication,
    )
    for policy in policies:
        result = run_policy(
            graph,
            machine,
            policy,
            comm_model=comm_model,
            fidelity=fidelity,
            record_trace=record_trace,
        )
        name = getattr(policy, "name", type(policy).__name__)
        comparison.results[name] = result
    return comparison
