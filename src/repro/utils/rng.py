"""Random-number-generator helpers.

Every stochastic component of the library accepts a ``seed`` argument that may
be ``None``, an integer, or an existing :class:`numpy.random.Generator`.  The
helpers here normalize those three cases so that experiments are reproducible
when a seed is given and independent when it is not.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["as_rng", "spawn_rng", "split", "StreamDraws", "SeedLike"]

SeedLike = Union[None, int, np.random.Generator]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` for a nondeterministic generator, an ``int`` for a
        deterministic one, or an existing generator which is returned
        unchanged (so that callers can thread a single stream through
        several components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class StreamDraws:
    """Buffered, bit-exact replica of a Generator's scalar ``random``/``integers`` draws.

    ``numpy.random.Generator`` scalar calls cost ~1–2 µs each in Python-call
    overhead, which dominates tight annealing loops.  This shim pulls raw
    64-bit outputs from the generator's bit generator in bulk
    (``random_raw``) and reimplements the two scalar draws the hot loop
    needs:

    * ``random()`` — ``(raw >> 11) * 2**-53``, numpy's double construction;
    * ``integers(0, n)`` — Lemire's multiply-shift bounded draw over 32-bit
      halves of the raw outputs (low half first, with the spare high half
      buffered for the next call), numpy's algorithm for ranges that fit in
      32 bits.

    Both reproduce the wrapped generator's stream **bit for bit** (verified
    by ``tests/test_utils.py``), so swapping a ``Generator`` for its
    ``StreamDraws`` preserves every stochastic decision while cutting the
    per-draw cost by an order of magnitude.  A pending buffered half-word in
    the generator's state (``has_uint32``) is honoured at construction.

    The shim takes ownership of the stream: once constructed, draws must go
    through it (it reads ahead of the wrapped generator, which should be
    discarded afterwards).
    """

    __slots__ = ("_bit_generator", "_buffer", "_pos", "_block", "_half")

    _INV_2_53 = 1.0 / 9007199254740992.0  # 2**-53
    _M32 = (1 << 32) - 1

    def __init__(self, rng: np.random.Generator, block: int = 256) -> None:
        self._bit_generator = rng.bit_generator
        self._buffer: list = []
        self._pos = 0
        self._block = int(block)
        state = self._bit_generator.state
        # Honour a half-word left over from earlier scalar integer draws.
        self._half: Optional[int] = (
            int(state["uinteger"]) if state.get("has_uint32") else None
        )

    def _raw(self) -> int:
        if self._pos >= len(self._buffer):
            self._buffer = self._bit_generator.random_raw(self._block).tolist()
            self._pos = 0
        value = self._buffer[self._pos]
        self._pos += 1
        return value

    def random(self) -> float:
        """One uniform double in [0, 1), identical to ``Generator.random()``."""
        return (self._raw() >> 11) * self._INV_2_53

    def integers(self, low: int, high: Optional[int] = None) -> int:
        """One bounded integer, identical to ``Generator.integers(low, high)``.

        Supports the half-open ``[low, high)`` form with ranges that fit in
        32 bits (all the annealing loop ever draws).
        """
        if high is None:
            low, high = 0, low
        n = high - low
        if n <= 0:
            raise ValueError("low >= high")
        if n == 1:
            return low
        if n > self._M32:  # pragma: no cover - defensive
            raise ValueError(f"StreamDraws supports 32-bit ranges, got {n}")
        half = self._half
        if half is not None:
            u32, self._half = half, None
        else:
            raw = self._raw()
            u32 = raw & self._M32
            self._half = raw >> 32
        m = u32 * n
        leftover = m & self._M32
        if leftover < n:
            threshold = ((1 << 32) - n) % n
            while leftover < threshold:
                half = self._half
                if half is not None:
                    u32, self._half = half, None
                else:
                    raw = self._raw()
                    u32 = raw & self._M32
                    self._half = raw >> 32
                m = u32 * n
                leftover = m & self._M32
        return low + (m >> 32)


def spawn_rng(rng: np.random.Generator, n: int = 1) -> list[np.random.Generator]:
    """Derive *n* statistically independent child generators from *rng*.

    The children are produced by drawing fresh 63-bit seeds from the parent,
    which keeps the parent stream usable afterwards while giving each child a
    deterministic, independent stream.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]


def split(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split *rng* into *n* independent child generators.

    The canonical entry point for multi-replica work (e.g. the batched
    annealing engine gives each replica one child): one ``integers`` draw of
    *n* fresh 63-bit seeds from the parent, one deterministic child stream
    per seed.  Identical to :func:`spawn_rng`; the name matches the
    replica-oriented call sites.
    """
    return spawn_rng(rng, n)
