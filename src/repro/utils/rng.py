"""Random-number-generator helpers.

Every stochastic component of the library accepts a ``seed`` argument that may
be ``None``, an integer, or an existing :class:`numpy.random.Generator`.  The
helpers here normalize those three cases so that experiments are reproducible
when a seed is given and independent when it is not.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["as_rng", "spawn_rng", "SeedLike"]

SeedLike = Union[None, int, np.random.Generator]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` for a nondeterministic generator, an ``int`` for a
        deterministic one, or an existing generator which is returned
        unchanged (so that callers can thread a single stream through
        several components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, n: int = 1) -> list[np.random.Generator]:
    """Derive *n* statistically independent child generators from *rng*.

    The children are produced by drawing fresh 63-bit seeds from the parent,
    which keeps the parent stream usable afterwards while giving each child a
    deterministic, independent stream.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
