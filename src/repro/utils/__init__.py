"""Small shared utilities: RNG handling, validation helpers, tabulation."""

from repro.utils.rng import as_rng, spawn_rng
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_in_range,
    check_type,
)
from repro.utils.tabulate import format_table

__all__ = [
    "as_rng",
    "spawn_rng",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_in_range",
    "check_type",
    "format_table",
]
