"""Deterministic fault injection for supervised sweep workers.

The supervisor (:mod:`repro.experiments.supervisor`) proves its fault
tolerance against *reproducible* chaos: every fault decision is a pure
function of ``(seed, cell key, attempt)``, so a chaotic run injects the same
crashes, hangs, worker deaths and malformed results no matter how many
workers run it, in what order cells are dispatched, or how often the run is
repeated.  That determinism is what makes the differential contract testable:
with injection on, the sweep must still produce rows bit-identical (on the
science fields) to a fault-free run.

Four fault kinds cover the worker failure modes the supervisor defends
against:

``raise``
    The worker raises :class:`~repro.exceptions.ChaosError` (a transient
    in-process failure; retried with backoff).
``hang``
    The worker sleeps for ``hang_s`` seconds — long enough to trip the
    supervisor's per-cell timeout, which kills and respawns the worker.  If
    no timeout is armed the sleep eventually ends and the worker raises, so
    a hang can never silently succeed.
``die``
    The worker exits abruptly via ``os._exit(exit_code)`` (no cleanup, no
    exception propagation — the same signature as a segfault), exercising
    worker-death detection and re-dispatch.
``malform``
    The worker returns a nonsense payload instead of result rows,
    exercising the supervisor's result validation.

Decisions are derived from SHA-256, not :mod:`random`, so they are stable
across processes, platforms and Python versions.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.exceptions import ChaosError, ConfigurationError

__all__ = [
    "FAULT_KINDS",
    "MALFORMED_PAYLOAD",
    "ChaosConfig",
    "det_uniform",
]

#: Every fault kind the harness can inject, in canonical order.
FAULT_KINDS: Tuple[str, ...] = ("raise", "hang", "die", "malform")

#: The payload a ``malform`` fault substitutes for the worker's real result.
#: Deliberately *not* a list of row dicts, so any structural validation of
#: the result must reject it.
MALFORMED_PAYLOAD = {"chaos": "malformed", "rows": None}


def det_uniform(seed: int, *parts: object) -> float:
    """A deterministic uniform draw in ``[0, 1)`` keyed by ``(seed, *parts)``.

    Hash-derived (SHA-256 over the repr of the key tuple), so the same key
    yields the same draw in every process and on every platform; distinct
    keys are independent for any statistical purpose the harness has.
    """
    blob = repr((int(seed),) + tuple(parts)).encode("utf-8")
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded fault-injection plan applied around every supervised cell.

    Parameters
    ----------
    rate:
        Probability in ``[0, 1]`` that a given ``(cell, attempt)`` faults.
    kinds:
        Fault kinds to draw from (subset of :data:`FAULT_KINDS`); the kind
        of a faulting cell is itself a deterministic draw.
    seed:
        Decision seed; two configs with the same seed/rate/kinds inject
        identical faults.
    hang_s:
        How long a ``hang`` fault sleeps.  Must exceed the supervisor
        timeout for the hang to be killed rather than merely delayed.
    exit_code:
        Exit status of a ``die`` fault (default 139, the shell's signature
        for a SIGSEGV death).
    """

    rate: float
    kinds: Tuple[str, ...] = FAULT_KINDS
    seed: int = 0
    hang_s: float = 3600.0
    exit_code: int = 139

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"chaos rate must be in [0, 1], got {self.rate}")
        kinds = tuple(self.kinds)
        if not kinds:
            raise ConfigurationError("chaos kinds must not be empty")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown chaos kind {kind!r}; known: {list(FAULT_KINDS)}"
                )
        object.__setattr__(self, "kinds", kinds)
        if self.hang_s <= 0:
            raise ConfigurationError(f"hang_s must be > 0, got {self.hang_s}")

    # ------------------------------------------------------------------ #
    def decide(self, key: str, attempt: int) -> Optional[str]:
        """The fault kind injected for ``(key, attempt)``, or ``None``.

        Pure: the decision depends only on the config and the arguments, so
        every worker (and every rerun) agrees on where faults land.
        """
        if det_uniform(self.seed, "fault", key, attempt) >= self.rate:
            return None
        pick = det_uniform(self.seed, "kind", key, attempt)
        return self.kinds[min(int(pick * len(self.kinds)), len(self.kinds) - 1)]

    def inject(self, key: str, attempt: int):
        """Carry out the fault decided for ``(key, attempt)``, if any.

        Returns ``None`` when the cell is healthy, or
        :data:`MALFORMED_PAYLOAD` when the worker should substitute garbage
        for its real result.  ``raise`` faults raise :class:`ChaosError`,
        ``hang`` faults sleep (then raise, so an un-killed hang still reads
        as a failure), and ``die`` faults never return.
        """
        kind = self.decide(key, attempt)
        if kind is None:
            return None
        if kind == "malform":
            return MALFORMED_PAYLOAD
        if kind == "raise":
            raise ChaosError(f"injected fault for cell {key} (attempt {attempt})")
        if kind == "hang":
            time.sleep(self.hang_s)
            raise ChaosError(
                f"injected hang for cell {key} (attempt {attempt}) outlived "
                f"{self.hang_s}s without being killed"
            )
        # kind == "die": an abrupt, cleanup-free exit, like a segfault.
        os._exit(self.exit_code)

    def plan(self, keys: Sequence[str], attempt: int = 1) -> dict:
        """Map each key to its injected fault kind at *attempt* (diagnostics)."""
        decisions = {key: self.decide(key, attempt) for key in keys}
        return {key: kind for key, kind in decisions.items() if kind is not None}
