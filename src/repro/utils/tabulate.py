"""Minimal plain-text table formatting.

The experiment drivers and benchmark harness print paper-style tables on the
terminal.  This avoids a dependency on external tabulation packages while
keeping the output readable and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table"]


def _cell(value, floatfmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    rows: Iterable[Sequence],
    headers: Sequence[str] | None = None,
    floatfmt: str = ".2f",
    title: str | None = None,
) -> str:
    """Render *rows* as an aligned plain-text table.

    Parameters
    ----------
    rows:
        Iterable of row sequences.  Cells may be strings, ints or floats;
        floats are formatted with *floatfmt*.
    headers:
        Optional column headers.
    floatfmt:
        Format specification applied to float cells (default two decimals).
    title:
        Optional title line printed above the table.
    """
    str_rows = [[_cell(c, floatfmt) for c in row] for row in rows]
    if headers is not None:
        header_row = [str(h) for h in headers]
        all_rows = [header_row] + str_rows
    else:
        header_row = None
        all_rows = list(str_rows)

    if not all_rows:
        return title or ""

    n_cols = max(len(r) for r in all_rows)
    for r in all_rows:
        r.extend([""] * (n_cols - len(r)))
    widths = [max(len(r[c]) for r in all_rows) for c in range(n_cols)]

    def fmt_row(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()

    lines: list[str] = []
    if title:
        lines.append(title)
    if header_row is not None:
        lines.append(fmt_row(header_row))
        lines.append("  ".join("-" * w for w in widths))
        body = str_rows
    else:
        body = str_rows
    for row in body:
        lines.append(fmt_row(row))
    return "\n".join(lines)
