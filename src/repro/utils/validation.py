"""Argument-validation helpers used across the library.

These raise :class:`ValueError` / :class:`TypeError` with uniform messages so
that error handling and tests stay consistent between subsystems.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = [
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_in_range",
    "check_type",
    "is_finite_number",
]


def is_finite_number(value: Any) -> bool:
    """Return ``True`` if *value* is a finite real number (bools excluded)."""
    if isinstance(value, bool):
        return False
    try:
        return math.isfinite(float(value))
    except (TypeError, ValueError):
        return False


def check_type(name: str, value: Any, types) -> Any:
    """Raise :class:`TypeError` unless ``isinstance(value, types)``."""
    if not isinstance(value, types):
        expected = getattr(types, "__name__", str(types))
        raise TypeError(f"{name} must be of type {expected}, got {type(value).__name__}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Raise :class:`ValueError` unless *value* is a finite number >= 0."""
    if not is_finite_number(value) or float(value) < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return float(value)


def check_positive(name: str, value: float) -> float:
    """Raise :class:`ValueError` unless *value* is a finite number > 0."""
    if not is_finite_number(value) or float(value) <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def check_probability(name: str, value: float) -> float:
    """Raise :class:`ValueError` unless *value* lies in the closed interval [0, 1]."""
    if not is_finite_number(value) or not (0.0 <= float(value) <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Raise :class:`ValueError` unless ``low <= value <= high``."""
    if not is_finite_number(value) or not (low <= float(value) <= high):
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value!r}")
    return float(value)
