"""The compiled fast simulation engine.

Runs the discrete-event loop of :mod:`repro.sim.engine` entirely in index
space over a :class:`~repro.sim.compile.CompiledScenario`:
tasks are dense integers, simulation state lives in flat arrays
(``unfinished_preds``, ``finish_times``, ``assigned_proc``, per-processor
free times), the event set is a plain ``(time, seq, task)`` heap, and every
equation-4 message cost is a precompiled table lookup.  Every built-in
policy — ETF, HLF, LPT, FIFO, Random, and SA through its array-annealer
kernel — implements
:meth:`~repro.schedulers.base.SchedulingPolicy.fast_assign` and is driven
through index-space kernels; a policy without one (custom policies, or SA's
reference/trajectory configurations) receives a
:class:`~repro.schedulers.base.PacketContext` materialized lazily from
incrementally-maintained dictionaries.  Those fallback epochs are counted
(``SimulationResult.n_fallback_epochs``) and logged once per run at DEBUG
level, so a silently slow path is visible in sweep metadata instead of just
in the wall clock.

Both fidelities are implemented:

* ``"latency"`` — every inter-processor message is a single precompiled
  table lookup (the model the SA cost function assumes);
* ``"contention"`` — messages are forwarded hop by hop over the compiled
  :class:`~repro.sim.compile.ContentionTables`: a flat per-link next-free
  timeline replaces the object engine's ``(a, b)``-keyed dict, routes are
  precomputed CSR hop slices instead of per-message ``machine.route``
  calls, and the σ/τ send/route busy times are charged to a flat
  per-processor communication-free vector.  With trace recording on, the
  same send/route overhead records and per-hop link occupancy intervals
  are emitted, so Figure 2's Gantt chart can run on this engine.

Every arithmetic operation mirrors the reference engine's float operation
order, so a fast run is **bit-for-bit identical** to a reference run: same
makespan, same assignments, same task intervals, same messages and overhead
records, same fingerprint.  The golden-trace suite and the hypothesis
differential tests pin that contract for both fidelities.

:class:`~repro.sim.engine.Simulator` dispatches here automatically for runs
without trace recording whenever the communication model folds into tables,
and falls back to the object engine otherwise (``fast=True`` forces the
fast path, e.g. to record an equivalence trace; ``fast=False`` opts out).
"""

from __future__ import annotations

import heapq
import logging
import operator
from bisect import bisect_left, insort
from types import MappingProxyType
from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.exceptions import SimulationError
from repro.schedulers.base import PacketContext, SchedulingPolicy, validate_assignment
from repro.sim.compile import CompiledScenario, FastPacket
from repro.sim.message import MessageRecord
from repro.sim.results import SimulationResult
from repro.sim.trace import ExecutionTrace, OverheadRecord, TaskRecord

__all__ = ["run_compiled", "run_lanes"]

TaskId = Hashable
ProcId = int

_LOGGER = logging.getLogger(__name__)


def _validate_fast_assignment(
    time: float,
    unfinished: List[int],
    assigned: List[int],
    proc_occupant: List[int],
    assignment: Dict[int, ProcId],
) -> None:
    """Index-space counterpart of :func:`~repro.schedulers.base.validate_assignment`.

    Checked against the engine's own state (a task is ready iff it is
    unassigned with no unfinished predecessors; a processor is idle iff it
    has no occupant), so the check costs O(assignment) instead of
    materializing ready/idle sets.
    """
    from repro.exceptions import SchedulingError

    seen: set = set()
    for task, proc in assignment.items():
        try:
            task = operator.index(task)
            proc = operator.index(proc)
        except TypeError:
            raise SchedulingError(
                f"fast assignment must map task indices to processor indices, "
                f"got {task!r} -> {proc!r} at t={time}"
            ) from None
        if not 0 <= task < len(unfinished) or assigned[task] >= 0 or unfinished[task] != 0:
            raise SchedulingError(f"task {task!r} is not ready at t={time}")
        if not 0 <= proc < len(proc_occupant) or proc_occupant[proc] >= 0:
            raise SchedulingError(f"processor {proc!r} is not idle at t={time}")
        if proc in seen:
            raise SchedulingError(f"processor {proc!r} assigned more than one task")
        seen.add(proc)


def run_lanes(
    lanes: List[tuple],
    fidelity: str = "latency",
) -> List[SimulationResult]:
    """Run a group of ``(scenario, policy)`` lanes, batched when it pays.

    The lane dispatcher between the two compiled engines: a single lane has
    nothing to amortize and runs through :func:`run_compiled` (the solo
    fallback — also the reference each batched lane is bit-identical to);
    larger groups go to the lock-step batched engine
    (:func:`~repro.sim.batch_engine.run_batch`).  As with
    :func:`run_compiled`, the caller is responsible for ``policy.reset()``
    and graph validation.
    """
    if not lanes:
        return []
    if len(lanes) == 1:
        scenario, policy = lanes[0]
        return [run_compiled(scenario, policy, fidelity=fidelity)]
    from repro.sim.batch_engine import run_batch

    return run_batch(lanes, fidelity=fidelity)


def run_compiled(
    scenario: CompiledScenario,
    policy: SchedulingPolicy,
    levels: Optional[Dict[TaskId, float]] = None,
    record_trace: bool = False,
    fidelity: str = "latency",
) -> SimulationResult:
    """Execute *scenario* under *policy* and return a :class:`SimulationResult`.

    The caller (normally :class:`~repro.sim.engine.Simulator`) is responsible
    for ``policy.reset()`` and graph validation.  *levels* is the id-keyed
    level mapping for the object-path fallback context; recomputed when
    omitted.  *fidelity* selects the latency or the store-and-forward
    contention message model (see module docstring).
    """
    graph, machine = scenario.graph, scenario.machine
    n = scenario.n_tasks
    n_procs = scenario.n_procs
    policy_name = getattr(policy, "name", type(policy).__name__)
    if n == 0:
        return SimulationResult(
            makespan=0.0,
            total_work=0.0,
            n_processors=n_procs,
            graph_name=graph.name,
            machine_name=machine.name,
            policy_name=policy_name,
            fidelity=fidelity,
            trace=ExecutionTrace() if record_trace else None,
        )

    task_ids = scenario.task_ids
    # Plain-list mirrors: python list indexing returns cached floats/ints at
    # a fraction of the cost of numpy scalar indexing, and this loop is all
    # scalar.
    durations = scenario.durations_list
    speeds = scenario.speeds_list
    pred_indptr, pred_ids = scenario.pred_indptr_list, scenario.pred_ids_list
    succ_indptr, succ_ids = scenario.succ_indptr_list, scenario.succ_ids_list
    pred_weights = scenario.pred_weights
    pred_costs = scenario._pred_costs  # None for the zero model
    p_sq_stride = n_procs  # flat (e, src, dst) lookup stride

    # --- flat simulation state ----------------------------------------- #
    unfinished = [pred_indptr[i + 1] - pred_indptr[i] for i in range(n)]
    ready_keys: List[int] = [i for i in range(n) if unfinished[i] == 0]
    assigned = [-1] * n
    finish = [0.0] * n
    n_finished = 0
    proc_occupant = [-1] * n_procs
    proc_task_free = [0.0] * n_procs
    heap: List[tuple] = []
    seq = 0
    n_packets = 0
    n_fallback = 0
    trace = ExecutionTrace()

    # Contention-only state: flat per-link next-free timeline, per-processor
    # communication busy time and the compiled route hop slices.  A
    # zero-communication contention run skips the store-and-forward
    # machinery entirely (like the object engine's ``deliver_latency``
    # shortcut), so it rides the plain latency placement path.
    contention = fidelity == "contention" and scenario.comm_enabled
    if contention:
        ct = scenario.contention_tables()
        sigma, tau = ct.sigma, ct.tau
        unit_links = ct.unit_links
        route_indptr = ct.route_indptr
        hop_links, hop_nodes, hop_mults = ct.hop_links, ct.hop_nodes, ct.hop_mults
        pair_routes = ct.routes
        link_free = [0.0] * ct.n_links
        proc_comm_free = [0.0] * n_procs
        pred_weights_list = pred_weights.tolist()

    # The object-path fallback (policies without ``fast_assign``, e.g. SA —
    # or a policy whose fast path declines one epoch) sees the same
    # PacketContext as the reference engine, built from these
    # incrementally-maintained dictionaries: O(1) upkeep per placement /
    # completion instead of O(n) copies per epoch.
    has_fast = type(policy).fast_assign is not SchedulingPolicy.fast_assign
    ctx_task_processor: Dict[TaskId, ProcId] = {}
    ctx_finish: Dict[TaskId, float] = {}
    ctx_proc_ready: Dict[ProcId, float] = {p: 0.0 for p in range(n_procs)}

    # ``assigned``/``finish`` are plain lists for the scalar hot path; the
    # index-space kernels read these array aliases.
    assigned_arr = np.full(n, -1, dtype=np.intp)
    finish_arr = np.zeros(n, dtype=np.float64)
    proc_ready_arr = np.zeros(n_procs, dtype=np.float64)

    def place(ti: int, proc: int, now: float) -> None:
        del ready_keys[bisect_left(ready_keys, ti)]
        assigned[ti] = proc
        assigned_arr[ti] = proc
        proc_occupant[proc] = ti
        data_ready = now
        for e in range(pred_indptr[ti], pred_indptr[ti + 1]):
            pred = pred_ids[e]
            src = assigned[pred]
            send_time = finish[pred]
            if src == proc:
                arrival = send_time
            else:
                if pred_costs is None:
                    arrival = send_time + 0.0
                else:
                    arrival = send_time + pred_costs.item(
                        (e * p_sq_stride + src) * p_sq_stride + proc
                    )
                if record_trace:
                    trace.message_records.append(
                        MessageRecord(
                            src_task=task_ids[pred],
                            dst_task=task_ids[ti],
                            src_proc=src,
                            dst_proc=proc,
                            weight=float(pred_weights[e]),
                            send_time=send_time,
                            arrival_time=float(arrival),
                            route=tuple(machine.route(src, proc)),
                        )
                    )
            if arrival > data_ready:
                data_ready = arrival
        start = max(now, data_ready, proc_task_free[proc])
        fin = start + durations[ti] / speeds[proc]
        proc_task_free[proc] = fin
        finish[ti] = fin
        finish_arr[ti] = fin
        ctx_task_processor[task_ids[ti]] = proc
        ctx_proc_ready[proc] = fin
        proc_ready_arr[proc] = fin
        if record_trace:
            trace.task_records.append(
                TaskRecord(
                    task=task_ids[ti],
                    processor=proc,
                    assigned_time=now,
                    start_time=float(start),
                    finish_time=float(fin),
                )
            )
        nonlocal seq
        heapq.heappush(heap, (fin, seq, ti))
        seq += 1

    def place_contention(ti: int, proc: int, now: float) -> None:
        """Contention-fidelity placement: store-and-forward message delivery.

        Mirrors ``deliver_contention`` of the object engine operation by
        operation — same ``max`` argument orders, same per-hop occupancy
        arithmetic, same overhead/message record conditions — over the
        precompiled flat route tables, so the two engines are bit-identical
        down to the trace record lists.
        """
        del ready_keys[bisect_left(ready_keys, ti)]
        assigned[ti] = proc
        assigned_arr[ti] = proc
        proc_occupant[proc] = ti
        data_ready = now
        for e in range(pred_indptr[ti], pred_indptr[ti + 1]):
            pred = pred_ids[e]
            src = assigned[pred]
            send_time = finish[pred]
            if src == proc:
                arrival = send_time
            else:
                weight = pred_weights_list[e]
                # Link setup on the sender.
                cf = proc_comm_free[src]
                send_start = send_time if send_time >= cf else cf
                end = send_start + sigma
                # ``end > send_start`` (not ``sigma > 0``): the object
                # engine's add_overhead gates on the *computed* interval, and
                # a tiny sigma can be absorbed at large times.
                if record_trace and end > send_start:
                    trace.overhead_records.append(
                        OverheadRecord(
                            processor=src,
                            start_time=send_start,
                            end_time=end,
                            kind="send",
                            task=task_ids[pred],
                        )
                    )
                if end > cf:
                    proc_comm_free[src] = end
                at_node = send_start + sigma
                base = route_indptr[src * n_procs + proc]
                top = route_indptr[src * n_procs + proc + 1]
                last = top - 1
                hop_intervals: List[tuple] = []
                for h in range(base, top):
                    lid = hop_links[h]
                    lf = link_free[lid]
                    hop_start = at_node if at_node >= lf else lf
                    hop_end = hop_start + (weight if unit_links else weight * hop_mults[h])
                    link_free[lid] = hop_end
                    if record_trace:
                        hop_intervals.append((hop_start, hop_end))
                    at_node = hop_end
                    if h < last:
                        # Intermediate processor routes the message
                        # (quarter blocks of Fig. 2).
                        b = hop_nodes[h]
                        routed = hop_end + tau
                        if record_trace and routed > hop_end:
                            trace.overhead_records.append(
                                OverheadRecord(
                                    processor=b,
                                    start_time=hop_end,
                                    end_time=routed,
                                    kind="route",
                                    task=task_ids[ti],
                                )
                            )
                        if routed > proc_comm_free[b]:
                            proc_comm_free[b] = routed
                        at_node = routed
                arrival = at_node
                if record_trace:
                    trace.message_records.append(
                        MessageRecord(
                            src_task=task_ids[pred],
                            dst_task=task_ids[ti],
                            src_proc=src,
                            dst_proc=proc,
                            weight=weight,
                            send_time=send_start,
                            arrival_time=arrival,
                            route=pair_routes[src * n_procs + proc],
                            hop_intervals=tuple(hop_intervals),
                        )
                    )
            if arrival > data_ready:
                data_ready = arrival
        start = max(now, data_ready, proc_comm_free[proc], proc_task_free[proc])
        fin = start + durations[ti] / speeds[proc]
        proc_task_free[proc] = fin
        finish[ti] = fin
        finish_arr[ti] = fin
        ctx_task_processor[task_ids[ti]] = proc
        ctx_proc_ready[proc] = fin
        proc_ready_arr[proc] = fin
        if record_trace:
            trace.task_records.append(
                TaskRecord(
                    task=task_ids[ti],
                    processor=proc,
                    assigned_time=now,
                    start_time=float(start),
                    finish_time=float(fin),
                )
            )
        nonlocal seq
        heapq.heappush(heap, (fin, seq, ti))
        seq += 1

    place_task = place_contention if contention else place

    def run_epoch(now: float) -> None:
        nonlocal n_packets
        if not ready_keys:
            return
        idle = [p for p in range(n_procs) if proc_occupant[p] < 0]
        if not idle:
            return
        ready = list(ready_keys)
        assignment: Optional[Dict[int, ProcId]] = None
        if has_fast:
            proc_ready_arr[idle] = now
            packet = FastPacket(
                time=now,
                ready=ready,
                idle=idle,
                scenario=scenario,
                assigned_proc=assigned_arr,
                finish_times=finish_arr,
                proc_ready_time=proc_ready_arr,
            )
            assignment = policy.fast_assign(packet)
            if assignment is not None:
                _validate_fast_assignment(
                    now, unfinished, assigned, proc_occupant, assignment
                )
        if assignment is None:
            # Policy has no fast path (or declined this run's configuration):
            # materialize the reference context.  Counted so silent slow
            # paths show up in result/sweep metadata.
            nonlocal levels, n_fallback
            n_fallback += 1
            if n_fallback == 1:
                _LOGGER.debug(
                    "policy %s has no fast path; materializing PacketContext "
                    "(first fallback at t=%s)",
                    policy_name,
                    now,
                )
            if levels is None:
                levels = graph.levels()
            for p in idle:
                ctx_proc_ready[p] = now
            ctx = PacketContext(
                time=now,
                ready_tasks=[task_ids[k] for k in ready],
                idle_processors=idle,
                graph=graph,
                machine=machine,
                levels=levels,
                task_processor=MappingProxyType(ctx_task_processor),
                finish_times=MappingProxyType(ctx_finish),
                comm_model=scenario.comm_model,
                processor_ready_time=MappingProxyType(ctx_proc_ready),
            )
            id_assignment = policy.assign(ctx)
            validate_assignment(ctx, id_assignment)
            assignment = {
                scenario.index_of[t]: p for t, p in id_assignment.items()
            }
        if assignment:
            n_packets += 1
        for ti, proc in assignment.items():
            place_task(ti, proc, now)

    # --- main loop ------------------------------------------------------ #
    now = 0.0
    run_epoch(now)
    max_events = 10 * n + 100  # generous livelock backstop
    processed = 0
    while n_finished < n:
        if not heap:
            remaining = n - n_finished
            raise SimulationError(
                f"simulation stalled at t={now} with {remaining} unfinished tasks: "
                f"the policy {policy!r} did not assign any ready task"
            )
        now, _, ti = heapq.heappop(heap)
        batch = [ti]
        while heap and heap[0][0] == now:
            batch.append(heapq.heappop(heap)[2])
        processed += len(batch)
        if processed > max_events:  # pragma: no cover - defensive
            raise SimulationError("event budget exceeded; possible livelock")
        for ti in batch:
            n_finished += 1
            ctx_finish[task_ids[ti]] = finish[ti]
            proc = assigned[ti]
            if proc_occupant[proc] == ti:
                proc_occupant[proc] = -1
            for e in range(succ_indptr[ti], succ_indptr[ti + 1]):
                succ = succ_ids[e]
                unfinished[succ] -= 1
                if unfinished[succ] == 0:
                    insort(ready_keys, succ)
        run_epoch(now)

    makespan = float(max(finish)) if n else 0.0
    return SimulationResult(
        makespan=makespan,
        total_work=graph.total_work(),
        n_processors=n_procs,
        graph_name=graph.name,
        machine_name=machine.name,
        policy_name=policy_name,
        n_packets=n_packets,
        task_processor={task_ids[i]: assigned[i] for i in range(n)},
        trace=trace if record_trace else None,
        n_fallback_epochs=n_fallback,
        fidelity=fidelity,
    )
