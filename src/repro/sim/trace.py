"""Execution traces: what actually happened on every processor.

The trace is the raw material for the Gantt chart of Figure 2 and for the
schedule-validity checks used in the tests (precedence respected, one task
per processor at a time, messages arrive before their consumer starts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.exceptions import SimulationError
from repro.sim.message import MessageRecord

__all__ = ["TaskRecord", "OverheadRecord", "ExecutionTrace"]

TaskId = Hashable
ProcId = int


@dataclass(frozen=True)
class TaskRecord:
    """Execution interval of one task on one processor."""

    task: TaskId
    processor: ProcId
    assigned_time: float
    start_time: float
    finish_time: float

    @property
    def duration(self) -> float:
        return self.finish_time - self.start_time

    @property
    def wait_time(self) -> float:
        """Time the processor was reserved but waiting for predecessor data."""
        return self.start_time - self.assigned_time


@dataclass(frozen=True)
class OverheadRecord:
    """A communication overhead interval charged to a processor.

    ``kind`` is ``"send"`` (σ, the link setup on the sender), ``"route"``
    (τ on an intermediate processor) or ``"receive"`` (τ on the destination).
    These are the half- and quarter-height blocks of the paper's Figure 2.
    """

    processor: ProcId
    start_time: float
    end_time: float
    kind: str
    task: Optional[TaskId] = None

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


@dataclass
class ExecutionTrace:
    """All events recorded during one simulation run."""

    task_records: List[TaskRecord] = field(default_factory=list)
    message_records: List[MessageRecord] = field(default_factory=list)
    overhead_records: List[OverheadRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    def record_for(self, task: TaskId) -> TaskRecord:
        """The :class:`TaskRecord` of *task*; raises :class:`SimulationError` if missing."""
        for rec in self.task_records:
            if rec.task == task:
                return rec
        raise SimulationError(f"no execution record for task {task!r}")

    def tasks_on(self, processor: ProcId) -> List[TaskRecord]:
        """Task records executed on *processor*, sorted by start time."""
        return sorted(
            (r for r in self.task_records if r.processor == processor),
            key=lambda r: (r.start_time, r.finish_time),
        )

    def processor_of(self, task: TaskId) -> ProcId:
        return self.record_for(task).processor

    def makespan(self) -> float:
        """Completion time of the last task (0.0 for an empty trace)."""
        if not self.task_records:
            return 0.0
        return max(r.finish_time for r in self.task_records)

    def busy_time(self, processor: ProcId) -> float:
        """Total task execution time charged to *processor* (excluding overheads)."""
        return sum(r.duration for r in self.tasks_on(processor))

    def overhead_time(self, processor: ProcId) -> float:
        """Total communication overhead time charged to *processor*."""
        return sum(
            o.duration for o in self.overhead_records if o.processor == processor
        )

    # ------------------------------------------------------------------ #
    # Validity checks (used heavily by the test-suite)
    # ------------------------------------------------------------------ #
    def check_no_processor_overlap(self) -> None:
        """Raise :class:`SimulationError` if two tasks overlap on one processor."""
        by_proc: Dict[ProcId, List[TaskRecord]] = {}
        for rec in self.task_records:
            by_proc.setdefault(rec.processor, []).append(rec)
        for proc, recs in by_proc.items():
            recs.sort(key=lambda r: (r.start_time, r.finish_time))
            for a, b in zip(recs, recs[1:]):
                if b.start_time < a.finish_time - 1e-9:
                    raise SimulationError(
                        f"tasks {a.task!r} and {b.task!r} overlap on processor {proc}"
                    )

    def check_precedence(self, graph) -> None:
        """Raise :class:`SimulationError` if any task started before a predecessor finished."""
        finish = {r.task: r.finish_time for r in self.task_records}
        start = {r.task: r.start_time for r in self.task_records}
        for u, v, _w in graph.edges():
            if u in finish and v in start and start[v] < finish[u] - 1e-9:
                raise SimulationError(
                    f"precedence violated: {v!r} started at {start[v]} before "
                    f"{u!r} finished at {finish[u]}"
                )

    def check_messages_arrive_before_start(self) -> None:
        """Raise :class:`SimulationError` if a consumer started before a message arrived."""
        start = {r.task: r.start_time for r in self.task_records}
        for msg in self.message_records:
            consumer_start = start.get(msg.dst_task)
            if consumer_start is not None and consumer_start < msg.arrival_time - 1e-9:
                raise SimulationError(
                    f"task {msg.dst_task!r} started at {consumer_start} before its "
                    f"message from {msg.src_task!r} arrived at {msg.arrival_time}"
                )

    def validate(self, graph=None) -> None:
        """Run every structural check (optionally including precedence against *graph*)."""
        self.check_no_processor_overlap()
        self.check_messages_arrive_before_start()
        if graph is not None:
            self.check_precedence(graph)
