"""Plain-text Gantt charts (the Figure-2 reproduction).

The paper's Figure 2 shows, per processor, numbered task blocks plus
half-height send/receive blocks and quarter-height routing blocks.  On a
terminal we render one row per processor: task execution as ``[ label ]``
runs, send overhead as ``s``, routing overhead as ``r``, receive as ``v``,
idle time as ``.``.  A second, machine-readable representation
(:func:`gantt_rows`) returns the interval lists so tests and notebooks can
post-process them.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.sim.results import SimulationResult
from repro.sim.trace import ExecutionTrace

__all__ = ["render_gantt", "gantt_rows"]

TaskId = Hashable
ProcId = int

_OVERHEAD_SYMBOL = {"send": "s", "route": "r", "receive": "v"}


def gantt_rows(trace: ExecutionTrace, n_processors: int) -> Dict[ProcId, List[Tuple[float, float, str, str]]]:
    """Return, per processor, sorted ``(start, end, kind, label)`` intervals.

    ``kind`` is ``"task"``, ``"send"``, ``"route"`` or ``"receive"``; the
    label is the task label for task intervals and the overhead kind letter
    otherwise.
    """
    rows: Dict[ProcId, List[Tuple[float, float, str, str]]] = {p: [] for p in range(n_processors)}
    for rec in trace.task_records:
        rows[rec.processor].append((rec.start_time, rec.finish_time, "task", str(rec.task)))
    for ov in trace.overhead_records:
        rows[ov.processor].append(
            (ov.start_time, ov.end_time, ov.kind, _OVERHEAD_SYMBOL.get(ov.kind, "?"))
        )
    for p in rows:
        rows[p].sort(key=lambda iv: (iv[0], iv[1]))
    return rows


def render_gantt(
    result: SimulationResult,
    width: int = 100,
    until: float | None = None,
) -> str:
    """Render the schedule of *result* as a plain-text Gantt chart.

    Parameters
    ----------
    result:
        A simulation result carrying a recorded trace.
    width:
        Number of character columns representing the time axis.
    until:
        Only render the schedule up to this time (the paper's Figure 2 shows
        a *detail* of the Newton–Euler start); defaults to the makespan.

    Returns
    -------
    str
        One header line with the time scale plus one line per processor.
    """
    if result.trace is None:
        return "(no trace recorded)"
    trace = result.trace
    horizon = until if until is not None else result.makespan
    if horizon <= 0:
        return "(empty schedule)"
    width = max(10, int(width))
    scale = width / horizon

    def col(t: float) -> int:
        return min(width - 1, max(0, int(t * scale)))

    lines = [f"time 0 .. {horizon:.1f}  ({result.graph_name} on {result.machine_name}, {result.policy_name})"]
    rows = gantt_rows(trace, result.n_processors)
    for proc in range(result.n_processors):
        row = ["."] * width
        # overheads first so task blocks overwrite them when they coincide
        for start, end, kind, label in rows[proc]:
            if start >= horizon:
                continue
            c0, c1 = col(start), col(min(end, horizon))
            if kind == "task":
                continue
            for c in range(c0, max(c0 + 1, c1)):
                row[c] = label
        for start, end, kind, label in rows[proc]:
            if kind != "task" or start >= horizon:
                continue
            c0, c1 = col(start), col(min(end, horizon))
            span = max(c1 - c0, 1)
            block = ("#" * span)
            # embed the task label when it fits
            text = label[: span - 2]
            if span >= 3 and text:
                block = "[" + text.ljust(span - 2, "#") + "]"
            for i, ch in enumerate(block):
                if c0 + i < width:
                    row[c0 + i] = ch
        lines.append(f"P{proc:<2d} |{''.join(row)}|")
    lines.append(
        "legend: [..]/# task execution, s send setup, r routing, v receive, . idle"
    )
    return "\n".join(lines)
