"""The discrete-event execution engine.

The engine reproduces the measurement setup of the paper's §6: a program
(directed task graph) is executed on a multicomputer (machine) under an
online scheduling policy.  Assignment epochs occur at time zero and whenever
one or more processors become idle; at each epoch the policy maps ready tasks
onto idle processors; data produced by a task on another processor reaches
its consumer after the equation-4 communication delay.

Two fidelities are available:

* ``"latency"`` (default) — every inter-processor message is charged the
  equation-4 effective cost as a pure latency.  Links never queue and
  overheads do not occupy processors.  This is the model the SA cost function
  assumes, so optimizer and simulator agree exactly.
* ``"contention"`` — messages are forwarded hop by hop (store-and-forward);
  each link carries one message at a time, the sender is busy for σ, every
  intermediate processor is busy for τ per routed message, and a processor
  cannot start a new task while it is busy with communication overheads.
  This richer model is used for the Gantt chart of Figure 2 and the fidelity
  ablation benchmark.

Because a task only becomes ready when all its predecessors have finished,
all message timings are computable at assignment time, which keeps the event
set small (task completions only) and the runs fast and deterministic.  The
ready set is maintained incrementally — a task is inserted when its
unfinished-predecessor count decrements to zero and removed when it is
assigned — so an epoch costs O(ready) rather than O(all tasks).

Heterogeneous machines are charged consistently in both fidelities: a task
of base duration ``D`` runs for ``D / speed`` on a processor of speed factor
``speed``, latency messages pay the weighted-distance volume through the
communication model, and contention messages occupy each link for ``w_ij *
link_weight``.  With the default unit speeds and weights every charge is
bit-for-bit identical to the homogeneous engine.

This module is the *object* engine — the readable reference implementation
and the differential oracle of the equivalence tests.  Runs without trace
recording (both fidelities) are dispatched automatically to the compiled
index-space fast engine (:mod:`repro.sim.compile` +
:mod:`repro.sim.fast_engine`), which is proven bit-for-bit identical; see
the ``fast`` parameter of :class:`Simulator`.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from types import MappingProxyType
from typing import Dict, Hashable, List, Optional, Tuple

from repro.comm.model import CommunicationModel, LinearCommModel
from repro.exceptions import EngineFallbackError, SimulationError
from repro.machine.machine import Machine
from repro.schedulers.base import PacketContext, SchedulingPolicy, validate_assignment
from repro.sim.compile import compile_scenario, supports_comm_model
from repro.sim.events import EventQueue, TASK_FINISH
from repro.sim.fast_engine import run_compiled
from repro.sim.message import MessageRecord
from repro.sim.results import SimulationResult
from repro.sim.trace import ExecutionTrace, OverheadRecord, TaskRecord
from repro.taskgraph.graph import TaskGraph

__all__ = ["Simulator", "simulate", "simulate_degraded"]

TaskId = Hashable
ProcId = int

_FIDELITIES = ("latency", "contention")


class Simulator:
    """Simulate the execution of *graph* on *machine* under *policy*.

    Parameters
    ----------
    graph:
        The directed task graph to execute.  Validated before the run.
    machine:
        The target machine.
    policy:
        The online scheduling policy (SA, HLF, ...).  Its :meth:`reset` method
        is called before every run.
    comm_model:
        Communication model; defaults to the full equation-4 model.  Pass a
        :class:`~repro.comm.model.ZeroCommModel` for the "w/o comm" runs.
    fidelity:
        ``"latency"`` or ``"contention"`` (see module docstring).
    record_trace:
        Keep the full execution trace (task intervals, messages, overheads).
        Disable for large statistical benchmarks to save memory.
    fast:
        Engine selection.  ``None`` (default) dispatches runs without trace
        recording — both fidelities — to the compiled index-space engine
        (:mod:`repro.sim.fast_engine`) whenever the communication model is
        foldable, and uses the object engine otherwise — the two are proven
        bit-for-bit identical, so the choice is invisible.  ``True`` forces
        the fast engine (raising :class:`SimulationError` when the
        communication model cannot be folded into tables) and also allows
        it to record a trace, including the contention fidelity's overhead
        and link-occupancy records; ``False`` opts out entirely.
    replicas:
        When given, ask the policy for a multi-replica variant of itself
        (``policy.with_replicas(replicas)``, e.g. SA's batched multi-start
        annealing) and run that instead.  ``None`` leaves the policy as
        passed; policies without the hook raise :class:`SimulationError`.
    portfolio:
        When given, ask the policy for an anytime-portfolio variant of
        itself (``policy.with_portfolio(portfolio)``, e.g. SA's
        successive-halving lane racing; an ``int`` lane count or a
        :class:`~repro.annealing.portfolio.PortfolioConfig`).  Mutually
        exclusive with ``replicas``; policies without the hook raise
        :class:`SimulationError`.
    """

    def __init__(
        self,
        graph: TaskGraph,
        machine: Machine,
        policy: SchedulingPolicy,
        comm_model: Optional[CommunicationModel] = None,
        fidelity: str = "latency",
        record_trace: bool = True,
        fast: Optional[bool] = None,
        replicas: Optional[int] = None,
        portfolio=None,
    ) -> None:
        if fidelity not in _FIDELITIES:
            raise SimulationError(f"fidelity must be one of {_FIDELITIES}, got {fidelity!r}")
        if replicas is not None and portfolio is not None:
            raise SimulationError(
                "replicas and portfolio are mutually exclusive "
                "(a portfolio already runs multiple lanes)"
            )
        if replicas is not None:
            if replicas < 1:
                raise SimulationError(f"replicas must be >= 1, got {replicas}")
            with_replicas = getattr(policy, "with_replicas", None)
            if with_replicas is None:
                raise SimulationError(
                    f"policy {policy!r} does not support replicas= "
                    "(no with_replicas hook; only SA anneals multi-start chains)"
                )
            policy = with_replicas(replicas)
        if portfolio is not None:
            with_portfolio = getattr(policy, "with_portfolio", None)
            if with_portfolio is None:
                raise SimulationError(
                    f"policy {policy!r} does not support portfolio= "
                    "(no with_portfolio hook; only SA races annealing lanes)"
                )
            policy = with_portfolio(portfolio)
        graph.validate()
        self.graph = graph
        self.machine = machine
        self.policy = policy
        self.comm_model = comm_model if comm_model is not None else LinearCommModel()
        self.fidelity = fidelity
        self.record_trace = bool(record_trace)
        self.fast = fast

    # ------------------------------------------------------------------ #
    def _use_fast_engine(self) -> bool:
        """Decide whether this run goes through the compiled fast engine.

        Both fidelities compile (the contention loop runs on the scenario's
        flat route tables); the only hard requirement is a foldable
        communication model.  Auto mode keeps trace-recording runs on the
        object engine — ``fast=True`` overrides that, e.g. for Figure 2's
        contention Gantt chart on the fast path.
        """
        if self.fast is True:
            if not supports_comm_model(self.comm_model):
                raise EngineFallbackError(
                    f"fast=True cannot fold communication model "
                    f"{type(self.comm_model).__name__} into tables; "
                    "use the object engine (fast=False) for custom models",
                    tier="fast",
                    cause=type(self.comm_model).__name__,
                )
            return True
        if self.fast is False:
            return False
        return not self.record_trace and supports_comm_model(self.comm_model)

    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Execute the simulation and return a :class:`SimulationResult`."""
        graph, machine = self.graph, self.machine
        self.policy.reset()

        if self._use_fast_engine():
            levels = graph.levels()
            scenario = compile_scenario(graph, machine, self.comm_model, levels=levels)
            return run_compiled(
                scenario,
                self.policy,
                levels=levels,
                record_trace=self.record_trace,
                fidelity=self.fidelity,
            )

        if graph.n_tasks == 0:
            return SimulationResult(
                makespan=0.0,
                total_work=0.0,
                n_processors=machine.n_processors,
                graph_name=graph.name,
                machine_name=machine.name,
                policy_name=getattr(self.policy, "name", type(self.policy).__name__),
                fidelity=self.fidelity,
                trace=ExecutionTrace() if self.record_trace else None,
            )

        levels = graph.levels()
        # --- mutable simulation state ---------------------------------- #
        all_tasks = graph.tasks
        all_procs = machine.processors
        task_order: Dict[TaskId, int] = {t: k for k, t in enumerate(all_tasks)}
        unfinished_preds: Dict[TaskId, int] = {
            t: graph.in_degree(t) for t in all_tasks
        }
        # The ready set is maintained incrementally (decrement-to-zero
        # insertion when a predecessor finishes, removal on assignment)
        # instead of rescanning the whole task list at every epoch.  It is
        # kept as a sorted list of graph-insertion indices so the epoch's
        # ready order is identical to a full scan's.
        ready_keys: List[int] = [
            task_order[t] for t in all_tasks if unfinished_preds[t] == 0
        ]
        assigned_proc: Dict[TaskId, ProcId] = {}
        finish_times: Dict[TaskId, float] = {}
        finished: set = set()
        # Incrementally-maintained context state: the per-epoch PacketContext
        # used to be built from O(n) dict copies (placement history, finished
        # times, processor availability); these three dicts are instead kept
        # current in O(1) per placement/completion and handed to policies as
        # read-only views.  ``ctx_finish_times`` holds *finished* tasks only
        # (the contract of PacketContext.finish_times), and idle processors'
        # ready times are refreshed to the epoch time in ``run_epoch``.
        ctx_finish_times: Dict[TaskId, float] = {}
        ctx_proc_ready: Dict[ProcId, float] = {p: 0.0 for p in all_procs}
        proc_occupant: Dict[ProcId, Optional[TaskId]] = {p: None for p in all_procs}
        proc_task_free: Dict[ProcId, float] = {p: 0.0 for p in all_procs}
        proc_comm_free: Dict[ProcId, float] = {p: 0.0 for p in all_procs}
        # Per-processor speed factors (all exactly 1.0 on homogeneous
        # machines, where the division below is an exact no-op).
        proc_speed: Dict[ProcId, float] = {p: machine.speed_of(p) for p in all_procs}
        link_free: Dict[Tuple[int, int], float] = {}
        trace = ExecutionTrace()
        events = EventQueue()
        n_packets = 0

        # --- helpers ----------------------------------------------------- #
        def ready_tasks() -> List[TaskId]:
            return [all_tasks[k] for k in ready_keys]

        def idle_processors() -> List[ProcId]:
            return [p for p in all_procs if proc_occupant[p] is None]

        def add_overhead(proc: ProcId, start: float, end: float, kind: str, task=None) -> None:
            if self.record_trace and end > start:
                trace.overhead_records.append(
                    OverheadRecord(processor=proc, start_time=start, end_time=end, kind=kind, task=task)
                )

        def deliver_latency(pred: TaskId, task: TaskId, src: ProcId, dst: ProcId, send_time: float) -> float:
            weight = graph.comm(pred, task)
            cost = self.comm_model.cost(machine, weight, src, dst)
            arrival = send_time + cost
            if self.record_trace:
                trace.message_records.append(
                    MessageRecord(
                        src_task=pred,
                        dst_task=task,
                        src_proc=src,
                        dst_proc=dst,
                        weight=weight,
                        send_time=send_time,
                        arrival_time=arrival,
                        route=tuple(machine.route(src, dst)),
                    )
                )
            return arrival

        def deliver_contention(pred: TaskId, task: TaskId, src: ProcId, dst: ProcId, send_time: float) -> float:
            weight = graph.comm(pred, task)
            if not self.comm_model.enabled:
                # Zero-communication runs skip the store-and-forward machinery.
                return deliver_latency(pred, task, src, dst, send_time)
            params = machine.params
            route = machine.route(src, dst)
            sigma, tau = params.sigma, params.tau
            # Link setup on the sender.
            send_start = max(send_time, proc_comm_free[src])
            add_overhead(src, send_start, send_start + sigma, "send", task=pred)
            proc_comm_free[src] = max(proc_comm_free[src], send_start + sigma)
            at_node = send_start + sigma
            hop_intervals: List[Tuple[float, float]] = []
            unit_links = machine.has_unit_link_weights
            for k in range(len(route) - 1):
                a, b = route[k], route[k + 1]
                link = (a, b) if a < b else (b, a)
                hop_start = max(at_node, link_free.get(link, 0.0))
                hop_end = hop_start + (weight if unit_links else weight * machine.link_weight(a, b))
                link_free[link] = hop_end
                hop_intervals.append((hop_start, hop_end))
                at_node = hop_end
                if k < len(route) - 2:
                    # Intermediate processor routes the message (quarter blocks of Fig. 2).
                    add_overhead(b, hop_end, hop_end + tau, "route", task=task)
                    proc_comm_free[b] = max(proc_comm_free[b], hop_end + tau)
                    at_node = hop_end + tau
            arrival = at_node
            if self.record_trace:
                trace.message_records.append(
                    MessageRecord(
                        src_task=pred,
                        dst_task=task,
                        src_proc=src,
                        dst_proc=dst,
                        weight=weight,
                        send_time=send_start,
                        arrival_time=arrival,
                        route=tuple(route),
                        hop_intervals=tuple(hop_intervals),
                    )
                )
            return arrival

        def place(task: TaskId, proc: ProcId, now: float) -> None:
            del ready_keys[bisect_left(ready_keys, task_order[task])]
            assigned_proc[task] = proc
            proc_occupant[proc] = task
            data_ready = now
            for pred in graph.predecessors(task):
                src = assigned_proc[pred]
                # The schedule being constructed is static: once the whole
                # schedule exists, every placement is known before execution,
                # so the producer ships its result as soon as it finishes
                # (the standard model in the list-scheduling literature).
                send_time = finish_times[pred]
                if src == proc:
                    arrival = finish_times[pred]
                elif self.fidelity == "latency":
                    arrival = deliver_latency(pred, task, src, proc, send_time)
                else:
                    arrival = deliver_contention(pred, task, src, proc, send_time)
                if arrival > data_ready:
                    data_ready = arrival
            start = max(now, data_ready, proc_comm_free[proc], proc_task_free[proc])
            finish = start + graph.duration(task) / proc_speed[proc]
            proc_task_free[proc] = finish
            ctx_proc_ready[proc] = finish
            if self.record_trace:
                trace.task_records.append(
                    TaskRecord(
                        task=task,
                        processor=proc,
                        assigned_time=now,
                        start_time=start,
                        finish_time=finish,
                    )
                )
            finish_times[task] = finish
            events.push(finish, TASK_FINISH, task)

        def run_epoch(now: float) -> None:
            nonlocal n_packets
            ready = ready_tasks()
            idle = idle_processors()
            if not ready or not idle:
                return
            for p in idle:
                ctx_proc_ready[p] = now
            ctx = PacketContext(
                time=now,
                ready_tasks=ready,
                idle_processors=idle,
                graph=graph,
                machine=machine,
                levels=levels,
                task_processor=MappingProxyType(assigned_proc),
                finish_times=MappingProxyType(ctx_finish_times),
                comm_model=self.comm_model,
                processor_ready_time=MappingProxyType(ctx_proc_ready),
            )
            assignment = self.policy.assign(ctx)
            validate_assignment(ctx, assignment)
            if assignment:
                n_packets += 1
            for task, proc in assignment.items():
                place(task, proc, now)

        # --- main loop ---------------------------------------------------- #
        now = 0.0
        run_epoch(now)
        max_events = 10 * graph.n_tasks + 100  # generous livelock backstop
        processed = 0
        while len(finished) < graph.n_tasks:
            if not events:
                remaining = graph.n_tasks - len(finished)
                raise SimulationError(
                    f"simulation stalled at t={now} with {remaining} unfinished tasks: "
                    f"the policy {self.policy!r} did not assign any ready task"
                )
            batch = events.pop_simultaneous()
            processed += len(batch)
            if processed > max_events:  # pragma: no cover - defensive
                raise SimulationError("event budget exceeded; possible livelock")
            now = batch[0].time
            for event in batch:
                if event.kind != TASK_FINISH:  # pragma: no cover - defensive
                    raise SimulationError(f"unknown event kind {event.kind!r}")
                task = event.payload
                finished.add(task)
                ctx_finish_times[task] = finish_times[task]
                proc = assigned_proc[task]
                if proc_occupant[proc] == task:
                    proc_occupant[proc] = None
                for succ in graph.successors(task):
                    unfinished_preds[succ] -= 1
                    if unfinished_preds[succ] == 0:
                        insort(ready_keys, task_order[succ])
            run_epoch(now)

        makespan = max(finish_times.values()) if finish_times else 0.0
        result = SimulationResult(
            makespan=makespan,
            total_work=graph.total_work(),
            n_processors=machine.n_processors,
            graph_name=graph.name,
            machine_name=machine.name,
            policy_name=getattr(self.policy, "name", type(self.policy).__name__),
            n_packets=n_packets,
            task_processor=dict(assigned_proc),
            trace=trace if self.record_trace else None,
            fidelity=self.fidelity,
        )
        return result


def simulate(
    graph: TaskGraph,
    machine: Machine,
    policy: SchedulingPolicy,
    comm_model: Optional[CommunicationModel] = None,
    fidelity: str = "latency",
    record_trace: bool = True,
    fast: Optional[bool] = None,
    replicas: Optional[int] = None,
    portfolio=None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it once."""
    return Simulator(
        graph,
        machine,
        policy,
        comm_model=comm_model,
        fidelity=fidelity,
        record_trace=record_trace,
        fast=fast,
        replicas=replicas,
        portfolio=portfolio,
    ).run()


def simulate_degraded(
    graph: TaskGraph,
    machine: Machine,
    build_policy,
    comm_model: Optional[CommunicationModel] = None,
    fidelity: str = "latency",
    record_trace: bool = False,
    fast: Optional[bool] = None,
    replicas: Optional[int] = None,
    portfolio=None,
):
    """Run a scenario with the engine degradation ladder armed.

    The fault-tolerance counterpart of :func:`simulate` and the bottom rungs
    of the sweep's ladder (batched → **fast → object**): the scenario first
    runs on whichever engine the ``fast`` parameter selects; if that run
    *raises* and a lower tier exists (i.e. the caller did not pin
    ``fast=False``), the scenario is retried once on the reference object
    engine with a **fresh** policy from *build_policy* (a zero-argument
    callable), so the retry replays the identical stochastic stream from the
    start.  Forcing ``fast=True`` on an unfoldable communication model still
    raises :class:`~repro.exceptions.EngineFallbackError` — an explicit
    engine pin is never silently overridden, in either direction.

    Returns ``(result, engine_used, fallbacks)`` where *engine_used* is
    ``"fast"`` or ``"object"`` and *fallbacks* lists one structured record
    (error type / message / traceback) per degradation step taken.  Because
    both engines are proven bit-identical, a degraded cell's numbers equal
    the numbers the healthy tier would have produced.
    """
    import traceback as traceback_module

    fallbacks: List[dict] = []
    sim = Simulator(
        graph,
        machine,
        build_policy(),
        comm_model=comm_model,
        fidelity=fidelity,
        record_trace=record_trace,
        fast=fast,
        replicas=replicas,
        portfolio=portfolio,
    )
    used_fast = sim._use_fast_engine()  # EngineFallbackError on forced-fast misuse
    try:
        return sim.run(), ("fast" if used_fast else "object"), fallbacks
    except Exception as exc:
        if fast is False or not used_fast:
            raise
        fallbacks.append(
            {
                "from": "fast",
                "to": "object",
                "error_type": type(exc).__name__,
                "error": str(exc),
                "traceback": traceback_module.format_exc(),
            }
        )
        result = Simulator(
            graph,
            machine,
            build_policy(),
            comm_model=comm_model,
            fidelity=fidelity,
            record_trace=record_trace,
            fast=False,
            replicas=replicas,
            portfolio=portfolio,
        ).run()
        return result, "object", fallbacks
