"""Message records produced by the simulator.

A message corresponds to one data-dependence edge whose endpoints ended up on
different processors.  The record keeps the full routing information so the
Gantt chart can draw the paper's half-height send/receive blocks and
quarter-height routing blocks, and so tests can verify link-contention
invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Tuple

__all__ = ["MessageRecord"]

TaskId = Hashable
ProcId = int


@dataclass(frozen=True)
class MessageRecord:
    """One inter-processor message.

    Attributes
    ----------
    src_task, dst_task:
        The producing and consuming tasks of the edge.
    src_proc, dst_proc:
        Their processors.
    weight:
        The per-link transfer time ``w_ij`` of the edge.
    send_time:
        When the sender started pushing the message (the assignment epoch of
        the destination task, since only then is the destination known).
    arrival_time:
        When the last bit reached the destination processor.
    route:
        The processor path the message followed (source first, destination
        last); length 1 + hop count.
    hop_intervals:
        Per-link occupancy intervals ``(start, end)`` aligned with the links
        of the route (empty in latency-only fidelity).
    """

    src_task: TaskId
    dst_task: TaskId
    src_proc: ProcId
    dst_proc: ProcId
    weight: float
    send_time: float
    arrival_time: float
    route: Tuple[ProcId, ...] = ()
    hop_intervals: Tuple[Tuple[float, float], ...] = ()

    @property
    def latency(self) -> float:
        """Total time from send to arrival."""
        return self.arrival_time - self.send_time

    @property
    def n_hops(self) -> int:
        return max(len(self.route) - 1, 0)
