"""The lock-step batched simulation engine: B sweep cells as lanes.

A statistical sweep is a grid of *independent* simulations; the fast engine
(:mod:`repro.sim.fast_engine`) makes each one cheap, but every run still
pays the full Python event loop.  This module advances B compiled scenarios
— *lanes* — in lock step over shared state matrices, so one round of numpy
kernels moves every lane one event batch forward:

* per-lane state is stacked into ``(B, n_max)`` / ``(B, p_max)`` arrays
  (:class:`~repro.sim.compile.StackedScenarios` holds the immutable side);
  ragged lanes are padded, and padding never escapes: padded tasks carry a
  nonzero unfinished-predecessor count and padded processors a non-idle
  occupant sentinel;
* each round pops, per lane, **all** events at that lane's next finish time
  (the solo engine's simultaneous-event batch), retires them with one
  scattered successor decrement, and runs one assignment epoch; lanes keep
  independent clocks and drop out of the active mask as they finish;
* epochs are served by the policies' batched kernels
  (:meth:`~repro.schedulers.base.SchedulingPolicy.batch_assign`) — lanes
  are grouped by policy configuration, so e.g. 64 ETF lanes resolve their
  greedy matching in a handful of masked-reduction passes.  A lane whose
  policy has no batched kernel (or whose kernel declines) falls back to its
  per-lane :meth:`fast_assign`, and failing that to a materialized
  :class:`~repro.schedulers.base.PacketContext` — counted per lane in
  ``n_fallback_epochs`` exactly like the solo engine;
* latency-fidelity placements are fully vectorized (within an epoch they
  are independent: every predecessor has finished and each processor
  receives at most one task); contention-fidelity placements replay the
  solo engine's store-and-forward arithmetic per lane, in the policy's
  placement order, over per-lane link/communication timelines.

Every lane is **bit-identical** to a solo :func:`run_compiled` run of the
same cell — the same contract the batched annealer holds against
``anneal_replicas_scalar`` — because each arithmetic step is either a
single IEEE operation mirrored from the solo path (``+``, ``/``) or an
exact ``max``, and every policy's batched kernel reproduces its solo
selection order and RNG draws.  The hypothesis differential suite pins that
contract across policies, fidelities, machine mixes and ragged lane shapes.
"""

from __future__ import annotations

import logging
from types import MappingProxyType
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.model import LinearCommModel
from repro.exceptions import SchedulingError, SimulationError
from repro.schedulers.base import PacketContext, SchedulingPolicy, validate_assignment
from repro.sim.compile import (
    CompiledScenario,
    FastPacket,
    StackedScenarios,
    compile_scenario,
    stack_scenarios,
    supports_comm_model,
)
from repro.sim.fast_engine import _validate_fast_assignment, run_compiled
from repro.sim.results import SimulationResult

__all__ = ["BatchEpoch", "run_batch", "simulate_batch"]

TaskId = Hashable
ProcId = int

_LOGGER = logging.getLogger(__name__)

_FIDELITIES = ("latency", "contention")


def _padded_sets(mask: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pack the True columns of each row of *mask* into a padded id matrix.

    Returns ``(padded, valid, counts)``: ``padded[i, :counts[i]]`` holds row
    *i*'s True column indices in increasing order (the solo engine's ready /
    idle enumeration order), ``valid`` is the matching mask.
    """
    counts = mask.sum(axis=1)
    width = max(1, int(counts.max())) if counts.size else 1
    rows, cols = np.nonzero(mask)
    offsets = np.zeros(mask.shape[0], dtype=np.intp)
    np.cumsum(counts[:-1], out=offsets[1:])
    pos = np.arange(rows.shape[0], dtype=np.intp) - np.repeat(offsets, counts)
    padded = np.zeros((mask.shape[0], width), dtype=np.intp)
    padded[rows, pos] = cols
    valid = np.arange(width)[None, :] < counts[:, None]
    return padded, valid, counts


class BatchEpoch:
    """The batched counterpart of :class:`~repro.sim.compile.FastPacket`.

    One assignment epoch over a *group* of lanes that share a policy
    configuration.  ``lanes`` are the global lane indices (increasing), and
    the state matrices are live full-batch views — row ``lanes[i]`` belongs
    to group position *i*.  ``cache`` is a per-group scratch dict that
    survives across the run's epochs (ETF keeps its arrival-row cache
    there, the rank-based kernels their static orders).
    """

    __slots__ = (
        "lanes",
        "now",
        "stacked",
        "assigned",
        "finish",
        "ready_mask",
        "idle_mask",
        "cache",
        "_ready_pad",
        "_idle_pad",
    )

    def __init__(
        self,
        lanes: np.ndarray,
        now: np.ndarray,
        stacked: StackedScenarios,
        assigned: np.ndarray,
        finish: np.ndarray,
        ready_mask: np.ndarray,
        idle_mask: np.ndarray,
        cache: dict,
    ) -> None:
        self.lanes = lanes
        self.now = now
        self.stacked = stacked
        self.assigned = assigned
        self.finish = finish
        self.ready_mask = ready_mask
        self.idle_mask = idle_mask
        self.cache = cache
        self._ready_pad = None
        self._idle_pad = None

    @property
    def n_lanes(self) -> int:
        return len(self.lanes)

    def ready_padded(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(padded, valid, counts)`` of the group's ready tasks (index order)."""
        pads = self._ready_pad
        if pads is None:
            mask = self.ready_mask
            if len(self.lanes) != mask.shape[0]:
                mask = mask[self.lanes]
            pads = self._ready_pad = _padded_sets(mask)
        return pads

    def idle_padded(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(padded, valid, counts)`` of the group's idle processors (index order)."""
        pads = self._idle_pad
        if pads is None:
            mask = self.idle_mask
            if len(self.lanes) != mask.shape[0]:
                mask = mask[self.lanes]
            pads = self._idle_pad = _padded_sets(mask)
        return pads

    def arrival_rows(self, lanes: np.ndarray, tasks: np.ndarray) -> np.ndarray:
        """Predecessor-arrival rows of ready ``(lane, task)`` pairs.

        The batched form of :meth:`FastPacket.arrival_rows`: row *k* holds,
        for every processor slot, the latest ``finish + cost`` over
        ``tasks[k]``'s predecessors on lane ``lanes[k]`` (``-inf`` without
        predecessors).  Columns beyond a lane's processor count are
        unspecified — callers gather valid processors only.  Values are
        bit-identical to the solo kernel's rows: same gather, same cost
        table entries, same exact segmented ``max``.
        """
        st = self.stacked
        starts = st.pred_start[lanes, tasks]
        counts = st.pred_count[lanes, tasks]
        total = int(counts.sum())
        if total == 0:
            return np.full((len(lanes), st.p_max), -np.inf, dtype=np.float64)
        offsets = np.zeros(len(lanes), dtype=np.intp)
        np.cumsum(counts[:-1], out=offsets[1:])
        entries = np.arange(total, dtype=np.intp) + np.repeat(starts - offsets, counts)
        lane_e = np.repeat(lanes, counts)
        preds = st.pred_ids[entries]
        fin = self.finish[lane_e, preds]
        srcs = self.assigned[lane_e, preds]
        base = st.cost_offset[entries] + srcs * st.n_procs[lane_e]
        # Full-width gather: cost_flat's trailing zero block keeps the pad
        # columns of the narrowest lanes in bounds (they are never read).
        idx = base[:, None] + np.arange(st.p_max, dtype=np.intp)[None, :]
        arrivals = fin[:, None] + st.cost_flat[idx]
        nonempty = np.flatnonzero(counts)
        seg = np.maximum.reduceat(arrivals, offsets[nonempty], axis=0)
        if len(nonempty) == len(lanes):
            return seg
        rows = np.full((len(lanes), st.p_max), -np.inf, dtype=np.float64)
        rows[nonempty] = seg
        return rows


class _ContentionLane:
    """Mutable store-and-forward state of one contention-fidelity lane."""

    __slots__ = ("tables", "link_free", "comm_free", "weights")

    def __init__(self, scenario: CompiledScenario) -> None:
        self.tables = scenario.contention_tables()
        self.link_free = [0.0] * self.tables.n_links
        self.comm_free = [0.0] * scenario.n_procs
        self.weights = scenario.pred_weights.tolist()


def _validate_batch_assignment(
    lanes: np.ndarray,
    tasks: np.ndarray,
    procs: np.ndarray,
    ready_mask: np.ndarray,
    occupant: np.ndarray,
    now: np.ndarray,
) -> None:
    """Vectorized legality check of a batched kernel's triples."""
    n_max = ready_mask.shape[1]
    p_max = occupant.shape[1]
    bad = ~ready_mask[lanes, tasks]
    if bad.any():
        k = int(np.flatnonzero(bad)[0])
        raise SchedulingError(
            f"task {int(tasks[k])!r} is not ready at t={now[lanes[k]]}"
        )
    bad = occupant[lanes, procs] >= 0
    if bad.any():
        k = int(np.flatnonzero(bad)[0])
        raise SchedulingError(
            f"processor {int(procs[k])!r} is not idle at t={now[lanes[k]]}"
        )
    if np.bincount(lanes * p_max + procs).max() > 1:
        raise SchedulingError("processor assigned more than one task in a batch epoch")
    if np.bincount(lanes * n_max + tasks).max() > 1:
        raise SchedulingError("task assigned more than once in a batch epoch")


def run_batch(
    lanes: Sequence[Tuple[CompiledScenario, SchedulingPolicy]],
    fidelity: str = "latency",
) -> List[SimulationResult]:
    """Run every ``(scenario, policy)`` lane to completion, in lock step.

    The low-level entry point (the batched :func:`run_compiled`): the caller
    is responsible for ``policy.reset()`` and graph validation — use
    :func:`simulate_batch` for the managed form.  Lanes may mix graphs,
    machines, communication models and policies; policies must be distinct
    instances per lane (stateful policies carry per-run caches and RNG
    streams).  Returns one :class:`SimulationResult` per lane, in order,
    each bit-identical to the solo fast engine's result for that cell.
    """
    if fidelity not in _FIDELITIES:
        raise SimulationError(
            f"fidelity must be one of {_FIDELITIES}, got {fidelity!r}"
        )
    if not lanes:
        return []
    if len(lanes) == 1:
        # A single lane has nothing to amortize: skip the stacking copies
        # and run the solo engine it would be bit-identical to anyway.
        # Matters to callers whose group sizes are workload-driven — a
        # coalescing window that catches one job should not pay batch setup.
        scenario, policy = lanes[0]
        return [run_compiled(scenario, policy, fidelity=fidelity)]
    scenarios = [sc for sc, _ in lanes]
    policies = [pol for _, pol in lanes]
    st = stack_scenarios(scenarios)
    n_lanes, n_max, p_max = st.n_lanes, st.n_max, st.p_max
    n_tasks, n_procs = st.n_tasks, st.n_procs
    task_valid, proc_valid = st.task_valid, st.proc_valid

    # --- stacked simulation state -------------------------------------- #
    # Padded task slots keep one phantom unfinished predecessor (never
    # ready); padded processor slots a phantom occupant (never idle).
    unfinished = np.where(task_valid, st.pred_count, 1).astype(np.intp)
    unfinished_flat = unfinished.reshape(-1)
    ready_mask = task_valid & (unfinished == 0)
    # Per-lane ready count, maintained incrementally so the epoch gate never
    # rescans the full ready matrix.
    ready_count = ready_mask.sum(axis=1)
    assigned = np.full((n_lanes, n_max), -1, dtype=np.intp)
    finish = np.zeros((n_lanes, n_max), dtype=np.float64)
    # At most one task runs per processor, so the event frontier lives in a
    # (B, p_max) matrix — finish time of the task occupying each processor,
    # inf when idle — which every round's min/compare/nonzero scans instead
    # of a (B, n_max) pending table.
    proc_fin = np.full((n_lanes, p_max), np.inf, dtype=np.float64)
    occupant = np.where(proc_valid, -1, n_max).astype(np.intp)
    proc_task_free = np.zeros((n_lanes, p_max), dtype=np.float64)
    now = np.zeros(n_lanes, dtype=np.float64)
    n_finished = np.zeros(n_lanes, dtype=np.intp)
    n_packets = np.zeros(n_lanes, dtype=np.intp)
    n_fallback = np.zeros(n_lanes, dtype=np.intp)
    processed = np.zeros(n_lanes, dtype=np.intp)
    max_events = 10 * n_tasks + 100
    active = n_tasks > 0

    # Contention lanes carry per-lane link/communication timelines; a
    # zero-communication lane rides the vectorized latency placement even at
    # contention fidelity, exactly like the solo engine.
    cont: List[Optional[_ContentionLane]] = [None] * n_lanes
    if fidelity == "contention":
        for b, sc in enumerate(scenarios):
            if sc.comm_enabled and n_tasks[b] > 0:
                cont[b] = _ContentionLane(sc)
    cont_lane = np.array([state is not None for state in cont], dtype=bool)

    # --- policy kernel groups ------------------------------------------ #
    # Lanes sharing a policy class (and placement flavour) are served by one
    # batch_assign call per epoch; everything else goes per lane.
    default_batch = SchedulingPolicy.batch_assign
    default_fast = SchedulingPolicy.fast_assign
    grouped: Dict[tuple, List[int]] = {}
    for b, pol in enumerate(policies):
        cls = type(pol)
        if cls.batch_assign is not default_batch:
            key = ("batch", cls, getattr(pol, "placement", None))
        else:
            key = ("perlane",)
        grouped.setdefault(key, []).append(b)
    groups = [
        (key, np.array(ids, dtype=np.intp), {}) for key, ids in grouped.items()
    ]
    policies_arr = np.empty(n_lanes, dtype=object)
    policies_arr[:] = policies
    has_fast = [type(pol).fast_assign is not default_fast for pol in policies]

    # Per-lane fallback context state, maintained incrementally (in the solo
    # engine's insertion orders) only for lanes that may need a materialized
    # PacketContext.
    ctx_lane = np.zeros(n_lanes, dtype=bool)
    for key, ids, _ in groups:
        if key[0] == "perlane":
            ctx_lane[ids] = True
    ctx_task_processor: Dict[int, Dict[TaskId, ProcId]] = {}
    ctx_finish: Dict[int, Dict[TaskId, float]] = {}
    for b in np.flatnonzero(ctx_lane):
        ctx_task_processor[int(b)] = {}
        ctx_finish[int(b)] = {}

    # --- placement ------------------------------------------------------ #
    def place_latency(L: np.ndarray, T: np.ndarray, P: np.ndarray) -> None:
        """Vectorized latency placement of the epoch's (lane, task, proc) triples.

        Within an epoch placements are independent — every predecessor has
        finished, and each processor receives at most one task — so the solo
        engine's sequential `place` calls commute and one gathered pass
        reproduces them bit for bit: ``arrival = finish [+ cost]``,
        ``start = max(now, data_ready, proc_task_free)``, and one IEEE
        divide/add for the finish time.
        """
        data_ready = now[L]  # fancy indexing: already a fresh buffer
        starts = st.pred_start[L, T]
        counts = st.pred_count[L, T]
        total = int(counts.sum())
        if total:
            offsets = np.zeros(len(L), dtype=np.intp)
            np.cumsum(counts[:-1], out=offsets[1:])
            entries = np.arange(total, dtype=np.intp) + np.repeat(
                starts - offsets, counts
            )
            lane_e = np.repeat(L, counts)
            dst_e = np.repeat(P, counts)
            preds = st.pred_ids[entries]
            fin = finish[lane_e, preds]
            srcs = assigned[lane_e, preds]
            cost = st.cost_flat[
                st.cost_offset[entries] + srcs * st.n_procs[lane_e] + dst_e
            ]
            # Same-processor messages are free *without* the `+ 0.0` the
            # cross-processor zero-model path performs — mirror both.
            arrivals = np.where(srcs == dst_e, fin, fin + cost)
            if counts.min() > 0:
                # Every placed task has predecessors (the common case after
                # the first epoch): segment boundaries are the offsets as-is.
                seg = np.maximum.reduceat(arrivals, offsets)
                np.maximum(data_ready, seg, out=data_ready)
            else:
                nonempty = np.flatnonzero(counts)
                seg = np.maximum.reduceat(arrivals, offsets[nonempty])
                data_ready[nonempty] = np.maximum(data_ready[nonempty], seg)
        start = np.maximum(data_ready, proc_task_free[L, P])
        fin_new = start + st.durations[L, T] / st.speeds[L, P]
        finish[L, T] = fin_new
        proc_fin[L, P] = fin_new
        proc_task_free[L, P] = fin_new

    def place_contention(b: int, T: np.ndarray, P: np.ndarray) -> None:
        """Store-and-forward placement of one lane's epoch triples, in order.

        Scalar mirror of the solo engine's ``place_contention`` — link
        occupancy makes within-epoch placements order-dependent, so the
        triples arrive in the policy's placement order and replay it.
        """
        state = cont[b]
        ct = state.tables
        link_free, comm_free, weights = state.link_free, state.comm_free, state.weights
        sc = scenarios[b]
        pred_indptr, pred_ids = sc.pred_indptr_list, sc.pred_ids_list
        durations, speeds = sc.durations_list, sc.speeds_list
        sigma, tau = ct.sigma, ct.tau
        unit_links = ct.unit_links
        route_indptr = ct.route_indptr
        hop_links, hop_nodes, hop_mults = ct.hop_links, ct.hop_nodes, ct.hop_mults
        n_p = sc.n_procs
        fin_row = finish[b]
        asg_row = assigned[b]
        ptf_row = proc_task_free[b]
        t_now = now[b]
        for ti, proc in zip(T.tolist(), P.tolist()):
            data_ready = t_now
            for e in range(pred_indptr[ti], pred_indptr[ti + 1]):
                pred = pred_ids[e]
                src = int(asg_row[pred])
                send_time = fin_row[pred]
                if src == proc:
                    arrival = send_time
                else:
                    weight = weights[e]
                    cf = comm_free[src]
                    send_start = send_time if send_time >= cf else cf
                    end = send_start + sigma
                    if end > cf:
                        comm_free[src] = end
                    at_node = send_start + sigma
                    base = route_indptr[src * n_p + proc]
                    top = route_indptr[src * n_p + proc + 1]
                    last = top - 1
                    for h in range(base, top):
                        lid = hop_links[h]
                        lf = link_free[lid]
                        hop_start = at_node if at_node >= lf else lf
                        hop_end = hop_start + (
                            weight if unit_links else weight * hop_mults[h]
                        )
                        link_free[lid] = hop_end
                        at_node = hop_end
                        if h < last:
                            nb = hop_nodes[h]
                            routed = hop_end + tau
                            if routed > comm_free[nb]:
                                comm_free[nb] = routed
                            at_node = routed
                    arrival = at_node
                if arrival > data_ready:
                    data_ready = arrival
            start = max(t_now, data_ready, comm_free[proc], ptf_row[proc])
            fin = start + durations[ti] / speeds[proc]
            ptf_row[proc] = fin
            fin_row[ti] = fin
            proc_fin[b, proc] = fin

    def assign_per_lane(
        b: int, triples: List[Tuple[np.ndarray, np.ndarray, np.ndarray]]
    ) -> None:
        """One lane's epoch through fast_assign, else a materialized context."""
        nb = int(n_tasks[b])
        pb = int(n_procs[b])
        sc = scenarios[b]
        pol = policies[b]
        t_now = float(now[b])
        ready_b = np.flatnonzero(ready_mask[b, :nb])
        idle_b = np.flatnonzero(occupant[b, :pb] < 0)
        # A busy processor frees exactly when its running task finishes, so
        # its solo proc_ready value *is* proc_task_free; idle slots read the
        # epoch time — the row the solo engine would hand the policy.
        pr_row = np.where(occupant[b, :pb] < 0, t_now, proc_task_free[b, :pb])
        assignment: Optional[Dict[int, ProcId]] = None
        if has_fast[b]:
            packet = FastPacket(
                time=t_now,
                ready=ready_b.tolist(),
                idle=idle_b.tolist(),
                scenario=sc,
                assigned_proc=assigned[b, :nb],
                finish_times=finish[b, :nb],
                proc_ready_time=pr_row,
            )
            assignment = pol.fast_assign(packet)
            if assignment is not None:
                _validate_fast_assignment(
                    t_now,
                    unfinished[b, :nb],
                    assigned[b, :nb],
                    occupant[b, :pb],
                    assignment,
                )
        if assignment is None:
            n_fallback[b] += 1
            levels_map = dict(zip(sc.task_ids, sc.levels_list))
            proc_ready_map = dict(enumerate(pr_row.tolist()))
            ctx = PacketContext(
                time=t_now,
                ready_tasks=[sc.task_ids[k] for k in ready_b.tolist()],
                idle_processors=idle_b.tolist(),
                graph=sc.graph,
                machine=sc.machine,
                levels=levels_map,
                task_processor=MappingProxyType(ctx_task_processor[b]),
                finish_times=MappingProxyType(ctx_finish[b]),
                comm_model=sc.comm_model,
                processor_ready_time=MappingProxyType(proc_ready_map),
            )
            id_assignment = pol.assign(ctx)
            validate_assignment(ctx, id_assignment)
            assignment = {sc.index_of[t]: p for t, p in id_assignment.items()}
        if assignment:
            k = len(assignment)
            triples.append(
                (
                    np.full(k, b, dtype=np.intp),
                    np.fromiter(assignment.keys(), dtype=np.intp, count=k),
                    np.fromiter(assignment.values(), dtype=np.intp, count=k),
                )
            )

    def run_epoch_round() -> None:
        """One assignment epoch across every active lane with work to place."""
        idle_mask = occupant < 0
        ep_mask = active & (ready_count > 0) & idle_mask.any(axis=1)
        if not ep_mask.any():
            return
        triples: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for key, ids, cache in groups:
            gl = ids[ep_mask[ids]]
            if gl.size == 0:
                continue
            result = None
            if key[0] == "batch":
                epoch = BatchEpoch(
                    lanes=gl,
                    now=now[gl],
                    stacked=st,
                    assigned=assigned,
                    finish=finish,
                    ready_mask=ready_mask,
                    idle_mask=idle_mask,
                    cache=cache,
                )
                result = policies[int(gl[0])].batch_assign(
                    epoch, policies_arr[gl].tolist()
                )
            if result is not None:
                L, T, P = (np.asarray(a, dtype=np.intp) for a in result)
                if len(L):
                    _validate_batch_assignment(
                        L, T, P, ready_mask, occupant, now
                    )
                    triples.append((L, T, P))
            else:
                for b in gl.tolist():
                    assign_per_lane(b, triples)
        if not triples:
            return
        if len(triples) == 1:
            L, T, P = triples[0]
        else:
            L = np.concatenate([t[0] for t in triples])
            T = np.concatenate([t[1] for t in triples])
            P = np.concatenate([t[2] for t in triples])
        # Commit assignments, then compute timings.
        ready_mask[L, T] = False
        assigned[L, T] = P
        occupant[L, P] = T
        cnt = np.bincount(L, minlength=n_lanes)
        np.add(n_packets, cnt > 0, out=n_packets)
        np.subtract(ready_count, cnt, out=ready_count)
        cont_sel = cont_lane[L]
        if not cont_sel.all():
            sel = ~cont_sel
            place_latency(L[sel], T[sel], P[sel])
        if cont_sel.any():
            # Per lane, in the concatenation order (= the policy's placement
            # order within each lane).
            for b in np.unique(L[cont_sel]).tolist():
                sel = cont_sel & (L == b)
                place_contention(b, T[sel], P[sel])
        if ctx_lane[L].any():
            for b, ti, proc in zip(L.tolist(), T.tolist(), P.tolist()):
                if ctx_lane[b]:
                    sc = scenarios[b]
                    ctx_task_processor[b][sc.task_ids[ti]] = proc

    # --- main loop ------------------------------------------------------ #
    run_epoch_round()
    while active.any():
        # Inactive lanes get NaN, which compares unequal to every finish
        # time — the active guard is folded into the comparison itself.
        next_t = np.where(active, proc_fin.min(axis=1), np.nan)
        stalled = np.isinf(next_t)
        if stalled.any():
            b = int(np.flatnonzero(stalled)[0])
            remaining = int(n_tasks[b] - n_finished[b])
            raise SimulationError(
                f"simulation stalled at t={now[b]} with {remaining} unfinished "
                f"tasks: the policy {policies[b]!r} did not assign any ready task"
            )
        fin_mask = proc_fin == next_t[:, None]
        np.copyto(now, next_t, where=active)
        lanes_f, procs_f = np.nonzero(fin_mask)
        proc_fin[lanes_f, procs_f] = np.inf
        tasks_f = occupant[lanes_f, procs_f]
        occupant[lanes_f, procs_f] = -1
        batch_sizes = np.bincount(lanes_f, minlength=n_lanes)
        processed += batch_sizes
        if (processed > max_events).any():  # pragma: no cover - defensive
            raise SimulationError("event budget exceeded; possible livelock")
        n_finished += batch_sizes
        s_start = st.succ_start[lanes_f, tasks_f]
        s_count = st.succ_count[lanes_f, tasks_f]
        total = int(s_count.sum())
        if total:
            offsets = np.zeros(len(lanes_f), dtype=np.intp)
            np.cumsum(s_count[:-1], out=offsets[1:])
            entries = np.arange(total, dtype=np.intp) + np.repeat(
                s_start - offsets, s_count
            )
            succ = st.succ_ids[entries]
            flat = np.repeat(lanes_f, s_count) * n_max + succ
            np.subtract.at(unfinished_flat, flat, 1)
            # `flat` repeats a task once per finishing predecessor edge, so a
            # task whose last predecessors finish together appears multiple
            # times — dedupe before counting (the mask scatter is idempotent,
            # the counter is not).
            became = np.unique(flat[unfinished_flat[flat] == 0])
            ready_mask.reshape(-1)[became] = True
            np.add(
                ready_count,
                np.bincount(became // n_max, minlength=n_lanes),
                out=ready_count,
            )
        if ctx_lane[lanes_f].any():
            for b, ti in zip(lanes_f.tolist(), tasks_f.tolist()):
                if ctx_lane[b]:
                    sc = scenarios[b]
                    ctx_finish[b][sc.task_ids[ti]] = float(finish[b, ti])
        active &= n_finished < n_tasks
        run_epoch_round()

    # --- results --------------------------------------------------------- #
    results: List[SimulationResult] = []
    for b, sc in enumerate(scenarios):
        nb = int(n_tasks[b])
        pol = policies[b]
        results.append(
            SimulationResult(
                makespan=float(finish[b, :nb].max()) if nb else 0.0,
                total_work=sc.graph.total_work() if nb else 0.0,
                n_processors=sc.n_procs,
                graph_name=sc.graph.name,
                machine_name=sc.machine.name,
                policy_name=getattr(pol, "name", type(pol).__name__),
                n_packets=int(n_packets[b]),
                task_processor=dict(zip(sc.task_ids, assigned[b, :nb].tolist())),
                n_fallback_epochs=int(n_fallback[b]),
                fidelity=fidelity,
            )
        )
    return results


def simulate_batch(
    cells: Sequence[tuple],
    fidelity: str = "latency",
) -> List[SimulationResult]:
    """Batched counterpart of :func:`~repro.sim.engine.simulate`.

    Each cell is ``(graph, machine, policy)`` or ``(graph, machine, policy,
    comm_model)`` (``None`` model means the default
    :class:`~repro.comm.model.LinearCommModel`).  Cells with a foldable
    communication model are compiled (through the scenario memo), reset and
    run as lanes of one :func:`run_batch` call — dispatched through
    :func:`~repro.sim.fast_engine.run_lanes`, so a single-cell group runs
    solo; an unfoldable model falls back to a solo object-engine run.
    Policies must be distinct instances per cell.  Results come back in
    cell order.
    """
    if fidelity not in _FIDELITIES:
        raise SimulationError(
            f"fidelity must be one of {_FIDELITIES}, got {fidelity!r}"
        )
    results: List[Optional[SimulationResult]] = [None] * len(cells)
    lanes: List[Tuple[CompiledScenario, SchedulingPolicy]] = []
    lane_pos: List[int] = []
    for i, cell in enumerate(cells):
        graph, machine, policy = cell[:3]
        comm_model = cell[3] if len(cell) > 3 and cell[3] is not None else LinearCommModel()
        if not supports_comm_model(comm_model):
            from repro.sim.engine import simulate

            results[i] = simulate(
                graph,
                machine,
                policy,
                comm_model=comm_model,
                fidelity=fidelity,
                record_trace=False,
                fast=False,
            )
            continue
        graph.validate()
        policy.reset()
        levels = graph.levels()
        scenario = compile_scenario(graph, machine, comm_model, levels=levels)
        lanes.append((scenario, policy))
        lane_pos.append(i)
    if lanes:
        from repro.sim.fast_engine import run_lanes

        for i, res in zip(lane_pos, run_lanes(lanes, fidelity=fidelity)):
            results[i] = res
    return results
