"""Lowering a simulation scenario into dense index space.

The object engine (:mod:`repro.sim.engine`) walks Python dictionaries: task
identifiers are arbitrary hashables, predecessor lists are re-fetched from the
graph at every epoch, and every message cost is a fresh ``comm_model.cost``
call.  For large statistical sweeps the simulator — not the optimizer — is
now the bottleneck, so this module compiles the immutable parts of a scenario
**once** and lets the fast engine (:mod:`repro.sim.fast_engine`) and the
vectorized scheduler kernels (``SchedulingPolicy.fast_assign``) run entirely
on integer indices and numpy arrays:

* tasks get dense indices ``0 .. n-1`` in graph-insertion order (the order
  every epoch's ready list is enumerated in, so index order *is* ready
  order);
* predecessor / successor adjacency is stored in CSR form (``indptr`` +
  ``indices``), with the per-edge communication weights aligned to the
  predecessor arrays;
* durations, levels and per-processor speeds become both float64 vectors
  (for the vectorized kernels) and plain Python lists (for the engine's
  scalar hot path, where list indexing beats numpy scalar indexing);
* the equation-4 effective communication cost is folded into one dense
  ``(n_edges, n_procs, n_procs)`` tensor built with the exact float
  operation order of ``CommunicationModel.cost_row``
  (``(w * wdist + routing) + setup``), so an indexed lookup is **bit-for-bit
  identical** to the scalar ``cost()`` call it replaces.

Only the built-in :class:`~repro.comm.model.LinearCommModel` and
:class:`~repro.comm.model.ZeroCommModel` (exact types, not subclasses) are
foldable; :func:`supports_comm_model` reports that, and the simulator falls
back to the object engine for anything else.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.comm.model import CommunicationModel, LinearCommModel, ZeroCommModel
from repro.machine.machine import Machine
from repro.taskgraph.graph import TaskGraph

__all__ = [
    "CompiledScenario",
    "ContentionTables",
    "FastPacket",
    "StackedScenarios",
    "compile_scenario",
    "stack_scenarios",
    "supports_comm_model",
    "scenario_cache_stats",
    "scenario_cache_limit",
    "set_scenario_cache_limit",
]

TaskId = Hashable


def supports_comm_model(comm_model: CommunicationModel) -> bool:
    """True when the model's costs can be folded into dense tables.

    Exact type checks on purpose: a subclass may override ``cost`` with
    arbitrary logic the tables cannot reproduce.
    """
    return type(comm_model) in (LinearCommModel, ZeroCommModel)


#: Compiled-scenario memo, keyed weakly by graph (entries die with the
#: graph, and the graph object itself stays pickle-clean).  Each graph maps
#: to an insertion-ordered ``{(model type, version, machine id): (machine,
#: scenario)}`` dict bounded by the per-graph cache limit (FIFO eviction),
#: so alternating machines or repeated mutation cannot grow it without
#: bound.
_SCENARIO_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _limit_from_env() -> int:
    raw = os.environ.get("REPRO_SCENARIO_CACHE_PER_GRAPH", "")
    try:
        value = int(raw)
    except ValueError:
        return 8
    return value if value >= 1 else 8


#: Per-graph entry bound of the scenario memo.  Batch jobs cycling many
#: machines over one graph (e.g. a long-lived scheduling service) want a
#: bigger bound than a paired sweep does; tune it with
#: :func:`set_scenario_cache_limit` or the ``REPRO_SCENARIO_CACHE_PER_GRAPH``
#: environment variable (read once at import, so service workers inherit it
#: across both fork and spawn start methods).
_SCENARIO_CACHE_PER_GRAPH = _limit_from_env()

#: Process-wide memo counters.  Sweep workers snapshot them around each
#: scenario so per-run (and per-worker-aggregate) compile reuse is
#: reportable; a long-lived server additionally watches ``evictions`` to
#: tell a too-small cache bound (thrash) from genuine cold misses.
_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def scenario_cache_stats() -> Dict[str, int]:
    """A copy of this process's compiled-scenario memo counters.

    ``hits`` / ``misses`` count :func:`compile_scenario` lookups;
    ``evictions`` counts entries dropped by the per-graph FIFO bound (see
    :func:`set_scenario_cache_limit`).
    """
    return dict(_CACHE_STATS)


def scenario_cache_limit() -> int:
    """The current per-graph entry bound of the compiled-scenario memo."""
    return _SCENARIO_CACHE_PER_GRAPH


def set_scenario_cache_limit(limit: int) -> int:
    """Set the per-graph entry bound of the compiled-scenario memo.

    Returns the previous bound.  Existing over-bound entries are evicted
    lazily on the next insertion for their graph.  The initial bound comes
    from ``REPRO_SCENARIO_CACHE_PER_GRAPH`` (default 8).
    """
    global _SCENARIO_CACHE_PER_GRAPH
    if limit < 1:
        raise ValueError(f"scenario cache limit must be >= 1, got {limit}")
    previous = _SCENARIO_CACHE_PER_GRAPH
    _SCENARIO_CACHE_PER_GRAPH = int(limit)
    return previous


@dataclass
class ContentionTables:
    """The store-and-forward routing of a machine, lowered to flat arrays.

    The contention fidelity forwards every message hop by hop along the
    machine's deterministic shortest routes; the object engine re-fetches
    ``machine.route(src, dst)`` and keys link occupancy by ``(a, b)`` node
    tuples per message.  These tables precompute, once per compiled
    scenario, everything the fast engine's contention loop indexes:

    * undirected links get dense ids ``0 .. n_links - 1`` (enumeration
      order of ``topology.links()``), so the per-link next-free timeline is
      a flat list instead of a dict;
    * every ordered processor pair ``(src, dst)`` maps — through the CSR
      key ``src * P + dst`` — to its route's hop slice: per hop the link id
      (``hop_links``), the node the hop enters (``hop_nodes``, i.e.
      ``route[k+1]``) and the link-weight transfer multiplier
      (``hop_mults``, all 1.0 on unit-weight machines, where the engine
      skips the multiply entirely like the object engine does).

    A message of edge weight ``w`` occupies hop *k*'s link for
    ``w * hop_mults[k]`` — the per-hop ``w_ij * link_weight`` charge whose
    route-summed counterpart is the volume term of the per-edge equation-4
    tensor (``_pred_costs``), so the two fidelities read one consistent
    route decomposition.  ``routes[src * P + dst]`` keeps the full node
    path as a tuple for trace records.
    """

    n_links: int
    sigma: float
    tau: float
    unit_links: bool
    route_indptr: List[int]
    hop_links: List[int]
    hop_nodes: List[int]
    hop_mults: List[float]
    routes: List[tuple]


def _compile_contention(machine: Machine) -> ContentionTables:
    """Lower *machine*'s routes and links into :class:`ContentionTables`."""
    n = machine.n_processors
    link_index: Dict[tuple, int] = {}
    for link in machine.topology.links():
        a, b = link
        key = (a, b) if a < b else (b, a)
        link_index.setdefault(key, len(link_index))
    all_routes = machine.all_routes()
    unit_links = bool(getattr(machine, "has_unit_link_weights", True))
    route_indptr = [0] * (n * n + 1)
    hop_links: List[int] = []
    hop_nodes: List[int] = []
    hop_mults: List[float] = []
    routes: List[tuple] = []
    for src in range(n):
        for dst in range(n):
            route = all_routes[src][dst]
            for k in range(len(route) - 1):
                a, b = route[k], route[k + 1]
                hop_links.append(link_index[(a, b) if a < b else (b, a)])
                hop_nodes.append(b)
                hop_mults.append(1.0 if unit_links else machine.link_weight(a, b))
            pair = src * n + dst
            route_indptr[pair + 1] = len(hop_links)
            routes.append(tuple(route))
    return ContentionTables(
        n_links=len(link_index),
        sigma=machine.params.sigma,
        tau=machine.params.tau,
        unit_links=unit_links,
        route_indptr=route_indptr,
        hop_links=hop_links,
        hop_nodes=hop_nodes,
        hop_mults=hop_mults,
        routes=routes,
    )


@dataclass
class CompiledScenario:
    """One (graph, machine, comm model) triple lowered to arrays.

    Attributes
    ----------
    task_ids:
        Task identifiers in graph-insertion order; position is the dense index.
    durations, levels:
        Float64 vectors over the dense task indices (``durations_list`` /
        ``levels_list`` are plain-float mirrors for scalar hot paths).
    pred_indptr, pred_ids, pred_weights:
        CSR predecessors: the predecessors of task *i* are
        ``pred_ids[pred_indptr[i]:pred_indptr[i+1]]`` (dense indices, in the
        graph's ``predecessors()`` order) and ``pred_weights`` the aligned
        edge communication weights ``w_ij``.
    succ_indptr, succ_ids:
        CSR successors, same layout.
    speeds:
        Per-processor speed factors (all 1.0 on homogeneous machines).
    comm_enabled:
        False for the zero-communication model (every cost is 0.0).
    """

    graph: TaskGraph
    machine: Machine
    comm_model: CommunicationModel
    task_ids: List[TaskId]
    index_of: Dict[TaskId, int]
    durations: np.ndarray
    levels: np.ndarray
    pred_indptr: np.ndarray
    pred_ids: np.ndarray
    pred_weights: np.ndarray
    succ_indptr: np.ndarray
    succ_ids: np.ndarray
    speeds: np.ndarray
    comm_enabled: bool
    durations_list: List[float] = field(repr=False, default_factory=list)
    levels_list: List[float] = field(repr=False, default_factory=list)
    speeds_list: List[float] = field(repr=False, default_factory=list)
    #: CSR layout mirrors for the scalar engine loop (plain ints).
    pred_indptr_list: List[int] = field(repr=False, default_factory=list)
    pred_ids_list: List[int] = field(repr=False, default_factory=list)
    succ_indptr_list: List[int] = field(repr=False, default_factory=list)
    succ_ids_list: List[int] = field(repr=False, default_factory=list)
    _wdistance: np.ndarray = field(repr=False, default=None)
    _routing: np.ndarray = field(repr=False, default=None)
    _setup: np.ndarray = field(repr=False, default=None)
    #: ``(n_edges, P, P)`` equation-4 cost tensor over predecessor-CSR entries
    #: (``None`` for the zero model).
    _pred_costs: Optional[np.ndarray] = field(repr=False, default=None)
    _weight_tables: Dict[float, np.ndarray] = field(repr=False, default_factory=dict)
    _contention: Optional[ContentionTables] = field(repr=False, default=None)

    @property
    def n_tasks(self) -> int:
        return len(self.task_ids)

    @property
    def n_procs(self) -> int:
        return self.machine.n_processors

    # ------------------------------------------------------------------ #
    def cost_table(self, weight: float) -> np.ndarray:
        """The dense ``(P, P)`` equation-4 cost table for edge weight *weight*.

        Entry ``[u, v]`` equals ``comm_model.cost(machine, weight, u, v)``
        bit for bit: built with the operation order of ``cost_row``
        (``(weight * wdist + routing) + setup``), which mirrors the scalar
        ``effective_comm_cost`` term by term.  Cached per distinct weight.
        """
        table = self._weight_tables.get(weight)
        if table is None:
            if not self.comm_enabled:
                table = np.zeros((self.n_procs, self.n_procs), dtype=np.float64)
            else:
                table = (weight * self._wdistance + self._routing) + self._setup
            self._weight_tables[weight] = table
        return table

    def contention_tables(self) -> ContentionTables:
        """The machine's store-and-forward tables, compiled on first use.

        Only the contention event loop needs them; latency runs never pay
        for route extraction.  Memoized on the scenario, which the scenario
        cache in turn memoizes per (graph, machine, model).
        """
        tables = self._contention
        if tables is None:
            tables = self._contention = _compile_contention(self.machine)
        return tables

    def pred_table(self, e: int) -> Optional[np.ndarray]:
        """The ``(P, P)`` cost table of predecessor-CSR entry *e* (``None`` when free)."""
        if self._pred_costs is None:
            return None
        return self._pred_costs[e]

    def edge_cost(self, e: int, src: int, dst: int) -> float:
        """Scalar equation-4 cost of predecessor-CSR entry *e* from *src* to *dst*."""
        if self._pred_costs is None:
            return 0.0
        p = self.n_procs
        return self._pred_costs.item((e * p + src) * p + dst)


def compile_scenario(
    graph: TaskGraph,
    machine: Machine,
    comm_model: CommunicationModel,
    levels: Optional[Dict[TaskId, float]] = None,
) -> CompiledScenario:
    """Lower *graph* on *machine* under *comm_model* to a :class:`CompiledScenario`.

    *levels* may be passed when the caller already computed them (the object
    engine does); they are recomputed otherwise.  Raises ``ValueError`` when
    the communication model cannot be folded (check
    :func:`supports_comm_model` first, or let the simulator fall back).
    """
    if not supports_comm_model(comm_model):
        raise ValueError(
            f"cannot compile communication model {type(comm_model).__name__}; "
            "only the built-in LinearCommModel/ZeroCommModel fold into tables"
        )
    # Paired comparisons (sweeps, benchmarks, golden tests) run several
    # policies over the same (graph, machine, comm) triple back to back;
    # memoize the lowering per graph, invalidated by its structural version
    # (the built-in models are stateless, so the type identifies the
    # tables).  The cached machine is compared by identity: the entry keeps
    # it alive, so its ``id()`` cannot be recycled while the entry exists.
    cache = _SCENARIO_CACHE.get(graph)
    if cache is None:
        cache = _SCENARIO_CACHE[graph] = {}
    key = (type(comm_model), getattr(graph, "_version", None), id(machine))
    entry = cache.get(key)
    if entry is not None and entry[0] is machine:
        _CACHE_STATS["hits"] += 1
        return entry[1]
    _CACHE_STATS["misses"] += 1
    task_ids = graph.tasks
    index_of = {t: i for i, t in enumerate(task_ids)}
    n = len(task_ids)
    durations_list = [graph._tasks[t].duration for t in task_ids]
    if levels is None:
        levels = graph.levels()
    levels_list = [levels[t] for t in task_ids]

    # CSR adjacency straight off the graph's insertion-ordered dicts.
    pred_indptr_list = [0] * (n + 1)
    pred_ids_list: List[int] = []
    pred_weights: List[float] = []
    succ_indptr_list = [0] * (n + 1)
    succ_ids_list: List[int] = []
    for i, t in enumerate(task_ids):
        for p, w in graph._pred[t].items():
            pred_ids_list.append(index_of[p])
            pred_weights.append(w)
        pred_indptr_list[i + 1] = len(pred_ids_list)
        for s in graph._succ[t]:
            succ_ids_list.append(index_of[s])
        succ_indptr_list[i + 1] = len(succ_ids_list)

    n_procs = machine.n_processors
    weights_arr = np.array(pred_weights, dtype=np.float64)
    enabled = comm_model.enabled
    if enabled:
        # Distance/weighted-distance matrices with the exact values the
        # scalar path reads: diagonal hops are 0 and the Kronecker delta
        # folds the same-processor collapse into the routing/setup terms
        # ((0 - 1 + 1) * tau = 0 and (1 - 1) * sigma = 0, like the paper).
        distance = machine.distance_matrix().astype(np.float64)
        if getattr(machine, "has_unit_link_weights", True):
            wdistance = distance
        else:
            wdistance = machine.weighted_distance_matrix().astype(np.float64)
        eye = np.eye(n_procs, dtype=np.float64)
        routing = (distance - 1.0 + eye) * machine.params.tau
        setup = (1.0 - eye) * machine.params.sigma
        # All per-edge tables in one batched expression — elementwise the
        # same ``(w * wdist + routing) + setup`` of ``cost_row``, so every
        # entry is bit-identical to the scalar cost.
        pred_costs = (weights_arr[:, None, None] * wdistance + routing) + setup
    else:
        wdistance = routing = setup = np.zeros((n_procs, n_procs), dtype=np.float64)
        pred_costs = None

    scenario = CompiledScenario(
        graph=graph,
        machine=machine,
        comm_model=comm_model,
        task_ids=task_ids,
        index_of=index_of,
        durations=np.array(durations_list, dtype=np.float64),
        levels=np.array(levels_list, dtype=np.float64),
        pred_indptr=np.array(pred_indptr_list, dtype=np.intp),
        pred_ids=np.array(pred_ids_list, dtype=np.intp),
        pred_weights=weights_arr,
        succ_indptr=np.array(succ_indptr_list, dtype=np.intp),
        succ_ids=np.array(succ_ids_list, dtype=np.intp),
        speeds=machine.speeds,
        comm_enabled=enabled,
        durations_list=durations_list,
        levels_list=levels_list,
        speeds_list=[float(s) for s in machine.speeds],
        pred_indptr_list=pred_indptr_list,
        pred_ids_list=pred_ids_list,
        succ_indptr_list=succ_indptr_list,
        succ_ids_list=succ_ids_list,
        _wdistance=wdistance,
        _routing=routing,
        _setup=setup,
        _pred_costs=pred_costs,
    )
    while len(cache) >= _SCENARIO_CACHE_PER_GRAPH:
        cache.pop(next(iter(cache)))
        _CACHE_STATS["evictions"] += 1
    cache[key] = (machine, scenario)
    return scenario


@dataclass
class FastPacket:
    """The index-space view of one assignment epoch.

    The fast-engine counterpart of
    :class:`~repro.schedulers.base.PacketContext`: ready tasks and idle
    processors are dense indices, and the compiled scenario gives kernels
    O(1) access to durations, levels, speeds and per-edge cost tables.
    ``assigned_proc`` / ``finish_times`` are live views of the engine's full
    state arrays (entry ``-1`` / unspecified for unassigned tasks) — kernels
    may only read the entries of finished predecessors.
    ``proc_ready_time[p]`` is the epoch time for idle processors and the
    expected availability for busy ones, like
    ``PacketContext.processor_ready_time``.
    """

    time: float
    ready: List[int]
    idle: List[int]
    scenario: CompiledScenario
    assigned_proc: np.ndarray
    finish_times: np.ndarray
    proc_ready_time: np.ndarray

    @property
    def n_ready(self) -> int:
        return len(self.ready)

    @property
    def n_idle(self) -> int:
        return len(self.idle)

    def arrival_rows(self, tasks: List[int]) -> np.ndarray:
        """Per-task predecessor-arrival rows over **all** processors.

        Row *k* gives, for every processor *p*, the latest ``finish + cost``
        over the predecessors of ``tasks[k]`` were it placed on *p* —
        ``-inf`` for tasks with no predecessors.  For a *ready* task the row
        is a run-long invariant (all predecessors have finished, and
        placements never change), which is what lets ETF's kernel cache rows
        across epochs; the earliest start on processor *p* at epoch time
        ``t`` is then exactly ``max(t, row[p])``, bit-identical to the
        scalar path (``max`` is exact, so accumulation order is free).

        Evaluated as one gather over the tasks' CSR entries followed by a
        segmented ``maximum.reduceat``.
        """
        sc = self.scenario
        n_procs = sc.n_procs
        rows = np.full((len(tasks), n_procs), -np.inf, dtype=np.float64)
        task_arr = np.asarray(tasks, dtype=np.intp)
        starts = sc.pred_indptr[task_arr]
        counts = sc.pred_indptr[task_arr + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return rows
        # Flat CSR entry indices of every (task, predecessor) pair.
        offsets = np.zeros(len(tasks), dtype=np.intp)
        np.cumsum(counts[:-1], out=offsets[1:])
        entries = np.arange(total, dtype=np.intp) + np.repeat(starts - offsets, counts)
        preds = sc.pred_ids[entries]
        fin = self.finish_times[preds]
        if sc._pred_costs is None:
            arrivals = np.broadcast_to(fin[:, None], (total, n_procs))
        else:
            srcs = self.assigned_proc[preds]
            arrivals = fin[:, None] + sc._pred_costs[entries, srcs]
        # Entries are grouped by task (CSR rows are contiguous), so a
        # segmented max over the non-empty groups folds each task's
        # predecessors; empty groups keep -inf.
        nonempty = np.flatnonzero(counts)
        rows[nonempty] = np.maximum.reduceat(arrivals, offsets[nonempty], axis=0)
        return rows

    def earliest_start_matrix(self) -> np.ndarray:
        """The ``(n_ready, n_idle)`` earliest-start matrix of this epoch.

        Entry ``[i, j]`` is the earliest time ``ready[i]`` could start on
        ``idle[j]`` given the placements and finish times of its (already
        finished) predecessors — the quantity ETF's reference path computes
        one scalar at a time: ``max(epoch time, arrival row)``.
        """
        rows = self.arrival_rows(self.ready)[:, np.asarray(self.idle, dtype=np.intp)]
        return np.maximum(rows, self.time)


@dataclass
class StackedScenarios:
    """B compiled scenarios stacked into padded lane-major tables.

    The batched engine (:mod:`repro.sim.batch_engine`) advances B independent
    sweep cells in lock step over ``(B, n_max)`` / ``(B, p_max)`` state
    matrices; this structure holds everything immutable those kernels index:

    * per-lane durations / levels / speeds, zero- (speed: one-) padded to the
      widest lane, with ``n_tasks`` / ``n_procs`` giving each lane's true
      extent (``task_valid`` / ``proc_valid`` are the matching masks);
    * predecessor and successor adjacency as **shared flat** CSR arrays:
      ``pred_start[b, t]`` / ``pred_count[b, t]`` address a contiguous run of
      ``pred_ids`` (lane-local task indices).  Lanes built from the *same*
      compiled scenario point into the same run, so duplicated cells cost
      nothing extra;
    * the equation-4 cost tensors of all lanes raveled into one
      ``cost_flat`` vector.  ``cost_offset[g]`` is the base of predecessor
      entry *g*'s ``(P_b, P_b)`` table, so
      ``cost_flat[cost_offset[g] + src * n_procs[lane] + dst]`` reproduces
      ``CompiledScenario.edge_cost`` bit for bit.  Entries of
      zero-communication lanes point at a leading all-zero ``p_max**2``
      block, which lets the engine's gather run unmasked (``finish + 0.0``
      matches the solo engine's zero-model arithmetic exactly).

    The per-lane :class:`CompiledScenario` objects stay reachable through
    ``scenarios`` — the batch engine reads their contention tables, task ids
    and graph/machine metadata for per-lane work and result assembly.
    """

    scenarios: List["CompiledScenario"]
    n_lanes: int
    n_max: int
    p_max: int
    n_tasks: np.ndarray
    n_procs: np.ndarray
    durations: np.ndarray
    levels: np.ndarray
    speeds: np.ndarray
    pred_start: np.ndarray
    pred_count: np.ndarray
    pred_ids: np.ndarray
    cost_offset: np.ndarray
    succ_start: np.ndarray
    succ_count: np.ndarray
    succ_ids: np.ndarray
    comm_on: np.ndarray
    cost_flat: np.ndarray
    _task_valid: Optional[np.ndarray] = field(repr=False, default=None)
    _proc_valid: Optional[np.ndarray] = field(repr=False, default=None)

    @property
    def task_valid(self) -> np.ndarray:
        """Boolean ``(B, n_max)`` mask of real (non-padding) task slots."""
        mask = self._task_valid
        if mask is None:
            mask = self._task_valid = (
                np.arange(self.n_max)[None, :] < self.n_tasks[:, None]
            )
        return mask

    @property
    def proc_valid(self) -> np.ndarray:
        """Boolean ``(B, p_max)`` mask of real (non-padding) processor slots."""
        mask = self._proc_valid
        if mask is None:
            mask = self._proc_valid = (
                np.arange(self.p_max)[None, :] < self.n_procs[:, None]
            )
        return mask


#: Stacked-table memo: sweeps and benchmarks re-run the same lane group
#: (e.g. timing repeats), and restacking is a large copy.  Keyed by the
#: identity tuple of the member scenarios — the entry holds strong
#: references to them, so the ids cannot be recycled while the entry lives —
#: and FIFO-bounded like the per-graph scenario cache.  A long-lived
#: service whose coalescer rotates among many batch compositions can widen
#: the bound with ``REPRO_STACK_CACHE_SIZE`` (each entry pins its member
#: scenarios, so the bound trades memory for restack copies).
_STACK_CACHE: Dict[tuple, StackedScenarios] = {}


def _stack_size_from_env() -> int:
    try:
        value = int(os.environ.get("REPRO_STACK_CACHE_SIZE", ""))
    except ValueError:
        return 4
    return value if value >= 1 else 4


_STACK_CACHE_SIZE = _stack_size_from_env()


def stack_scenarios(scenarios: List["CompiledScenario"]) -> StackedScenarios:
    """Stack *scenarios* (one per lane) into :class:`StackedScenarios` tables.

    The input scenarios normally come straight from the memoized
    :func:`compile_scenario`, so stacking the same lane group twice (repeat
    timings, resumed sweeps) hits both memo layers and costs two tuple
    lookups.  Lanes may repeat a scenario object; its adjacency and cost
    blocks are then shared rather than copied.
    """
    if not scenarios:
        raise ValueError("cannot stack an empty scenario list")
    key = tuple(id(sc) for sc in scenarios)
    cached = _STACK_CACHE.get(key)
    if cached is not None and all(
        a is b for a, b in zip(cached.scenarios, scenarios)
    ):
        return cached

    n_lanes = len(scenarios)
    n_tasks = np.array([sc.n_tasks for sc in scenarios], dtype=np.intp)
    n_procs = np.array([sc.n_procs for sc in scenarios], dtype=np.intp)
    n_max = max(1, int(n_tasks.max()))
    p_max = max(1, int(n_procs.max()))

    durations = np.zeros((n_lanes, n_max), dtype=np.float64)
    levels = np.zeros((n_lanes, n_max), dtype=np.float64)
    speeds = np.ones((n_lanes, p_max), dtype=np.float64)
    pred_start = np.zeros((n_lanes, n_max), dtype=np.intp)
    pred_count = np.zeros((n_lanes, n_max), dtype=np.intp)
    succ_start = np.zeros((n_lanes, n_max), dtype=np.intp)
    succ_count = np.zeros((n_lanes, n_max), dtype=np.intp)
    comm_on = np.array([sc.comm_enabled for sc in scenarios], dtype=bool)

    # Shared flat blocks, deduplicated by scenario identity.  The zero block
    # at the head of ``cost_flat`` serves every zero-communication entry.
    pred_parts: List[np.ndarray] = []
    succ_parts: List[np.ndarray] = []
    off_parts: List[np.ndarray] = []
    cost_parts: List[np.ndarray] = [np.zeros(p_max * p_max, dtype=np.float64)]
    pred_len = succ_len = 0
    cost_len = p_max * p_max
    blocks: Dict[int, tuple] = {}
    for b, sc in enumerate(scenarios):
        block = blocks.get(id(sc))
        if block is None:
            n_edges = len(sc.pred_ids)
            pred_parts.append(sc.pred_ids)
            succ_parts.append(sc.succ_ids)
            if sc._pred_costs is None:
                off_parts.append(np.zeros(n_edges, dtype=np.intp))
            else:
                p_sq = sc.n_procs * sc.n_procs
                off_parts.append(
                    cost_len + np.arange(n_edges, dtype=np.intp) * p_sq
                )
                cost_parts.append(sc._pred_costs.reshape(-1))
                cost_len += n_edges * p_sq
            block = blocks[id(sc)] = (pred_len, succ_len)
            pred_len += n_edges
            succ_len += len(sc.succ_ids)
        pred_base, succ_base = block
        n = sc.n_tasks
        durations[b, :n] = sc.durations
        levels[b, :n] = sc.levels
        speeds[b, : sc.n_procs] = sc.speeds
        pred_start[b, :n] = pred_base + sc.pred_indptr[:-1]
        pred_count[b, :n] = sc.pred_indptr[1:] - sc.pred_indptr[:-1]
        succ_start[b, :n] = succ_base + sc.succ_indptr[:-1]
        succ_count[b, :n] = sc.succ_indptr[1:] - sc.succ_indptr[:-1]

    stacked = StackedScenarios(
        scenarios=list(scenarios),
        n_lanes=n_lanes,
        n_max=n_max,
        p_max=p_max,
        n_tasks=n_tasks,
        n_procs=n_procs,
        durations=durations,
        levels=levels,
        speeds=speeds,
        pred_start=pred_start,
        pred_count=pred_count,
        pred_ids=(
            np.concatenate(pred_parts) if pred_parts else np.empty(0, dtype=np.intp)
        ).astype(np.intp, copy=False),
        cost_offset=(
            np.concatenate(off_parts) if off_parts else np.empty(0, dtype=np.intp)
        ).astype(np.intp, copy=False),
        succ_start=succ_start,
        succ_count=succ_count,
        succ_ids=(
            np.concatenate(succ_parts) if succ_parts else np.empty(0, dtype=np.intp)
        ).astype(np.intp, copy=False),
        comm_on=comm_on,
        # The trailing zero block keeps full-width row gathers
        # (``base + arange(p_max)``) in bounds for the narrowest lane's last
        # cost row without clamping; gathered pad columns are never read.
        cost_flat=np.concatenate(cost_parts + [np.zeros(p_max, dtype=np.float64)]),
    )
    while len(_STACK_CACHE) >= _STACK_CACHE_SIZE:
        _STACK_CACHE.pop(next(iter(_STACK_CACHE)))
    _STACK_CACHE[key] = stacked
    return stacked
