"""Simulation results: makespan, speedup, utilization and schedule summaries.

Speedup is measured exactly as in the paper: the serial execution time (the
sum of all task durations, i.e. running the whole program on one processor
with no communication) divided by the parallel completion time recorded by
the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from repro.sim.trace import ExecutionTrace

__all__ = ["SimulationResult"]

TaskId = Hashable
ProcId = int


@dataclass
class SimulationResult:
    """Outcome of one simulated execution.

    Attributes
    ----------
    makespan:
        Completion time of the last task.
    trace:
        The full :class:`~repro.sim.trace.ExecutionTrace` (task intervals,
        messages, overheads) when trace recording was enabled.
    graph_name, machine_name, policy_name:
        Identification of the experiment for reports.
    total_work:
        The serial execution time ``T_1`` (sum of task durations).
    n_processors:
        Number of processors of the machine.
    n_packets:
        Number of assignment epochs at which at least one task was placed.
    task_processor:
        Final placement of every task.
    n_fallback_epochs:
        Fast-engine runs only: number of epochs served through the
        materialized-context fallback because the policy had no index-space
        fast path (0 for fully-kernelized runs and for the object engine,
        where the notion does not apply).  Excluded from
        :meth:`fingerprint` — it describes *how* the numbers were produced,
        never *which*.
    fidelity:
        The simulator fidelity the run used (``"latency"`` or
        ``"contention"``), for reports and benchmark metadata.
    """

    makespan: float
    total_work: float
    n_processors: int
    graph_name: str = ""
    machine_name: str = ""
    policy_name: str = ""
    n_packets: int = 0
    task_processor: Dict[TaskId, ProcId] = field(default_factory=dict)
    trace: Optional[ExecutionTrace] = None
    n_fallback_epochs: int = 0
    fidelity: str = "latency"

    # ------------------------------------------------------------------ #
    def speedup(self) -> float:
        """``T_1 / makespan`` — the quantity reported in Table 2."""
        if self.makespan <= 0.0:
            return 0.0
        return self.total_work / self.makespan

    def efficiency(self) -> float:
        """Speedup divided by the processor count (in [0, 1] for valid schedules)."""
        if self.n_processors <= 0:
            return 0.0
        return self.speedup() / self.n_processors

    def processor_utilization(self) -> Dict[ProcId, float]:
        """Fraction of the makespan each processor spent executing tasks.

        Requires a recorded trace; returns an empty dict otherwise.
        """
        if self.trace is None or self.makespan <= 0.0:
            return {}
        return {
            proc: self.trace.busy_time(proc) / self.makespan
            for proc in range(self.n_processors)
        }

    def average_utilization(self) -> float:
        util = self.processor_utilization()
        if not util:
            return 0.0
        return sum(util.values()) / len(util)

    def tasks_per_processor(self) -> Dict[ProcId, int]:
        """Number of tasks placed on each processor."""
        counts: Dict[ProcId, int] = {p: 0 for p in range(self.n_processors)}
        for proc in self.task_processor.values():
            counts[proc] = counts.get(proc, 0) + 1
        return counts

    def summary(self) -> str:
        """A short human-readable summary line."""
        return (
            f"{self.graph_name} on {self.machine_name} with {self.policy_name}: "
            f"makespan={self.makespan:.2f}, speedup={self.speedup():.2f}, "
            f"efficiency={self.efficiency():.2%}"
        )

    def fingerprint(self) -> Dict[str, object]:
        """A JSON-serializable, bit-exact summary of the run.

        Captures the makespan, the packet count, the message count and —
        when a trace was recorded — every task's ``[processor, start,
        finish]`` triple.  Contention traces additionally carry the
        overhead-record count and the exact sum of per-link occupancy time
        (``math.fsum`` over the hop intervals, one deterministic rounding),
        so golden fixtures pin the store-and-forward timeline too; both keys
        are omitted when no overheads/hops were recorded, which keeps
        latency fingerprints byte-identical to their pre-contention form.
        Floats survive a JSON round-trip exactly (Python serializes the
        shortest representation that parses back to the same double), so
        golden-trace regression tests can compare fingerprints with ``==``
        and detect any behavioural drift, however small.
        """
        if self.trace is not None:
            tasks = {
                str(rec.task): [int(rec.processor), rec.start_time, rec.finish_time]
                for rec in sorted(self.trace.task_records, key=lambda r: str(r.task))
            }
            n_messages = len(self.trace.message_records)
        else:
            tasks = {
                str(task): [int(proc)]
                for task, proc in sorted(
                    self.task_processor.items(), key=lambda kv: str(kv[0])
                )
            }
            n_messages = None
        fp = {
            "makespan": self.makespan,
            "n_packets": self.n_packets,
            "n_messages": n_messages,
            "tasks": tasks,
        }
        if self.trace is not None:
            if self.trace.overhead_records:
                fp["n_overheads"] = len(self.trace.overhead_records)
            hop_time = math.fsum(
                end - start
                for msg in self.trace.message_records
                for start, end in msg.hop_intervals
            )
            if hop_time:
                fp["link_busy_time"] = hop_time
        return fp
