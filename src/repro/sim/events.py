"""A deterministic event queue for the discrete-event simulator.

Events are ordered by time; ties are broken by a monotonically increasing
sequence number so that simulation runs are exactly reproducible regardless
of the (stable) heap implementation details.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

__all__ = ["Event", "EventQueue"]

#: Event kinds understood by the engine.
TASK_FINISH = "task_finish"


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled simulator event.

    ``time`` and ``seq`` define the ordering; ``kind`` and ``payload`` are
    ignored by comparisons (``seq`` is unique).
    """

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A min-heap of :class:`Event` objects with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event and return it."""
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        event = Event(time=float(time), seq=next(self._counter), kind=kind, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event; raise :class:`IndexError` when empty."""
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[Event]:
        """The earliest event without removing it, or ``None`` when empty."""
        return self._heap[0] if self._heap else None

    def pop_simultaneous(self) -> list[Event]:
        """Pop every event sharing the earliest timestamp (in insertion order)."""
        if not self._heap:
            return []
        first = self.pop()
        batch = [first]
        while self._heap and self._heap[0].time == first.time:
            batch.append(self.pop())
        return batch

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Event]:  # pragma: no cover - debugging aid
        return iter(sorted(self._heap))
