"""Discrete-event execution simulator.

The simulator executes a task graph on a machine under an online
:class:`~repro.schedulers.base.SchedulingPolicy`, reproducing the measurement
setup of the paper: assignment epochs at time zero and whenever a processor
becomes idle, message latencies following equation 4, optional per-link
contention with store-and-forward hops, and full execution traces from which
speedups (Table 2) and Gantt charts (Figure 2) are derived.

Two engines implement the same semantics: the object engine
(:mod:`repro.sim.engine`) supports both fidelities and full traces, and the
compiled fast engine (:mod:`repro.sim.compile` + :mod:`repro.sim.fast_engine`)
runs latency-fidelity scenarios in index space at a multiple of the speed —
bit-for-bit identical, dispatched automatically by :class:`Simulator`.
"""

from repro.sim.events import EventQueue, Event
from repro.sim.message import MessageRecord
from repro.sim.trace import TaskRecord, OverheadRecord, ExecutionTrace
from repro.sim.results import SimulationResult
from repro.sim.compile import CompiledScenario, FastPacket, compile_scenario, supports_comm_model
from repro.sim.fast_engine import run_compiled
from repro.sim.engine import Simulator, simulate
from repro.sim.gantt import render_gantt

__all__ = [
    "CompiledScenario",
    "FastPacket",
    "compile_scenario",
    "supports_comm_model",
    "run_compiled",
    "EventQueue",
    "Event",
    "MessageRecord",
    "TaskRecord",
    "OverheadRecord",
    "ExecutionTrace",
    "SimulationResult",
    "Simulator",
    "simulate",
    "render_gantt",
]
