"""The effective interprocessor communication cost (paper equation 4).

The cost to ship the message of edge ``t_i -> t_j`` (per-link transfer time
``w_ij``) from processor ``P_u = m(t_i)`` to processor ``P_v = m(t_j)`` at hop
distance ``d = d(u, v)`` is

    c_ij = w_ij * d  +  (d - 1 + delta_uv) * tau  +  (1 - delta_uv) * sigma

where ``delta_uv`` is the Kronecker delta (1 when both tasks share a
processor).  The three terms are

1. the distance–volume product: the message occupies ``d`` links for ``w_ij``
   each (store-and-forward, bit-serial links),
2. the routing overhead ``tau`` charged by each of the ``d - 1`` intermediate
   processors (and the final receive), which vanishes for neighbours,
3. the link-setup overhead ``sigma`` on the sender, which vanishes when both
   tasks are co-located.

For co-located tasks (``d = 0``, ``delta = 1``) the whole cost collapses to
zero, matching the paper.

Two model objects wrap this formula for the scheduler and the simulator:

* :class:`LinearCommModel` — the full equation-4 cost,
* :class:`ZeroCommModel`   — every message is free (the "w/o comm" columns of
  Table 2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.machine.params import CommParams
from repro.utils.validation import check_non_negative

__all__ = [
    "effective_comm_cost",
    "comm_cost_table",
    "CommunicationModel",
    "LinearCommModel",
    "ZeroCommModel",
]


def effective_comm_cost(
    weight: float,
    distance: int,
    same_processor: bool,
    params: CommParams,
    weighted_distance: Optional[float] = None,
) -> float:
    """Evaluate equation (4) for one message.

    Parameters
    ----------
    weight:
        The per-link transfer time ``w_ij`` of the edge (µs).
    distance:
        Hop distance ``d`` between the two processors.
    same_processor:
        Whether source and destination tasks are mapped onto the same
        processor (the Kronecker delta of the equation).
    params:
        The machine's :class:`~repro.machine.params.CommParams`.
    weighted_distance:
        Total link weight along the route, for machines with weighted links
        — it replaces the hop count in the distance–volume term while the
        per-hop routing overhead keeps charging ``tau`` per intermediate
        processor.  ``None`` (the homogeneous default) means the hop count
        itself, reproducing the original formula exactly.
    """
    check_non_negative("weight", weight)
    if distance < 0:
        raise ValueError(f"distance must be >= 0, got {distance}")
    delta = 1.0 if same_processor else 0.0
    if weighted_distance is None:
        volume = weight * distance
    else:
        if weighted_distance < 0:
            raise ValueError(f"weighted_distance must be >= 0, got {weighted_distance}")
        volume = weight * weighted_distance
    routing = (distance - 1 + delta) * params.tau
    setup = (1.0 - delta) * params.sigma
    return volume + routing + setup


class CommunicationModel(ABC):
    """Maps (edge weight, source processor, destination processor) to a cost.

    The same model object is used by the SA cost function (to score candidate
    placements) and by the simulator (to delay message arrivals), which keeps
    the optimizer's view of the machine consistent with the execution model.
    """

    @abstractmethod
    def cost(self, machine, weight: float, src_proc: int, dst_proc: int) -> float:
        """Effective time to move one message of per-link weight *weight*."""

    def cost_row(self, machine, weight: float, src_proc: int, dst_procs) -> np.ndarray:
        """Vector of :meth:`cost` values from *src_proc* to every *dst_procs* entry.

        The default implementation loops over the scalar :meth:`cost`; the
        built-in models override it with closed-form vectorized versions that
        produce bit-identical values.  Used by :func:`comm_cost_table` to
        compile a packet's communication costs ahead of annealing.
        """
        return np.array(
            [self.cost(machine, weight, src_proc, int(p)) for p in dst_procs],
            dtype=np.float64,
        )

    @property
    def enabled(self) -> bool:
        """False when the model ignores communication entirely."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class LinearCommModel(CommunicationModel):
    """The paper's equation-4 cost model (distance–volume + routing + setup).

    On machines with weighted links the volume term accumulates the total
    link weight along the route (``machine.weighted_distance``) while the
    routing overhead keeps charging ``tau`` per hop of the same route; on
    unit-weight machines both quantities coincide and the arithmetic is
    bit-identical to the original homogeneous model.
    """

    def cost(self, machine, weight: float, src_proc: int, dst_proc: int) -> float:
        same = src_proc == dst_proc
        distance = 0 if same else machine.distance(src_proc, dst_proc)
        if same or getattr(machine, "has_unit_link_weights", True):
            wdistance = None
        else:
            wdistance = machine.weighted_distance(src_proc, dst_proc)
        return effective_comm_cost(weight, distance, same, machine.params, wdistance)

    def cost_row(self, machine, weight: float, src_proc: int, dst_procs) -> np.ndarray:
        # Mirrors effective_comm_cost term by term (same operation order, so
        # the floats are bit-identical to the scalar path).
        check_non_negative("weight", weight)
        procs = np.asarray(dst_procs, dtype=np.intp)
        distances = machine.distances_from(src_proc, procs)
        if getattr(machine, "has_unit_link_weights", True):
            wdistances = distances
        else:
            wdistances = machine.weighted_distances_from(src_proc, procs)
        delta = (procs == src_proc).astype(np.float64)
        volume = weight * wdistances
        routing = (distances - 1 + delta) * machine.params.tau
        setup = (1.0 - delta) * machine.params.sigma
        return volume + routing + setup


class ZeroCommModel(CommunicationModel):
    """Communication-free model used for the "w/o comm" experiments."""

    def cost(self, machine, weight: float, src_proc: int, dst_proc: int) -> float:
        return 0.0

    def cost_row(self, machine, weight: float, src_proc: int, dst_procs) -> np.ndarray:
        return np.zeros(len(dst_procs), dtype=np.float64)

    @property
    def enabled(self) -> bool:
        return False


def comm_cost_table(
    comm_model: CommunicationModel,
    machine,
    idle_processors,
    predecessor_placements,
) -> np.ndarray:
    """Compile the ``(n_tasks, n_idle)`` communication-cost table of one packet.

    ``predecessor_placements[i]`` is the sequence of ``(pred_processor,
    comm_weight)`` pairs of ready task *i*; entry ``[i, j]`` of the result is
    the total equation-4 cost of placing task *i* on ``idle_processors[j]``.
    Rows are accumulated one predecessor at a time, preserving the float
    summation order of the scalar implementation so annealing on the table is
    bit-for-bit identical to annealing on per-move ``cost()`` calls.  Link
    weights of heterogeneous machines flow in through the model's
    ``cost_row`` (which reads the machine's weighted distances), so the same
    table builder serves homogeneous and weighted machines.
    """
    procs = np.asarray(idle_processors, dtype=np.intp)
    table = np.zeros((len(predecessor_placements), len(procs)), dtype=np.float64)
    if not comm_model.enabled:
        return table
    for i, preds in enumerate(predecessor_placements):
        row = table[i]
        for pred_proc, weight in preds:
            row += comm_model.cost_row(machine, weight, pred_proc, procs)
    return table
