"""Communication-cost models (equation 4 of the paper)."""

from repro.comm.model import (
    CommunicationModel,
    LinearCommModel,
    ZeroCommModel,
    comm_cost_table,
    effective_comm_cost,
)

__all__ = [
    "CommunicationModel",
    "LinearCommModel",
    "ZeroCommModel",
    "comm_cost_table",
    "effective_comm_cost",
]
