"""The paper's primary contribution: staged simulated-annealing DAG scheduling.

At every assignment epoch an :class:`~repro.core.packet.AnnealingPacket` is
built from the ready tasks and the idle processors and compiled into a
:class:`~repro.core.kernel.PacketKernel` — dense integer-indexed levels and
communication-cost tables; a short simulated annealing run
(:class:`~repro.core.packet_annealer.PacketAnnealer`) explores partial
mappings of ready tasks onto idle processors under the normalized
load-balancing + communication cost of :mod:`repro.core.cost` (equations 3–6)
and the move/swap neighbourhood of :mod:`repro.core.moves`; the best mapping
found becomes the epoch's assignment.  The inner walk runs in one of four
bit-identical tiers (reference / kernel / array / batched multi-replica —
see :mod:`repro.core.array_annealer` and ``SAConfig.walk`` /
``SAConfig.replicas``).  The whole staged policy is exposed as
:class:`~repro.core.sa_scheduler.SAScheduler`, a drop-in
:class:`~repro.schedulers.base.SchedulingPolicy` with an index-space
``fast_assign`` kernel for the compiled simulation engine.
"""

from repro.core.config import SAConfig
from repro.core.packet import AnnealingPacket, PacketMapping
from repro.core.cost import PacketCostFunction, CostBreakdown
from repro.core.kernel import PacketKernel
from repro.core.moves import propose_move
from repro.core.array_annealer import (
    anneal_array,
    anneal_replicas_batched,
    anneal_replicas_scalar,
    compile_fast_packet,
)
from repro.core.packet_annealer import PacketAnnealer, PacketAnnealingOutcome
from repro.core.sa_scheduler import SAScheduler, PacketStats

__all__ = [
    "SAConfig",
    "AnnealingPacket",
    "PacketMapping",
    "PacketCostFunction",
    "PacketKernel",
    "CostBreakdown",
    "propose_move",
    "anneal_array",
    "anneal_replicas_batched",
    "anneal_replicas_scalar",
    "compile_fast_packet",
    "PacketAnnealer",
    "PacketAnnealingOutcome",
    "SAScheduler",
    "PacketStats",
]
