"""The packet cost function (paper equations 3 – 6).

For one annealing packet the cost of a candidate mapping ``m`` has two terms:

* **Load-balancing cost** (eq. 3)::

      F_b(m) = - sum_i  n_i * s(i)

  where ``n_i`` is the task level and ``s(i) = 1`` when task ``t_i`` is
  selected (mapped onto one of the idle processors).  Minimizing ``F_b``
  selects the highest-level ready tasks first — exactly the HLF priority,
  expressed as an energy.

* **Communication cost** (eqs. 4, 5)::

      F_c(m) = sum over selected tasks i, predecessors p of i:
                   c(w_pi, d(m(p), m(i)))

  evaluated with the machine's equation-4 effective cost.  Predecessors have
  already executed somewhere, so their processors are fixed; only the
  candidate processor of each selected ready task varies.

* **Normalization and mixing** (eq. 6)::

      F(m) = w_c * F_c / dF_c  +  w_b * F_b / dF_b

  ``dF_b = (Max - Min) / N_idle`` where ``Max``/``Min`` are the cumulative
  level values obtained when the ``N_idle`` idle processors execute the
  highest / lowest level candidates; ``dF_c`` is an upper estimate of the
  communication cost obtained by pairing the highest-communication candidates
  with the network diameter.  Both ranges are guarded against zero so the
  cost stays finite for degenerate packets (single candidate, no
  communication, one processor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.comm.model import CommunicationModel, LinearCommModel, effective_comm_cost
from repro.core.packet import AnnealingPacket, PacketMapping
from repro.exceptions import ConfigurationError

__all__ = ["CostBreakdown", "PacketCostFunction"]

TaskId = Hashable
ProcId = int


@dataclass(frozen=True)
class CostBreakdown:
    """The three cost values the paper plots in Figure 1 for one mapping."""

    balance: float        #: raw F_b (eq. 3)
    communication: float  #: raw F_c (eq. 5)
    total: float          #: normalized weighted sum F (eq. 6)


class PacketCostFunction:
    """Evaluates the normalized packet cost of equation 6.

    Parameters
    ----------
    packet:
        The annealing packet being optimized.
    machine:
        The target machine (distances and overhead parameters).
    comm_model:
        Communication model; the zero model makes ``F_c`` identically zero,
        which reproduces the "w/o comm" configuration.
    weight_balance, weight_comm:
        The mixing weights ``w_b`` and ``w_c`` (must be non-negative and sum
        to 1).
    """

    def __init__(
        self,
        packet: AnnealingPacket,
        machine,
        comm_model: Optional[CommunicationModel] = None,
        weight_balance: float = 0.5,
        weight_comm: float = 0.5,
    ) -> None:
        if weight_balance < 0 or weight_comm < 0:
            raise ConfigurationError("cost weights must be non-negative")
        if abs(weight_balance + weight_comm - 1.0) > 1e-9:
            raise ConfigurationError(
                f"cost weights must sum to 1, got {weight_balance + weight_comm}"
            )
        self.packet = packet
        self.machine = machine
        self.comm_model = comm_model if comm_model is not None else LinearCommModel()
        self.weight_balance = float(weight_balance)
        self.weight_comm = float(weight_comm)
        self._balance_range = self._compute_balance_range()
        self._comm_range = self._compute_comm_range()

    # ------------------------------------------------------------------ #
    # Ranges (paper §4.2c)
    # ------------------------------------------------------------------ #
    def _compute_balance_range(self) -> float:
        """``dF_b = (Max - Min) / N_idle`` with a positive-floor guard."""
        n_idle = self.packet.n_idle
        if n_idle == 0:
            return 1.0
        levels = sorted((self.packet.levels[t] for t in self.packet.ready_tasks), reverse=True)
        k = min(n_idle, len(levels))
        if k == 0:
            return 1.0
        max_sum = sum(levels[:k])
        min_sum = sum(levels[-k:])
        rng = (max_sum - min_sum) / n_idle
        # When every candidate has the same level the balancing term cannot
        # discriminate; normalize by the common level magnitude instead so the
        # term still rewards selecting *more* tasks.
        if rng <= 0.0:
            rng = max(abs(max_sum) / max(n_idle, 1), 1.0)
        return rng

    def _compute_comm_range(self) -> float:
        """``dF_c``: highest-communication candidates paired with the network diameter."""
        if not self.comm_model.enabled:
            return 1.0
        diameter = max(self.machine.diameter, 1)
        totals = []
        for task in self.packet.ready_tasks:
            preds = self.packet.predecessor_placement.get(task, ())
            if not preds:
                continue
            worst = sum(
                effective_comm_cost(w, diameter, False, self.machine.params)
                for _, _, w in preds
            )
            totals.append(worst)
        if not totals:
            return 1.0
        totals.sort(reverse=True)
        k = min(self.packet.n_idle, len(totals)) or len(totals)
        estimate = sum(totals[:k])
        return estimate if estimate > 0 else 1.0

    @property
    def balance_range(self) -> float:
        """The normalization constant ``dF_b``."""
        return self._balance_range

    @property
    def comm_range(self) -> float:
        """The normalization constant ``dF_c``."""
        return self._comm_range

    # ------------------------------------------------------------------ #
    # Raw terms
    # ------------------------------------------------------------------ #
    def balance_cost(self, mapping: PacketMapping) -> float:
        """Equation 3: ``F_b = -sum_i n_i s(i)``."""
        return -sum(self.packet.levels[t] for t in mapping.task_to_proc)

    def communication_cost(self, mapping: PacketMapping) -> float:
        """Equation 5: sum of equation-4 costs from placed predecessors to selected tasks."""
        if not self.comm_model.enabled:
            return 0.0
        total = 0.0
        for task, proc in mapping.task_to_proc.items():
            for _pred, pred_proc, weight in self.packet.predecessor_placement.get(task, ()):
                total += self.comm_model.cost(self.machine, weight, pred_proc, proc)
        return total

    def task_communication_cost(self, task: TaskId, proc: ProcId) -> float:
        """Communication cost contributed by placing *task* on *proc* (used for deltas)."""
        if not self.comm_model.enabled:
            return 0.0
        total = 0.0
        for _pred, pred_proc, weight in self.packet.predecessor_placement.get(task, ()):
            total += self.comm_model.cost(self.machine, weight, pred_proc, proc)
        return total

    # ------------------------------------------------------------------ #
    # Combined cost
    # ------------------------------------------------------------------ #
    def total_cost(self, mapping: PacketMapping) -> float:
        """Equation 6: the normalized, weighted sum."""
        fb = self.balance_cost(mapping)
        fc = self.communication_cost(mapping)
        return self.weight_comm * fc / self._comm_range + self.weight_balance * fb / self._balance_range

    def incremental_delta(self, changes) -> float:
        """Normalized cost change produced by the placement *changes* of one move.

        *changes* is the ``last_change`` list of a :class:`PacketMapping`
        produced by :func:`~repro.core.moves.propose_move`: ``(task, old_proc,
        new_proc)`` triples with ``None`` meaning "not selected".  Because both
        cost terms are additive over the selected tasks, the change of the
        total cost is the sum of the per-task changes, which makes move
        evaluation O(changed tasks) instead of O(selected tasks).
        """
        balance_delta = 0.0
        comm_delta = 0.0
        for task, old_proc, new_proc in changes:
            level = self.packet.levels[task]
            if old_proc is not None:
                balance_delta += level  # removing -level
                comm_delta -= self.task_communication_cost(task, old_proc)
            if new_proc is not None:
                balance_delta -= level
                comm_delta += self.task_communication_cost(task, new_proc)
        return (
            self.weight_comm * comm_delta / self._comm_range
            + self.weight_balance * balance_delta / self._balance_range
        )

    def breakdown(self, mapping: PacketMapping) -> CostBreakdown:
        """Return the raw balance, raw communication and normalized total cost."""
        fb = self.balance_cost(mapping)
        fc = self.communication_cost(mapping)
        total = self.weight_comm * fc / self._comm_range + self.weight_balance * fb / self._balance_range
        return CostBreakdown(balance=fb, communication=fc, total=total)

    def __call__(self, mapping: PacketMapping) -> float:
        return self.total_cost(mapping)
