"""The packet cost function (paper equations 3 – 6).

For one annealing packet the cost of a candidate mapping ``m`` has two terms:

* **Load-balancing cost** (eq. 3)::

      F_b(m) = - sum_i  n_i * s(i)

  where ``n_i`` is the task level and ``s(i) = 1`` when task ``t_i`` is
  selected (mapped onto one of the idle processors).  Minimizing ``F_b``
  selects the highest-level ready tasks first — exactly the HLF priority,
  expressed as an energy.

* **Communication cost** (eqs. 4, 5)::

      F_c(m) = sum over selected tasks i, predecessors p of i:
                   c(w_pi, d(m(p), m(i)))

  evaluated with the machine's equation-4 effective cost.  Predecessors have
  already executed somewhere, so their processors are fixed; only the
  candidate processor of each selected ready task varies.

* **Normalization and mixing** (eq. 6)::

      F(m) = w_c * F_c / dF_c  +  w_b * F_b / dF_b

  ``dF_b = (Max - Min) / N_idle`` where ``Max``/``Min`` are the cumulative
  level values obtained when the ``N_idle`` idle processors execute the
  highest / lowest level candidates; ``dF_c`` is an upper estimate of the
  communication cost obtained by pairing the highest-communication candidates
  with the network diameter.  Both ranges are guarded against zero so the
  cost stays finite for degenerate packets (single candidate, no
  communication, one processor).

By default the cost function *compiles* the packet into a
:class:`~repro.core.kernel.PacketKernel`: every ``(ready task, idle
processor)`` communication cost is precomputed into a dense table at
construction time, so per-move evaluation never calls ``comm_model.cost()``.
Pass ``compiled=False`` to keep the original per-call scalar evaluation (the
reference implementation used by the equivalence tests); both paths produce
bit-identical costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.comm.model import CommunicationModel, LinearCommModel
from repro.core.kernel import (
    PacketKernel,
    compute_balance_range,
    compute_comm_range,
    idle_processor_speeds,
)
from repro.core.packet import AnnealingPacket, PacketMapping
from repro.exceptions import ConfigurationError

__all__ = ["CostBreakdown", "PacketCostFunction"]

TaskId = Hashable
ProcId = int


@dataclass(frozen=True)
class CostBreakdown:
    """The three cost values the paper plots in Figure 1 for one mapping."""

    balance: float        #: raw F_b (eq. 3)
    communication: float  #: raw F_c (eq. 5)
    total: float          #: normalized weighted sum F (eq. 6)


class PacketCostFunction:
    """Evaluates the normalized packet cost of equation 6.

    Parameters
    ----------
    packet:
        The annealing packet being optimized.
    machine:
        The target machine (distances and overhead parameters).
    comm_model:
        Communication model; the zero model makes ``F_c`` identically zero,
        which reproduces the "w/o comm" configuration.
    weight_balance, weight_comm:
        The mixing weights ``w_b`` and ``w_c`` (must be non-negative and sum
        to 1).
    compiled:
        Precompute the packet's communication-cost table (default).  When
        False, every evaluation calls ``comm_model.cost()`` — the slow
        reference path kept for cross-validation.
    """

    def __init__(
        self,
        packet: AnnealingPacket,
        machine,
        comm_model: Optional[CommunicationModel] = None,
        weight_balance: float = 0.5,
        weight_comm: float = 0.5,
        compiled: bool = True,
    ) -> None:
        if weight_balance < 0 or weight_comm < 0:
            raise ConfigurationError("cost weights must be non-negative")
        if abs(weight_balance + weight_comm - 1.0) > 1e-9:
            raise ConfigurationError(
                f"cost weights must sum to 1, got {weight_balance + weight_comm}"
            )
        self.packet = packet
        self.machine = machine
        self.comm_model = comm_model if comm_model is not None else LinearCommModel()
        self.weight_balance = float(weight_balance)
        self.weight_comm = float(weight_comm)
        self.kernel: Optional[PacketKernel] = None
        if compiled:
            self.kernel = PacketKernel(
                packet,
                machine,
                comm_model=self.comm_model,
                weight_balance=self.weight_balance,
                weight_comm=self.weight_comm,
            )
            self._idle_speeds = self.kernel.speeds
            self._balance_range = self.kernel.balance_range
            self._comm_range = self.kernel.comm_range
        else:
            self._idle_speeds = idle_processor_speeds(packet, machine)
            self._balance_range = compute_balance_range(packet, self._idle_speeds)
            self._comm_range = compute_comm_range(packet, machine, self.comm_model)
        # Per-processor balance scale (the speed factor of eq. 3 generalized
        # to heterogeneous machines); None means the homogeneous unit scale.
        if self._idle_speeds is None:
            self._speed_by_proc: Optional[Dict[ProcId, float]] = None
        else:
            self._speed_by_proc = dict(zip(packet.idle_processors, self._idle_speeds))

    @property
    def balance_range(self) -> float:
        """The normalization constant ``dF_b``."""
        return self._balance_range

    @property
    def comm_range(self) -> float:
        """The normalization constant ``dF_c``."""
        return self._comm_range

    # ------------------------------------------------------------------ #
    # Raw terms
    # ------------------------------------------------------------------ #
    def _balance_scale(self, proc: ProcId) -> float:
        """Speed factor of *proc* in the heterogeneous balance term (1.0 otherwise)."""
        assert self._speed_by_proc is not None
        scale = self._speed_by_proc.get(proc)
        if scale is None:
            # Processors outside the packet's idle set (legal for hand-built
            # mappings in tests and analysis code).
            speed_of = getattr(self.machine, "speed_of", None)
            scale = speed_of(proc) if speed_of is not None else 1.0
        return scale

    def balance_cost(self, mapping: PacketMapping) -> float:
        """Equation 3: ``F_b = -sum_i n_i s(i)`` (speed-scaled when heterogeneous)."""
        if self._speed_by_proc is None:
            return -sum(self.packet.levels[t] for t in mapping.task_to_proc)
        return -sum(
            self.packet.levels[t] * self._balance_scale(p)
            for t, p in mapping.task_to_proc.items()
        )

    def communication_cost(self, mapping: PacketMapping) -> float:
        """Equation 5: sum of equation-4 costs from placed predecessors to selected tasks."""
        if not self.comm_model.enabled:
            return 0.0
        total = 0.0
        for task, proc in mapping.task_to_proc.items():
            total += self.task_communication_cost(task, proc)
        return total

    def task_communication_cost(self, task: TaskId, proc: ProcId) -> float:
        """Communication cost contributed by placing *task* on *proc* (used for deltas)."""
        if not self.comm_model.enabled:
            return 0.0
        kernel = self.kernel
        if kernel is not None:
            i = kernel.task_index.get(task)
            j = kernel.proc_index.get(proc)
            if i is not None and j is not None:
                return kernel.comm_rows[i][j]
        # Reference path: also used for processors outside the packet's idle
        # set (legal for hand-built mappings in tests and analysis code).
        total = 0.0
        for _pred, pred_proc, weight in self.packet.predecessor_placement.get(task, ()):
            total += self.comm_model.cost(self.machine, weight, pred_proc, proc)
        return total

    # ------------------------------------------------------------------ #
    # Combined cost
    # ------------------------------------------------------------------ #
    def total_cost(self, mapping: PacketMapping) -> float:
        """Equation 6: the normalized, weighted sum."""
        fb = self.balance_cost(mapping)
        fc = self.communication_cost(mapping)
        return self.weight_comm * fc / self._comm_range + self.weight_balance * fb / self._balance_range

    def incremental_delta(self, changes) -> float:
        """Normalized cost change produced by the placement *changes* of one move.

        *changes* is the ``last_change`` list of a :class:`PacketMapping`
        produced by :func:`~repro.core.moves.propose_move`: ``(task, old_proc,
        new_proc)`` triples with ``None`` meaning "not selected".  Because both
        cost terms are additive over the selected tasks, the change of the
        total cost is the sum of the per-task changes, which makes move
        evaluation O(changed tasks) instead of O(selected tasks).
        """
        balance_delta = 0.0
        comm_delta = 0.0
        scaled = self._speed_by_proc is not None
        for task, old_proc, new_proc in changes:
            level = self.packet.levels[task]
            if old_proc is not None:
                # removing -level (times the processor's speed when scaled)
                balance_delta += level * self._balance_scale(old_proc) if scaled else level
                comm_delta -= self.task_communication_cost(task, old_proc)
            if new_proc is not None:
                balance_delta -= level * self._balance_scale(new_proc) if scaled else level
                comm_delta += self.task_communication_cost(task, new_proc)
        return (
            self.weight_comm * comm_delta / self._comm_range
            + self.weight_balance * balance_delta / self._balance_range
        )

    def breakdown(self, mapping: PacketMapping) -> CostBreakdown:
        """Return the raw balance, raw communication and normalized total cost."""
        fb = self.balance_cost(mapping)
        fc = self.communication_cost(mapping)
        total = self.weight_comm * fc / self._comm_range + self.weight_balance * fb / self._balance_range
        return CostBreakdown(balance=fb, communication=fc, total=total)

    def __call__(self, mapping: PacketMapping) -> float:
        return self.total_cost(mapping)
